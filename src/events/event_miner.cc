#include "events/event_miner.h"

#include <algorithm>

namespace classminer::events {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kUndetermined:
      return "undetermined";
    case EventType::kPresentation:
      return "presentation";
    case EventType::kDialog:
      return "dialog";
    case EventType::kClinicalOperation:
      return "clinical_operation";
  }
  return "unknown";
}

EventMiner::EventMiner(const structure::ContentStructure* structure,
                       const std::vector<cues::FrameCues>* shot_cues,
                       const std::vector<audio::ShotAudioAnalysis>* shot_audio,
                       const EventMinerOptions& options)
    : structure_(structure),
      shot_cues_(shot_cues),
      shot_audio_(shot_audio),
      segmenter_(options.segmenter) {}

EventMiner::EventMiner(const structure::ContentStructure* structure,
                       const std::vector<cues::FrameCues>* shot_cues,
                       const std::vector<audio::ShotAudioAnalysis>* shot_audio)
    : EventMiner(structure, shot_cues, shot_audio, EventMinerOptions()) {}

bool EventMiner::SpeakerChangeBetween(int shot_a, int shot_b) const {
  return segmenter_.SpeakerChange((*shot_audio_)[static_cast<size_t>(shot_a)],
                                  (*shot_audio_)[static_cast<size_t>(shot_b)]);
}

EventRecord EventMiner::ClassifyScene(const structure::Scene& scene) const {
  EventRecord rec;
  rec.scene_index = scene.index;

  const std::vector<int> shots = structure_->ShotIndicesOfScene(scene);
  rec.shot_count = static_cast<int>(shots.size());
  if (shots.empty()) return rec;

  // Gather the evidence used across the rules.
  for (int g = scene.start_group; g <= scene.end_group; ++g) {
    if (structure_->groups[static_cast<size_t>(g)].temporally_related) {
      rec.has_temporal_group = true;
    }
  }
  for (int s : shots) {
    const cues::FrameCues& c = (*shot_cues_)[static_cast<size_t>(s)];
    rec.has_slide |= c.IsSlideOrClipArt();
    rec.has_face_closeup |= c.face_closeup;
    rec.has_skin_closeup |= c.skin_closeup;
    rec.has_blood |= c.has_blood;
    if (c.has_skin_region) ++rec.skin_shot_count;
  }
  for (size_t i = 0; i + 1 < shots.size(); ++i) {
    if (SpeakerChangeBetween(shots[i], shots[i + 1])) {
      rec.any_speaker_change = true;
      break;
    }
  }

  // Step 2 -- Presentation: slide/clip-art present, face close-up present,
  // not all groups spatially related, and no speaker change between
  // adjacent shots.
  if (rec.has_slide && rec.has_face_closeup && rec.has_temporal_group &&
      !rec.any_speaker_change) {
    rec.type = EventType::kPresentation;
    return rec;
  }

  // Step 3 -- Dialog: adjacent face-bearing shots with a speaker change,
  // and at least one speaker duplicated across the exchange.
  {
    auto has_face = [this](int s) {
      return (*shot_cues_)[static_cast<size_t>(s)].has_face;
    };
    bool adjacent_faces = false;
    bool change_at_faces = false;
    std::vector<int> exchange_shots;  // shots participating in face+change pairs
    for (size_t i = 0; i + 1 < shots.size(); ++i) {
      if (!has_face(shots[i]) || !has_face(shots[i + 1])) continue;
      adjacent_faces = true;
      if (SpeakerChangeBetween(shots[i], shots[i + 1])) {
        change_at_faces = true;
        if (exchange_shots.empty() || exchange_shots.back() != shots[i]) {
          exchange_shots.push_back(shots[i]);
        }
        exchange_shots.push_back(shots[i + 1]);
      }
    }
    if (adjacent_faces && rec.has_temporal_group && change_at_faces) {
      // Speaker duplication: some speaker must appear in two or more of the
      // exchange shots (the A-B-A alternation of a dialog). Two shots share
      // a speaker when the BIC test reports no change.
      bool duplicated = false;
      for (size_t i = 0; i < exchange_shots.size() && !duplicated; ++i) {
        for (size_t j = i + 1; j < exchange_shots.size(); ++j) {
          const auto& a = (*shot_audio_)[static_cast<size_t>(exchange_shots[i])];
          const auto& b = (*shot_audio_)[static_cast<size_t>(exchange_shots[j])];
          if (a.has_speech && b.has_speech &&
              !segmenter_.SpeakerChange(a, b)) {
            duplicated = true;
            break;
          }
        }
      }
      rec.dialog_speaker_duplicated = duplicated;
      if (duplicated) {
        rec.type = EventType::kDialog;
        return rec;
      }
    }
  }

  // Step 4 -- Clinical operation: no speaker change anywhere, and a skin
  // close-up / blood region, or skin in more than half of the shots.
  if (!rec.any_speaker_change) {
    if (rec.has_skin_closeup || rec.has_blood ||
        2 * rec.skin_shot_count > rec.shot_count) {
      rec.type = EventType::kClinicalOperation;
      return rec;
    }
  }

  rec.type = EventType::kUndetermined;
  return rec;
}

std::vector<EventRecord> EventMiner::MineAllScenes() const {
  std::vector<EventRecord> out;
  for (const structure::Scene& scene : structure_->scenes) {
    if (scene.eliminated) continue;
    out.push_back(ClassifyScene(scene));
  }
  return out;
}

}  // namespace classminer::events

#ifndef CLASSMINER_EVENTS_EVENT_MINER_H_
#define CLASSMINER_EVENTS_EVENT_MINER_H_

#include <string>
#include <vector>

#include "audio/speaker_segmenter.h"
#include "cues/cue_extractor.h"
#include "structure/types.h"

namespace classminer::events {

// The three mined event categories (paper Sec. 4).
enum class EventType {
  kUndetermined = 0,
  kPresentation,
  kDialog,
  kClinicalOperation,
};

const char* EventTypeName(EventType type);

// Classification outcome for one scene with the evidence that fired.
struct EventRecord {
  int scene_index = -1;
  EventType type = EventType::kUndetermined;
  // Evidence summary (diagnostics / colour-bar tooltips).
  bool has_slide = false;
  bool has_face_closeup = false;
  bool has_temporal_group = false;
  bool any_speaker_change = false;
  bool dialog_speaker_duplicated = false;
  bool has_skin_closeup = false;
  bool has_blood = false;
  int skin_shot_count = 0;
  int shot_count = 0;
};

struct EventMinerOptions {
  audio::SpeakerSegmenter::Options segmenter{};
};

// Rule engine of Sec. 4.3. Construction binds the per-shot visual cues and
// audio analyses (parallel to the structure's shot vector).
class EventMiner {
 public:
  EventMiner(const structure::ContentStructure* structure,
             const std::vector<cues::FrameCues>* shot_cues,
             const std::vector<audio::ShotAudioAnalysis>* shot_audio,
             const EventMinerOptions& options);
  EventMiner(const structure::ContentStructure* structure,
             const std::vector<cues::FrameCues>* shot_cues,
             const std::vector<audio::ShotAudioAnalysis>* shot_audio);

  // Classifies one (non-eliminated) scene.
  EventRecord ClassifyScene(const structure::Scene& scene) const;

  // Classifies every active scene.
  std::vector<EventRecord> MineAllScenes() const;

 private:
  bool SpeakerChangeBetween(int shot_a, int shot_b) const;

  const structure::ContentStructure* structure_;
  const std::vector<cues::FrameCues>* shot_cues_;
  const std::vector<audio::ShotAudioAnalysis>* shot_audio_;
  audio::SpeakerSegmenter segmenter_;
};

}  // namespace classminer::events

#endif  // CLASSMINER_EVENTS_EVENT_MINER_H_

#ifndef CLASSMINER_CORE_METRICS_H_
#define CLASSMINER_CORE_METRICS_H_

#include <vector>

#include "events/event_miner.h"
#include "structure/types.h"
#include "synth/ground_truth.h"
#include "util/pipeline_metrics.h"

namespace classminer::core {

// ---------------------------------------------------------------------------
// Per-stage pipeline observability. The types live in util so that every
// layer (audio, index, skim) can append rows without depending on core;
// these aliases keep the historical core:: spelling working for callers.

using StageMetrics = util::StageMetrics;
using PipelineMetrics = util::PipelineMetrics;
using StageTimer = util::StageTimer;

// ---------------------------------------------------------------------------
// Accuracy scoring against synthetic ground truth (paper Sec. 6).

// Scene detection scoring (paper Eqs. 20-21). A detected scene — a set of
// detected-shot indices — is "rightly detected" iff every member shot lies
// in the same ground-truth semantic scene. Detected shots bridge to the
// truth through their representative-frame positions.
struct SceneDetectionScore {
  int detected_scenes = 0;
  int correct_scenes = 0;
  int total_shots = 0;
  double precision = 0.0;  // Eq. 20
  double crf = 0.0;        // Eq. 21
};

// Ground-truth scene id of a detected shot (-1 outside the script).
int TruthSceneOfShot(const shot::Shot& detected,
                     const synth::GroundTruth& truth);

SceneDetectionScore ScoreSceneDetection(
    const std::vector<shot::Shot>& shots,
    const std::vector<std::vector<int>>& detected_scenes,
    const synth::GroundTruth& truth);

// Extracts the detected scenes of a mined structure as shot sets (active
// scenes only), the form the baselines also produce.
std::vector<std::vector<int>> ScenesAsShotSets(
    const structure::ContentStructure& structure);

// Event mining scoring (Table 1, Eqs. 22-23), per event category:
//   SN (selected number) = ground-truth scenes of the category that the
//      structure detected (benchmark scenes),
//   DN (detected number)  = scenes the miner assigned to the category,
//   TN (true number)      = correct assignments.
struct EventScore {
  synth::SceneKind kind = synth::SceneKind::kOther;
  int selected = 0;
  int detected = 0;
  int correct = 0;
  double precision = 0.0;  // TN / DN
  double recall = 0.0;     // TN / SN
};

struct EventScoreTable {
  EventScore presentation;
  EventScore dialog;
  EventScore clinical;
  EventScore Average() const;  // micro average across the three rows
};

// The ground-truth kind that dominates a detected scene's frames.
synth::SceneKind DominantTruthKind(const structure::ContentStructure& cs,
                                   const structure::Scene& scene,
                                   const synth::GroundTruth& truth);

events::EventType EventTypeOfKind(synth::SceneKind kind);

// Scores mined events against the script. Accumulates into `table` so
// multi-video corpora aggregate naturally (pass a zeroed table first).
void AccumulateEventScores(const structure::ContentStructure& cs,
                           const std::vector<events::EventRecord>& mined,
                           const synth::GroundTruth& truth,
                           EventScoreTable* table);

// Finalises precision/recall after accumulation.
void FinalizeEventScores(EventScoreTable* table);

// Shot detection scoring for Fig. 5-style analysis: a detected cut matches
// a truth cut within `tolerance` frames.
struct CutScore {
  int truth_cuts = 0;
  int detected_cuts = 0;
  int matched = 0;
  double precision = 0.0;
  double recall = 0.0;
};

CutScore ScoreCuts(const std::vector<int>& detected,
                   const std::vector<int>& truth, int tolerance = 2);

}  // namespace classminer::core

#endif  // CLASSMINER_CORE_METRICS_H_

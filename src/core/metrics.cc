#include "core/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace classminer::core {

int TruthSceneOfShot(const shot::Shot& detected,
                     const synth::GroundTruth& truth) {
  // Locate the scripted shot containing the detected shot's representative
  // frame, then its scene.
  for (const synth::ShotTruth& s : truth.shots) {
    if (detected.rep_frame >= s.start_frame &&
        detected.rep_frame <= s.end_frame) {
      return s.scene_index;
    }
  }
  return -1;
}

SceneDetectionScore ScoreSceneDetection(
    const std::vector<shot::Shot>& shots,
    const std::vector<std::vector<int>>& detected_scenes,
    const synth::GroundTruth& truth) {
  SceneDetectionScore score;
  score.total_shots = static_cast<int>(shots.size());
  score.detected_scenes = static_cast<int>(detected_scenes.size());
  for (const std::vector<int>& scene : detected_scenes) {
    if (scene.empty()) continue;
    int first = -2;
    bool pure = true;
    for (int s : scene) {
      const int unit = TruthSceneOfShot(shots[static_cast<size_t>(s)], truth);
      if (first == -2) {
        first = unit;
      } else if (unit != first) {
        pure = false;
        break;
      }
    }
    if (pure && first >= 0) ++score.correct_scenes;
  }
  if (score.detected_scenes > 0) {
    score.precision = static_cast<double>(score.correct_scenes) /
                      static_cast<double>(score.detected_scenes);
  }
  if (score.total_shots > 0) {
    score.crf = static_cast<double>(score.detected_scenes) /
                static_cast<double>(score.total_shots);
  }
  return score;
}

std::vector<std::vector<int>> ScenesAsShotSets(
    const structure::ContentStructure& structure) {
  std::vector<std::vector<int>> out;
  for (const structure::Scene& scene : structure.scenes) {
    if (scene.eliminated) continue;
    out.push_back(structure.ShotIndicesOfScene(scene));
  }
  return out;
}

synth::SceneKind DominantTruthKind(const structure::ContentStructure& cs,
                                   const structure::Scene& scene,
                                   const synth::GroundTruth& truth) {
  std::map<int, int> votes;  // truth scene -> shots
  for (int s : cs.ShotIndicesOfScene(scene)) {
    const int unit = TruthSceneOfShot(cs.shots[static_cast<size_t>(s)], truth);
    if (unit >= 0) ++votes[unit];
  }
  int best_scene = -1;
  int best_votes = 0;
  for (const auto& [unit, v] : votes) {
    if (v > best_votes) {
      best_votes = v;
      best_scene = unit;
    }
  }
  if (best_scene < 0) return synth::SceneKind::kOther;
  return truth.scenes[static_cast<size_t>(best_scene)].kind;
}

events::EventType EventTypeOfKind(synth::SceneKind kind) {
  switch (kind) {
    case synth::SceneKind::kPresentation:
      return events::EventType::kPresentation;
    case synth::SceneKind::kDialog:
      return events::EventType::kDialog;
    case synth::SceneKind::kClinicalOperation:
      return events::EventType::kClinicalOperation;
    case synth::SceneKind::kOther:
      return events::EventType::kUndetermined;
  }
  return events::EventType::kUndetermined;
}

EventScore EventScoreTable::Average() const {
  EventScore avg;
  avg.selected = presentation.selected + dialog.selected + clinical.selected;
  avg.detected = presentation.detected + dialog.detected + clinical.detected;
  avg.correct = presentation.correct + dialog.correct + clinical.correct;
  if (avg.detected > 0) {
    avg.precision =
        static_cast<double>(avg.correct) / static_cast<double>(avg.detected);
  }
  if (avg.selected > 0) {
    avg.recall =
        static_cast<double>(avg.correct) / static_cast<double>(avg.selected);
  }
  return avg;
}

void AccumulateEventScores(const structure::ContentStructure& cs,
                           const std::vector<events::EventRecord>& mined,
                           const synth::GroundTruth& truth,
                           EventScoreTable* table) {
  auto row_for = [table](synth::SceneKind kind) -> EventScore* {
    switch (kind) {
      case synth::SceneKind::kPresentation:
        return &table->presentation;
      case synth::SceneKind::kDialog:
        return &table->dialog;
      case synth::SceneKind::kClinicalOperation:
        return &table->clinical;
      case synth::SceneKind::kOther:
        return nullptr;
    }
    return nullptr;
  };
  auto row_for_event = [table](events::EventType type) -> EventScore* {
    switch (type) {
      case events::EventType::kPresentation:
        return &table->presentation;
      case events::EventType::kDialog:
        return &table->dialog;
      case events::EventType::kClinicalOperation:
        return &table->clinical;
      case events::EventType::kUndetermined:
        return nullptr;
    }
    return nullptr;
  };

  for (const events::EventRecord& rec : mined) {
    const structure::Scene& scene =
        cs.scenes[static_cast<size_t>(rec.scene_index)];
    const synth::SceneKind truth_kind = DominantTruthKind(cs, scene, truth);

    // SN: benchmark scenes (whose dominant truth is one of the three
    // categories).
    if (EventScore* row = row_for(truth_kind)) ++row->selected;
    // DN: scenes the miner assigned to a category.
    if (EventScore* row = row_for_event(rec.type)) ++row->detected;
    // TN: correct assignments.
    if (rec.type == EventTypeOfKind(truth_kind)) {
      if (EventScore* row = row_for(truth_kind)) ++row->correct;
    }
  }
  table->presentation.kind = synth::SceneKind::kPresentation;
  table->dialog.kind = synth::SceneKind::kDialog;
  table->clinical.kind = synth::SceneKind::kClinicalOperation;
}

void FinalizeEventScores(EventScoreTable* table) {
  for (EventScore* row :
       {&table->presentation, &table->dialog, &table->clinical}) {
    if (row->detected > 0) {
      row->precision = static_cast<double>(row->correct) /
                       static_cast<double>(row->detected);
    }
    if (row->selected > 0) {
      row->recall = static_cast<double>(row->correct) /
                    static_cast<double>(row->selected);
    }
  }
}

CutScore ScoreCuts(const std::vector<int>& detected,
                   const std::vector<int>& truth, int tolerance) {
  CutScore score;
  score.truth_cuts = static_cast<int>(truth.size());
  score.detected_cuts = static_cast<int>(detected.size());
  std::vector<bool> used(truth.size(), false);
  for (int d : detected) {
    for (size_t t = 0; t < truth.size(); ++t) {
      if (!used[t] && std::abs(truth[t] - d) <= tolerance) {
        used[t] = true;
        ++score.matched;
        break;
      }
    }
  }
  if (score.detected_cuts > 0) {
    score.precision = static_cast<double>(score.matched) /
                      static_cast<double>(score.detected_cuts);
  }
  if (score.truth_cuts > 0) {
    score.recall = static_cast<double>(score.matched) /
                   static_cast<double>(score.truth_cuts);
  }
  return score;
}

}  // namespace classminer::core

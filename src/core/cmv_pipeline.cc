#include "core/cmv_pipeline.h"

#include <algorithm>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "shot/rep_frame.h"

namespace classminer::core {
namespace {

audio::AudioBuffer AudioFromFile(const codec::CmvFile& file) {
  if (file.audio_sample_rate <= 0) return audio::AudioBuffer();
  return audio::AudioBuffer(file.audio_sample_rate, file.audio_pcm);
}

}  // namespace

codec::CmvFile PackGeneratedVideo(const synth::GeneratedVideo& generated,
                                  const codec::EncoderOptions& options) {
  codec::CmvFile file = codec::EncodeVideo(generated.video, options);
  file.audio_sample_rate = generated.audio.sample_rate();
  file.audio_pcm = generated.audio.samples();
  return file;
}

codec::CmvFile PackGeneratedVideo(const synth::GeneratedVideo& generated) {
  return PackGeneratedVideo(generated, codec::EncoderOptions());
}

util::StatusOr<MiningResult> MineCmvFile(const codec::CmvFile& file,
                                         const MiningOptions& options) {
  util::StatusOr<media::Video> video = codec::DecodeVideo(file);
  if (!video.ok()) return video.status();
  return MineVideo(*video, AudioFromFile(file), options);
}

util::StatusOr<MiningResult> MineCmvFile(const codec::CmvFile& file) {
  return MineCmvFile(file, MiningOptions());
}

util::StatusOr<MiningResult> MineCmvFileFast(const codec::CmvFile& file,
                                             const MiningOptions& options) {
  // 1. Shot spans from the compressed domain (DC images only).
  util::StatusOr<std::vector<media::GrayImage>> dc =
      codec::DecodeDcImages(file);
  if (!dc.ok()) return dc.status();

  MiningResult result;
  std::vector<shot::Shot> shots =
      shot::DetectShotsFromDc(*dc, options.shot, &result.shot_trace);

  // 2. Full decode for representative-frame features and cues. (A future
  // refinement could decode only the rep frames' GOPs.)
  util::StatusOr<media::Video> video = codec::DecodeVideo(file);
  if (!video.ok()) return video.status();
  shot::PopulateRepresentativeFrames(*video, &shots);

  const audio::AudioBuffer track = AudioFromFile(file);
  const audio::SpeakerSegmenter segmenter(options.events.segmenter);
  result.shot_audio.reserve(shots.size());
  for (const shot::Shot& s : shots) {
    result.shot_audio.push_back(segmenter.AnalyzeShot(
        track, s.StartSeconds(video->fps()), s.EndSeconds(video->fps()),
        s.index));
  }

  result.structure =
      structure::MineVideoStructure(std::move(shots), options.structure);
  result.shot_cues =
      cues::ExtractShotCues(*video, result.structure.shots, options.cues);
  const events::EventMiner miner(&result.structure, &result.shot_cues,
                                 &result.shot_audio, options.events);
  result.events = miner.MineAllScenes();
  return result;
}

}  // namespace classminer::core

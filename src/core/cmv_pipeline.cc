#include "core/cmv_pipeline.h"

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/pipeline_dag.h"
#include "shot/rep_frame.h"
#include "util/threadpool.h"

namespace classminer::core {
namespace {

audio::AudioBuffer AudioFromFile(const codec::CmvFile& file) {
  if (file.audio_sample_rate <= 0) return audio::AudioBuffer();
  return audio::AudioBuffer(file.audio_sample_rate, file.audio_pcm);
}

}  // namespace

codec::CmvFile PackGeneratedVideo(const synth::GeneratedVideo& generated,
                                  const codec::EncoderOptions& options) {
  codec::CmvFile file = codec::EncodeVideo(generated.video, options);
  file.audio_sample_rate = generated.audio.sample_rate();
  file.audio_pcm = generated.audio.samples();
  return file;
}

codec::CmvFile PackGeneratedVideo(const synth::GeneratedVideo& generated) {
  return PackGeneratedVideo(generated, codec::EncoderOptions());
}

util::StatusOr<MiningResult> MineCmvFile(const codec::CmvFile& file,
                                         const MiningOptions& options) {
  PipelineMetrics decode_metrics;
  util::StatusOr<media::Video> video = [&] {
    StageTimer timer(&decode_metrics, "decode");
    auto decoded = codec::DecodeVideo(file);
    timer.set_items(file.frame_count());
    return decoded;
  }();
  if (!video.ok()) return video.status();
  util::StatusOr<MiningResult> mined =
      MineVideo(*video, AudioFromFile(file), options);
  if (!mined.ok()) return mined.status();
  MiningResult result = std::move(*mined);
  // Decode time leads the stage table so the CLI/bench see the whole cost.
  result.metrics.stages.insert(result.metrics.stages.begin(),
                               decode_metrics.stages.begin(),
                               decode_metrics.stages.end());
  return result;
}

util::StatusOr<MiningResult> MineCmvFile(const codec::CmvFile& file) {
  return MineCmvFile(file, MiningOptions());
}

util::StatusOr<MiningResult> MineCmvFileFast(const codec::CmvFile& file,
                                             const MiningOptions& options) {
  MiningResult result;
  const std::unique_ptr<util::ThreadPool> pool =
      options.thread_count > 1
          ? std::make_unique<util::ThreadPool>(options.thread_count)
          : nullptr;
  util::StatusSink sink;
  const util::ExecutionContext ctx(pool.get(), &result.metrics,
                                   options.cancel, &sink);

  const audio::AudioBuffer track = AudioFromFile(file);
  std::optional<media::Video> video;

  // Fast-path stage graph: shot spans come from the compressed domain while
  // the full decode runs beside them; the joined streams populate
  // representative frames, after which audio / structure / cues fan out and
  // events joins everything:
  //
  //   shot ───┬─> repframe ─┬─> audio ─────┐
  //   decode ─┘             ├─> structure ─┼─> events
  //                         └─> cues ──────┘
  //
  // Fallible decodes record their status into the sink; dependent stages
  // are then skipped, so `video` is only dereferenced after a clean decode.
  StageDag dag;
  util::Status build;
  // 1. Shot spans from DC images only (no full decode needed).
  build = dag.Add("shot", {}, [&](util::StageMetrics* row) {
    util::StatusOr<std::vector<media::GrayImage>> dc =
        codec::DecodeDcImages(file);
    if (!dc.ok()) {
      ctx.RecordStatus(dc.status());
      return;
    }
    result.structure.shots =
        shot::DetectShotsFromDc(*dc, options.shot, &result.shot_trace);
    row->items = static_cast<int64_t>(dc->size());
  });
  if (!build.ok()) return build;
  // 2. Full decode for representative-frame features and cues. (A future
  // refinement could decode only the rep frames' GOPs.)
  build = dag.Add("decode", {}, [&](util::StageMetrics* row) {
    util::StatusOr<media::Video> decoded = codec::DecodeVideo(file);
    if (!decoded.ok()) {
      ctx.RecordStatus(decoded.status());
      return;
    }
    video = std::move(*decoded);
    row->items = file.frame_count();
  });
  if (!build.ok()) return build;
  build = dag.Add("repframe", {"shot", "decode"},
                  [&](util::StageMetrics* row) {
                    shot::PopulateRepresentativeFrames(
                        *video, &result.structure.shots, ctx.pool());
                    row->items =
                        static_cast<int64_t>(result.structure.shots.size());
                  });
  if (!build.ok()) return build;
  build = dag.Add("audio", {"repframe"}, [&](util::StageMetrics* row) {
    const std::vector<shot::Shot>& shots = result.structure.shots;
    const audio::SpeakerSegmenter segmenter(options.events.segmenter);
    result.shot_audio.assign(shots.size(), audio::ShotAudioAnalysis{});
    util::ParallelFor(ctx, static_cast<int>(shots.size()), [&](int i) {
      const shot::Shot& s = shots[static_cast<size_t>(i)];
      result.shot_audio[static_cast<size_t>(i)] = segmenter.AnalyzeShot(
          track, s.StartSeconds(video->fps()), s.EndSeconds(video->fps()),
          s.index, ctx);
    });
    row->items = static_cast<int64_t>(shots.size());
  });
  if (!build.ok()) return build;
  build = dag.Add("structure", {"repframe"}, [&](util::StageMetrics* row) {
    result.structure.groups = structure::DetectGroups(
        result.structure.shots, options.structure.group);
    structure::ClassifyGroups(result.structure.shots,
                              &result.structure.groups,
                              options.structure.classify);
    result.structure.scenes =
        structure::DetectScenes(result.structure.shots,
                                result.structure.groups,
                                options.structure.scene, nullptr, ctx);
    result.structure.clustered_scenes = structure::ClusterScenes(
        result.structure.shots, result.structure.groups,
        result.structure.scenes, options.structure.cluster, nullptr, ctx);
    row->items = static_cast<int64_t>(result.structure.scenes.size());
  });
  if (!build.ok()) return build;
  build = dag.Add("cues", {"repframe"}, [&](util::StageMetrics* row) {
    result.shot_cues = cues::ExtractShotCues(*video, result.structure.shots,
                                             options.cues, ctx);
    row->items = static_cast<int64_t>(result.shot_cues.size());
  });
  if (!build.ok()) return build;
  build = dag.Add("events", {"structure", "cues", "audio"},
                  [&](util::StageMetrics* row) {
                    const events::EventMiner miner(
                        &result.structure, &result.shot_cues,
                        &result.shot_audio, options.events);
                    result.events = miner.MineAllScenes();
                    row->items = static_cast<int64_t>(result.events.size());
                  });
  if (!build.ok()) return build;

  const int exceptions_before = ctx.pool_exception_count();
  util::Status status = options.scheduling == StageScheduling::kDag
                            ? dag.Run(ctx)
                            : dag.RunSequential(ctx);
  const int escaped = ctx.pool_exception_count() - exceptions_before;
  result.metrics.pool_exceptions = escaped;
  if (status.ok() && escaped > 0) {
    status = util::Status::Internal(
        std::to_string(escaped) +
        " pool task(s) escaped with an exception during mining");
  }
  if (!status.ok()) return status;
  return result;
}

}  // namespace classminer::core

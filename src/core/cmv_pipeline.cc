#include "core/cmv_pipeline.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "shot/rep_frame.h"
#include "util/threadpool.h"

namespace classminer::core {
namespace {

audio::AudioBuffer AudioFromFile(const codec::CmvFile& file) {
  if (file.audio_sample_rate <= 0) return audio::AudioBuffer();
  return audio::AudioBuffer(file.audio_sample_rate, file.audio_pcm);
}

}  // namespace

codec::CmvFile PackGeneratedVideo(const synth::GeneratedVideo& generated,
                                  const codec::EncoderOptions& options) {
  codec::CmvFile file = codec::EncodeVideo(generated.video, options);
  file.audio_sample_rate = generated.audio.sample_rate();
  file.audio_pcm = generated.audio.samples();
  return file;
}

codec::CmvFile PackGeneratedVideo(const synth::GeneratedVideo& generated) {
  return PackGeneratedVideo(generated, codec::EncoderOptions());
}

util::StatusOr<MiningResult> MineCmvFile(const codec::CmvFile& file,
                                         const MiningOptions& options) {
  PipelineMetrics decode_metrics;
  util::StatusOr<media::Video> video = [&] {
    StageTimer timer(&decode_metrics, "decode");
    auto decoded = codec::DecodeVideo(file);
    timer.set_items(file.frame_count());
    return decoded;
  }();
  if (!video.ok()) return video.status();
  MiningResult result = MineVideo(*video, AudioFromFile(file), options);
  // Decode time leads the stage table so the CLI/bench see the whole cost.
  result.metrics.stages.insert(result.metrics.stages.begin(),
                               decode_metrics.stages.begin(),
                               decode_metrics.stages.end());
  return result;
}

util::StatusOr<MiningResult> MineCmvFile(const codec::CmvFile& file) {
  return MineCmvFile(file, MiningOptions());
}

util::StatusOr<MiningResult> MineCmvFileFast(const codec::CmvFile& file,
                                             const MiningOptions& options) {
  MiningResult result;
  const std::unique_ptr<util::ThreadPool> pool =
      options.thread_count > 1
          ? std::make_unique<util::ThreadPool>(options.thread_count)
          : nullptr;
  util::ThreadPool* p = pool.get();
  const int threads = p != nullptr ? p->thread_count() : 1;

  // 1. Shot spans from the compressed domain (DC images only).
  std::vector<shot::Shot> shots;
  {
    StageTimer timer(&result.metrics, "shot", threads);
    util::StatusOr<std::vector<media::GrayImage>> dc =
        codec::DecodeDcImages(file);
    if (!dc.ok()) return dc.status();
    shots = shot::DetectShotsFromDc(*dc, options.shot, &result.shot_trace);
    timer.set_items(static_cast<int64_t>(dc->size()));
  }

  // 2. Full decode for representative-frame features and cues. (A future
  // refinement could decode only the rep frames' GOPs.)
  util::StatusOr<media::Video> video = [&]() {
    StageTimer timer(&result.metrics, "decode", threads);
    auto decoded = codec::DecodeVideo(file);
    timer.set_items(file.frame_count());
    return decoded;
  }();
  if (!video.ok()) return video.status();
  {
    StageTimer timer(&result.metrics, "repframe", threads);
    shot::PopulateRepresentativeFrames(*video, &shots, p);
    timer.set_items(static_cast<int64_t>(shots.size()));
  }

  {
    StageTimer timer(&result.metrics, "audio", threads);
    const audio::AudioBuffer track = AudioFromFile(file);
    const audio::SpeakerSegmenter segmenter(options.events.segmenter);
    result.shot_audio.assign(shots.size(), audio::ShotAudioAnalysis{});
    util::ParallelFor(p, static_cast<int>(shots.size()), [&](int i) {
      const shot::Shot& s = shots[static_cast<size_t>(i)];
      result.shot_audio[static_cast<size_t>(i)] = segmenter.AnalyzeShot(
          track, s.StartSeconds(video->fps()), s.EndSeconds(video->fps()),
          s.index);
    });
    timer.set_items(static_cast<int64_t>(shots.size()));
  }

  {
    StageTimer timer(&result.metrics, "structure", threads);
    result.structure = structure::MineVideoStructure(std::move(shots),
                                                     options.structure, p);
    timer.set_items(static_cast<int64_t>(result.structure.scenes.size()));
  }
  {
    StageTimer timer(&result.metrics, "cues", threads);
    result.shot_cues = cues::ExtractShotCues(*video, result.structure.shots,
                                             options.cues, p);
    timer.set_items(static_cast<int64_t>(result.shot_cues.size()));
  }
  {
    StageTimer timer(&result.metrics, "events", threads);
    const events::EventMiner miner(&result.structure, &result.shot_cues,
                                   &result.shot_audio, options.events);
    result.events = miner.MineAllScenes();
    timer.set_items(static_cast<int64_t>(result.events.size()));
  }
  return result;
}

}  // namespace classminer::core

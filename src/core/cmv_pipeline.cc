#include "core/cmv_pipeline.h"

#include <memory>
#include <string>
#include <utility>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/frame_source.h"
#include "core/pipeline_dag.h"
#include "shot/rep_frame.h"
#include "util/threadpool.h"

namespace classminer::core {
namespace {

audio::AudioBuffer AudioFromFile(const codec::CmvFile& file) {
  if (file.audio_sample_rate <= 0) return audio::AudioBuffer();
  return audio::AudioBuffer(file.audio_sample_rate, file.audio_pcm);
}

}  // namespace

codec::CmvFile PackGeneratedVideo(const synth::GeneratedVideo& generated,
                                  const codec::EncoderOptions& options) {
  codec::CmvFile file = codec::EncodeVideo(generated.video, options);
  file.audio_sample_rate = generated.audio.sample_rate();
  file.audio_pcm = generated.audio.samples();
  return file;
}

codec::CmvFile PackGeneratedVideo(const synth::GeneratedVideo& generated) {
  return PackGeneratedVideo(generated, codec::EncoderOptions());
}

util::StatusOr<MiningResult> MineCmvFile(const codec::CmvFile& file,
                                         const MiningOptions& options) {
  PipelineMetrics decode_metrics;
  util::StatusOr<media::Video> video = [&] {
    StageTimer timer(&decode_metrics, "decode");
    auto decoded = codec::DecodeVideo(file, options.cancel);
    timer.set_items(file.frame_count());
    return decoded;
  }();
  if (!video.ok()) return video.status();
  util::StatusOr<MiningResult> mined =
      MineVideo(*video, AudioFromFile(file), options);
  if (!mined.ok()) return mined.status();
  MiningResult result = std::move(*mined);
  // Decode time leads the stage table so the CLI/bench see the whole cost.
  result.metrics.stages.insert(result.metrics.stages.begin(),
                               decode_metrics.stages.begin(),
                               decode_metrics.stages.end());
  return result;
}

util::StatusOr<MiningResult> MineCmvFile(const codec::CmvFile& file) {
  return MineCmvFile(file, MiningOptions());
}

util::StatusOr<MiningResult> MineCmvFileFast(const codec::CmvFile& file,
                                             const MiningOptions& options) {
  MiningResult result;
  const std::unique_ptr<util::ThreadPool> pool =
      options.thread_count > 1
          ? std::make_unique<util::ThreadPool>(options.thread_count)
          : nullptr;
  util::StatusSink sink;
  const util::ExecutionContext ctx(pool.get(), &result.metrics,
                                   options.cancel, &sink);

  const audio::AudioBuffer track = AudioFromFile(file);

  // Selective-decode frame supplier shared by repframe and cues: decodes
  // only the GOPs containing frames that are actually requested, behind a
  // capacity-bounded LRU cache (paper Sec. 3: the point of working on the
  // compressed domain is not paying full-decompression cost).
  codec::FrameSource::Options source_options;
  source_options.cache_capacity_gops = options.gop_cache_capacity;
  source_options.cancel = options.cancel;
  util::StatusOr<std::unique_ptr<codec::FrameSource>> source =
      codec::FrameSource::Create(&file, source_options);
  if (!source.ok()) return source.status();

  // Fast-path stage graph: shot spans come from the compressed domain (DC
  // images, no pixel decode); repframe then decodes only the GOPs holding
  // representative frames through the FrameSource, after which audio /
  // structure / cues fan out and events joins everything:
  //
  //   shot ──> repframe ─┬─> audio ─────┐
  //                      ├─> structure ─┼─> events
  //                      └─> cues ──────┘
  //
  // With ~1 rep frame per shot, decode cost is O(shots * gop_size) frames
  // instead of O(frames); cues re-reads the same rep frames, so it mostly
  // hits the cache. Fallible stages record their status into the sink and
  // dependent stages are skipped.
  StageDag dag;
  util::Status build;
  build = dag.Add("shot", {}, [&](util::StageMetrics* row) {
    util::StatusOr<std::vector<media::GrayImage>> dc =
        codec::DecodeDcImages(file, ctx.cancellation());
    if (!dc.ok()) {
      ctx.RecordStatus(dc.status());
      return;
    }
    result.structure.shots =
        shot::DetectShotsFromDc(*dc, options.shot, &result.shot_trace);
    row->items = static_cast<int64_t>(dc->size());
  });
  if (!build.ok()) return build;
  build = dag.Add("repframe", {"shot"}, [&](util::StageMetrics* row) {
    ctx.RecordStatus(shot::PopulateRepresentativeFrames(
        source->get(), &result.structure.shots, ctx));
    row->items = static_cast<int64_t>(result.structure.shots.size());
  });
  if (!build.ok()) return build;
  build = dag.Add("audio", {"repframe"}, [&](util::StageMetrics* row) {
    const std::vector<shot::Shot>& shots = result.structure.shots;
    const audio::SpeakerSegmenter segmenter(options.events.segmenter);
    result.shot_audio.assign(shots.size(), audio::ShotAudioAnalysis{});
    util::ParallelFor(ctx, static_cast<int>(shots.size()), [&](int i) {
      const shot::Shot& s = shots[static_cast<size_t>(i)];
      result.shot_audio[static_cast<size_t>(i)] = segmenter.AnalyzeShot(
          track, s.StartSeconds(file.fps), s.EndSeconds(file.fps), s.index,
          ctx);
    });
    row->items = static_cast<int64_t>(shots.size());
  });
  if (!build.ok()) return build;
  build = dag.Add("structure", {"repframe"}, [&](util::StageMetrics* row) {
    result.structure.groups = structure::DetectGroups(
        result.structure.shots, options.structure.group);
    structure::ClassifyGroups(result.structure.shots,
                              &result.structure.groups,
                              options.structure.classify);
    result.structure.scenes =
        structure::DetectScenes(result.structure.shots,
                                result.structure.groups,
                                options.structure.scene, nullptr, ctx);
    result.structure.clustered_scenes = structure::ClusterScenes(
        result.structure.shots, result.structure.groups,
        result.structure.scenes, options.structure.cluster, nullptr, ctx);
    row->items = static_cast<int64_t>(result.structure.scenes.size());
  });
  if (!build.ok()) return build;
  build = dag.Add("cues", {"repframe"}, [&](util::StageMetrics* row) {
    util::StatusOr<std::vector<cues::FrameCues>> shot_cues =
        cues::ExtractShotCues(source->get(), result.structure.shots,
                              options.cues, ctx);
    if (!shot_cues.ok()) {
      ctx.RecordStatus(shot_cues.status());
      return;
    }
    result.shot_cues = std::move(shot_cues).value();
    row->items = static_cast<int64_t>(result.shot_cues.size());
  });
  if (!build.ok()) return build;
  build = dag.Add("events", {"structure", "cues", "audio"},
                  [&](util::StageMetrics* row) {
                    const events::EventMiner miner(
                        &result.structure, &result.shot_cues,
                        &result.shot_audio, options.events);
                    result.events = miner.MineAllScenes();
                    row->items = static_cast<int64_t>(result.events.size());
                  });
  if (!build.ok()) return build;

  const int exceptions_before = ctx.pool_exception_count();
  util::Status status = options.scheduling == StageScheduling::kDag
                            ? dag.Run(ctx)
                            : dag.RunSequential(ctx);
  const int escaped = ctx.pool_exception_count() - exceptions_before;
  result.metrics.pool_exceptions = escaped;
  if (status.ok() && escaped > 0) {
    status = util::Status::Internal(
        std::to_string(escaped) +
        " pool task(s) escaped with an exception during mining");
  }
  if (!status.ok()) return status;

  // Synthetic "decode" row from the FrameSource, leading the stage table
  // like the full path's decode stage: items counts frames actually
  // decoded (strictly fewer than file.frame_count() whenever some GOP
  // contains no requested frame), with GOP and cache-hit counters.
  const codec::FrameSource::Stats decode_stats = (*source)->stats();
  util::StageMetrics decode_row;
  decode_row.name = "decode";
  decode_row.wall_ms = decode_stats.decode_ms;
  decode_row.items = decode_stats.decoded_frames;
  decode_row.threads = ctx.thread_count();
  decode_row.counters = {{"gops", decode_stats.decoded_gops},
                         {"cache_hits", decode_stats.cache_hits}};
  result.metrics.stages.insert(result.metrics.stages.begin(),
                               std::move(decode_row));
  return result;
}

}  // namespace classminer::core

#include "core/cmv_pipeline.h"

#include <memory>
#include <string>
#include <utility>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/frame_source.h"
#include "core/pipeline_dag.h"
#include "shot/rep_frame.h"
#include "util/arena.h"
#include "util/threadpool.h"

namespace classminer::core {
namespace {

audio::AudioBuffer AudioFromFile(const codec::CmvFile& file) {
  if (file.audio_sample_rate <= 0) return audio::AudioBuffer();
  return audio::AudioBuffer(file.audio_sample_rate, file.audio_pcm);
}

}  // namespace

codec::CmvFile PackGeneratedVideo(const synth::GeneratedVideo& generated,
                                  const codec::EncoderOptions& options) {
  codec::CmvFile file = codec::EncodeVideo(generated.video, options);
  file.audio_sample_rate = generated.audio.sample_rate();
  file.audio_pcm = generated.audio.samples();
  return file;
}

codec::CmvFile PackGeneratedVideo(const synth::GeneratedVideo& generated) {
  return PackGeneratedVideo(generated, codec::EncoderOptions());
}

util::StatusOr<MiningResult> MineCmvFile(const codec::CmvFile& file,
                                         const MiningOptions& options) {
  PipelineMetrics decode_metrics;
  util::StatusOr<media::Video> video = [&] {
    StageTimer timer(&decode_metrics, "decode");
    auto decoded = codec::DecodeVideo(file, options.cancel);
    timer.set_items(file.frame_count());
    return decoded;
  }();
  if (!video.ok()) return video.status();
  util::StatusOr<MiningResult> mined =
      MineVideo(*video, AudioFromFile(file), options);
  if (!mined.ok()) return mined.status();
  MiningResult result = std::move(*mined);
  // Decode time leads the stage table so the CLI/bench see the whole cost.
  result.metrics.stages.insert(result.metrics.stages.begin(),
                               decode_metrics.stages.begin(),
                               decode_metrics.stages.end());
  return result;
}

util::StatusOr<MiningResult> MineCmvFile(const codec::CmvFile& file) {
  return MineCmvFile(file, MiningOptions());
}

util::StatusOr<MiningResult> MineCmvFileFast(const codec::CmvFile& file,
                                             const MiningOptions& options) {
  MiningResult result;
  const bool degraded_mode =
      options.failure_policy == FailurePolicy::kDegraded;
  const std::unique_ptr<util::ThreadPool> pool =
      options.thread_count > 1
          ? std::make_unique<util::ThreadPool>(options.thread_count)
          : nullptr;
  util::StatusSink sink;
  // Per-run bump arena, threaded through the context like the pool: stages
  // draw transient scratch from it and everything they keep is copied into
  // `result`, so the arena dies with this call.
  util::Arena run_arena;
  const util::ExecutionContext ctx =
      util::ExecutionContext(pool.get(), &result.metrics, options.cancel,
                             &sink)
          .WithArena(&run_arena);

  const audio::AudioBuffer track = AudioFromFile(file);

  // Selective-decode frame supplier shared by repframe and cues: decodes
  // only the GOPs containing frames that are actually requested, behind a
  // capacity-bounded LRU cache (paper Sec. 3: the point of working on the
  // compressed domain is not paying full-decompression cost). Degraded runs
  // put it in salvage mode so a corrupt GOP fails only the frames it holds.
  codec::FrameSource::Options source_options;
  source_options.cache_capacity_gops = options.gop_cache_capacity;
  source_options.cache_capacity_max_gops = options.gop_cache_capacity_max;
  source_options.cancel = options.cancel;
  source_options.salvage = degraded_mode;
  util::StatusOr<std::unique_ptr<codec::FrameSource>> source =
      codec::FrameSource::Create(&file, source_options);
  if (!source.ok()) return source.status();

  // Fast-path stage graph: shot spans come from the compressed domain (DC
  // images, no pixel decode); repframe then decodes only the GOPs holding
  // representative frames through the FrameSource, after which audio /
  // structure / cues fan out and events joins everything:
  //
  //   shot ──> repframe ─┬─> audio ─────┐
  //                      ├─> structure ─┼─> events
  //                      └─> cues ──────┘
  //
  // With ~1 rep frame per shot, decode cost is O(shots * gop_size) frames
  // instead of O(frames); cues re-reads the same rep frames, so it mostly
  // hits the cache. Fallible stages record their status into the sink and
  // dependent stages are skipped.
  internal::OptionalStageStatus optional;
  StageDag dag;
  util::Status build;
  build = dag.Add("shot", {}, [&](util::StageMetrics* row) {
    // Essential: no shots, nothing to index. Degraded runs use the salvage
    // decode, which substitutes the previous DC image for frames in corrupt
    // GOPs (keeping indices aligned) and fails only when nothing decodes.
    util::StatusOr<std::vector<media::GrayImage>> dc =
        degraded_mode
            ? codec::DecodeDcImagesSalvage(file, &result.salvage,
                                           ctx.cancellation())
            : codec::DecodeDcImages(file, ctx.cancellation());
    if (!dc.ok()) {
      ctx.RecordStatus(dc.status());
      return;
    }
    result.structure.shots =
        shot::DetectShotsFromDc(*dc, options.shot, &result.shot_trace);
    row->items = static_cast<int64_t>(dc->size());
  });
  if (!build.ok()) return build;
  build = dag.Add("repframe", {"shot"}, [&](util::StageMetrics* row) {
    // Essential stage, but in a degraded run a shot whose representative
    // frame sits in a corrupt GOP keeps default features instead of
    // failing the pipeline.
    if (degraded_mode) {
      int failed_shots = 0;
      ctx.RecordStatus(shot::PopulateRepresentativeFramesSalvage(
          source->get(), &result.structure.shots, ctx, &failed_shots));
      if (failed_shots > 0) {
        result.salvage.AddNote(
            "repframe: " + std::to_string(failed_shots) +
            " shot(s) kept default features (corrupt GOP)");
      }
    } else {
      ctx.RecordStatus(shot::PopulateRepresentativeFrames(
          source->get(), &result.structure.shots, ctx));
    }
    row->items = static_cast<int64_t>(result.structure.shots.size());
  });
  if (!build.ok()) return build;
  build = dag.Add("audio", {"repframe"}, [&](util::StageMetrics* row) {
    const std::vector<shot::Shot>& shots = result.structure.shots;
    result.shot_audio.assign(shots.size(), audio::ShotAudioAnalysis{});
    row->items = static_cast<int64_t>(shots.size());
    internal::RunOptionalStage(
        options, ctx, "core.stage.audio", row, &optional.audio,
        [&](const util::ExecutionContext& sctx) {
          const audio::SpeakerSegmenter segmenter(options.events.segmenter);
          util::ParallelFor(sctx, static_cast<int>(shots.size()), [&](int i) {
            const shot::Shot& s = shots[static_cast<size_t>(i)];
            result.shot_audio[static_cast<size_t>(i)] = segmenter.AnalyzeShot(
                track, s.StartSeconds(file.fps), s.EndSeconds(file.fps),
                s.index, sctx);
          });
          return util::Status::Ok();
        });
  });
  if (!build.ok()) return build;
  build = dag.Add("structure", {"repframe"}, [&](util::StageMetrics* row) {
    result.structure.groups = structure::DetectGroups(
        result.structure.shots, options.structure.group);
    structure::ClassifyGroups(result.structure.shots,
                              &result.structure.groups,
                              options.structure.classify);
    result.structure.scenes =
        structure::DetectScenes(result.structure.shots,
                                result.structure.groups,
                                options.structure.scene, nullptr, ctx);
    result.structure.clustered_scenes = structure::ClusterScenes(
        result.structure.shots, result.structure.groups,
        result.structure.scenes, options.structure.cluster, nullptr, ctx);
    row->items = static_cast<int64_t>(result.structure.scenes.size());
  });
  if (!build.ok()) return build;
  build = dag.Add("cues", {"repframe"}, [&](util::StageMetrics* row) {
    result.shot_cues.assign(result.structure.shots.size(),
                            cues::FrameCues{});
    row->items = static_cast<int64_t>(result.shot_cues.size());
    internal::RunOptionalStage(
        options, ctx, "core.stage.cues", row, &optional.cues,
        [&](const util::ExecutionContext& sctx) {
          util::StatusOr<std::vector<cues::FrameCues>> shot_cues =
              cues::ExtractShotCues(source->get(), result.structure.shots,
                                    options.cues, sctx);
          if (!shot_cues.ok()) return shot_cues.status();
          result.shot_cues = std::move(shot_cues).value();
          return util::Status::Ok();
        });
  });
  if (!build.ok()) return build;
  build = dag.Add(
      "events", {"structure", "cues", "audio"}, [&](util::StageMetrics* row) {
        internal::RunOptionalStage(
            options, ctx, "core.stage.events", row, &optional.events,
            [&](const util::ExecutionContext&) {
              const size_t shots = result.structure.shots.size();
              if (result.shot_cues.size() != shots ||
                  result.shot_audio.size() != shots) {
                return util::Status::FailedPrecondition(
                    "event mining needs per-shot cues and audio");
              }
              const events::EventMiner miner(&result.structure,
                                             &result.shot_cues,
                                             &result.shot_audio,
                                             options.events);
              result.events = miner.MineAllScenes();
              row->items = static_cast<int64_t>(result.events.size());
              return util::Status::Ok();
            });
      });
  if (!build.ok()) return build;

  const int exceptions_before = ctx.pool_exception_count();
  util::Status status = options.scheduling == StageScheduling::kDag
                            ? dag.Run(ctx)
                            : dag.RunSequential(ctx);
  const int escaped = ctx.pool_exception_count() - exceptions_before;
  result.metrics.pool_exceptions = escaped;
  if (status.ok() && escaped > 0) {
    status = util::Status::Internal(
        std::to_string(escaped) +
        " pool task(s) escaped with an exception during mining");
  }
  if (!status.ok()) return status;

  // Synthetic "decode" row from the FrameSource, leading the stage table
  // like the full path's decode stage: items counts frames actually
  // decoded (strictly fewer than file.frame_count() whenever some GOP
  // contains no requested frame), with GOP and cache-hit counters.
  const codec::FrameSource::Stats decode_stats = (*source)->stats();
  util::StageMetrics decode_row;
  decode_row.name = "decode";
  decode_row.wall_ms = decode_stats.decode_ms;
  decode_row.items = decode_stats.decoded_frames;
  decode_row.threads = ctx.thread_count();
  decode_row.counters = {{"gops", decode_stats.decoded_gops},
                         {"cache_hits", decode_stats.cache_hits}};
  if (decode_stats.failed_gops > 0) {
    decode_row.counters.emplace_back("failed_gops", decode_stats.failed_gops);
    result.salvage.gops_skipped += static_cast<int>(decode_stats.failed_gops);
    result.salvage.AddNote("decode: " +
                           std::to_string(decode_stats.failed_gops) +
                           " GOP(s) failed selective decode");
  }
  result.metrics.stages.insert(result.metrics.stages.begin(),
                               std::move(decode_row));
  internal::CollectOptionalFailures(optional, &result);
  result.metrics.suppressed_errors = sink.suppressed_count();
  return result;
}

}  // namespace classminer::core

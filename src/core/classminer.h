#ifndef CLASSMINER_CORE_CLASSMINER_H_
#define CLASSMINER_CORE_CLASSMINER_H_

#include <functional>
#include <string>
#include <vector>

#include "audio/audio_buffer.h"
#include "audio/speaker_segmenter.h"
#include "core/metrics.h"
#include "cues/cue_extractor.h"
#include "events/event_miner.h"
#include "media/video.h"
#include "shot/detector.h"
#include "structure/content_structure.h"
#include "util/exec_context.h"
#include "util/salvage.h"
#include "util/status.h"
#include "util/threadpool.h"

namespace classminer::core {

// The execution environment threaded through every pipeline stage; defined
// in util (so lower layers can take it without depending on core), aliased
// here because the pipeline is where callers meet it.
using ExecutionContext = util::ExecutionContext;

// How MineVideo orders its stages. Both modes are bit-identical to a serial
// run at any thread count; they differ only in wall-clock shape.
enum class StageScheduling {
  // Stages one at a time in declaration order; each stage's inner loops run
  // on the shared pool. The whole pipeline is as slow as the sum of stages.
  kSequential,
  // Stages run as a dependency DAG (shot -> {audio, group, cues};
  // group -> scene -> cluster; {cluster, cues, audio} -> events):
  // independent stages execute concurrently the moment their inputs are
  // ready, sharing the same pool as the inner loops.
  kDag,
};

// How the pipeline responds to a stage failure. The essential chain
// (shot -> group -> scene -> cluster, and the CMV fast path's decode /
// repframe stages) always fails the run — without shots there is nothing to
// index. Audio, cues and events are enrichments: losing them degrades the
// entry, it does not void it.
enum class FailurePolicy {
  // Any stage failure fails the whole run; a partial result is never
  // returned as OK.
  kStrict,
  // An optional stage (audio, cues, events) that fails is recorded on the
  // result — degraded=true, its Status in stage_failures and on its metrics
  // row — and the run continues with that stage's default outputs (sized to
  // the shots, so dependents still see consistent inputs).
  kDegraded,
};

// Options for the full ClassMiner pipeline (paper Fig. 3).
struct MiningOptions {
  shot::ShotDetectorOptions shot{};
  structure::StructureOptions structure{};
  cues::CueExtractorOptions cues{};
  events::EventMinerOptions events{};
  // Threads for the shared pipeline pool (stage DAG + intra-stage hot
  // paths: feature extraction, the scene similarity matrix / PCS
  // clustering, per-shot audio and cue analysis). Parallel runs are
  // bit-identical to thread_count = 1: all loops use fixed per-index
  // partitioning and serial reductions, and stage dependencies mirror the
  // true data flow. <= 1 runs serially.
  int thread_count = util::ThreadPool::DefaultThreads();
  StageScheduling scheduling = StageScheduling::kDag;
  // Optional cooperative cancellation, checked at stage boundaries, at the
  // head of parallel loops and inside the codec decode loops; a cancelled
  // run returns kCancelled. Borrowed, may be null, must outlive the call.
  util::CancellationToken* cancel = nullptr;
  // CMV fast path only: decoded-GOP LRU cache capacity of the selective
  // FrameSource (bounds resident frames at capacity * gop_size).
  int gop_cache_capacity = 8;
  // CMV fast path only: adaptive ceiling for the GOP cache. 0 (default)
  // pins the capacity at gop_cache_capacity; a larger value lets the
  // FrameSource grow the cache when it observes re-decode thrash and
  // shrink it back when the working set contracts. Never changes mined
  // output — frames are bit-identical at any capacity — only decode cost.
  int gop_cache_capacity_max = 0;
  // What a failed optional stage does to the run (see FailurePolicy).
  FailurePolicy failure_policy = FailurePolicy::kStrict;
};

// One optional stage that failed under FailurePolicy::kDegraded.
struct StageFailure {
  std::string stage;    // stage name as declared in the DAG
  util::Status status;  // why it failed
};

// Everything the pipeline mines from one video.
struct MiningResult {
  structure::ContentStructure structure;
  std::vector<cues::FrameCues> shot_cues;             // per shot
  std::vector<audio::ShotAudioAnalysis> shot_audio;   // per shot
  std::vector<events::EventRecord> events;            // per active scene
  shot::ShotDetectionTrace shot_trace;                // Fig. 5 diagnostics
  PipelineMetrics metrics;                            // per-stage wall time

  // True when the run completed under FailurePolicy::kDegraded with at
  // least one optional stage lost, or when the source container needed
  // salvage. The structure fields are trustworthy; the failed stages'
  // outputs are defaults.
  bool degraded = false;
  std::vector<StageFailure> stage_failures;  // in stage declaration order
  // What salvage recovered/dropped from the source container (fast path and
  // salvage loaders fill it; pristine inputs leave it empty).
  util::SalvageReport salvage;
};

// Runs shot detection, content-structure mining, visual/audio cue
// extraction and event mining end to end. `audio` may be empty (event rules
// then see every shot as speech-free). Fails with kCancelled when
// options.cancel fires, or kInternal when a stage throws or a pool task
// escapes with an exception (see PipelineMetrics::pool_exceptions) — a
// partial result is never returned as OK.
util::StatusOr<MiningResult> MineVideo(const media::Video& video,
                                       const audio::AudioBuffer& audio,
                                       const MiningOptions& options);
util::StatusOr<MiningResult> MineVideo(const media::Video& video,
                                       const audio::AudioBuffer& audio);

// Core entry point: mines one video into *result on an externally-owned
// context. The context's pool (possibly shared with other videos), its
// cancellation token and its status sink are honoured;
// options.thread_count is ignored in favour of the context's pool. Metrics
// land in result->metrics. This is what the batch scheduler calls once per
// video from inside a pool task.
util::Status MineVideoInto(const media::Video& video,
                           const audio::AudioBuffer& audio,
                           const MiningOptions& options,
                           const ExecutionContext& ctx, MiningResult* result);

// A (video, audio) pair for batch ingest.
struct MiningInput {
  const media::Video* video = nullptr;
  const audio::AudioBuffer* audio = nullptr;
};

// Batch mining outcome with per-video resolution: `results` and `statuses`
// are both aligned with the inputs, so partial-batch consumers can keep the
// videos that mined cleanly and see exactly which ones failed (and why)
// instead of only the first error. A result slot whose status is non-OK is
// default-constructed and must not be trusted.
struct BatchMiningResult {
  std::vector<MiningResult> results;
  std::vector<util::Status> statuses;

  // First non-OK status in input order (OK when every video succeeded).
  util::Status FirstError() const;
  // Videos that failed outright (non-OK status).
  int FailedCount() const;
  // Videos that mined OK but degraded (optional stage lost or salvage).
  int DegradedCount() const;
  // Salvage reports of all OK results merged into one aggregate.
  util::SalvageReport SalvageTotals() const;
};

// Mines several videos concurrently on one shared pool. Work is scheduled
// at video x stage granularity: every video's stage DAG is spawned onto the
// same pool, so a straggler video fans out across all threads instead of
// pinning one (no interior serial clamp). Results are bit-identical to
// serial mining and aligned with `inputs`. A null video/audio pointer fails
// that slot with kInvalidArgument instead of crashing the batch.
// `threads <= 0` uses the hardware concurrency.
BatchMiningResult MineVideosParallelWithStatus(
    const std::vector<MiningInput>& inputs, const MiningOptions& options,
    int threads = 0);

// First-error-wins wrapper over MineVideosParallelWithStatus: returns every
// result only when every video mined cleanly, else the first per-video
// failure in input order.
util::StatusOr<std::vector<MiningResult>> MineVideosParallel(
    const std::vector<MiningInput>& inputs, const MiningOptions& options,
    int threads = 0);

namespace internal {

// Failure slots for the optional stages, shared by the full pipeline and
// the CMV fast path. Each slot is written by exactly one stage (fixed slot,
// no mutex) and read only after the DAG drains, so the collected failure
// list is deterministic regardless of completion order on the pool.
struct OptionalStageStatus {
  util::Status audio;
  util::Status cues;
  util::Status events;
};

// Runs one optional stage body under the failure policy. Strict runs keep
// the historical contract: a fail-point hit (site "core.stage.<name>") or
// body failure lands in the run's sink and fails the whole pipeline.
// Degraded runs hand the body a stage-local sink so its errors — returned,
// recorded by nested loops, or thrown — stay confined to the stage; the
// outcome lands in *slot and on the stage's metrics row, and the run
// continues on the stage's default outputs.
void RunOptionalStage(
    const MiningOptions& options, const util::ExecutionContext& ctx,
    const char* site, util::StageMetrics* row, util::Status* slot,
    const std::function<util::Status(const util::ExecutionContext&)>& body);

// Folds the optional-stage outcomes into the result: failures append to
// stage_failures in declaration order and flag the result degraded (as does
// a non-empty salvage report).
void CollectOptionalFailures(const OptionalStageStatus& optional,
                             MiningResult* result);

}  // namespace internal
}  // namespace classminer::core

#endif  // CLASSMINER_CORE_CLASSMINER_H_

#ifndef CLASSMINER_CORE_CLASSMINER_H_
#define CLASSMINER_CORE_CLASSMINER_H_

#include <vector>

#include "audio/audio_buffer.h"
#include "audio/speaker_segmenter.h"
#include "core/metrics.h"
#include "cues/cue_extractor.h"
#include "events/event_miner.h"
#include "media/video.h"
#include "shot/detector.h"
#include "structure/content_structure.h"
#include "util/threadpool.h"

namespace classminer::core {

// Options for the full ClassMiner pipeline (paper Fig. 3).
struct MiningOptions {
  shot::ShotDetectorOptions shot{};
  structure::StructureOptions structure{};
  cues::CueExtractorOptions cues{};
  events::EventMinerOptions events{};
  // Threads for the intra-video hot paths (feature extraction, the scene
  // similarity matrix / PCS clustering, per-shot audio and cue analysis).
  // One shared pool serves every stage. Parallel runs are bit-identical to
  // thread_count = 1: all loops use fixed per-index partitioning and serial
  // reductions. <= 0 falls back to 1 (serial).
  int thread_count = util::ThreadPool::DefaultThreads();
};

// Everything the pipeline mines from one video.
struct MiningResult {
  structure::ContentStructure structure;
  std::vector<cues::FrameCues> shot_cues;             // per shot
  std::vector<audio::ShotAudioAnalysis> shot_audio;   // per shot
  std::vector<events::EventRecord> events;            // per active scene
  shot::ShotDetectionTrace shot_trace;                // Fig. 5 diagnostics
  PipelineMetrics metrics;                            // per-stage wall time
};

// Runs shot detection, content-structure mining, visual/audio cue
// extraction and event mining end to end. `audio` may be empty (event rules
// then see every shot as speech-free).
MiningResult MineVideo(const media::Video& video,
                       const audio::AudioBuffer& audio,
                       const MiningOptions& options);
MiningResult MineVideo(const media::Video& video,
                       const audio::AudioBuffer& audio);

// A (video, audio) pair for batch ingest.
struct MiningInput {
  const media::Video* video = nullptr;
  const audio::AudioBuffer* audio = nullptr;
};

// Mines several videos concurrently. Each pipeline run is independent and
// deterministic, so results are identical to serial mining and aligned
// with `inputs`. `threads <= 0` uses the hardware concurrency.
std::vector<MiningResult> MineVideosParallel(
    const std::vector<MiningInput>& inputs, const MiningOptions& options,
    int threads = 0);

}  // namespace classminer::core

#endif  // CLASSMINER_CORE_CLASSMINER_H_

#include "core/classminer.h"

#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "core/pipeline_dag.h"
#include "util/arena.h"
#include "util/failpoint.h"
#include "util/threadpool.h"

namespace classminer::core {
namespace {

// One pool shared by the stage DAG and every intra-stage loop of a
// MineVideo call (or none for serial runs).
std::unique_ptr<util::ThreadPool> MakePipelinePool(int thread_count) {
  if (thread_count <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(thread_count);
}

using internal::OptionalStageStatus;
using internal::RunOptionalStage;

// Declares the mining pipeline as a stage graph over `result`. Dependencies
// mirror the data flow exactly — each stage reads only fields written by
// its declared deps — which is what makes DAG execution bit-identical to
// declaration order:
//
//   shot ──┬─> audio ──────────┐
//          ├─> group -> scene -> cluster ──> events
//          └─> cues ───────────┘      (audio, cues, cluster all feed events)
util::Status BuildMiningDag(const media::Video& video,
                            const audio::AudioBuffer& audio,
                            const MiningOptions& options,
                            const util::ExecutionContext& ctx,
                            MiningResult* result,
                            OptionalStageStatus* optional, StageDag* dag) {
  CLASSMINER_RETURN_IF_ERROR(dag->Add(
      "shot", {}, [&video, &options, &ctx, result](util::StageMetrics* row) {
        result->structure.shots =
            shot::DetectShots(video, options.shot, &result->shot_trace, ctx);
        row->items = video.frame_count();
      }));
  // Per-shot audio analysis (representative clip + MFCC). Shots are
  // independent; the loop fans across shots and AnalyzeShot's inner loops
  // nest on the same pool via the context.
  CLASSMINER_RETURN_IF_ERROR(dag->Add(
      "audio", {"shot"},
      [&audio, &options, &ctx, result, &video,
       optional](util::StageMetrics* row) {
        const std::vector<shot::Shot>& shots = result->structure.shots;
        // Default (silent) entries first, so a degraded failure still
        // leaves dependents correctly-sized per-shot inputs.
        result->shot_audio.assign(shots.size(), audio::ShotAudioAnalysis{});
        row->items = static_cast<int64_t>(shots.size());
        RunOptionalStage(
            options, ctx, "core.stage.audio", row, &optional->audio,
            [&](const util::ExecutionContext& sctx) {
              const audio::SpeakerSegmenter segmenter(
                  options.events.segmenter);
              util::ParallelFor(
                  sctx, static_cast<int>(shots.size()), [&](int i) {
                    const shot::Shot& s = shots[static_cast<size_t>(i)];
                    result->shot_audio[static_cast<size_t>(i)] =
                        segmenter.AnalyzeShot(
                            audio, s.StartSeconds(video.fps()),
                            s.EndSeconds(video.fps()), s.index, sctx);
                  });
              return util::Status::Ok();
            });
      }));
  CLASSMINER_RETURN_IF_ERROR(dag->Add(
      "group", {"shot"}, [&options, result](util::StageMetrics* row) {
        result->structure.groups = structure::DetectGroups(
            result->structure.shots, options.structure.group);
        structure::ClassifyGroups(result->structure.shots,
                                  &result->structure.groups,
                                  options.structure.classify);
        row->items = static_cast<int64_t>(result->structure.groups.size());
      }));
  CLASSMINER_RETURN_IF_ERROR(dag->Add(
      "scene", {"group"}, [&options, &ctx, result](util::StageMetrics* row) {
        result->structure.scenes = structure::DetectScenes(
            result->structure.shots, result->structure.groups,
            options.structure.scene, nullptr, ctx);
        row->items = static_cast<int64_t>(result->structure.scenes.size());
      }));
  CLASSMINER_RETURN_IF_ERROR(dag->Add(
      "cluster", {"scene"}, [&options, &ctx, result](util::StageMetrics* row) {
        result->structure.clustered_scenes = structure::ClusterScenes(
            result->structure.shots, result->structure.groups,
            result->structure.scenes, options.structure.cluster, nullptr,
            ctx);
        row->items =
            static_cast<int64_t>(result->structure.clustered_scenes.size());
      }));
  // Visual cues on representative frames — needs shots only, so it runs
  // alongside the whole structure chain under DAG scheduling.
  CLASSMINER_RETURN_IF_ERROR(dag->Add(
      "cues", {"shot"},
      [&video, &options, &ctx, result, optional](util::StageMetrics* row) {
        const std::vector<shot::Shot>& shots = result->structure.shots;
        result->shot_cues.assign(shots.size(), cues::FrameCues{});
        row->items = static_cast<int64_t>(shots.size());
        RunOptionalStage(
            options, ctx, "core.stage.cues", row, &optional->cues,
            [&](const util::ExecutionContext& sctx) {
              result->shot_cues =
                  cues::ExtractShotCues(video, shots, options.cues, sctx);
              return util::Status::Ok();
            });
      }));
  CLASSMINER_RETURN_IF_ERROR(dag->Add(
      "events", {"cluster", "cues", "audio"},
      [&options, &ctx, result, optional](util::StageMetrics* row) {
        RunOptionalStage(
            options, ctx, "core.stage.events", row, &optional->events,
            [&](const util::ExecutionContext&) {
              const size_t shots = result->structure.shots.size();
              if (result->shot_cues.size() != shots ||
                  result->shot_audio.size() != shots) {
                // Upstream defaults guarantee sized inputs; a mismatch
                // means a dependency was skipped entirely.
                return util::Status::FailedPrecondition(
                    "event mining needs per-shot cues and audio");
              }
              const events::EventMiner miner(&result->structure,
                                             &result->shot_cues,
                                             &result->shot_audio,
                                             options.events);
              result->events = miner.MineAllScenes();
              row->items = static_cast<int64_t>(result->events.size());
              return util::Status::Ok();
            });
      }));
  return util::Status();
}

}  // namespace

namespace internal {

void RunOptionalStage(
    const MiningOptions& options, const util::ExecutionContext& ctx,
    const char* site, util::StageMetrics* row, util::Status* slot,
    const std::function<util::Status(const util::ExecutionContext&)>& body) {
  if (options.failure_policy == FailurePolicy::kStrict) {
    util::Status status = util::FailPoint::Check(site);
    // Body exceptions propagate to ExecuteStage's catch, as before.
    if (status.ok()) status = body(ctx);
    if (!status.ok()) ctx.RecordStatus(status);
    return;
  }
  util::StatusSink stage_sink;
  const util::ExecutionContext stage_ctx = ctx.WithSink(&stage_sink);
  util::Status status = util::FailPoint::Check(site);
  if (status.ok()) {
    try {
      status = body(stage_ctx);
    } catch (const std::exception& e) {
      status = util::Status::Internal(
          std::string("optional stage threw: ") + e.what());
    } catch (...) {
      status = util::Status::Internal("optional stage threw a non-std value");
    }
    if (status.ok()) status = stage_sink.Get();
  }
  *slot = status;
  row->status = status;
}

void CollectOptionalFailures(const OptionalStageStatus& optional,
                             MiningResult* result) {
  const auto collect = [result](const char* stage, const util::Status& s) {
    if (s.ok()) return;
    result->degraded = true;
    result->stage_failures.push_back(StageFailure{stage, s});
  };
  collect("audio", optional.audio);
  collect("cues", optional.cues);
  collect("events", optional.events);
  if (result->salvage.salvaged) result->degraded = true;
}

}  // namespace internal

util::Status MineVideoInto(const media::Video& video,
                           const audio::AudioBuffer& audio,
                           const MiningOptions& options,
                           const ExecutionContext& ctx,
                           MiningResult* result) {
  util::StatusSink local_sink;
  const util::ExecutionContext base =
      ctx.status_sink() != nullptr ? ctx : ctx.WithSink(&local_sink);
  // Per-run bump arena for transient feature scratch (frame histogram
  // tables and the like). Stage results always escape by copy into the
  // MiningResult, so nothing arena-backed survives this function.
  util::Arena run_arena;
  const util::ExecutionContext run_ctx =
      base.WithMetrics(&result->metrics).WithArena(&run_arena);

  OptionalStageStatus optional;
  StageDag dag;
  CLASSMINER_RETURN_IF_ERROR(
      BuildMiningDag(video, audio, options, run_ctx, result, &optional, &dag));

  // Snapshot the shared pool's exception counter around the run. Context-
  // routed loops capture exceptions into the sink before they reach the
  // pool, so a positive delta means some raw loop body escaped — its
  // remaining indices were silently skipped, and the result cannot be
  // trusted. With a shared batch pool the delta is conservative: an escape
  // in any concurrent video fails every run that overlapped it.
  const int exceptions_before = run_ctx.pool_exception_count();
  util::Status status = options.scheduling == StageScheduling::kDag
                            ? dag.Run(run_ctx)
                            : dag.RunSequential(run_ctx);
  const int escaped = run_ctx.pool_exception_count() - exceptions_before;
  result->metrics.pool_exceptions = escaped;
  if (status.ok() && escaped > 0) {
    status = util::Status::Internal(
        std::to_string(escaped) +
        " pool task(s) escaped with an exception during mining");
  }

  internal::CollectOptionalFailures(optional, result);
  result->metrics.suppressed_errors = base.status_sink()->suppressed_count();
  return status;
}

util::StatusOr<MiningResult> MineVideo(const media::Video& video,
                                       const audio::AudioBuffer& audio,
                                       const MiningOptions& options) {
  MiningResult result;
  const std::unique_ptr<util::ThreadPool> pool =
      MakePipelinePool(options.thread_count);
  util::StatusSink sink;
  const util::ExecutionContext ctx(pool.get(), nullptr, options.cancel,
                                   &sink);
  CLASSMINER_RETURN_IF_ERROR(
      MineVideoInto(video, audio, options, ctx, &result));
  return result;
}

util::StatusOr<MiningResult> MineVideo(const media::Video& video,
                                       const audio::AudioBuffer& audio) {
  return MineVideo(video, audio, MiningOptions());
}

util::Status BatchMiningResult::FirstError() const {
  for (const util::Status& status : statuses) {
    CLASSMINER_RETURN_IF_ERROR(status);
  }
  return util::Status::Ok();
}

int BatchMiningResult::FailedCount() const {
  int failed = 0;
  for (const util::Status& status : statuses) {
    if (!status.ok()) ++failed;
  }
  return failed;
}

int BatchMiningResult::DegradedCount() const {
  int degraded = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (statuses[i].ok() && results[i].degraded) ++degraded;
  }
  return degraded;
}

util::SalvageReport BatchMiningResult::SalvageTotals() const {
  util::SalvageReport total;
  for (size_t i = 0; i < results.size(); ++i) {
    if (statuses[i].ok()) total.Merge(results[i].salvage);
  }
  return total;
}

BatchMiningResult MineVideosParallelWithStatus(
    const std::vector<MiningInput>& inputs, const MiningOptions& options,
    int threads) {
  BatchMiningResult batch;
  batch.results.resize(inputs.size());
  batch.statuses.resize(inputs.size());
  util::ThreadPool pool(threads > 0 ? threads
                                    : util::ThreadPool::DefaultThreads());
  // Video x stage scheduling: each video's whole DAG runs as one pool task
  // whose stages fan back onto the same pool (the DAG runner helps drain
  // the queue while waiting, so this nesting cannot deadlock). Early videos
  // saturate the pool with their stages; as they drain, later videos' tasks
  // interleave — no thread is pinned to one video and no video is clamped
  // to one thread. Results stay deterministic because each video's DAG and
  // loops are deterministic in isolation and videos share no mutable state.
  util::ParallelFor(&pool, static_cast<int>(inputs.size()), [&](int i) {
    const MiningInput& input = inputs[static_cast<size_t>(i)];
    if (input.video == nullptr || input.audio == nullptr) {
      batch.statuses[static_cast<size_t>(i)] = util::Status::InvalidArgument(
          "batch input " + std::to_string(i) + " has a null video or audio");
      return;
    }
    util::StatusSink sink;
    const util::ExecutionContext ctx(&pool, nullptr, options.cancel, &sink);
    batch.statuses[static_cast<size_t>(i)] =
        MineVideoInto(*input.video, *input.audio, options, ctx,
                      &batch.results[static_cast<size_t>(i)]);
  });
  return batch;
}

util::StatusOr<std::vector<MiningResult>> MineVideosParallel(
    const std::vector<MiningInput>& inputs, const MiningOptions& options,
    int threads) {
  BatchMiningResult batch =
      MineVideosParallelWithStatus(inputs, options, threads);
  CLASSMINER_RETURN_IF_ERROR(batch.FirstError());
  return std::move(batch.results);
}

}  // namespace classminer::core

#include "core/classminer.h"

#include "util/threadpool.h"

namespace classminer::core {

MiningResult MineVideo(const media::Video& video,
                       const audio::AudioBuffer& audio,
                       const MiningOptions& options) {
  MiningResult result;

  // 1. Shot detection + representative frames.
  std::vector<shot::Shot> shots =
      shot::DetectShots(video, options.shot, &result.shot_trace);

  // 2. Per-shot audio analysis (representative clip + MFCC).
  const audio::SpeakerSegmenter segmenter(options.events.segmenter);
  result.shot_audio.reserve(shots.size());
  for (const shot::Shot& s : shots) {
    result.shot_audio.push_back(segmenter.AnalyzeShot(
        audio, s.StartSeconds(video.fps()), s.EndSeconds(video.fps()),
        s.index));
  }

  // 3. Content-structure mining: groups -> scenes -> clustered scenes.
  result.structure =
      structure::MineVideoStructure(std::move(shots), options.structure);

  // 4. Visual cues on representative frames.
  result.shot_cues =
      cues::ExtractShotCues(video, result.structure.shots, options.cues);

  // 5. Event mining over active scenes.
  const events::EventMiner miner(&result.structure, &result.shot_cues,
                                 &result.shot_audio, options.events);
  result.events = miner.MineAllScenes();
  return result;
}

MiningResult MineVideo(const media::Video& video,
                       const audio::AudioBuffer& audio) {
  return MineVideo(video, audio, MiningOptions());
}

std::vector<MiningResult> MineVideosParallel(
    const std::vector<MiningInput>& inputs, const MiningOptions& options,
    int threads) {
  std::vector<MiningResult> results(inputs.size());
  util::ThreadPool pool(threads > 0 ? threads
                                    : util::ThreadPool::DefaultThreads());
  util::ParallelFor(&pool, static_cast<int>(inputs.size()), [&](int i) {
    results[static_cast<size_t>(i)] =
        MineVideo(*inputs[static_cast<size_t>(i)].video,
                  *inputs[static_cast<size_t>(i)].audio, options);
  });
  return results;
}

}  // namespace classminer::core

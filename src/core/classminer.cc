#include "core/classminer.h"

#include <memory>

#include "util/threadpool.h"

namespace classminer::core {
namespace {

// One pool shared by every stage of a MineVideo call (or none for serial
// runs). Stages receive a raw pointer; a null pool runs inline.
std::unique_ptr<util::ThreadPool> MakePipelinePool(int thread_count) {
  if (thread_count <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(thread_count);
}

}  // namespace

MiningResult MineVideo(const media::Video& video,
                       const audio::AudioBuffer& audio,
                       const MiningOptions& options) {
  MiningResult result;
  const std::unique_ptr<util::ThreadPool> pool =
      MakePipelinePool(options.thread_count);
  util::ThreadPool* p = pool.get();
  const int threads = p != nullptr ? p->thread_count() : 1;

  // 1. Shot detection + representative frames.
  std::vector<shot::Shot> shots;
  {
    StageTimer timer(&result.metrics, "shot", threads);
    shots = shot::DetectShots(video, options.shot, &result.shot_trace, p);
    timer.set_items(video.frame_count());
  }

  // 2. Per-shot audio analysis (representative clip + MFCC). Shots are
  // independent, so the pool runs across shots; the per-clip parallelism
  // inside AnalyzeShot stays off (same pool, would self-deadlock).
  {
    StageTimer timer(&result.metrics, "audio", threads);
    const audio::SpeakerSegmenter segmenter(options.events.segmenter);
    result.shot_audio.assign(shots.size(), audio::ShotAudioAnalysis{});
    util::ParallelFor(p, static_cast<int>(shots.size()), [&](int i) {
      const shot::Shot& s = shots[static_cast<size_t>(i)];
      result.shot_audio[static_cast<size_t>(i)] = segmenter.AnalyzeShot(
          audio, s.StartSeconds(video.fps()), s.EndSeconds(video.fps()),
          s.index);
    });
    timer.set_items(static_cast<int64_t>(shots.size()));
  }

  // 3. Content-structure mining, staged for the metrics registry:
  // groups -> scenes -> clustered scenes.
  {
    StageTimer timer(&result.metrics, "group", threads);
    result.structure.shots = std::move(shots);
    result.structure.groups = structure::DetectGroups(
        result.structure.shots, options.structure.group);
    structure::ClassifyGroups(result.structure.shots,
                              &result.structure.groups,
                              options.structure.classify);
    timer.set_items(static_cast<int64_t>(result.structure.groups.size()));
  }
  {
    StageTimer timer(&result.metrics, "scene", threads);
    result.structure.scenes =
        structure::DetectScenes(result.structure.shots,
                                result.structure.groups,
                                options.structure.scene, nullptr, p);
    timer.set_items(static_cast<int64_t>(result.structure.scenes.size()));
  }
  {
    StageTimer timer(&result.metrics, "cluster", threads);
    result.structure.clustered_scenes = structure::ClusterScenes(
        result.structure.shots, result.structure.groups,
        result.structure.scenes, options.structure.cluster, nullptr, p);
    timer.set_items(
        static_cast<int64_t>(result.structure.clustered_scenes.size()));
  }

  // 4. Visual cues on representative frames.
  {
    StageTimer timer(&result.metrics, "cues", threads);
    result.shot_cues = cues::ExtractShotCues(video, result.structure.shots,
                                             options.cues, p);
    timer.set_items(static_cast<int64_t>(result.shot_cues.size()));
  }

  // 5. Event mining over active scenes.
  {
    StageTimer timer(&result.metrics, "events", threads);
    const events::EventMiner miner(&result.structure, &result.shot_cues,
                                   &result.shot_audio, options.events);
    result.events = miner.MineAllScenes();
    timer.set_items(static_cast<int64_t>(result.events.size()));
  }
  return result;
}

MiningResult MineVideo(const media::Video& video,
                       const audio::AudioBuffer& audio) {
  return MineVideo(video, audio, MiningOptions());
}

std::vector<MiningResult> MineVideosParallel(
    const std::vector<MiningInput>& inputs, const MiningOptions& options,
    int threads) {
  std::vector<MiningResult> results(inputs.size());
  util::ThreadPool pool(threads > 0 ? threads
                                    : util::ThreadPool::DefaultThreads());
  // Batch ingest parallelises across videos; each video mines serially
  // inside (nesting on one machine would only oversubscribe cores). A
  // single input keeps its intra-video parallelism. Results are identical
  // either way — see MiningOptions::thread_count.
  MiningOptions per_video = options;
  if (inputs.size() > 1) per_video.thread_count = 1;
  util::ParallelFor(&pool, static_cast<int>(inputs.size()), [&](int i) {
    results[static_cast<size_t>(i)] =
        MineVideo(*inputs[static_cast<size_t>(i)].video,
                  *inputs[static_cast<size_t>(i)].audio, per_video);
  });
  return results;
}

}  // namespace classminer::core

#include "core/repair.h"

#include <utility>

#include "codec/container.h"
#include "core/cmv_pipeline.h"

namespace classminer::core {

index::RemineFn MakeCmvRemineFn(std::string media_dir, MiningOptions options) {
  options.failure_policy = FailurePolicy::kStrict;
  return [media_dir = std::move(media_dir),
          options](const std::string& name)
             -> util::StatusOr<index::ReminedEntry> {
    const std::string path =
        media_dir.empty() ? name + ".cmv" : media_dir + "/" + name + ".cmv";
    util::StatusOr<codec::CmvFile> file = codec::CmvFile::LoadFromFile(path);
    if (!file.ok()) return file.status();
    util::StatusOr<MiningResult> mined = MineCmvFileFast(*file, options);
    if (!mined.ok()) return mined.status();
    if (mined->degraded) {
      return util::Status::DataLoss("re-mine of " + path +
                                    " produced a degraded result");
    }
    index::ReminedEntry entry;
    entry.structure = std::move(mined->structure);
    entry.events = std::move(mined->events);
    return entry;
  };
}

}  // namespace classminer::core

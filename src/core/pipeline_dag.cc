#include "core/pipeline_dag.h"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <utility>

namespace classminer::core {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(elapsed)
      .count();
}

}  // namespace

util::Status StageDag::Add(std::string name, std::vector<std::string> deps,
                           StageFn fn) {
  if (name.empty()) {
    return util::Status::InvalidArgument("stage name must not be empty");
  }
  if (IndexOf(name) >= 0) {
    return util::Status::InvalidArgument("duplicate stage name: " + name);
  }
  Stage stage;
  stage.name = std::move(name);
  stage.fn = std::move(fn);
  for (const std::string& dep : deps) {
    const int d = IndexOf(dep);
    if (d < 0) {
      // Deps must be declared first, which makes declaration order a valid
      // topological order and rules out cycles by construction.
      return util::Status::InvalidArgument("stage '" + stage.name +
                                           "' depends on unknown stage '" +
                                           dep + "'");
    }
    stage.deps.push_back(d);
  }
  const int index = static_cast<int>(stages_.size());
  for (int d : stage.deps) stages_[static_cast<size_t>(d)].dependents.push_back(index);
  stages_.push_back(std::move(stage));
  return util::Status();
}

int StageDag::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> StageDag::DependenciesOf(
    std::string_view name) const {
  std::vector<std::string> out;
  const int i = IndexOf(name);
  if (i < 0) return out;
  for (int d : stages_[static_cast<size_t>(i)].deps) {
    out.push_back(stages_[static_cast<size_t>(d)].name);
  }
  return out;
}

void StageDag::ExecuteStage(const Stage& stage,
                            const util::ExecutionContext& ctx,
                            RowSlot* slot) const {
  if (ctx.cancelled()) return;
  if (ctx.status_sink() != nullptr && !ctx.status_sink()->ok()) return;
  slot->row.name = stage.name;
  slot->row.threads = ctx.thread_count();
  const auto start = std::chrono::steady_clock::now();
  try {
    stage.fn(&slot->row);
  } catch (const std::exception& e) {
    ctx.RecordStatus(util::Status::Internal("stage '" + stage.name +
                                            "' threw: " + e.what()));
  } catch (...) {
    ctx.RecordStatus(util::Status::Internal("stage '" + stage.name +
                                            "' threw a non-std value"));
  }
  slot->row.wall_ms = MsSince(start);
  slot->executed = true;
}

void StageDag::AppendRows(util::PipelineMetrics* metrics,
                          std::vector<RowSlot>* slots) {
  if (metrics == nullptr) return;
  for (RowSlot& slot : *slots) {
    if (slot.executed) metrics->stages.push_back(std::move(slot.row));
  }
}

util::Status StageDag::RunStatus(const util::ExecutionContext& ctx) {
  util::Status status = ctx.status();
  if (!status.ok()) return status;
  if (ctx.cancelled()) return util::Status::Cancelled("pipeline cancelled");
  return util::Status();
}

util::Status StageDag::RunSequential(const util::ExecutionContext& ctx) {
  util::StatusSink local_sink;
  const util::ExecutionContext run_ctx =
      ctx.status_sink() != nullptr ? ctx : ctx.WithSink(&local_sink);
  std::vector<RowSlot> slots(stages_.size());
  for (size_t i = 0; i < stages_.size(); ++i) {
    ExecuteStage(stages_[i], run_ctx, &slots[i]);
  }
  AppendRows(run_ctx.metrics(), &slots);
  return RunStatus(run_ctx);
}

util::Status StageDag::Run(const util::ExecutionContext& ctx) {
  if (ctx.pool() == nullptr || ctx.pool()->thread_count() <= 1) {
    // No concurrency available: DAG order and declaration order coincide.
    return RunSequential(ctx);
  }
  util::StatusSink local_sink;
  const util::ExecutionContext run_ctx =
      ctx.status_sink() != nullptr ? ctx : ctx.WithSink(&local_sink);

  const int n = static_cast<int>(stages_.size());
  std::vector<RowSlot> slots(stages_.size());

  // Per-run scheduling state. `remaining[i]` counts unresolved deps of
  // stage i; a stage is enqueued on the pool the moment it hits zero.
  // Everything is guarded by one mutex — stage bodies dominate the cost,
  // the bookkeeping is a handful of integer ops per stage.
  struct RunState {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<int> remaining;
    int completed = 0;
  } state;
  state.remaining.resize(stages_.size());
  for (size_t i = 0; i < stages_.size(); ++i) {
    state.remaining[i] = static_cast<int>(stages_[i].deps.size());
  }

  // Runs stage i then releases its dependents. Skipped stages (cancelled /
  // failed run) still flow through here so the completion count reaches n
  // and dependents are drained rather than stranded.
  std::function<void(int)> run_stage = [&](int i) {
    ExecuteStage(stages_[static_cast<size_t>(i)], run_ctx,
                 &slots[static_cast<size_t>(i)]);
    std::vector<int> ready;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      for (int d : stages_[static_cast<size_t>(i)].dependents) {
        if (--state.remaining[static_cast<size_t>(d)] == 0) ready.push_back(d);
      }
    }
    for (int d : ready) {
      run_ctx.pool()->Schedule([&run_stage, d] { run_stage(d); });
    }
    // Count completion after the newly-ready stages are queued, so a waiter
    // woken by this notification always finds them in the pool queue.
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      ++state.completed;
      state.cv.notify_all();
    }
  };

  for (int i = 0; i < n; ++i) {
    if (stages_[static_cast<size_t>(i)].deps.empty()) {
      run_ctx.pool()->Schedule([&run_stage, i] { run_stage(i); });
    }
  }

  // Help while waiting (same discipline as util::ParallelFor): execute
  // queued tasks — our stages, their nested parallel-loop chunks, or other
  // videos' work — so calling Run from inside a pool task cannot deadlock.
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    while (state.completed < n) {
      lock.unlock();
      const bool ran = run_ctx.pool()->TryRunOneTask();
      lock.lock();
      if (!ran && state.completed < n) state.cv.wait(lock);
    }
  }

  AppendRows(run_ctx.metrics(), &slots);
  return RunStatus(run_ctx);
}

}  // namespace classminer::core

#ifndef CLASSMINER_CORE_CMV_PIPELINE_H_
#define CLASSMINER_CORE_CMV_PIPELINE_H_

#include "codec/container.h"
#include "codec/encoder.h"
#include "core/classminer.h"
#include "synth/video_generator.h"
#include "util/status.h"

namespace classminer::core {

// Compressed-media entry points: the database at rest stores CMV bitstreams
// (the stand-in for the paper's MPEG-I files); these helpers close the loop
// between the codec substrate and the mining pipeline.

// Encodes a generated video (frames + PCM audio track) into one container.
codec::CmvFile PackGeneratedVideo(const synth::GeneratedVideo& generated,
                                  const codec::EncoderOptions& options);
codec::CmvFile PackGeneratedVideo(const synth::GeneratedVideo& generated);

// Decodes a CMV file and runs the full mining pipeline on it, using the
// embedded audio track when present.
util::StatusOr<MiningResult> MineCmvFile(const codec::CmvFile& file,
                                         const MiningOptions& options);
util::StatusOr<MiningResult> MineCmvFile(const codec::CmvFile& file);

// Compressed-domain fast path: shot spans come from DC-image differences
// without a full decode; only the representative frames are then decoded
// (here: full decode once, feature extraction on rep frames only) before
// structure/cue/event mining. Returns the same MiningResult shape.
util::StatusOr<MiningResult> MineCmvFileFast(const codec::CmvFile& file,
                                             const MiningOptions& options);

}  // namespace classminer::core

#endif  // CLASSMINER_CORE_CMV_PIPELINE_H_

#ifndef CLASSMINER_CORE_PIPELINE_DAG_H_
#define CLASSMINER_CORE_PIPELINE_DAG_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/exec_context.h"
#include "util/pipeline_metrics.h"
#include "util/status.h"

namespace classminer::core {

// ---------------------------------------------------------------------------
// Declarative stage graph for the mining pipeline.
//
// A pipeline is a list of named stages with explicit dependencies; MineVideo
// declares shot -> {audio, group, cues}; group -> scene -> cluster;
// {cluster, cues, audio} -> events, and the CMV fast path adds decode /
// repframe stages. The same graph can execute three ways, all producing
// bit-identical results:
//
//   * serial            — thread_count 1; stages in declaration order, loops
//                         inline (Run degrades to this without a pool);
//   * sequential-stage  — RunSequential(): stages one at a time in
//                         declaration order, each stage's inner loops
//                         parallel on the shared pool;
//   * DAG               — Run(): independent stages execute concurrently as
//                         pool tasks the moment their dependencies resolve,
//                         inner loops still parallel on the same pool.
//
// Determinism holds because dependencies mirror the true data flow (a stage
// reads only outputs of its declared deps), every parallel inner loop writes
// per-index slots with fixed partitioning, and metrics rows are appended in
// declaration order after the run, never in completion order.
//
// Error/cancel semantics: a stage that throws records the first failure into
// the run's status sink; once the sink is non-OK (or the context's
// cancellation token fires) remaining stages are skipped, dependents are
// still released so the run drains, and the first error (or kCancelled) is
// returned. A skipped stage appends no metrics row.
class StageDag {
 public:
  // The stage body receives its metrics row (never null) to set `items`;
  // name/threads/wall_ms are filled by the runner.
  using StageFn = std::function<void(util::StageMetrics*)>;

  // Declares a stage. Every dependency must name an already-added stage, so
  // declaration order is forced to be a valid topological order and cycles
  // cannot be expressed. Duplicate names and unknown deps are errors.
  util::Status Add(std::string name, std::vector<std::string> deps,
                   StageFn fn);

  int size() const { return static_cast<int>(stages_.size()); }
  // Direct dependencies of `name` (empty for roots or unknown names).
  std::vector<std::string> DependenciesOf(std::string_view name) const;

  // Executes the graph with DAG scheduling on ctx.pool(). The calling
  // thread helps drain the pool queue while waiting, so Run may itself be
  // invoked from inside a pool task (the batch miner runs one whole-video
  // DAG per pool task). Falls back to sequential execution without a pool.
  util::Status Run(const util::ExecutionContext& ctx);

  // Executes stages one at a time in declaration order on the calling
  // thread (stage-level serial, inner loops still use ctx.pool()).
  util::Status RunSequential(const util::ExecutionContext& ctx);

 private:
  struct Stage {
    std::string name;
    std::vector<int> deps;        // indices of prerequisite stages
    std::vector<int> dependents;  // stages waiting on this one
    StageFn fn;
  };
  // Per-stage result slot for one run; rows are appended to the registry in
  // declaration order afterwards so concurrent completion cannot reorder
  // the metrics table.
  struct RowSlot {
    util::StageMetrics row;
    bool executed = false;
  };

  int IndexOf(std::string_view name) const;
  // Runs one stage body with timing + exception capture; skips (leaving
  // executed=false) when the context is already cancelled or failed.
  void ExecuteStage(const Stage& stage, const util::ExecutionContext& ctx,
                    RowSlot* slot) const;
  static void AppendRows(util::PipelineMetrics* metrics,
                         std::vector<RowSlot>* slots);
  // Final status of a run: first sink error, else kCancelled if the token
  // fired, else OK.
  static util::Status RunStatus(const util::ExecutionContext& ctx);

  std::vector<Stage> stages_;
};

}  // namespace classminer::core

#endif  // CLASSMINER_CORE_PIPELINE_DAG_H_

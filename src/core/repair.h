#ifndef CLASSMINER_CORE_REPAIR_H_
#define CLASSMINER_CORE_REPAIR_H_

#include <string>

#include "core/classminer.h"
#include "index/repair.h"

namespace classminer::core {

// Builds the re-mine callback the index-layer repair pass injects (core
// owns the mining pipeline, so the callback is constructed here): entry
// `name` maps to the container `<media_dir>/<name>.cmv` (bare `<name>.cmv`
// when media_dir is empty), which is loaded strictly — a damaged source
// cannot seed a pristine entry — and re-mined through the compressed-domain
// fast path. The failure policy is forced to kStrict regardless of
// `options`, so a repaired entry is never itself degraded.
index::RemineFn MakeCmvRemineFn(std::string media_dir,
                                MiningOptions options = {});

}  // namespace classminer::core

#endif  // CLASSMINER_CORE_REPAIR_H_

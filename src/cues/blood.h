#ifndef CLASSMINER_CUES_BLOOD_H_
#define CLASSMINER_CUES_BLOOD_H_

#include "cues/skin.h"

namespace classminer::cues {

// Blood-red chroma model: deeply saturated reds (r-fraction well above the
// skin cluster), used for surgical-footage detection (paper Sec. 4.1).
ChromaGaussian DefaultBloodModel();

// Blood segmentation reuses the skin pipeline with the blood model and a
// looser texture filter (wet tissue is specular and noisy).
SkinDetection DetectBlood(const media::Image& image,
                          const ChromaGaussian& model,
                          const SkinDetectorOptions& options);
SkinDetection DetectBlood(const media::Image& image);

}  // namespace classminer::cues

#endif  // CLASSMINER_CUES_BLOOD_H_

#include "cues/skin.h"

#include <algorithm>
#include <cmath>

#include "media/color.h"
#include "media/morphology.h"

namespace classminer::cues {

double ChromaGaussian::MahalanobisSquared(double r, double g) const {
  const double dr = r - mean_r;
  const double dg = g - mean_g;
  const double det = var_r * var_g - cov_rg * cov_rg;
  if (det <= 1e-12) {
    return (dr * dr) / std::max(var_r, 1e-9) +
           (dg * dg) / std::max(var_g, 1e-9);
  }
  return (var_g * dr * dr - 2.0 * cov_rg * dr * dg + var_r * dg * dg) / det;
}

bool ChromaGaussian::Accepts(media::Rgb pixel) const {
  const double total = static_cast<double>(pixel.r) + pixel.g + pixel.b;
  if (total < 1.0) return false;
  const double luma = media::Luma(pixel);
  if (luma < min_luma || luma > max_luma) return false;
  const double r = pixel.r / total;
  const double g = pixel.g / total;
  return MahalanobisSquared(r, g) <= gate * gate;
}

ChromaGaussian DefaultSkinModel() {
  ChromaGaussian m;
  // Photographic skin tones cluster near (r, g) = (0.44, 0.31); variances
  // chosen wide enough to span pale-to-dark tones without absorbing
  // saturated reds (blood) or neutrals.
  m.mean_r = 0.44;
  m.mean_g = 0.31;
  m.var_r = 0.0020;
  m.var_g = 0.0010;
  m.cov_rg = -0.0005;
  m.gate = 2.0;
  m.min_luma = 60.0;
  m.max_luma = 245.0;
  return m;
}

SkinDetection DetectSkin(const media::Image& image,
                         const ChromaGaussian& model,
                         const SkinDetectorOptions& options) {
  SkinDetection out;
  const int w = image.width();
  const int h = image.height();
  out.mask = media::GrayImage(w, h);
  if (image.empty()) return out;

  const media::GrayImage gray = media::ToGray(image);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (!model.Accepts(image.at(x, y))) continue;
      // Texture filter: skin is locally smooth.
      if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
        const int gx = std::abs(static_cast<int>(gray.at(x + 1, y)) -
                                gray.at(x - 1, y));
        const int gy = std::abs(static_cast<int>(gray.at(x, y + 1)) -
                                gray.at(x, y - 1));
        if (gx + gy > options.texture_gradient_limit) continue;
      }
      out.mask.set(x, y, 255);
    }
  }

  out.mask = media::Close(media::Open(out.mask, options.morphology_radius),
                          options.morphology_radius);
  out.coverage = out.mask.CoverageFraction();

  const std::vector<media::Region> all =
      media::ConnectedComponents(out.mask, options.min_region_area);
  out.regions =
      media::FilterBySize(all, w, h, options.min_region_side_frac);
  for (const media::Region& r : out.regions) {
    out.max_region_fraction =
        std::max(out.max_region_fraction, r.AreaFraction(w, h));
  }
  return out;
}

SkinDetection DetectSkin(const media::Image& image) {
  return DetectSkin(image, DefaultSkinModel(), SkinDetectorOptions());
}

}  // namespace classminer::cues

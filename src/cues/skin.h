#ifndef CLASSMINER_CUES_SKIN_H_
#define CLASSMINER_CUES_SKIN_H_

#include <vector>

#include "media/image.h"
#include "media/region.h"

namespace classminer::cues {

// Gaussian chroma model in normalised-rg space (paper Sec. 4.1: "Gaussian
// models are first utilized to segment the skin and blood-red regions").
// x = (r, g) with r = R/(R+G+B), g = G/(R+G+B); a pixel belongs to the
// class when its Mahalanobis distance to the model mean is below the gate.
struct ChromaGaussian {
  double mean_r = 0.0;
  double mean_g = 0.0;
  double var_r = 1.0;
  double var_g = 1.0;
  double cov_rg = 0.0;
  double gate = 2.5;           // Mahalanobis acceptance radius
  double min_luma = 40.0;      // reject very dark pixels
  double max_luma = 250.0;

  double MahalanobisSquared(double r, double g) const;
  bool Accepts(media::Rgb pixel) const;
};

// Default skin-tone model (broad; covers the synthetic corpus's tones and
// typical photographic skin chroma).
ChromaGaussian DefaultSkinModel();

struct SkinDetection {
  media::GrayImage mask;               // cleaned binary mask
  std::vector<media::Region> regions;  // size-filtered components
  double coverage = 0.0;               // mask fraction of the frame
  double max_region_fraction = 0.0;    // largest region area / frame area
};

struct SkinDetectorOptions {
  // Texture filter (Sec. 4.1): skin is smooth, so high-gradient pixels are
  // removed from the mask before morphology.
  int texture_gradient_limit = 40;
  int morphology_radius = 1;
  double min_region_side_frac = 0.08;  // "considerable width and height"
  int min_region_area = 24;
};

// Segments skin-like regions with model -> texture filter -> morphological
// open/close -> connected components -> shape filtering.
SkinDetection DetectSkin(const media::Image& image,
                         const ChromaGaussian& model,
                         const SkinDetectorOptions& options);
SkinDetection DetectSkin(const media::Image& image);

}  // namespace classminer::cues

#endif  // CLASSMINER_CUES_SKIN_H_

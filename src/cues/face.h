#ifndef CLASSMINER_CUES_FACE_H_
#define CLASSMINER_CUES_FACE_H_

#include <vector>

#include "cues/skin.h"
#include "media/image.h"
#include "media/region.h"

namespace classminer::cues {

// A verified face: its skin-candidate region plus verification scores.
struct Face {
  media::Region region;
  double area_fraction = 0.0;  // of the whole frame
  double profile_score = 0.0;  // template-curve verification score
};

struct FaceDetectorOptions {
  // Shape analysis on candidate skin regions.
  double min_aspect = 0.5;   // width / height
  double max_aspect = 1.6;
  double min_solidity = 0.45;  // faces are roughly elliptical (~pi/4)
  double max_solidity = 0.98;
  // Template-curve verification acceptance.
  double min_profile_score = 0.30;
  // Close-up definition (paper Sec. 4.3): face >= 10 % of the frame.
  double closeup_fraction = 0.10;
};

struct FaceDetection {
  std::vector<Face> faces;
  bool has_face = false;
  bool has_closeup = false;
  double max_face_fraction = 0.0;
};

// Template-curve face verification (paper Sec. 4.1 / [20]): the vertical
// luma profile of a face shows dark valleys at the eye band (~40 % height)
// and mouth band (~75 %) relative to forehead/cheek bands. Returns a score
// in [0, 1]; exposed for tests.
double FaceProfileScore(const media::Image& image,
                        const media::Region& region);

// Detects faces: skin segmentation -> shape analysis -> template-curve
// verification of each candidate region.
FaceDetection DetectFaces(const media::Image& image,
                          const FaceDetectorOptions& options);
FaceDetection DetectFaces(const media::Image& image);

}  // namespace classminer::cues

#endif  // CLASSMINER_CUES_FACE_H_

#ifndef CLASSMINER_CUES_CUE_EXTRACTOR_H_
#define CLASSMINER_CUES_CUE_EXTRACTOR_H_

#include <vector>

#include "codec/frame_source.h"
#include "cues/blood.h"
#include "cues/face.h"
#include "cues/skin.h"
#include "cues/special_frames.h"
#include "media/video.h"
#include "shot/shot.h"
#include "util/exec_context.h"

namespace classminer::cues {

// All visual cues of one representative frame (paper Sec. 4.1): special
// frame class, faces, skin and blood-red regions, with the close-up
// predicates used by the event rules (Sec. 4.3).
struct FrameCues {
  SpecialFrameType special = SpecialFrameType::kNone;
  bool has_face = false;
  bool face_closeup = false;        // face >= 10 % of the frame
  double max_face_fraction = 0.0;
  bool has_skin_region = false;
  bool skin_closeup = false;        // skin region >= 20 % of the frame
  double max_skin_fraction = 0.0;
  bool has_blood = false;
  double max_blood_fraction = 0.0;

  bool IsSlideOrClipArt() const {
    return special == SpecialFrameType::kSlide ||
           special == SpecialFrameType::kClipArt;
  }
};

struct CueExtractorOptions {
  SpecialFrameOptions special{};
  FaceDetectorOptions face{};
  double skin_closeup_fraction = 0.20;  // paper: skin region > 20 %
};

// Extracts every cue family from one frame.
FrameCues ExtractFrameCues(const media::Image& frame,
                           const CueExtractorOptions& options);
FrameCues ExtractFrameCues(const media::Image& frame);

// Extracts cues for each shot's representative frame. The context's pool
// runs shots in parallel (independent output slots; bit-identical).
std::vector<FrameCues> ExtractShotCues(const media::Video& video,
                                       const std::vector<shot::Shot>& shots,
                                       const CueExtractorOptions& options,
                                       const util::ExecutionContext& ctx = {});
std::vector<FrameCues> ExtractShotCues(const media::Video& video,
                                       const std::vector<shot::Shot>& shots);

// Selective-decode variant: pulls each shot's representative frame through
// `source` (decoding only the touched GOPs) instead of a fully decoded
// video. Cue output is bit-identical to the full-decode overload. The first
// per-shot frame failure in shot order is returned.
util::StatusOr<std::vector<FrameCues>> ExtractShotCues(
    codec::FrameSource* source, const std::vector<shot::Shot>& shots,
    const CueExtractorOptions& options,
    const util::ExecutionContext& ctx = {});

}  // namespace classminer::cues

#endif  // CLASSMINER_CUES_CUE_EXTRACTOR_H_

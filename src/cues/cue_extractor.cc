#include "cues/cue_extractor.h"

namespace classminer::cues {

FrameCues ExtractFrameCues(const media::Image& frame,
                           const CueExtractorOptions& options) {
  FrameCues cues;
  cues.special = ClassifySpecialFrame(frame, options.special);

  // Man-made frames carry no people/tissue; skip the region detectors.
  if (cues.special != SpecialFrameType::kNone) return cues;

  const FaceDetection faces = DetectFaces(frame, options.face);
  cues.has_face = faces.has_face;
  cues.face_closeup = faces.has_closeup;
  cues.max_face_fraction = faces.max_face_fraction;

  const SkinDetection skin = DetectSkin(frame);
  cues.has_skin_region = !skin.regions.empty();
  cues.max_skin_fraction = skin.max_region_fraction;
  cues.skin_closeup =
      skin.max_region_fraction >= options.skin_closeup_fraction;

  const SkinDetection blood = DetectBlood(frame);
  cues.has_blood = !blood.regions.empty();
  cues.max_blood_fraction = blood.max_region_fraction;
  return cues;
}

FrameCues ExtractFrameCues(const media::Image& frame) {
  return ExtractFrameCues(frame, CueExtractorOptions());
}

std::vector<FrameCues> ExtractShotCues(const media::Video& video,
                                       const std::vector<shot::Shot>& shots,
                                       const CueExtractorOptions& options,
                                       const util::ExecutionContext& ctx) {
  std::vector<FrameCues> out(shots.size());
  util::ParallelFor(
      ctx, static_cast<int>(shots.size()),
      [&](int i) {
        const shot::Shot& s = shots[static_cast<size_t>(i)];
        if (s.rep_frame >= 0 && s.rep_frame < video.frame_count()) {
          out[static_cast<size_t>(i)] =
              ExtractFrameCues(video.frame(s.rep_frame), options);
        }
      },
      /*grain=*/2);
  return out;
}

std::vector<FrameCues> ExtractShotCues(const media::Video& video,
                                       const std::vector<shot::Shot>& shots) {
  return ExtractShotCues(video, shots, CueExtractorOptions());
}

util::StatusOr<std::vector<FrameCues>> ExtractShotCues(
    codec::FrameSource* source, const std::vector<shot::Shot>& shots,
    const CueExtractorOptions& options, const util::ExecutionContext& ctx) {
  std::vector<FrameCues> out(shots.size());
  std::vector<util::Status> statuses(shots.size());
  util::ParallelFor(
      ctx, static_cast<int>(shots.size()),
      [&](int i) {
        const shot::Shot& s = shots[static_cast<size_t>(i)];
        if (s.rep_frame >= 0 && s.rep_frame < source->frame_count()) {
          util::StatusOr<codec::FrameHandle> frame =
              source->GetFrame(s.rep_frame);
          if (!frame.ok()) {
            statuses[static_cast<size_t>(i)] = frame.status();
            return;
          }
          out[static_cast<size_t>(i)] =
              ExtractFrameCues(frame->image(), options);
        }
      },
      /*grain=*/2);
  for (const util::Status& status : statuses) {
    CLASSMINER_RETURN_IF_ERROR(status);
  }
  return out;
}

}  // namespace classminer::cues

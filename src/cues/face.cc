#include "cues/face.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "media/color.h"

namespace classminer::cues {

double FaceProfileScore(const media::Image& image,
                        const media::Region& region) {
  const int rh = region.height();
  const int rw = region.width();
  if (rh < 10 || rw < 6) return 0.0;

  // Vertical luma profile: mean luma of each row inside the bounding box.
  std::vector<double> profile(static_cast<size_t>(rh), 0.0);
  for (int y = 0; y < rh; ++y) {
    double acc = 0.0;
    for (int x = 0; x < rw; ++x) {
      acc += media::Luma(image.at(region.min_x + x, region.min_y + y));
    }
    profile[static_cast<size_t>(y)] = acc / rw;
  }

  auto band_mean = [&profile, rh](double lo, double hi) {
    const int a = std::clamp(static_cast<int>(lo * rh), 0, rh - 1);
    const int b = std::clamp(static_cast<int>(hi * rh), a + 1, rh);
    double acc = 0.0;
    for (int y = a; y < b; ++y) acc += profile[static_cast<size_t>(y)];
    return acc / (b - a);
  };

  // Template curve: bright forehead (10-28 %), dark eye band (32-50 %),
  // bright cheeks (52-66 %), dark mouth band (70-85 %).
  const double forehead = band_mean(0.10, 0.28);
  const double eyes = band_mean(0.32, 0.50);
  const double cheeks = band_mean(0.52, 0.66);
  const double mouth = band_mean(0.70, 0.85);

  const double eye_valley = (forehead - eyes) + (cheeks - eyes);
  const double mouth_valley = cheeks - mouth;
  if (eye_valley <= 0.0 || mouth_valley <= 0.0) return 0.0;

  // Normalise valley depths by the overall face brightness scale.
  const double scale = std::max(forehead, cheeks);
  if (scale < 1.0) return 0.0;
  const double score =
      0.7 * std::min(1.0, eye_valley / (0.25 * scale)) +
      0.3 * std::min(1.0, mouth_valley / (0.15 * scale));
  return std::clamp(score, 0.0, 1.0);
}

FaceDetection DetectFaces(const media::Image& image,
                          const FaceDetectorOptions& options) {
  FaceDetection out;
  const SkinDetection skin = DetectSkin(image);
  for (const media::Region& region : skin.regions) {
    const double aspect = region.AspectRatio();
    const double solidity = region.Solidity();
    if (aspect < options.min_aspect || aspect > options.max_aspect) continue;
    if (solidity < options.min_solidity || solidity > options.max_solidity) {
      continue;
    }
    const double score = FaceProfileScore(image, region);
    if (score < options.min_profile_score) continue;

    Face face;
    face.region = region;
    face.area_fraction = region.AreaFraction(image.width(), image.height());
    face.profile_score = score;
    out.faces.push_back(face);
    out.max_face_fraction =
        std::max(out.max_face_fraction, face.area_fraction);
  }
  out.has_face = !out.faces.empty();
  out.has_closeup = out.max_face_fraction >= options.closeup_fraction;
  return out;
}

FaceDetection DetectFaces(const media::Image& image) {
  return DetectFaces(image, FaceDetectorOptions());
}

}  // namespace classminer::cues

#include "cues/blood.h"

namespace classminer::cues {

ChromaGaussian DefaultBloodModel() {
  ChromaGaussian m;
  // Blood reds: r-fraction ~0.6+, green suppressed.
  m.mean_r = 0.62;
  m.mean_g = 0.20;
  m.var_r = 0.0035;
  m.var_g = 0.0018;
  m.cov_rg = -0.0008;
  m.gate = 2.0;
  m.min_luma = 30.0;
  m.max_luma = 220.0;
  return m;
}

SkinDetection DetectBlood(const media::Image& image,
                          const ChromaGaussian& model,
                          const SkinDetectorOptions& options) {
  return DetectSkin(image, model, options);
}

SkinDetection DetectBlood(const media::Image& image) {
  SkinDetectorOptions options;
  options.texture_gradient_limit = 90;  // wet tissue is specular/noisy
  options.min_region_side_frac = 0.05;
  return DetectSkin(image, DefaultBloodModel(), options);
}

}  // namespace classminer::cues

#ifndef CLASSMINER_CUES_SPECIAL_FRAMES_H_
#define CLASSMINER_CUES_SPECIAL_FRAMES_H_

#include "media/image.h"

namespace classminer::cues {

// Man-made frame classes detected among representative frames (paper
// Sec. 4.1, Fig. 9). Natural camera frames classify as kNone.
enum class SpecialFrameType {
  kNone = 0,
  kBlack,
  kSlide,    // presentation slide: uniform background + text lines
  kClipArt,  // few flat saturated colours, little texture
  kSketch,   // bright background + thin dark line drawing
};

const char* SpecialFrameTypeName(SpecialFrameType type);

// Frame statistics driving the classification; exposed for tests and for
// the slide/clip-art discrimination rules ("video text and gray
// information", Sec. 4.1).
struct FrameStats {
  double mean_luma = 0.0;       // [0, 255]
  double luma_stddev = 0.0;
  double dominant_color = 0.0;  // mass of the largest quantised colour bin
  int distinct_colors = 0;      // quantised bins holding > 0.5 % of pixels
  double mean_saturation = 0.0;
  double saturated_fraction = 0.0;  // pixels with s > 0.3 and v > 0.2
  double edge_density = 0.0;    // fraction of strong-gradient pixels
  double noise_level = 0.0;     // mean |luma - 3x3 local mean|
  double flat_fraction = 0.0;   // pixels with |luma - 3x3 mean| < 1
  double luma_entropy = 0.0;    // 16-bin luma entropy, normalised to [0,1]
  double text_row_score = 0.0;  // fraction of rows with text-like runs
};

FrameStats ComputeFrameStats(const media::Image& image);

struct SpecialFrameOptions {
  double black_max_luma = 40.0;
  double black_max_stddev = 20.0;
  // A frame counts as man-made when most pixels are perfectly flat (camera
  // frames carry sensor noise in every pixel) and the palette is limited.
  // Compression smooths sensor noise, so the flatness cue is backed by a
  // luma-entropy cue: rendered frames concentrate luma in few levels while
  // natural gradients stay spread out even after coarse quantisation.
  double manmade_min_flat = 0.55;
  double manmade_max_luma_entropy = 0.55;
  int manmade_max_colors = 24;
  double slide_min_text_rows = 0.08;
  double sketch_max_saturation = 0.15;
};

SpecialFrameType ClassifySpecialFrame(const media::Image& image,
                                      const SpecialFrameOptions& options);
SpecialFrameType ClassifySpecialFrame(const media::Image& image);

}  // namespace classminer::cues

#endif  // CLASSMINER_CUES_SPECIAL_FRAMES_H_

#include "cues/special_frames.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "features/histogram.h"
#include "media/color.h"

namespace classminer::cues {

const char* SpecialFrameTypeName(SpecialFrameType type) {
  switch (type) {
    case SpecialFrameType::kNone:
      return "none";
    case SpecialFrameType::kBlack:
      return "black";
    case SpecialFrameType::kSlide:
      return "slide";
    case SpecialFrameType::kClipArt:
      return "clipart";
    case SpecialFrameType::kSketch:
      return "sketch";
  }
  return "unknown";
}

FrameStats ComputeFrameStats(const media::Image& image) {
  FrameStats stats;
  if (image.empty()) return stats;
  const int w = image.width();
  const int h = image.height();
  const double total = static_cast<double>(image.pixel_count());

  const media::GrayImage gray = media::ToGray(image);

  // Luma moments and 16-bin luma entropy.
  double sum = 0.0, sum_sq = 0.0;
  double luma_hist[16] = {0.0};
  for (uint8_t v : gray.pixels()) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
    luma_hist[v >> 4] += 1.0;
  }
  stats.mean_luma = sum / total;
  stats.luma_stddev =
      std::sqrt(std::max(0.0, sum_sq / total - stats.mean_luma * stats.mean_luma));
  double entropy = 0.0;
  for (double b : luma_hist) {
    if (b <= 0.0) continue;
    const double p = b / total;
    entropy -= p * std::log(p);
  }
  stats.luma_entropy = entropy / std::log(16.0);

  // Quantised colour distribution.
  const features::ColorHistogram hist =
      features::ComputeColorHistogram(image);
  double dominant = 0.0;
  int distinct = 0;
  for (double b : hist) {
    dominant = std::max(dominant, b);
    if (b > 0.005) ++distinct;
  }
  stats.dominant_color = dominant;
  stats.distinct_colors = distinct;

  // Saturation.
  double sat = 0.0;
  int saturated = 0;
  for (const media::Rgb& p : image.pixels()) {
    const media::Hsv hsv = media::RgbToHsv(p);
    sat += hsv.s;
    if (hsv.s > 0.3 && hsv.v > 0.2) ++saturated;
  }
  stats.mean_saturation = sat / total;
  stats.saturated_fraction = static_cast<double>(saturated) / total;

  // Edge density and local noise.
  int strong_edges = 0;
  double noise_acc = 0.0;
  int flat_pixels = 0;
  int noise_count = 0;
  for (int y = 1; y < h - 1; ++y) {
    for (int x = 1; x < w - 1; ++x) {
      const int gx = std::abs(static_cast<int>(gray.at(x + 1, y)) -
                              gray.at(x - 1, y));
      const int gy = std::abs(static_cast<int>(gray.at(x, y + 1)) -
                              gray.at(x, y - 1));
      if (gx + gy > 60) ++strong_edges;
      // Local mean over the 3x3 neighbourhood.
      int acc = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) acc += gray.at(x + dx, y + dy);
      }
      const double dev =
          std::fabs(static_cast<double>(gray.at(x, y)) - acc / 9.0);
      noise_acc += dev;
      if (dev < 1.0) ++flat_pixels;
      ++noise_count;
    }
  }
  if (noise_count > 0) {
    stats.edge_density = static_cast<double>(strong_edges) / noise_count;
    stats.noise_level = noise_acc / noise_count;
    stats.flat_fraction = static_cast<double>(flat_pixels) / noise_count;
  }

  // Text-like rows: rows whose count of strong horizontal transitions falls
  // in the range produced by rendered text (many short dark runs on a
  // uniform background).
  int text_rows = 0;
  for (int y = 0; y < h; ++y) {
    int transitions = 0;
    for (int x = 1; x < w; ++x) {
      const int d = std::abs(static_cast<int>(gray.at(x, y)) -
                             gray.at(x - 1, y));
      if (d > 50) ++transitions;
    }
    if (transitions >= 6 && transitions <= w / 2) ++text_rows;
  }
  stats.text_row_score = h > 0 ? static_cast<double>(text_rows) / h : 0.0;
  return stats;
}

SpecialFrameType ClassifySpecialFrame(const media::Image& image,
                                      const SpecialFrameOptions& options) {
  const FrameStats s = ComputeFrameStats(image);

  if (s.mean_luma < options.black_max_luma &&
      s.luma_stddev < options.black_max_stddev) {
    return SpecialFrameType::kBlack;
  }

  // Man-made gate, two routes:
  //  (a) pristine renders: most pixels perfectly flat with a limited
  //      palette (camera frames carry sensor noise in every pixel);
  //  (b) compressed renders: quantisation ringing destroys flatness, but
  //      a bright, desaturated frame with luma concentrated in few levels
  //      is still a rendered page, never a camera frame.
  const bool pristine = s.flat_fraction > options.manmade_min_flat &&
                        s.luma_entropy < options.manmade_max_luma_entropy &&
                        s.distinct_colors <= options.manmade_max_colors &&
                        s.dominant_color > 0.30;
  const bool compressed_render = s.luma_entropy < 0.52 &&
                                 s.mean_luma > 160.0 &&
                                 s.mean_saturation < 0.25;
  const bool man_made = pristine || compressed_render;
  if (!man_made) return SpecialFrameType::kNone;

  // Sketch first: a line drawing on a bright background with essentially
  // no saturated ink anywhere. The saturated-fraction guard keeps slides
  // (coloured title bars) and clip-art (coloured fills) out, while the
  // line strokes themselves would otherwise read as text rows.
  if (s.mean_saturation < options.sketch_max_saturation &&
      s.saturated_fraction < 0.03 && s.mean_luma > 120.0 &&
      s.edge_density > 0.01) {
    return SpecialFrameType::kSketch;
  }
  // Slide: text rows over a uniform background.
  if (s.text_row_score > options.slide_min_text_rows) {
    return SpecialFrameType::kSlide;
  }
  return SpecialFrameType::kClipArt;
}

SpecialFrameType ClassifySpecialFrame(const media::Image& image) {
  return ClassifySpecialFrame(image, SpecialFrameOptions());
}

}  // namespace classminer::cues

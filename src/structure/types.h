#ifndef CLASSMINER_STRUCTURE_TYPES_H_
#define CLASSMINER_STRUCTURE_TYPES_H_

#include <vector>

#include "shot/shot.h"

namespace classminer::structure {

// A cluster of visually similar shots inside one group (Sec. 3.2.1).
struct ShotCluster {
  std::vector<int> shot_indices;  // global shot indices
  int rep_shot = -1;              // representative shot (Eq. 7 rules)
};

// A video group (Definition 2): a contiguous run of spatially or
// temporally related shots.
struct Group {
  int index = 0;
  int start_shot = 0;
  int end_shot = 0;  // inclusive global shot index
  // Temporally related groups contain >1 internal shot cluster (similar
  // shots alternating over time); spatially related groups are one cluster.
  bool temporally_related = false;
  std::vector<ShotCluster> clusters;
  std::vector<int> rep_shots;  // one representative shot per cluster

  int shot_count() const { return end_shot - start_shot + 1; }
  std::vector<int> ShotIndices() const {
    std::vector<int> out;
    out.reserve(static_cast<size_t>(shot_count()));
    for (int s = start_shot; s <= end_shot; ++s) out.push_back(s);
    return out;
  }
};

// A video scene (Definition 2): semantically related, temporally adjacent
// groups. Scenes hold a contiguous range of group indices.
struct Scene {
  int index = 0;
  int start_group = 0;
  int end_group = 0;  // inclusive index into the group vector
  int rep_group = -1;
  // Scenes with fewer than 3 shots are eliminated from the content table
  // (Sec. 3.4 step 4) but retained here for accounting.
  bool eliminated = false;

  int group_count() const { return end_group - start_group + 1; }
};

// A clustered scene (Definition 2): visually similar scenes shown in
// various places of the video, merged by the PCS clustering (Sec. 3.5).
struct SceneCluster {
  std::vector<int> scene_indices;  // indices of member (non-eliminated) scenes
  int rep_group = -1;              // centroid: representative group
};

// The mined video content structure (Definition 1): shots -> groups ->
// scenes -> clustered scenes, in increasing granularity top-down.
struct ContentStructure {
  std::vector<shot::Shot> shots;
  std::vector<Group> groups;
  std::vector<Scene> scenes;
  std::vector<SceneCluster> clustered_scenes;

  int ActiveSceneCount() const;
  int ShotCountOfScene(const Scene& scene) const;
  std::vector<int> ShotIndicesOfScene(const Scene& scene) const;

  // Compression-rate factor (Eq. 21): detected (active) scenes / shots.
  double CompressionRateFactor() const;
};

}  // namespace classminer::structure

#endif  // CLASSMINER_STRUCTURE_TYPES_H_

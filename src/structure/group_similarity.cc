#include "structure/group_similarity.h"

#include <algorithm>

namespace classminer::structure {

double StGpSim(const std::vector<shot::Shot>& shots, int shot_index,
               std::span<const int> group_shots,
               const features::StSimWeights& weights) {
  // Degenerate inputs (bad index, empty group) read as "no similarity"
  // rather than faulting — callers feed detector output that can contain
  // empty spans for pathological videos.
  if (shot_index < 0 || shot_index >= static_cast<int>(shots.size()) ||
      group_shots.empty()) {
    return 0.0;
  }
  double best = 0.0;
  const features::ShotFeatures& f =
      shots[static_cast<size_t>(shot_index)].features;
  for (int k : group_shots) {
    best = std::max(best, features::StSim(
                              f, shots[static_cast<size_t>(k)].features,
                              weights));
  }
  return best;
}

double GpSim(const std::vector<shot::Shot>& shots,
             std::span<const int> group_a, std::span<const int> group_b,
             const features::StSimWeights& weights) {
  if (group_a.empty() || group_b.empty()) return 0.0;
  // Benchmark = smaller group (ties: the first argument).
  std::span<const int> bench = group_a;
  std::span<const int> other = group_b;
  if (group_b.size() < group_a.size()) std::swap(bench, other);

  double acc = 0.0;
  for (int s : bench) acc += StGpSim(shots, s, other, weights);
  return acc / static_cast<double>(bench.size());
}

double GpSim(const std::vector<shot::Shot>& shots, const Group& a,
             const Group& b, const features::StSimWeights& weights) {
  const std::vector<int> sa = a.ShotIndices();
  const std::vector<int> sb = b.ShotIndices();
  return GpSim(shots, sa, sb, weights);
}

}  // namespace classminer::structure

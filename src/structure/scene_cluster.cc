#include "structure/scene_cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "structure/group_similarity.h"
#include "structure/scene_detector.h"

namespace classminer::structure {
namespace {

// All member group indices of a cluster (union over member scenes).
std::vector<int> ClusterGroups(const SceneCluster& cluster,
                               const std::vector<Scene>& scenes) {
  std::vector<int> members;
  for (int si : cluster.scene_indices) {
    const Scene& scene = scenes[static_cast<size_t>(si)];
    for (int g = scene.start_group; g <= scene.end_group; ++g) {
      members.push_back(g);
    }
  }
  return members;
}

double RepSim(const std::vector<shot::Shot>& shots,
              const std::vector<Group>& groups, int rep_a, int rep_b,
              const features::StSimWeights& weights) {
  if (rep_a < 0 || rep_b < 0) return 0.0;
  return GpSim(shots, groups[static_cast<size_t>(rep_a)],
               groups[static_cast<size_t>(rep_b)], weights);
}

}  // namespace

double ClusterValidity(const std::vector<shot::Shot>& shots,
                       const std::vector<Group>& groups,
                       const std::vector<SceneCluster>& clusters,
                       const std::vector<Scene>& scenes,
                       const features::StSimWeights& weights) {
  const size_t n = clusters.size();
  if (n < 2) return std::numeric_limits<double>::max();

  // Intra-cluster distances (Eq. 15): mean 1 - GpSim(centroid, member).
  std::vector<double> intra(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const SceneCluster& c = clusters[i];
    if (c.scene_indices.size() < 2) continue;  // singleton: distance 0
    double acc = 0.0;
    for (int si : c.scene_indices) {
      const Scene& scene = scenes[static_cast<size_t>(si)];
      acc += 1.0 - RepSim(shots, groups, c.rep_group, scene.rep_group,
                          weights);
    }
    intra[i] = acc / static_cast<double>(c.scene_indices.size());
  }

  // rho (Eq. 14, reconstructed as the Davies-Bouldin index): mean over
  // clusters of the worst (largest) pairwise ratio (s_i + s_j) / xi_ij.
  // Intra distances are floored at a small epsilon so a pair of singleton
  // clusters with near-identical centroids (xi ~ 0) is correctly read as
  // "should have been merged" instead of free separation.
  constexpr double kIntraFloor = 0.01;
  double rho = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double worst = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double inter = std::max(
          1e-6, 1.0 - RepSim(shots, groups, clusters[i].rep_group,
                             clusters[j].rep_group, weights));
      const double ratio = (std::max(intra[i], kIntraFloor) +
                            std::max(intra[j], kIntraFloor)) /
                           inter;
      worst = std::max(worst, ratio);
    }
    rho += worst;
  }
  return rho / static_cast<double>(n);
}

std::vector<SceneCluster> ClusterScenes(const std::vector<shot::Shot>& shots,
                                        const std::vector<Group>& groups,
                                        const std::vector<Scene>& scenes,
                                        const SceneClusterOptions& options,
                                        SceneClusterTrace* trace) {
  // Start from singleton clusters over active scenes.
  std::vector<SceneCluster> clusters;
  for (const Scene& scene : scenes) {
    if (scene.eliminated) continue;
    SceneCluster c;
    c.scene_indices.push_back(scene.index);
    c.rep_group = scene.rep_group;
    clusters.push_back(std::move(c));
  }
  const int m = static_cast<int>(clusters.size());
  if (m <= 1) return clusters;

  int c_min, c_max;
  if (options.fixed_clusters > 0) {
    c_min = c_max = std::clamp(options.fixed_clusters, 1, m);
  } else {
    c_min = std::max(1, static_cast<int>(std::floor(m * options.min_fraction)));
    c_max = std::max(c_min,
                     static_cast<int>(std::floor(m * options.max_fraction)));
    c_max = std::min(c_max, m);
  }

  std::vector<SceneCluster> best_state;
  double best_validity = std::numeric_limits<double>::max();
  int best_n = m;

  auto consider_state = [&](const std::vector<SceneCluster>& state) {
    const int n = static_cast<int>(state.size());
    if (n < c_min || n > c_max) return;
    const double rho =
        options.fixed_clusters > 0
            ? 0.0
            : ClusterValidity(shots, groups, state, scenes, options.weights);
    if (trace != nullptr) {
      trace->candidates.push_back(n);
      trace->validity.push_back(rho);
    }
    if (rho < best_validity ||
        (options.fixed_clusters > 0 && n == options.fixed_clusters)) {
      best_validity = rho;
      best_state = state;
      best_n = n;
    }
  };

  consider_state(clusters);

  // Pairwise agglomeration (PCS): merge the most similar centroid pair.
  while (static_cast<int>(clusters.size()) > c_min) {
    size_t bi = 0, bj = 1;
    double best_sim = -1.0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        const double sim = RepSim(shots, groups, clusters[i].rep_group,
                                  clusters[j].rep_group, options.weights);
        if (sim > best_sim) {
          best_sim = sim;
          bi = i;
          bj = j;
        }
      }
    }
    // Merge bj into bi; recompute the centroid over all member groups.
    clusters[bi].scene_indices.insert(clusters[bi].scene_indices.end(),
                                      clusters[bj].scene_indices.begin(),
                                      clusters[bj].scene_indices.end());
    clusters.erase(clusters.begin() + static_cast<ptrdiff_t>(bj));
    clusters[bi].rep_group = SelectRepresentativeGroup(
        shots, groups, ClusterGroups(clusters[bi], scenes), options.weights);

    consider_state(clusters);
  }

  if (trace != nullptr) trace->chosen = best_n;
  return best_state.empty() ? clusters : best_state;
}

}  // namespace classminer::structure

#include "structure/scene_cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "structure/group_similarity.h"
#include "structure/scene_detector.h"

namespace classminer::structure {
namespace {

// All member group indices of a cluster (union over member scenes).
std::vector<int> ClusterGroups(const SceneCluster& cluster,
                               const std::vector<Scene>& scenes) {
  std::vector<int> members;
  for (int si : cluster.scene_indices) {
    const Scene& scene = scenes[static_cast<size_t>(si)];
    for (int g = scene.start_group; g <= scene.end_group; ++g) {
      members.push_back(g);
    }
  }
  return members;
}

double RepSim(const std::vector<shot::Shot>& shots,
              const std::vector<Group>& groups, int rep_a, int rep_b,
              const features::StSimWeights& weights) {
  if (rep_a < 0 || rep_b < 0) return 0.0;
  return GpSim(shots, groups[static_cast<size_t>(rep_a)],
               groups[static_cast<size_t>(rep_b)], weights);
}

// Symmetric centroid-similarity matrix over the current cluster set. The
// similarity is a pure function of the two representative groups, so cached
// entries equal freshly computed ones; rows fill in parallel while the
// merge-pair argmax stays a serial ascending (i, j) scan, keeping the
// agglomeration sequence identical to the serial implementation.
class CentroidSimMatrix {
 public:
  CentroidSimMatrix(const std::vector<shot::Shot>& shots,
                    const std::vector<Group>& groups,
                    const features::StSimWeights& weights,
                    const util::ExecutionContext& ctx)
      : shots_(shots), groups_(groups), weights_(weights), ctx_(ctx) {}

  void Reset(const std::vector<SceneCluster>& clusters) {
    const size_t n = clusters.size();
    sim_.assign(n, std::vector<double>(n, 0.0));
    util::ParallelFor(ctx_, static_cast<int>(n), [&](int i) {
      for (size_t j = static_cast<size_t>(i) + 1; j < n; ++j) {
        sim_[static_cast<size_t>(i)][j] =
            RepSim(shots_, groups_, clusters[static_cast<size_t>(i)].rep_group,
                   clusters[j].rep_group, weights_);
      }
    });
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) sim_[j][i] = sim_[i][j];
    }
  }

  // Removes row/column `gone` and recomputes row/column `changed` (whose
  // cluster just absorbed `gone` and re-picked its centroid).
  void Update(const std::vector<SceneCluster>& clusters, size_t changed,
              size_t gone) {
    for (auto& row : sim_) row.erase(row.begin() + static_cast<ptrdiff_t>(gone));
    sim_.erase(sim_.begin() + static_cast<ptrdiff_t>(gone));
    const size_t n = clusters.size();
    util::ParallelFor(ctx_, static_cast<int>(n), [&](int j) {
      if (static_cast<size_t>(j) == changed) return;
      const double s =
          RepSim(shots_, groups_, clusters[changed].rep_group,
                 clusters[static_cast<size_t>(j)].rep_group, weights_);
      sim_[changed][static_cast<size_t>(j)] = s;
      sim_[static_cast<size_t>(j)][changed] = s;
    });
  }

  // Most similar pair, scanning i < j in ascending order with a strict
  // comparison (first best wins) — the serial tie-break.
  void BestPair(size_t* bi, size_t* bj) const {
    *bi = 0;
    *bj = 1;
    double best = -1.0;
    for (size_t i = 0; i < sim_.size(); ++i) {
      for (size_t j = i + 1; j < sim_.size(); ++j) {
        if (sim_[i][j] > best) {
          best = sim_[i][j];
          *bi = i;
          *bj = j;
        }
      }
    }
  }

 private:
  const std::vector<shot::Shot>& shots_;
  const std::vector<Group>& groups_;
  const features::StSimWeights& weights_;
  util::ExecutionContext ctx_;
  std::vector<std::vector<double>> sim_;
};

}  // namespace

double ClusterValidity(const std::vector<shot::Shot>& shots,
                       const std::vector<Group>& groups,
                       const std::vector<SceneCluster>& clusters,
                       const std::vector<Scene>& scenes,
                       const features::StSimWeights& weights,
                       const util::ExecutionContext& ctx) {
  const size_t n = clusters.size();
  if (n < 2) return std::numeric_limits<double>::max();

  // Intra-cluster distances (Eq. 15): mean 1 - GpSim(centroid, member).
  // Each cluster owns one slot; member accumulation stays in scene order.
  std::vector<double> intra(n, 0.0);
  util::ParallelFor(ctx, static_cast<int>(n), [&](int ci) {
    const SceneCluster& c = clusters[static_cast<size_t>(ci)];
    if (c.scene_indices.size() < 2) return;  // singleton: distance 0
    double acc = 0.0;
    for (int si : c.scene_indices) {
      const Scene& scene = scenes[static_cast<size_t>(si)];
      acc += 1.0 - RepSim(shots, groups, c.rep_group, scene.rep_group,
                          weights);
    }
    intra[static_cast<size_t>(ci)] =
        acc / static_cast<double>(c.scene_indices.size());
  });

  // rho (Eq. 14, reconstructed as the Davies-Bouldin index): mean over
  // clusters of the worst (largest) pairwise ratio (s_i + s_j) / xi_ij.
  // Intra distances are floored at a small epsilon so a pair of singleton
  // clusters with near-identical centroids (xi ~ 0) is correctly read as
  // "should have been merged" instead of free separation. Each cluster's
  // worst ratio fills its own slot (inner j loop in order); the final sum
  // runs serially in index order, matching serial floating point exactly.
  constexpr double kIntraFloor = 0.01;
  std::vector<double> worst(n, 0.0);
  util::ParallelFor(ctx, static_cast<int>(n), [&](int ii) {
    const size_t i = static_cast<size_t>(ii);
    double w = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double inter = std::max(
          1e-6, 1.0 - RepSim(shots, groups, clusters[i].rep_group,
                             clusters[j].rep_group, weights));
      const double ratio = (std::max(intra[i], kIntraFloor) +
                            std::max(intra[j], kIntraFloor)) /
                           inter;
      w = std::max(w, ratio);
    }
    worst[i] = w;
  });
  double rho = 0.0;
  for (size_t i = 0; i < n; ++i) rho += worst[i];
  return rho / static_cast<double>(n);
}

std::vector<SceneCluster> ClusterScenes(const std::vector<shot::Shot>& shots,
                                        const std::vector<Group>& groups,
                                        const std::vector<Scene>& scenes,
                                        const SceneClusterOptions& options,
                                        SceneClusterTrace* trace,
                                        const util::ExecutionContext& ctx) {
  // Start from singleton clusters over active scenes.
  std::vector<SceneCluster> clusters;
  for (const Scene& scene : scenes) {
    if (scene.eliminated) continue;
    SceneCluster c;
    c.scene_indices.push_back(scene.index);
    c.rep_group = scene.rep_group;
    clusters.push_back(std::move(c));
  }
  const int m = static_cast<int>(clusters.size());
  if (m <= 1) return clusters;

  // Cmin = ceil(0.5 * M), Cmax = ceil(0.7 * M), clamped to [1, M]. The
  // ceiling keeps degenerate inputs sane: M = 2 searches [1, 2] rather
  // than forcing a merge, and Cmax can never exceed the scene count.
  int c_min, c_max;
  if (options.fixed_clusters > 0) {
    c_min = c_max = std::clamp(options.fixed_clusters, 1, m);
  } else {
    c_min = std::clamp(static_cast<int>(std::ceil(m * options.min_fraction)),
                       1, m);
    c_max = std::clamp(static_cast<int>(std::ceil(m * options.max_fraction)),
                       c_min, m);
  }

  std::vector<SceneCluster> best_state;
  double best_validity = std::numeric_limits<double>::max();
  int best_n = m;

  auto consider_state = [&](const std::vector<SceneCluster>& state) {
    const int n = static_cast<int>(state.size());
    if (n < c_min || n > c_max) return;
    const double rho = options.fixed_clusters > 0
                           ? 0.0
                           : ClusterValidity(shots, groups, state, scenes,
                                             options.weights, ctx);
    if (trace != nullptr) {
      trace->candidates.push_back(n);
      trace->validity.push_back(rho);
    }
    if (rho < best_validity ||
        (options.fixed_clusters > 0 && n == options.fixed_clusters)) {
      best_validity = rho;
      best_state = state;
      best_n = n;
    }
  };

  consider_state(clusters);

  // Pairwise agglomeration (PCS): merge the most similar centroid pair.
  // The pairwise matrix is cached across rounds — only the merged
  // cluster's row changes — and filled in parallel; pair selection scans
  // serially, so the merge order matches the serial implementation.
  CentroidSimMatrix sim(shots, groups, options.weights, ctx);
  sim.Reset(clusters);
  while (static_cast<int>(clusters.size()) > c_min) {
    size_t bi, bj;
    sim.BestPair(&bi, &bj);

    // Merge bj into bi; recompute the centroid over all member groups.
    clusters[bi].scene_indices.insert(clusters[bi].scene_indices.end(),
                                      clusters[bj].scene_indices.begin(),
                                      clusters[bj].scene_indices.end());
    clusters.erase(clusters.begin() + static_cast<ptrdiff_t>(bj));
    clusters[bi].rep_group = SelectRepresentativeGroup(
        shots, groups, ClusterGroups(clusters[bi], scenes), options.weights,
        ctx);
    sim.Update(clusters, bi, bj);

    consider_state(clusters);
  }

  if (trace != nullptr) trace->chosen = best_n;
  return best_state.empty() ? clusters : best_state;
}

}  // namespace classminer::structure

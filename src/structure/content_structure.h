#ifndef CLASSMINER_STRUCTURE_CONTENT_STRUCTURE_H_
#define CLASSMINER_STRUCTURE_CONTENT_STRUCTURE_H_

#include <vector>

#include "structure/group_classify.h"
#include "structure/group_detector.h"
#include "structure/scene_cluster.h"
#include "structure/scene_detector.h"
#include "structure/types.h"

namespace classminer::structure {

// Options for the full structure-mining pass (Fig. 3, steps 2-4).
struct StructureOptions {
  GroupDetectorOptions group{};
  GroupClassifyOptions classify{};
  SceneDetectorOptions scene{};
  SceneClusterOptions cluster{};
};

// Runs group detection, classification, scene detection and scene
// clustering over detected shots, yielding the full content hierarchy.
// The context's pool parallelises the scene-similarity and PCS hot loops;
// the hierarchy is bit-identical with or without one.
ContentStructure MineVideoStructure(std::vector<shot::Shot> shots,
                                    const StructureOptions& options = {},
                                    const util::ExecutionContext& ctx = {});

}  // namespace classminer::structure

#endif  // CLASSMINER_STRUCTURE_CONTENT_STRUCTURE_H_

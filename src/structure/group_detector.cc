#include "structure/group_detector.h"

#include <algorithm>
#include <span>

#include "util/mathutil.h"

namespace classminer::structure {
namespace {

// StSim against a possibly out-of-range neighbour; missing shots count as
// similarity 0 so sequence edges favour boundaries.
double SafeSim(const std::vector<shot::Shot>& shots, int i, int j,
               const features::StSimWeights& weights) {
  const int n = static_cast<int>(shots.size());
  if (i < 0 || j < 0 || i >= n || j >= n) return 0.0;
  return features::StSim(shots[static_cast<size_t>(i)].features,
                         shots[static_cast<size_t>(j)].features, weights);
}

}  // namespace

std::vector<Group> DetectGroups(const std::vector<shot::Shot>& shots,
                                const GroupDetectorOptions& options,
                                GroupDetectorTrace* trace) {
  const int n = static_cast<int>(shots.size());
  std::vector<Group> groups;
  if (n == 0) return groups;

  // Eqs. 2-5: correlations with up to two shots on each side.
  std::vector<double> cl(static_cast<size_t>(n), 0.0);
  std::vector<double> cr(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    cl[static_cast<size_t>(i)] =
        std::max(SafeSim(shots, i, i - 1, options.weights),
                 SafeSim(shots, i, i - 2, options.weights));
    cr[static_cast<size_t>(i)] =
        std::max(SafeSim(shots, i, i + 1, options.weights),
                 SafeSim(shots, i, i + 2, options.weights));
  }

  // Eq. 6: separation factor. CL_{i+1} here uses similarities of shot i+1
  // against the shots to the *left* of the candidate boundary (i-1, i-2),
  // and CR_{i+1} against its right side (i+2, i+3), per Eqs. 4-5.
  std::vector<double> r(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    const double cl_next =
        std::max(SafeSim(shots, i + 1, i - 1, options.weights),
                 SafeSim(shots, i + 1, i - 2, options.weights));
    const double cr_next =
        std::max(SafeSim(shots, i + 1, i + 2, options.weights),
                 SafeSim(shots, i + 1, i + 3, options.weights));
    const double denom = std::max(cl[static_cast<size_t>(i)] + cl_next, 0.1);
    const double numer = cr[static_cast<size_t>(i)] + cr_next;
    // Cap the ratio: sequence edges (CL ~ 0) would otherwise explode R and
    // wreck the entropy-derived threshold T1.
    r[static_cast<size_t>(i)] = std::min(numer / denom, 5.0);
  }

  // Automatic thresholds: the paper derives these with the fast entropy
  // technique [10]; on sparse similarity samples an Otsu (between-class
  // variance) split places the boundary between the bimodal populations
  // more reliably, so we use it here.
  double t2 = options.t2;
  if (t2 <= 0.0) {
    std::vector<double> sims;
    sims.reserve(static_cast<size_t>(2 * n));
    sims.insert(sims.end(), cl.begin(), cl.end());
    sims.insert(sims.end(), cr.begin(), cr.end());
    t2 = util::OtsuThreshold(sims);
  }
  double t1 = options.t1;
  if (t1 <= 0.0) {
    // Sequence edges produce degenerate (capped) ratios; exclude them from
    // the automatic threshold sample.
    std::span<const double> interior(r);
    if (n > 2) interior = interior.subspan(1, static_cast<size_t>(n - 2));
    t1 = std::max(1.2, util::OtsuThreshold(interior));
  }

  if (trace != nullptr) {
    trace->cl = cl;
    trace->cr = cr;
    trace->r = r;
    trace->t1 = t1;
    trace->t2 = t2;
  }

  // Boundary decision per the Sec. 3.2 procedure. Shot 0 always starts the
  // first group.
  std::vector<int> starts;
  starts.push_back(0);
  for (int i = 1; i < n; ++i) {
    bool boundary = false;
    if (cr[static_cast<size_t>(i)] > t2 - 0.1) {
      // Step 1: strongly right-correlated shot opening a new group.
      boundary = r[static_cast<size_t>(i)] > t1;
    } else {
      // Step 2: isolated shot acting as a separator (dissimilar to both
      // sides), like an anchor-person shot.
      boundary = cr[static_cast<size_t>(i)] < t2 &&
                 cl[static_cast<size_t>(i)] < t2;
    }
    if (boundary) starts.push_back(i);
  }

  for (size_t g = 0; g < starts.size(); ++g) {
    Group group;
    group.index = static_cast<int>(g);
    group.start_shot = starts[g];
    group.end_shot = (g + 1 < starts.size()) ? starts[g + 1] - 1 : n - 1;
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace classminer::structure

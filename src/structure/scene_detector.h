#ifndef CLASSMINER_STRUCTURE_SCENE_DETECTOR_H_
#define CLASSMINER_STRUCTURE_SCENE_DETECTOR_H_

#include <vector>

#include "features/similarity.h"
#include "shot/shot.h"
#include "structure/types.h"
#include "util/exec_context.h"

namespace classminer::structure {

struct SceneDetectorOptions {
  // Merging threshold TG of Sec. 3.4; 0 = automatic via fast entropy over
  // the neighbouring-group similarities.
  double merge_threshold = 0.0;
  // Lower bound on the automatic TG. The StSim texture term alone gives
  // two arbitrary smooth frames ~0.3 similarity, so merges below this are
  // never semantic; the floor also stabilises the automatic threshold when
  // a video yields only a handful of neighbouring-group samples.
  double merge_floor = 0.55;
  // Scenes with fewer shots than this are eliminated (paper: 3).
  int min_scene_shots = 3;
  features::StSimWeights weights{};
};

struct SceneDetectorTrace {
  std::vector<double> neighbor_similarity;  // SG_i (Eq. 10)
  double tg = 0.0;
};

// Merges adjacent groups into scenes (Sec. 3.4): neighbouring groups with
// similarity above TG merge (transitively); the result list, with
// sub-3-shot scenes flagged eliminated, forms the scene level. Each scene's
// representative group is chosen by SelectRepGroup.
// The context's pool parallelises the neighbouring-group similarity series
// and representative-group selection (fixed per-index slots, serial
// reductions; bit-identical to serial).
std::vector<Scene> DetectScenes(const std::vector<shot::Shot>& shots,
                                const std::vector<Group>& groups,
                                const SceneDetectorOptions& options = {},
                                SceneDetectorTrace* trace = nullptr,
                                const util::ExecutionContext& ctx = {});

// SelectRepGroup (Sec. 3.4): for 3+ member groups the one with the largest
// average GpSim to the others (Eq. 11); for 2 the one with more shots
// (ties: longer duration); for 1 the group itself. `member_groups` are
// indices into `groups`.
int SelectRepresentativeGroup(const std::vector<shot::Shot>& shots,
                              const std::vector<Group>& groups,
                              const std::vector<int>& member_groups,
                              const features::StSimWeights& weights = {},
                              const util::ExecutionContext& ctx = {});

}  // namespace classminer::structure

#endif  // CLASSMINER_STRUCTURE_SCENE_DETECTOR_H_

#ifndef CLASSMINER_STRUCTURE_GROUP_SIMILARITY_H_
#define CLASSMINER_STRUCTURE_GROUP_SIMILARITY_H_

#include <span>
#include <vector>

#include "features/similarity.h"
#include "shot/shot.h"
#include "structure/types.h"

namespace classminer::structure {

// Shot-to-group similarity (Eq. 8): the maximum StSim between the shot and
// any member shot of the group.
double StGpSim(const std::vector<shot::Shot>& shots, int shot_index,
               std::span<const int> group_shots,
               const features::StSimWeights& weights = {});

// Group-to-group similarity (Eq. 9): with the smaller group as benchmark,
// the average over its shots of each shot's best match in the other group.
// Symmetric by construction; returns 0 for empty groups.
double GpSim(const std::vector<shot::Shot>& shots,
             std::span<const int> group_a, std::span<const int> group_b,
             const features::StSimWeights& weights = {});

// Convenience overload on Group records.
double GpSim(const std::vector<shot::Shot>& shots, const Group& a,
             const Group& b, const features::StSimWeights& weights = {});

}  // namespace classminer::structure

#endif  // CLASSMINER_STRUCTURE_GROUP_SIMILARITY_H_

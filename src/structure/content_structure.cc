#include "structure/content_structure.h"

namespace classminer::structure {

int ContentStructure::ActiveSceneCount() const {
  int n = 0;
  for (const Scene& s : scenes) {
    if (!s.eliminated) ++n;
  }
  return n;
}

int ContentStructure::ShotCountOfScene(const Scene& scene) const {
  int n = 0;
  for (int g = scene.start_group; g <= scene.end_group; ++g) {
    n += groups[static_cast<size_t>(g)].shot_count();
  }
  return n;
}

std::vector<int> ContentStructure::ShotIndicesOfScene(
    const Scene& scene) const {
  std::vector<int> out;
  for (int g = scene.start_group; g <= scene.end_group; ++g) {
    const Group& group = groups[static_cast<size_t>(g)];
    for (int s = group.start_shot; s <= group.end_shot; ++s) {
      out.push_back(s);
    }
  }
  return out;
}

double ContentStructure::CompressionRateFactor() const {
  if (shots.empty()) return 0.0;
  return static_cast<double>(ActiveSceneCount()) /
         static_cast<double>(shots.size());
}

ContentStructure MineVideoStructure(std::vector<shot::Shot> shots,
                                    const StructureOptions& options,
                                    const util::ExecutionContext& ctx) {
  ContentStructure cs;
  cs.shots = std::move(shots);
  cs.groups = DetectGroups(cs.shots, options.group);
  ClassifyGroups(cs.shots, &cs.groups, options.classify);
  cs.scenes = DetectScenes(cs.shots, cs.groups, options.scene, nullptr, ctx);
  cs.clustered_scenes = ClusterScenes(cs.shots, cs.groups, cs.scenes,
                                      options.cluster, nullptr, ctx);
  return cs;
}

}  // namespace classminer::structure

#ifndef CLASSMINER_STRUCTURE_GROUP_DETECTOR_H_
#define CLASSMINER_STRUCTURE_GROUP_DETECTOR_H_

#include <vector>

#include "features/similarity.h"
#include "shot/shot.h"
#include "structure/types.h"

namespace classminer::structure {

struct GroupDetectorOptions {
  // Boundary thresholds of Sec. 3.2. Zero means "determine automatically
  // with the fast entropy technique" (T1 over the R(i) distribution, T2
  // over the neighbour-correlation distribution).
  double t1 = 0.0;
  double t2 = 0.0;
  features::StSimWeights weights{};
};

// Diagnostics: the neighbour-correlation (Eqs. 2-5) and separation-factor
// (Eq. 6) series plus the thresholds actually used.
struct GroupDetectorTrace {
  std::vector<double> cl;  // CL_i per shot
  std::vector<double> cr;  // CR_i per shot
  std::vector<double> r;   // R(i) per shot
  double t1 = 0.0;
  double t2 = 0.0;
};

// Segments the shot sequence into contiguous groups using the correlation
// procedure of Sec. 3.2 (window of two shots on each side). Groups are
// returned without classification; run ClassifyGroups afterwards.
std::vector<Group> DetectGroups(const std::vector<shot::Shot>& shots,
                                const GroupDetectorOptions& options = {},
                                GroupDetectorTrace* trace = nullptr);

}  // namespace classminer::structure

#endif  // CLASSMINER_STRUCTURE_GROUP_DETECTOR_H_

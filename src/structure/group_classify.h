#ifndef CLASSMINER_STRUCTURE_GROUP_CLASSIFY_H_
#define CLASSMINER_STRUCTURE_GROUP_CLASSIFY_H_

#include <vector>

#include "features/similarity.h"
#include "shot/shot.h"
#include "structure/types.h"

namespace classminer::structure {

struct GroupClassifyOptions {
  // Th of Sec. 3.2.1: shots more similar than this join the seed's cluster.
  double cluster_threshold = 0.80;
  features::StSimWeights weights{};
};

// Clusters the shots of one group by greedy seed absorption (Sec. 3.2.1),
// marks the group temporally (Nc > 1) vs spatially related, and selects one
// representative shot per cluster (SelectRepShot, Eq. 7 + tie rules).
void ClassifyGroup(const std::vector<shot::Shot>& shots, Group* group,
                   const GroupClassifyOptions& options = {});

// Applies ClassifyGroup to every group.
void ClassifyGroups(const std::vector<shot::Shot>& shots,
                    std::vector<Group>* groups,
                    const GroupClassifyOptions& options = {});

// SelectRepShot for one cluster (exposed for tests): largest average
// similarity for 3+ shots, longer duration for 2, the shot itself for 1.
int SelectRepresentativeShot(const std::vector<shot::Shot>& shots,
                             const std::vector<int>& cluster_shots,
                             const features::StSimWeights& weights = {});

}  // namespace classminer::structure

#endif  // CLASSMINER_STRUCTURE_GROUP_CLASSIFY_H_

#include "structure/group_classify.h"

#include <algorithm>

namespace classminer::structure {

int SelectRepresentativeShot(const std::vector<shot::Shot>& shots,
                             const std::vector<int>& cluster_shots,
                             const features::StSimWeights& weights) {
  if (cluster_shots.empty()) return -1;
  if (cluster_shots.size() == 1) return cluster_shots.front();
  if (cluster_shots.size() == 2) {
    // The shot with the longer duration conveys more content.
    const shot::Shot& a = shots[static_cast<size_t>(cluster_shots[0])];
    const shot::Shot& b = shots[static_cast<size_t>(cluster_shots[1])];
    return a.frame_count() >= b.frame_count() ? cluster_shots[0]
                                              : cluster_shots[1];
  }
  // Eq. 7: the shot with the largest average similarity to the others.
  int best = cluster_shots.front();
  double best_avg = -1.0;
  for (int j : cluster_shots) {
    double acc = 0.0;
    for (int k : cluster_shots) {
      if (k == j) continue;
      acc += features::StSim(shots[static_cast<size_t>(j)].features,
                             shots[static_cast<size_t>(k)].features, weights);
    }
    const double avg = acc / (static_cast<double>(cluster_shots.size()) - 1.0);
    if (avg > best_avg) {
      best_avg = avg;
      best = j;
    }
  }
  return best;
}

void ClassifyGroup(const std::vector<shot::Shot>& shots, Group* group,
                   const GroupClassifyOptions& options) {
  group->clusters.clear();
  group->rep_shots.clear();

  // Greedy seeded clustering (Sec. 3.2.1): the lowest-numbered unassigned
  // shot seeds a cluster and absorbs every remaining shot whose StSim to
  // the seed exceeds Th.
  std::vector<int> remaining = group->ShotIndices();
  while (!remaining.empty()) {
    const int seed = remaining.front();
    remaining.erase(remaining.begin());
    ShotCluster cluster;
    cluster.shot_indices.push_back(seed);
    for (auto it = remaining.begin(); it != remaining.end();) {
      const double sim = features::StSim(
          shots[static_cast<size_t>(seed)].features,
          shots[static_cast<size_t>(*it)].features, options.weights);
      if (sim > options.cluster_threshold) {
        cluster.shot_indices.push_back(*it);
        it = remaining.erase(it);
      } else {
        ++it;
      }
    }
    cluster.rep_shot =
        SelectRepresentativeShot(shots, cluster.shot_indices, options.weights);
    group->clusters.push_back(std::move(cluster));
  }

  group->temporally_related = group->clusters.size() > 1;
  for (const ShotCluster& c : group->clusters) {
    group->rep_shots.push_back(c.rep_shot);
  }
}

void ClassifyGroups(const std::vector<shot::Shot>& shots,
                    std::vector<Group>* groups,
                    const GroupClassifyOptions& options) {
  for (Group& g : *groups) ClassifyGroup(shots, &g, options);
}

}  // namespace classminer::structure

#include "structure/scene_detector.h"

#include <algorithm>

#include "structure/group_similarity.h"
#include "util/mathutil.h"

namespace classminer::structure {

int SelectRepresentativeGroup(const std::vector<shot::Shot>& shots,
                              const std::vector<Group>& groups,
                              const std::vector<int>& member_groups,
                              const features::StSimWeights& weights) {
  if (member_groups.empty()) return -1;
  if (member_groups.size() == 1) return member_groups.front();
  if (member_groups.size() == 2) {
    const Group& a = groups[static_cast<size_t>(member_groups[0])];
    const Group& b = groups[static_cast<size_t>(member_groups[1])];
    if (a.shot_count() != b.shot_count()) {
      return a.shot_count() > b.shot_count() ? member_groups[0]
                                             : member_groups[1];
    }
    // Tie: longer time duration.
    auto duration = [&shots](const Group& g) {
      int frames = 0;
      for (int s = g.start_shot; s <= g.end_shot; ++s) {
        frames += shots[static_cast<size_t>(s)].frame_count();
      }
      return frames;
    };
    return duration(a) >= duration(b) ? member_groups[0] : member_groups[1];
  }
  // Eq. 11: largest average similarity to all other member groups.
  int best = member_groups.front();
  double best_avg = -1.0;
  for (int j : member_groups) {
    double acc = 0.0;
    for (int k : member_groups) {
      if (k == j) continue;
      acc += GpSim(shots, groups[static_cast<size_t>(j)],
                   groups[static_cast<size_t>(k)], weights);
    }
    const double avg =
        acc / (static_cast<double>(member_groups.size()) - 1.0);
    if (avg > best_avg) {
      best_avg = avg;
      best = j;
    }
  }
  return best;
}

std::vector<Scene> DetectScenes(const std::vector<shot::Shot>& shots,
                                const std::vector<Group>& groups,
                                const SceneDetectorOptions& options,
                                SceneDetectorTrace* trace) {
  std::vector<Scene> scenes;
  const int m = static_cast<int>(groups.size());
  if (m == 0) return scenes;

  // Eq. 10: similarities between neighbouring groups.
  std::vector<double> sg;
  sg.reserve(static_cast<size_t>(std::max(0, m - 1)));
  for (int i = 0; i + 1 < m; ++i) {
    sg.push_back(GpSim(shots, groups[static_cast<size_t>(i)],
                       groups[static_cast<size_t>(i) + 1], options.weights));
  }

  double tg = options.merge_threshold;
  if (tg <= 0.0 && !sg.empty()) {
    tg = std::max(options.merge_floor, util::OtsuThreshold(sg));
  }
  if (trace != nullptr) {
    trace->neighbor_similarity = sg;
    trace->tg = tg;
  }

  // Merge chains of adjacent groups with SG_i > TG.
  int start = 0;
  for (int i = 0; i < m; ++i) {
    const bool merge_with_next =
        i + 1 < m && sg[static_cast<size_t>(i)] > tg;
    if (merge_with_next) continue;
    Scene scene;
    scene.index = static_cast<int>(scenes.size());
    scene.start_group = start;
    scene.end_group = i;
    scenes.push_back(scene);
    start = i + 1;
  }

  // Eliminate short scenes and choose representative groups.
  for (Scene& scene : scenes) {
    int shot_count = 0;
    std::vector<int> members;
    for (int g = scene.start_group; g <= scene.end_group; ++g) {
      shot_count += groups[static_cast<size_t>(g)].shot_count();
      members.push_back(g);
    }
    scene.eliminated = shot_count < options.min_scene_shots;
    scene.rep_group =
        SelectRepresentativeGroup(shots, groups, members, options.weights);
  }
  return scenes;
}

}  // namespace classminer::structure

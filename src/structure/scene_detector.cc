#include "structure/scene_detector.h"

#include <algorithm>

#include "structure/group_similarity.h"
#include "util/mathutil.h"

namespace classminer::structure {

int SelectRepresentativeGroup(const std::vector<shot::Shot>& shots,
                              const std::vector<Group>& groups,
                              const std::vector<int>& member_groups,
                              const features::StSimWeights& weights,
                              const util::ExecutionContext& ctx) {
  if (member_groups.empty()) return -1;
  if (member_groups.size() == 1) return member_groups.front();
  if (member_groups.size() == 2) {
    const Group& a = groups[static_cast<size_t>(member_groups[0])];
    const Group& b = groups[static_cast<size_t>(member_groups[1])];
    if (a.shot_count() != b.shot_count()) {
      return a.shot_count() > b.shot_count() ? member_groups[0]
                                             : member_groups[1];
    }
    // Tie: longer time duration.
    auto duration = [&shots](const Group& g) {
      int frames = 0;
      for (int s = g.start_shot; s <= g.end_shot; ++s) {
        frames += shots[static_cast<size_t>(s)].frame_count();
      }
      return frames;
    };
    return duration(a) >= duration(b) ? member_groups[0] : member_groups[1];
  }
  // Eq. 11: largest average similarity to all other member groups. Each
  // candidate's average fills its own slot; the argmax scan stays serial in
  // member order, so the winner matches the serial path exactly.
  std::vector<double> avg(member_groups.size(), 0.0);
  util::ParallelFor(
      ctx, static_cast<int>(member_groups.size()), [&](int ji) {
        const int j = member_groups[static_cast<size_t>(ji)];
        double acc = 0.0;
        for (int k : member_groups) {
          if (k == j) continue;
          acc += GpSim(shots, groups[static_cast<size_t>(j)],
                       groups[static_cast<size_t>(k)], weights);
        }
        avg[static_cast<size_t>(ji)] =
            acc / (static_cast<double>(member_groups.size()) - 1.0);
      });
  int best = member_groups.front();
  double best_avg = -1.0;
  for (size_t ji = 0; ji < member_groups.size(); ++ji) {
    if (avg[ji] > best_avg) {
      best_avg = avg[ji];
      best = member_groups[ji];
    }
  }
  return best;
}

std::vector<Scene> DetectScenes(const std::vector<shot::Shot>& shots,
                                const std::vector<Group>& groups,
                                const SceneDetectorOptions& options,
                                SceneDetectorTrace* trace,
                                const util::ExecutionContext& ctx) {
  std::vector<Scene> scenes;
  const int m = static_cast<int>(groups.size());
  if (m == 0) return scenes;

  // Eq. 10: similarities between neighbouring groups (independent pairs).
  std::vector<double> sg(static_cast<size_t>(std::max(0, m - 1)), 0.0);
  util::ParallelFor(ctx, m - 1, [&](int i) {
    sg[static_cast<size_t>(i)] =
        GpSim(shots, groups[static_cast<size_t>(i)],
              groups[static_cast<size_t>(i) + 1], options.weights);
  });

  double tg = options.merge_threshold;
  if (tg <= 0.0 && !sg.empty()) {
    tg = std::max(options.merge_floor, util::OtsuThreshold(sg));
  }
  if (trace != nullptr) {
    trace->neighbor_similarity = sg;
    trace->tg = tg;
  }

  // Merge chains of adjacent groups with SG_i > TG.
  int start = 0;
  for (int i = 0; i < m; ++i) {
    const bool merge_with_next =
        i + 1 < m && sg[static_cast<size_t>(i)] > tg;
    if (merge_with_next) continue;
    Scene scene;
    scene.index = static_cast<int>(scenes.size());
    scene.start_group = start;
    scene.end_group = i;
    scenes.push_back(scene);
    start = i + 1;
  }

  // Eliminate short scenes and choose representative groups. Scenes are
  // independent, so the per-scene work parallelises across scenes (and the
  // inner SelectRepresentativeGroup then runs serial).
  util::ParallelFor(ctx, static_cast<int>(scenes.size()), [&](int si) {
    Scene& scene = scenes[static_cast<size_t>(si)];
    int shot_count = 0;
    std::vector<int> members;
    for (int g = scene.start_group; g <= scene.end_group; ++g) {
      shot_count += groups[static_cast<size_t>(g)].shot_count();
      members.push_back(g);
    }
    scene.eliminated = shot_count < options.min_scene_shots;
    scene.rep_group =
        SelectRepresentativeGroup(shots, groups, members, options.weights);
  });
  return scenes;
}

}  // namespace classminer::structure

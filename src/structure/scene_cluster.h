#ifndef CLASSMINER_STRUCTURE_SCENE_CLUSTER_H_
#define CLASSMINER_STRUCTURE_SCENE_CLUSTER_H_

#include <vector>

#include "features/similarity.h"
#include "shot/shot.h"
#include "structure/types.h"
#include "util/exec_context.h"

namespace classminer::structure {

struct SceneClusterOptions {
  // Validity-analysis search range (Sec. 3.5): the optimal cluster count is
  // sought in [Cmin, Cmax] = [ceil(min_fraction * M), ceil(max_fraction * M)]
  // of the M input scenes (paper: eliminate 30-50 % of scenes => fractions
  // 0.5 and 0.7). Ceiling (not floor) keeps the range meaningful for tiny
  // inputs: M = 2 yields [1, 2] instead of collapsing to [1, 1], so PCS
  // never has to merge everything just to enter the search window, and it
  // never requests more clusters than scenes.
  double min_fraction = 0.5;
  double max_fraction = 0.7;
  // When > 0, skips validity analysis and clusters to exactly this count
  // (the paper's fixed "reduce by 40 %" alternative).
  int fixed_clusters = 0;
  features::StSimWeights weights{};
};

struct SceneClusterTrace {
  // rho(N) for each candidate N in [Cmin, Cmax], aligned with candidates.
  std::vector<int> candidates;
  std::vector<double> validity;
  int chosen = 0;
};

// Seedless Pairwise Cluster Scheme (PCS, Sec. 3.5): scene similarity is the
// GpSim of the scenes' representative groups (Eq. 13); the two most similar
// clusters merge each round; the merged cluster's centroid is re-selected
// with SelectRepGroup. Cluster validity rho(N) (Eqs. 14-15, Davies-Bouldin
// style intra/inter ratio) picks the stopping point.
//
// Only non-eliminated scenes participate. Singleton clusters are emitted
// for every remaining scene.
// The context's pool parallelises the pairwise centroid-similarity matrix
// and the validity index (fixed partitioning, serial argmax/reduction),
// leaving the merge sequence bit-identical to a serial run.
std::vector<SceneCluster> ClusterScenes(const std::vector<shot::Shot>& shots,
                                        const std::vector<Group>& groups,
                                        const std::vector<Scene>& scenes,
                                        const SceneClusterOptions& options = {},
                                        SceneClusterTrace* trace = nullptr,
                                        const util::ExecutionContext& ctx = {});

// Validity ratio rho for a clustering state (exposed for tests): mean over
// clusters of intra-cluster distance divided by the largest inter-cluster
// distance, computed on representative groups. Lower is better.
double ClusterValidity(const std::vector<shot::Shot>& shots,
                       const std::vector<Group>& groups,
                       const std::vector<SceneCluster>& clusters,
                       const std::vector<Scene>& scenes,
                       const features::StSimWeights& weights = {},
                       const util::ExecutionContext& ctx = {});

}  // namespace classminer::structure

#endif  // CLASSMINER_STRUCTURE_SCENE_CLUSTER_H_

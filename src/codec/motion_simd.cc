// AVX2 16x16 SAD kernel for interior macroblocks.
//
// The caller guarantees both footprints are fully in bounds, so each row is
// sixteen contiguous int16 samples in both planes. Samples are widened to
// int32 before subtracting (Plane carries residual-range values, so an
// int16 subtract could wrap), |diff| is accumulated in eight int32 lanes,
// and the lanes are summed at the end. Integer arithmetic — exactly equal
// to the scalar kernel in any order.

#include "codec/motion.h"

#if defined(__x86_64__)

#include <immintrin.h>

namespace classminer::codec::internal {

bool SadAccelAvailable() { return true; }

__attribute__((target("avx2"))) int64_t MacroblockSadAccel(
    const Plane& cur, const Plane& ref, int mx, int my, int dx, int dy) {
  __m256i acc = _mm256_setzero_si256();
  for (int y = 0; y < kMacroblockSize; ++y) {
    const int16_t* c =
        cur.samples.data() + static_cast<size_t>(my + y) * cur.width + mx;
    const int16_t* r = ref.samples.data() +
                       static_cast<size_t>(my + dy + y) * ref.width + mx + dx;
    const __m128i c_lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c));
    const __m128i c_hi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + 8));
    const __m128i r_lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r));
    const __m128i r_hi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + 8));
    const __m256i d_lo = _mm256_sub_epi32(_mm256_cvtepi16_epi32(c_lo),
                                          _mm256_cvtepi16_epi32(r_lo));
    const __m256i d_hi = _mm256_sub_epi32(_mm256_cvtepi16_epi32(c_hi),
                                          _mm256_cvtepi16_epi32(r_hi));
    acc = _mm256_add_epi32(acc, _mm256_abs_epi32(d_lo));
    acc = _mm256_add_epi32(acc, _mm256_abs_epi32(d_hi));
  }
  alignas(32) int32_t lane[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane), acc);
  int64_t sad = 0;
  for (int i = 0; i < 8; ++i) sad += lane[i];
  return sad;
}

}  // namespace classminer::codec::internal

#else  // !defined(__x86_64__)

namespace classminer::codec::internal {

bool SadAccelAvailable() { return false; }

int64_t MacroblockSadAccel(const Plane& cur, const Plane& ref, int mx, int my,
                           int dx, int dy) {
  return MacroblockSadScalar(cur, ref, mx, my, dx, dy);
}

}  // namespace classminer::codec::internal

#endif

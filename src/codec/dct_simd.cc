// AVX2 8x8 DCT kernels, bit-identical to the scalar reference.
//
// The trick: vectorise across *output* lanes only. Each output coefficient
// is still a sum of 8 products accumulated in exactly the scalar loop's
// order — the four doubles in a ymm register are four independent scalar
// accumulations running side by side. With plain vmulpd/vaddpd (no FMA,
// which would change rounding) every lane performs the same IEEE ops the
// scalar kernel does, so the results match bit for bit.

#include "codec/dct.h"

#if defined(__x86_64__)

#include <immintrin.h>

namespace classminer::codec::internal {
namespace {

// Loads one row of 8 doubles as two ymm registers.
struct Row8 {
  __m256d lo;
  __m256d hi;
};

__attribute__((target("avx2"))) inline Row8 LoadRow(const double* p) {
  return {_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4)};
}

__attribute__((target("avx2"))) inline void StoreRow(double* p, Row8 r) {
  _mm256_storeu_pd(p, r.lo);
  _mm256_storeu_pd(p + 4, r.hi);
}

__attribute__((target("avx2"))) inline Row8 MulAdd(Row8 acc, Row8 a,
                                                   __m256d b) {
  // Explicit mul+add (not FMA) to match the scalar kernel's rounding.
  acc.lo = _mm256_add_pd(acc.lo, _mm256_mul_pd(a.lo, b));
  acc.hi = _mm256_add_pd(acc.hi, _mm256_mul_pd(a.hi, b));
  return acc;
}

}  // namespace

bool DctAccelAvailable() { return true; }

__attribute__((target("avx2"))) Block ForwardDctAccel(const Block& spatial) {
  const DctTables& t = Tables();
  // Pass 1 (rows): tmp[y][u] = sum_x spatial[y][x] * basis[u][x]
  //                          = sum_x spatial[y][x] * basis_t[x][u].
  // For fixed y the 8 u-lanes accumulate over x = 0..7, scalar order.
  alignas(32) double tmp[kBlockPixels];
  for (int y = 0; y < kBlockSize; ++y) {
    Row8 acc{_mm256_setzero_pd(), _mm256_setzero_pd()};
    for (int x = 0; x < kBlockSize; ++x) {
      const __m256d s =
          _mm256_set1_pd(spatial[static_cast<size_t>(y) * kBlockSize + x]);
      acc = MulAdd(acc, LoadRow(t.basis_t[x]), s);
    }
    StoreRow(&tmp[static_cast<size_t>(y) * kBlockSize], acc);
  }
  // Pass 2 (columns): out[v][u] = sum_y tmp[y][u] * basis[v][y].
  // For fixed v the 8 u-lanes accumulate over y = 0..7, scalar order.
  Block out{};
  for (int v = 0; v < kBlockSize; ++v) {
    Row8 acc{_mm256_setzero_pd(), _mm256_setzero_pd()};
    for (int y = 0; y < kBlockSize; ++y) {
      const __m256d b = _mm256_set1_pd(t.basis[v][y]);
      acc = MulAdd(acc, LoadRow(&tmp[static_cast<size_t>(y) * kBlockSize]), b);
    }
    StoreRow(&out[static_cast<size_t>(v) * kBlockSize], acc);
  }
  return out;
}

__attribute__((target("avx2"))) Block InverseDctAccel(const Block& freq) {
  const DctTables& t = Tables();
  // Pass 1: tmp[y][u] = sum_v freq[v][u] * basis[v][y].
  // For fixed y the 8 u-lanes accumulate over v = 0..7, scalar order.
  alignas(32) double tmp[kBlockPixels];
  for (int y = 0; y < kBlockSize; ++y) {
    Row8 acc{_mm256_setzero_pd(), _mm256_setzero_pd()};
    for (int v = 0; v < kBlockSize; ++v) {
      const __m256d b = _mm256_set1_pd(t.basis[v][y]);
      acc = MulAdd(acc, LoadRow(&freq[static_cast<size_t>(v) * kBlockSize]), b);
    }
    StoreRow(&tmp[static_cast<size_t>(y) * kBlockSize], acc);
  }
  // Pass 2: out[y][x] = sum_u tmp[y][u] * basis[u][x].
  // For fixed y the 8 x-lanes accumulate over u = 0..7, scalar order.
  Block out{};
  for (int y = 0; y < kBlockSize; ++y) {
    Row8 acc{_mm256_setzero_pd(), _mm256_setzero_pd()};
    for (int u = 0; u < kBlockSize; ++u) {
      const __m256d s =
          _mm256_set1_pd(tmp[static_cast<size_t>(y) * kBlockSize + u]);
      acc = MulAdd(acc, LoadRow(t.basis[u]), s);
    }
    StoreRow(&out[static_cast<size_t>(y) * kBlockSize], acc);
  }
  return out;
}

}  // namespace classminer::codec::internal

#else  // !defined(__x86_64__)

namespace classminer::codec::internal {

// No vector double path off x86-64 (NEON f64 reassociation would not be
// worth a separate kernel here); the dispatcher keeps the scalar kernels.
bool DctAccelAvailable() { return false; }
Block ForwardDctAccel(const Block& spatial) { return ForwardDctScalar(spatial); }
Block InverseDctAccel(const Block& freq) { return InverseDctScalar(freq); }

}  // namespace classminer::codec::internal

#endif

#ifndef CLASSMINER_CODEC_ENCODER_H_
#define CLASSMINER_CODEC_ENCODER_H_

#include "codec/container.h"
#include "codec/dct.h"
#include "media/video.h"

namespace classminer::codec {

struct EncoderOptions {
  int quality = 8;       // quantiser scale, 1 (fine) .. 31 (coarse)
  int gop_size = 12;     // I-frame every `gop_size` frames
  int search_range = 7;  // motion search range in pixels
};

// Encodes a decoded video into a CMV container (video track only; callers
// attach audio to the returned file). Deterministic.
CmvFile EncodeVideo(const media::Video& video, const EncoderOptions& options);

namespace internal {

// Encodes one picture as an intra frame. Reconstructs into `recon` (the
// encoder's decode loop) so P-frames predict from what the decoder will see.
std::vector<uint8_t> EncodeIntra(const Picture& pic, int quality,
                                 Picture* recon);

// Encodes one picture as a predicted frame against `ref` (previous
// reconstruction), writing the new reconstruction into `recon`.
std::vector<uint8_t> EncodePredicted(const Picture& pic, const Picture& ref,
                                     int quality, int search_range,
                                     Picture* recon);

}  // namespace internal
}  // namespace classminer::codec

#endif  // CLASSMINER_CODEC_ENCODER_H_

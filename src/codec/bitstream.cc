#include "codec/bitstream.h"

namespace classminer::codec {

void BitWriter::PutBit(int bit) {
  current_ = static_cast<uint8_t>((current_ << 1) | (bit & 1));
  if (++bit_pos_ == 8) {
    bytes_.push_back(current_);
    current_ = 0;
    bit_pos_ = 0;
  }
}

void BitWriter::PutBits(uint32_t value, int count) {
  for (int i = count - 1; i >= 0; --i) PutBit(static_cast<int>((value >> i) & 1));
}

void BitWriter::PutUE(uint32_t v) {
  // Code number v+1 with leading-zero prefix.
  const uint32_t code = v + 1;
  int len = 0;
  for (uint32_t t = code; t > 1; t >>= 1) ++len;
  for (int i = 0; i < len; ++i) PutBit(0);
  PutBits(code, len + 1);
}

void BitWriter::PutSE(int32_t v) {
  const uint32_t mapped =
      v > 0 ? static_cast<uint32_t>(2 * v - 1) : static_cast<uint32_t>(-2 * v);
  PutUE(mapped);
}

std::vector<uint8_t> BitWriter::Finish() {
  while (bit_pos_ != 0) PutBit(0);
  return std::move(bytes_);
}

util::StatusOr<int> BitReader::GetBit() {
  if (byte_pos_ >= size_) return util::Status::DataLoss("bitstream exhausted");
  const int bit = (data_[byte_pos_] >> (7 - bit_pos_)) & 1;
  if (++bit_pos_ == 8) {
    bit_pos_ = 0;
    ++byte_pos_;
  }
  return bit;
}

util::StatusOr<uint32_t> BitReader::GetBits(int count) {
  uint32_t v = 0;
  for (int i = 0; i < count; ++i) {
    util::StatusOr<int> bit = GetBit();
    if (!bit.ok()) return bit.status();
    v = (v << 1) | static_cast<uint32_t>(*bit);
  }
  return v;
}

util::StatusOr<uint32_t> BitReader::GetUE() {
  int zeros = 0;
  while (true) {
    util::StatusOr<int> bit = GetBit();
    if (!bit.ok()) return bit.status();
    if (*bit == 1) break;
    if (++zeros > 31) return util::Status::DataLoss("malformed exp-Golomb code");
  }
  util::StatusOr<uint32_t> rest = GetBits(zeros);
  if (!rest.ok()) return rest.status();
  const uint32_t code = (1u << zeros) | *rest;
  return code - 1;
}

util::StatusOr<int32_t> BitReader::GetSE() {
  util::StatusOr<uint32_t> ue = GetUE();
  if (!ue.ok()) return ue.status();
  const uint32_t v = *ue;
  if (v % 2 == 1) return static_cast<int32_t>((v + 1) / 2);
  return -static_cast<int32_t>(v / 2);
}

}  // namespace classminer::codec

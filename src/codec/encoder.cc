#include "codec/encoder.h"

#include <algorithm>
#include <cmath>

#include "codec/bitstream.h"
#include "codec/motion.h"
#include "codec/quant.h"

namespace classminer::codec {
namespace internal {
namespace {

int BlocksAcross(int extent) { return (extent + kBlockSize - 1) / kBlockSize; }

// Encodes every 8x8 block of `plane` as intra, reconstructing into `recon`.
void EncodeIntraPlane(const Plane& plane, int quality, bool chroma,
                      BitWriter* writer, Plane* recon) {
  const int bw = BlocksAcross(plane.width);
  const int bh = BlocksAcross(plane.height);
  int32_t dc_pred = 0;
  for (int by = 0; by < bh; ++by) {
    for (int bx = 0; bx < bw; ++bx) {
      const Block spatial = GetBlock(plane, bx, by, /*center=*/true);
      const Block freq = ForwardDct(spatial);
      const QuantizedBlock q = Quantize(freq, quality, chroma);
      dc_pred = EncodeBlock(writer, q, dc_pred);
      const Block deq = Dequantize(q, quality, chroma);
      PutBlock(recon, bx, by, InverseDct(deq), /*center=*/true);
    }
  }
}

// Residual block at (bx, by): cur - pred, both uncentered.
Block ResidualBlock(const Plane& cur, const Plane& pred, int bx, int by) {
  Block block{};
  for (int y = 0; y < kBlockSize; ++y) {
    const int sy = std::min(by * kBlockSize + y, cur.height - 1);
    for (int x = 0; x < kBlockSize; ++x) {
      const int sx = std::min(bx * kBlockSize + x, cur.width - 1);
      block[static_cast<size_t>(y) * kBlockSize + x] =
          static_cast<double>(cur.at(sx, sy)) - pred.at(sx, sy);
    }
  }
  return block;
}

// recon = clamp(pred + residual) over the block footprint.
void ReconstructResidual(const Plane& pred, const Block& residual, int bx,
                         int by, Plane* recon) {
  for (int y = 0; y < kBlockSize; ++y) {
    const int dy = by * kBlockSize + y;
    if (dy >= recon->height) break;
    for (int x = 0; x < kBlockSize; ++x) {
      const int dx = bx * kBlockSize + x;
      if (dx >= recon->width) break;
      const double v =
          pred.at(dx, dy) + residual[static_cast<size_t>(y) * kBlockSize + x];
      recon->set(dx, dy,
                 static_cast<int16_t>(std::lround(std::clamp(v, 0.0, 255.0))));
    }
  }
}

void EncodeResidualBlock(const Plane& cur, const Plane& pred, int bx, int by,
                         int quality, bool chroma, BitWriter* writer,
                         Plane* recon) {
  const Block residual = ResidualBlock(cur, pred, bx, by);
  const Block freq = ForwardDct(residual);
  const QuantizedBlock q = Quantize(freq, quality, chroma);
  EncodeBlock(writer, q, /*dc_predictor=*/0);
  ReconstructResidual(pred, InverseDct(Dequantize(q, quality, chroma)), bx,
                      by, recon);
}

}  // namespace

std::vector<uint8_t> EncodeIntra(const Picture& pic, int quality,
                                 Picture* recon) {
  recon->y = Plane::Make(pic.y.width, pic.y.height);
  recon->cb = Plane::Make(pic.cb.width, pic.cb.height);
  recon->cr = Plane::Make(pic.cr.width, pic.cr.height);

  BitWriter writer;
  EncodeIntraPlane(pic.y, quality, /*chroma=*/false, &writer, &recon->y);
  EncodeIntraPlane(pic.cb, quality, /*chroma=*/true, &writer, &recon->cb);
  EncodeIntraPlane(pic.cr, quality, /*chroma=*/true, &writer, &recon->cr);
  return writer.Finish();
}

std::vector<uint8_t> EncodePredicted(const Picture& pic, const Picture& ref,
                                     int quality, int search_range,
                                     Picture* recon) {
  recon->y = Plane::Make(pic.y.width, pic.y.height);
  recon->cb = Plane::Make(pic.cb.width, pic.cb.height);
  recon->cr = Plane::Make(pic.cr.width, pic.cr.height);

  Plane pred_y = Plane::Make(pic.y.width, pic.y.height);
  Plane pred_cb = Plane::Make(pic.cb.width, pic.cb.height);
  Plane pred_cr = Plane::Make(pic.cr.width, pic.cr.height);

  BitWriter writer;
  const int mbw = (pic.y.width + kMacroblockSize - 1) / kMacroblockSize;
  const int mbh = (pic.y.height + kMacroblockSize - 1) / kMacroblockSize;

  for (int my = 0; my < mbh; ++my) {
    for (int mx = 0; mx < mbw; ++mx) {
      const int px = mx * kMacroblockSize;
      const int py = my * kMacroblockSize;
      const MotionVector mv =
          EstimateMotion(pic.y, ref.y, px, py, search_range);
      writer.PutSE(mv.dx);
      writer.PutSE(mv.dy);

      MotionCompensate(ref.y, &pred_y, px, py, mv, kMacroblockSize);
      const MotionVector cmv{mv.dx / 2, mv.dy / 2};
      MotionCompensate(ref.cb, &pred_cb, px / 2, py / 2, cmv, kBlockSize);
      MotionCompensate(ref.cr, &pred_cr, px / 2, py / 2, cmv, kBlockSize);

      // 4 luma blocks, then cb, then cr.
      for (int sub = 0; sub < 4; ++sub) {
        const int bx = 2 * mx + (sub % 2);
        const int by = 2 * my + (sub / 2);
        if (bx * kBlockSize >= pic.y.width || by * kBlockSize >= pic.y.height) {
          continue;  // partial macroblock at the border
        }
        EncodeResidualBlock(pic.y, pred_y, bx, by, quality, /*chroma=*/false,
                            &writer, &recon->y);
      }
      if (mx * kBlockSize < pic.cb.width && my * kBlockSize < pic.cb.height) {
        EncodeResidualBlock(pic.cb, pred_cb, mx, my, quality, /*chroma=*/true,
                            &writer, &recon->cb);
        EncodeResidualBlock(pic.cr, pred_cr, mx, my, quality, /*chroma=*/true,
                            &writer, &recon->cr);
      }
    }
  }
  return writer.Finish();
}

}  // namespace internal

CmvFile EncodeVideo(const media::Video& video, const EncoderOptions& options) {
  CmvFile file;
  file.name = video.name();
  file.width = video.width();
  file.height = video.height();
  file.fps = video.fps();
  file.quality = options.quality;
  file.gop_size = std::max(1, options.gop_size);
  file.frames.reserve(static_cast<size_t>(video.frame_count()));

  Picture recon;
  for (int i = 0; i < video.frame_count(); ++i) {
    const Picture pic = FromImage(video.frame(i));
    FrameRecord rec;
    if (i % file.gop_size == 0) {
      rec.type = FrameType::kIntra;
      rec.payload = internal::EncodeIntra(pic, options.quality, &recon);
    } else {
      rec.type = FrameType::kPredicted;
      Picture next_recon;
      rec.payload = internal::EncodePredicted(
          pic, recon, options.quality, options.search_range, &next_recon);
      recon = std::move(next_recon);
    }
    file.frames.push_back(std::move(rec));
  }
  // Frame 0 is always an I-frame, so the index derivation cannot fail.
  (void)file.RebuildGopIndex();
  return file;
}

}  // namespace classminer::codec

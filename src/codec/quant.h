#ifndef CLASSMINER_CODEC_QUANT_H_
#define CLASSMINER_CODEC_QUANT_H_

#include <array>
#include <cstdint>

#include "codec/bitstream.h"
#include "codec/dct.h"

namespace classminer::codec {

using QuantizedBlock = std::array<int32_t, kBlockPixels>;

// JPEG-style luminance base quantisation matrix scaled by `quality`
// (1 = near-lossless ... 31 = very coarse, MPEG-1 quantiser-scale range).
// Chroma uses the same matrix with a 1.4x factor.
QuantizedBlock Quantize(const Block& freq, int quality, bool chroma);
Block Dequantize(const QuantizedBlock& q, int quality, bool chroma);

// Zig-zag scan order (index in raster order -> scan position).
const std::array<int, kBlockPixels>& ZigzagOrder();

// Entropy-codes a quantised block: DC as a signed exp-Golomb delta against
// `dc_predictor`, AC as (run, level) pairs in zig-zag order with an EOB
// marker. Returns the block's DC value for predictor chaining.
int32_t EncodeBlock(BitWriter* writer, const QuantizedBlock& q,
                    int32_t dc_predictor);

// Inverse of EncodeBlock. On success stores the block and returns its DC
// value (new predictor).
util::StatusOr<int32_t> DecodeBlock(BitReader* reader, QuantizedBlock* q,
                                    int32_t dc_predictor);

}  // namespace classminer::codec

#endif  // CLASSMINER_CODEC_QUANT_H_

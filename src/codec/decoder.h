#ifndef CLASSMINER_CODEC_DECODER_H_
#define CLASSMINER_CODEC_DECODER_H_

#include <vector>

#include "codec/container.h"
#include "codec/dct.h"
#include "media/image.h"
#include "media/video.h"
#include "util/status.h"

namespace classminer::codec {

// Fully decodes a CMV file back into an in-memory video.
util::StatusOr<media::Video> DecodeVideo(const CmvFile& file);

// Compressed-domain fast path: reconstructs the sequence of DC images (one
// luma mean per 8x8 block, i.e. a width/8 x height/8 thumbnail per frame)
// without inverse-transforming AC coefficients. I-frames use their coded DC
// terms directly; P-frames apply motion-vector shifts to the previous DC
// image plus the residual DC (Yeo & Liu-style DC sequence extraction). This
// is what the MPEG-domain shot detector consumes.
util::StatusOr<std::vector<media::GrayImage>> DecodeDcImages(
    const CmvFile& file);

// PSNR (dB) between two equally-sized images; +inf for identical content.
double Psnr(const media::Image& a, const media::Image& b);

}  // namespace classminer::codec

#endif  // CLASSMINER_CODEC_DECODER_H_

#ifndef CLASSMINER_CODEC_DECODER_H_
#define CLASSMINER_CODEC_DECODER_H_

#include <vector>

#include "codec/container.h"
#include "codec/dct.h"
#include "media/image.h"
#include "media/video.h"
#include "util/exec_context.h"
#include "util/salvage.h"
#include "util/status.h"

namespace classminer::codec {

// Fully decodes a CMV file back into an in-memory video. `cancel` (borrowed,
// may be null) is checked between frames, so long decodes stop mid-sequence
// with kCancelled instead of running to completion.
util::StatusOr<media::Video> DecodeVideo(
    const CmvFile& file, const util::CancellationToken* cancel = nullptr);

// Compressed-domain fast path: reconstructs the sequence of DC images (one
// luma mean per 8x8 block, i.e. a width/8 x height/8 thumbnail per frame)
// without inverse-transforming AC coefficients. I-frames use their coded DC
// terms directly; P-frames apply motion-vector shifts to the previous DC
// image plus the residual DC (Yeo & Liu-style DC sequence extraction). This
// is what the MPEG-domain shot detector consumes. `cancel` as above.
util::StatusOr<std::vector<media::GrayImage>> DecodeDcImages(
    const CmvFile& file, const util::CancellationToken* cancel = nullptr);

// Best-effort DC sequence for damaged payloads: a frame whose bitstream
// fails to decode (bit flips survive structural parse — record lengths stay
// intact — and only surface here) is replaced by the previous DC image, and
// the rest of its GOP rides on that substitute until the next I-frame
// resynchronises the stream. Frame indices stay aligned with the container
// so shot boundaries land on real frame numbers. Skipped GOPs land in
// `report` (gops_skipped; pass nullptr to discard). Fails only when not a
// single frame decodes.
util::StatusOr<std::vector<media::GrayImage>> DecodeDcImagesSalvage(
    const CmvFile& file, util::SalvageReport* report,
    const util::CancellationToken* cancel = nullptr);

// PSNR (dB) between two equally-sized images; +inf for identical content.
double Psnr(const media::Image& a, const media::Image& b);

namespace internal {

// Decodes one frame record into a full pixel reconstruction. For kIntra
// frames `ref` is ignored; for kPredicted frames `ref` must hold the
// previous reconstruction at the same dimensions. This is the shared
// per-frame core of DecodeVideo and GopReader, so selective GOP decode is
// bit-identical to the sequential full decode by construction.
//
// `scratch` (may be null → heap) backs the returned picture's planes and
// the transient prediction planes. An arena-backed picture is only valid
// until the arena resets; callers double-buffer two arenas so the previous
// reconstruction stays live while the next frame decodes (see DecodeVideo).
util::StatusOr<Picture> DecodePicture(const FrameRecord& rec, int width,
                                      int height, int quality,
                                      const Picture* ref,
                                      std::pmr::memory_resource* scratch =
                                          nullptr);

}  // namespace internal
}  // namespace classminer::codec

#endif  // CLASSMINER_CODEC_DECODER_H_

#ifndef CLASSMINER_CODEC_GOP_READER_H_
#define CLASSMINER_CODEC_GOP_READER_H_

#include <vector>

#include "codec/container.h"
#include "media/image.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace classminer::codec {

// Random-access GOP decoder over a CMV container. Each GOP opens with an
// I-frame, so decoding it needs no state from earlier GOPs: the reader
// seeks straight to the GOP's frame records and runs the shared per-frame
// decode core (internal::DecodePicture) over them. Output is therefore
// bit-identical to the corresponding slice of a full DecodeVideo pass.
//
// The reader borrows the file; it must outlive the reader. The reader
// itself is immutable after Create and safe to share across threads.
class GopReader {
 public:
  // Validates dimensions and the GOP index (using the file's stored index,
  // or deriving one when the file carries none).
  static util::StatusOr<GopReader> Create(const CmvFile* file);

  int gop_count() const { return static_cast<int>(index_.size()); }
  int frame_count() const { return file_->frame_count(); }
  const GopIndexEntry& gop(int g) const {
    return index_[static_cast<size_t>(g)];
  }
  // Index of the GOP containing `frame_index`, or -1 when out of range.
  int GopOfFrame(int frame_index) const;

  // Decodes every frame of GOP `g` (in stream order, starting at its
  // I-frame). `cancel` (borrowed, may be null) is checked between frames.
  util::StatusOr<std::vector<media::Image>> DecodeGop(
      int g, const util::CancellationToken* cancel = nullptr) const;

 private:
  GopReader(const CmvFile* file, std::vector<GopIndexEntry> index)
      : file_(file), index_(std::move(index)) {}

  const CmvFile* file_;
  std::vector<GopIndexEntry> index_;
};

}  // namespace classminer::codec

#endif  // CLASSMINER_CODEC_GOP_READER_H_

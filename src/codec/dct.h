#ifndef CLASSMINER_CODEC_DCT_H_
#define CLASSMINER_CODEC_DCT_H_

#include <array>
#include <cstdint>
#include <memory_resource>
#include <vector>

#include "media/image.h"

namespace classminer::codec {

inline constexpr int kBlockSize = 8;
inline constexpr int kBlockPixels = kBlockSize * kBlockSize;

using Block = std::array<double, kBlockPixels>;

// Type-II 2-D DCT of an 8x8 block (orthonormal scaling). Dispatches to an
// AVX2 kernel when util::ActiveDispatchLevel() allows; the vector path
// parallelises across *output* lanes so each coefficient's accumulation
// order is unchanged and results are bit-identical to the scalar kernel.
Block ForwardDct(const Block& spatial);

// Inverse (type-III) 2-D DCT. Same dispatch and bit-identity contract.
Block InverseDct(const Block& freq);

namespace internal {

// Shared cosine basis: basis[u][x] = c(u) cos((2x+1) u pi / 16), plus its
// transpose (basis_t[x][u]) for lane-parallel kernels. One definition so
// scalar and vector paths fold the exact same coefficients.
struct DctTables {
  double basis[kBlockSize][kBlockSize];
  double basis_t[kBlockSize][kBlockSize];
};
const DctTables& Tables();

// Reference kernels (portable C++); the dispatch targets below must match
// them bit-for-bit on every input.
Block ForwardDctScalar(const Block& spatial);
Block InverseDctScalar(const Block& freq);

// AVX2 kernels (x86-64 only). Callable only when DctAccelAvailable().
bool DctAccelAvailable();
Block ForwardDctAccel(const Block& spatial);
Block InverseDctAccel(const Block& freq);

}  // namespace internal

// A planar 8-bit single-channel image with row-major storage, padded as the
// caller wishes. Thin alias over GrayImage-like storage but with int16
// headroom for residuals.
//
// Storage is pmr so per-frame planes can live in a bump arena (util::Arena)
// during decode. The usual pmr rules apply: a copy always lands on the
// default heap resource (safe to keep past the arena), while a *move*
// carries the arena resource with it — only move-construct arena-backed
// planes into objects scoped inside the arena's lifetime, and never
// move-assign across resources (the element-wise fallback silently
// reallocates from the destination's resource).
struct Plane {
  int width = 0;
  int height = 0;
  // Typically in [0, 255] or residual range.
  std::pmr::vector<int16_t> samples;

  int16_t at(int x, int y) const {
    return samples[static_cast<size_t>(y) * width + x];
  }
  void set(int x, int y, int16_t v) {
    samples[static_cast<size_t>(y) * width + x] = v;
  }
  // Null `mr` means the default (heap) resource. The vector is *constructed*
  // on `mr` (assignment would fall back to the member's default resource).
  static Plane Make(int w, int h, int16_t fill = 0,
                    std::pmr::memory_resource* mr = nullptr) {
    return Plane{w, h,
                 std::pmr::vector<int16_t>(
                     static_cast<size_t>(w) * h, fill,
                     mr != nullptr ? mr : std::pmr::get_default_resource())};
  }
};

// YCbCr 4:2:0 picture: full-resolution luma, half-resolution chroma.
struct Picture {
  Plane y;
  Plane cb;
  Plane cr;
};

// BT.601 RGB <-> YCbCr 4:2:0 conversion. Dimensions are rounded up to even
// for chroma subsampling; ToImage crops back to (width, height).
Picture FromImage(const media::Image& image);
media::Image ToImage(const Picture& picture, int width, int height);

// Extracts an 8x8 block at (bx*8, by*8) from `plane`, replicating edge
// samples beyond bounds; returns samples centred by -128 for luma-style
// planes when `center` is true.
Block GetBlock(const Plane& plane, int bx, int by, bool center);

// Writes the block back, clamping to [0, 255] (after +128 when `center`).
void PutBlock(Plane* plane, int bx, int by, const Block& block, bool center);

}  // namespace classminer::codec

#endif  // CLASSMINER_CODEC_DCT_H_

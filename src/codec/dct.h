#ifndef CLASSMINER_CODEC_DCT_H_
#define CLASSMINER_CODEC_DCT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "media/image.h"

namespace classminer::codec {

inline constexpr int kBlockSize = 8;
inline constexpr int kBlockPixels = kBlockSize * kBlockSize;

using Block = std::array<double, kBlockPixels>;

// Type-II 2-D DCT of an 8x8 block (orthonormal scaling).
Block ForwardDct(const Block& spatial);

// Inverse (type-III) 2-D DCT.
Block InverseDct(const Block& freq);

// A planar 8-bit single-channel image with row-major storage, padded as the
// caller wishes. Thin alias over GrayImage-like storage but with int16
// headroom for residuals.
struct Plane {
  int width = 0;
  int height = 0;
  std::vector<int16_t> samples;  // typically in [0, 255] or residual range

  int16_t at(int x, int y) const {
    return samples[static_cast<size_t>(y) * width + x];
  }
  void set(int x, int y, int16_t v) {
    samples[static_cast<size_t>(y) * width + x] = v;
  }
  static Plane Make(int w, int h, int16_t fill = 0) {
    Plane p;
    p.width = w;
    p.height = h;
    p.samples.assign(static_cast<size_t>(w) * h, fill);
    return p;
  }
};

// YCbCr 4:2:0 picture: full-resolution luma, half-resolution chroma.
struct Picture {
  Plane y;
  Plane cb;
  Plane cr;
};

// BT.601 RGB <-> YCbCr 4:2:0 conversion. Dimensions are rounded up to even
// for chroma subsampling; ToImage crops back to (width, height).
Picture FromImage(const media::Image& image);
media::Image ToImage(const Picture& picture, int width, int height);

// Extracts an 8x8 block at (bx*8, by*8) from `plane`, replicating edge
// samples beyond bounds; returns samples centred by -128 for luma-style
// planes when `center` is true.
Block GetBlock(const Plane& plane, int bx, int by, bool center);

// Writes the block back, clamping to [0, 255] (after +128 when `center`).
void PutBlock(Plane* plane, int bx, int by, const Block& block, bool center);

}  // namespace classminer::codec

#endif  // CLASSMINER_CODEC_DCT_H_

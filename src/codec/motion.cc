#include "codec/motion.h"

#include <algorithm>
#include <cstdlib>

#include "util/cpu.h"

namespace classminer::codec {
namespace {

int16_t SampleClamped(const Plane& p, int x, int y) {
  x = std::clamp(x, 0, p.width - 1);
  y = std::clamp(y, 0, p.height - 1);
  return p.at(x, y);
}

// True when both 16x16 footprints lie fully inside their planes, so no
// per-sample clamping or partial-row logic is needed.
bool SadInterior(const Plane& cur, const Plane& ref, int mx, int my, int dx,
                 int dy) {
  return mx >= 0 && my >= 0 && mx + kMacroblockSize <= cur.width &&
         my + kMacroblockSize <= cur.height && mx + dx >= 0 && my + dy >= 0 &&
         mx + dx + kMacroblockSize <= ref.width &&
         my + dy + kMacroblockSize <= ref.height;
}

}  // namespace

namespace internal {

int64_t MacroblockSadScalar(const Plane& cur, const Plane& ref, int mx,
                            int my, int dx, int dy) {
  int64_t sad = 0;
  for (int y = 0; y < kMacroblockSize; ++y) {
    const int cy = my + y;
    if (cy >= cur.height) break;
    for (int x = 0; x < kMacroblockSize; ++x) {
      const int cx = mx + x;
      if (cx >= cur.width) break;
      sad += std::abs(static_cast<int>(cur.at(cx, cy)) -
                      SampleClamped(ref, cx + dx, cy + dy));
    }
  }
  return sad;
}

}  // namespace internal

int64_t MacroblockSad(const Plane& cur, const Plane& ref, int mx, int my,
                      int dx, int dy) {
  if (util::ActiveDispatchLevel() >= util::DispatchLevel::kAvx2 &&
      internal::SadAccelAvailable() && SadInterior(cur, ref, mx, my, dx, dy)) {
    return internal::MacroblockSadAccel(cur, ref, mx, my, dx, dy);
  }
  return internal::MacroblockSadScalar(cur, ref, mx, my, dx, dy);
}

MotionVector EstimateMotion(const Plane& cur, const Plane& ref, int mx,
                            int my, int range) {
  MotionVector best{0, 0};
  int64_t best_sad = MacroblockSad(cur, ref, mx, my, 0, 0);
  if (best_sad == 0) return best;
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const int64_t sad = MacroblockSad(cur, ref, mx, my, dx, dy);
      // Slight zero bias: prefer shorter vectors on ties.
      const int64_t penalty = std::abs(dx) + std::abs(dy);
      if (sad + penalty < best_sad) {
        best_sad = sad + penalty;
        best = MotionVector{dx, dy};
      }
    }
  }
  return best;
}

void MotionCompensate(const Plane& ref, Plane* pred, int mx, int my,
                      MotionVector mv, int block_size) {
  for (int y = 0; y < block_size; ++y) {
    const int py = my + y;
    if (py >= pred->height) break;
    for (int x = 0; x < block_size; ++x) {
      const int px = mx + x;
      if (px >= pred->width) break;
      pred->set(px, py, SampleClamped(ref, px + mv.dx, py + mv.dy));
    }
  }
}

}  // namespace classminer::codec

#include "codec/gop_reader.h"

#include <optional>
#include <string>
#include <utility>

#include "codec/decoder.h"
#include "codec/dct.h"
#include "util/arena.h"
#include "util/failpoint.h"

namespace classminer::codec {

util::StatusOr<GopReader> GopReader::Create(const CmvFile* file) {
  if (file == nullptr) {
    return util::Status::InvalidArgument("null CMV file");
  }
  if (file->width <= 0 || file->height <= 0) {
    return util::Status::InvalidArgument("CMV file has empty dimensions");
  }
  // The stored index is untrusted input (it may come off disk); a derived
  // index is authoritative. Files without one (hand-built in tests, legacy
  // containers) get the derived index transparently.
  util::StatusOr<std::vector<GopIndexEntry>> derived =
      CmvFile::DeriveGopIndex(file->frames);
  if (!derived.ok()) return derived.status();
  if (!file->gop_index.empty() && file->gop_index != *derived) {
    return util::Status::DataLoss(
        "GOP index inconsistent with frame records");
  }
  return GopReader(file, std::move(derived).value());
}

int GopReader::GopOfFrame(int frame_index) const {
  if (index_.empty() || frame_index < 0 || frame_index >= frame_count()) {
    return -1;
  }
  int lo = 0;
  int hi = gop_count() - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (index_[static_cast<size_t>(mid)].start_frame <= frame_index) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

util::StatusOr<std::vector<media::Image>> GopReader::DecodeGop(
    int g, const util::CancellationToken* cancel) const {
  CLASSMINER_RETURN_IF_ERROR(
      util::FailPoint::Check("codec.gop_reader.decode_gop"));
  if (g < 0 || g >= gop_count()) {
    return util::Status::OutOfRange("GOP index " + std::to_string(g) +
                                    " outside [0, " +
                                    std::to_string(gop_count()) + ")");
  }
  const GopIndexEntry& entry = index_[static_cast<size_t>(g)];
  std::vector<media::Image> frames;
  frames.reserve(static_cast<size_t>(entry.frame_count));
  // Same double-buffered arena scheme as DecodeVideo: the frame being
  // decoded and its reference live in alternating arenas; the arena being
  // reset only holds the frame from two steps back.
  util::Arena arenas[2];
  std::optional<Picture> slots[2];
  const Picture* recon = nullptr;
  for (int i = 0; i < entry.frame_count; ++i) {
    if (cancel != nullptr && cancel->cancelled()) {
      return util::Status::Cancelled("GOP decode cancelled");
    }
    const FrameRecord& rec =
        file_->frames[static_cast<size_t>(entry.start_frame + i)];
    util::Arena& frame_arena = arenas[i % 2];
    slots[i % 2].reset();
    frame_arena.Reset();
    util::StatusOr<Picture> next = internal::DecodePicture(
        rec, file_->width, file_->height, file_->quality,
        i == 0 ? nullptr : recon, &frame_arena);
    CLASSMINER_RETURN_IF_ERROR(next.status());
    recon = &slots[i % 2].emplace(std::move(*next));
    frames.push_back(ToImage(*recon, file_->width, file_->height));
  }
  return frames;
}

}  // namespace classminer::codec

#ifndef CLASSMINER_CODEC_CONTAINER_H_
#define CLASSMINER_CODEC_CONTAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace classminer::codec {

enum class FrameType : uint8_t { kIntra = 0, kPredicted = 1 };

// One encoded frame: type + entropy-coded payload.
struct FrameRecord {
  FrameType type = FrameType::kIntra;
  std::vector<uint8_t> payload;
};

// The "CMV" container: sequence header, GOP-structured frame records and an
// optional mono PCM audio track. This is the at-rest representation of a
// video in the database (the stand-in for the paper's MPEG-I files).
struct CmvFile {
  static constexpr uint32_t kMagic = 0x31564d43;  // "CMV1"

  std::string name;
  int width = 0;
  int height = 0;
  double fps = 25.0;
  int quality = 8;    // quantiser scale used at encode time
  int gop_size = 12;  // I-frame period

  std::vector<FrameRecord> frames;

  int audio_sample_rate = 0;       // 0 = no audio track
  std::vector<float> audio_pcm;    // mono samples in [-1, 1]

  int frame_count() const { return static_cast<int>(frames.size()); }

  // Total encoded video payload size in bytes (excludes header/audio).
  size_t VideoPayloadBytes() const;

  std::vector<uint8_t> Serialize() const;
  static util::StatusOr<CmvFile> Parse(const std::vector<uint8_t>& bytes);

  util::Status SaveToFile(const std::string& path) const;
  static util::StatusOr<CmvFile> LoadFromFile(const std::string& path);
};

}  // namespace classminer::codec

#endif  // CLASSMINER_CODEC_CONTAINER_H_

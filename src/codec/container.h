#ifndef CLASSMINER_CODEC_CONTAINER_H_
#define CLASSMINER_CODEC_CONTAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/salvage.h"
#include "util/status.h"

namespace classminer::codec {

enum class FrameType : uint8_t { kIntra = 0, kPredicted = 1 };

// One encoded frame: type + entropy-coded payload.
struct FrameRecord {
  FrameType type = FrameType::kIntra;
  std::vector<uint8_t> payload;
};

// One entry of the per-GOP random-access index: each GOP starts at an
// I-frame and covers the run of P-frames up to (excluding) the next
// I-frame. Byte offsets address the concatenated video payload stream (the
// frame payloads in order, headers excluded), so a reader holding the index
// can seek to and decode an arbitrary GOP without touching the rest of the
// bitstream.
struct GopIndexEntry {
  int start_frame = 0;      // index of the GOP's opening I-frame
  int frame_count = 0;      // frames in this GOP (the I-frame + its P-run)
  uint64_t byte_offset = 0; // offset of the I-frame payload in the stream
  uint64_t byte_size = 0;   // total payload bytes of the GOP's frames

  friend bool operator==(const GopIndexEntry&, const GopIndexEntry&) =
      default;
};

// The "CMV" container: sequence header, GOP-structured frame records, a
// per-GOP seek index and an optional mono PCM audio track. This is the
// at-rest representation of a video in the database (the stand-in for the
// paper's MPEG-I files).
//
// Two on-disk generations share the layout: "CMV1" frame records are
// (type u8, size u32, payload); "CMV2" appends a CRC-32 over type+payload
// to every record, so a bit-flip is detected at the record that took it
// (and the best-effort parser can resynchronise onto a checksum-confirmed
// record after a tear). Writers emit CMV2 unless `record_checksums` is
// cleared; CMV1-era files (with or without the GIDX section) still load
// bit-identically.
struct CmvFile {
  static constexpr uint32_t kMagic = 0x31564d43;      // "CMV1"
  static constexpr uint32_t kMagicV2 = 0x32564d43;    // "CMV2"
  static constexpr uint32_t kGopIndexMagic = 0x58444947;  // "GIDX"

  std::string name;
  int width = 0;
  int height = 0;
  double fps = 25.0;
  int quality = 8;    // quantiser scale used at encode time
  int gop_size = 12;  // I-frame period

  std::vector<FrameRecord> frames;

  // Seek index, one entry per GOP in stream order. The encoder emits it;
  // Parse validates a stored index against the frame records (corrupt or
  // truncated indexes fail with DataLoss) and rebuilds it for legacy
  // containers that predate the index section.
  std::vector<GopIndexEntry> gop_index;

  // Whether frame records carry a trailing CRC-32 (the CMV2 format).
  // Parse sets it from the magic, so legacy files round-trip byte-stable;
  // freshly encoded containers default to checksummed.
  bool record_checksums = true;

  int audio_sample_rate = 0;       // 0 = no audio track
  std::vector<float> audio_pcm;    // mono samples in [-1, 1]

  int frame_count() const { return static_cast<int>(frames.size()); }
  int gop_count() const { return static_cast<int>(gop_index.size()); }

  // Total encoded video payload size in bytes (excludes header/audio).
  size_t VideoPayloadBytes() const;

  // Derives the GOP index from the frame records (I-frame positions and
  // payload sizes). Fails when the stream does not open with an I-frame.
  static util::StatusOr<std::vector<GopIndexEntry>> DeriveGopIndex(
      const std::vector<FrameRecord>& frames);
  // Recomputes `gop_index` in place from `frames`.
  util::Status RebuildGopIndex();
  // Index of the GOP containing `frame_index` (binary search), or -1 when
  // out of range / the index is empty.
  int GopOfFrame(int frame_index) const;

  // Serializability guard: every collection Serialize() writes behind a u32
  // length prefix (frame count, per-frame payload size, audio samples, GOP
  // index entries, the name) must actually fit one, or the narrowing cast
  // would silently truncate the count into a corrupt-but-checksum-valid
  // file. Returns kInvalidArgument naming the offending field. SaveToFile
  // checks it before writing.
  util::Status ValidateForSerialize() const;

  std::vector<uint8_t> Serialize() const;
  // Strict parse: any structural damage — truncation, bad magic, an
  // inconsistent index — fails with DataLoss (messages carry the section
  // name and byte offset of the damage).
  static util::StatusOr<CmvFile> Parse(const std::vector<uint8_t>& bytes);

  // Best-effort parse for damaged containers: recovers the valid frame
  // prefix from a truncated or bit-flipped stream (dropping a torn trailing
  // record), drops leading undecodable P-frames, survives a corrupt audio
  // track by dropping it, and rebuilds a corrupt or missing GOP index from
  // the recovered records. For checksummed (CMV2) containers it goes
  // further: after a tear it scans forward for the next checksum-confirmed
  // I-frame record (or the audio/GIDX trailer) and recovers the suffix
  // behind the damage too, itemising every dropped span in `report`
  // (resync_points counts the tears crossed). What was dropped/rebuilt
  // lands in `report` (never null semantics: pass nullptr to discard).
  // Fails only when the header is unreadable or no decodable GOP survives.
  static util::StatusOr<CmvFile> ParseBestEffort(
      const std::vector<uint8_t>& bytes, util::SalvageReport* report);

  util::Status SaveToFile(const std::string& path) const;
  static util::StatusOr<CmvFile> LoadFromFile(const std::string& path);
  static util::StatusOr<CmvFile> LoadFromFileBestEffort(
      const std::string& path, util::SalvageReport* report);
};

}  // namespace classminer::codec

#endif  // CLASSMINER_CODEC_CONTAINER_H_

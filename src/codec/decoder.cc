#include "codec/decoder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "codec/bitstream.h"
#include "codec/motion.h"
#include "codec/quant.h"
#include "util/arena.h"
#include "util/failpoint.h"

namespace classminer::codec {
namespace {

int BlocksAcross(int extent) { return (extent + kBlockSize - 1) / kBlockSize; }

// Decodes an intra plane. When `dc_only` is set, AC coefficients are parsed
// but not inverse-transformed, and only the per-block mean (DC/8 + 128) is
// stored into `dc_out`.
util::Status DecodeIntraPlane(BitReader* reader, int quality, bool chroma,
                              Plane* plane, bool dc_only,
                              std::vector<double>* dc_out) {
  const int bw = BlocksAcross(plane->width);
  const int bh = BlocksAcross(plane->height);
  int32_t dc_pred = 0;
  QuantizedBlock q;
  for (int by = 0; by < bh; ++by) {
    for (int bx = 0; bx < bw; ++bx) {
      util::StatusOr<int32_t> dc = DecodeBlock(reader, &q, dc_pred);
      if (!dc.ok()) return dc.status();
      dc_pred = *dc;
      if (dc_only) {
        if (dc_out != nullptr) {
          const Block deq = Dequantize(q, quality, chroma);
          dc_out->push_back(deq[0] / kBlockSize + 128.0);
        }
        continue;
      }
      const Block deq = Dequantize(q, quality, chroma);
      PutBlock(plane, bx, by, InverseDct(deq), /*center=*/true);
    }
  }
  return util::Status::Ok();
}

struct PFrameSink {
  // Full decode targets (null in DC-only mode).
  Picture* recon = nullptr;
  const Picture* ref = nullptr;
  // DC-only targets.
  media::GrayImage* dc_image = nullptr;
  const media::GrayImage* prev_dc = nullptr;
};

// Walks a P-frame payload. In full mode reconstructs the picture; in DC
// mode updates the DC thumbnail with motion-shifted previous DC + residual
// DC means. Layout must mirror EncodePredicted. `scratch` (null → heap)
// backs the transient prediction planes in full mode.
util::Status DecodePredictedFrame(BitReader* reader, int width, int height,
                                  int quality, PFrameSink* sink,
                                  std::pmr::memory_resource* scratch =
                                      nullptr) {
  const int mbw = (width + kMacroblockSize - 1) / kMacroblockSize;
  const int mbh = (height + kMacroblockSize - 1) / kMacroblockSize;
  const int cbw = ((width + 1) / 2);
  const int cbh = ((height + 1) / 2);

  const bool full = sink->recon != nullptr;
  Plane pred_y = full ? Plane::Make(width, height, 0, scratch) : Plane();
  Plane pred_cb = full ? Plane::Make(cbw, cbh, 0, scratch) : Plane();
  Plane pred_cr = full ? Plane::Make(cbw, cbh, 0, scratch) : Plane();

  QuantizedBlock q;
  for (int my = 0; my < mbh; ++my) {
    for (int mx = 0; mx < mbw; ++mx) {
      util::StatusOr<int32_t> dx = reader->GetSE();
      if (!dx.ok()) return dx.status();
      util::StatusOr<int32_t> dy = reader->GetSE();
      if (!dy.ok()) return dy.status();
      const MotionVector mv{*dx, *dy};

      const int px = mx * kMacroblockSize;
      const int py = my * kMacroblockSize;
      if (full) {
        MotionCompensate(sink->ref->y, &pred_y, px, py, mv, kMacroblockSize);
        const MotionVector cmv{mv.dx / 2, mv.dy / 2};
        MotionCompensate(sink->ref->cb, &pred_cb, px / 2, py / 2, cmv,
                         kBlockSize);
        MotionCompensate(sink->ref->cr, &pred_cr, px / 2, py / 2, cmv,
                         kBlockSize);
      }

      for (int sub = 0; sub < 4; ++sub) {
        const int bx = 2 * mx + (sub % 2);
        const int by = 2 * my + (sub / 2);
        if (bx * kBlockSize >= width || by * kBlockSize >= height) continue;
        util::StatusOr<int32_t> dc = DecodeBlock(reader, &q, 0);
        if (!dc.ok()) return dc.status();
        const Block deq = Dequantize(q, quality, /*chroma=*/false);
        if (full) {
          const Block residual = InverseDct(deq);
          for (int y = 0; y < kBlockSize; ++y) {
            const int yy = by * kBlockSize + y;
            if (yy >= height) break;
            for (int x = 0; x < kBlockSize; ++x) {
              const int xx = bx * kBlockSize + x;
              if (xx >= width) break;
              const double v =
                  pred_y.at(xx, yy) +
                  residual[static_cast<size_t>(y) * kBlockSize + x];
              sink->recon->y.set(
                  xx, yy,
                  static_cast<int16_t>(std::lround(std::clamp(v, 0.0, 255.0))));
            }
          }
        } else if (sink->dc_image != nullptr) {
          // DC-resolution motion compensation: sample the previous DC image
          // at the vector-shifted position (rounded to DC grid).
          const media::GrayImage& prev = *sink->prev_dc;
          const int sx = std::clamp(
              bx + static_cast<int>(std::lround(mv.dx / 8.0)), 0,
              prev.width() - 1);
          const int sy = std::clamp(
              by + static_cast<int>(std::lround(mv.dy / 8.0)), 0,
              prev.height() - 1);
          const double base = prev.at(sx, sy);
          const double mean = base + deq[0] / kBlockSize;
          if (bx < sink->dc_image->width() && by < sink->dc_image->height()) {
            sink->dc_image->set(
                bx, by,
                static_cast<uint8_t>(std::lround(std::clamp(mean, 0.0, 255.0))));
          }
        }
      }
      if (mx * kBlockSize < cbw && my * kBlockSize < cbh) {
        for (int c = 0; c < 2; ++c) {
          util::StatusOr<int32_t> dc = DecodeBlock(reader, &q, 0);
          if (!dc.ok()) return dc.status();
          if (full) {
            const Block deq = Dequantize(q, quality, /*chroma=*/true);
            const Block residual = InverseDct(deq);
            Plane& out = (c == 0) ? sink->recon->cb : sink->recon->cr;
            const Plane& pred = (c == 0) ? pred_cb : pred_cr;
            for (int y = 0; y < kBlockSize; ++y) {
              const int yy = my * kBlockSize + y;
              if (yy >= out.height) break;
              for (int x = 0; x < kBlockSize; ++x) {
                const int xx = mx * kBlockSize + x;
                if (xx >= out.width) break;
                const double v =
                    pred.at(xx, yy) +
                    residual[static_cast<size_t>(y) * kBlockSize + x];
                out.set(xx, yy,
                        static_cast<int16_t>(
                            std::lround(std::clamp(v, 0.0, 255.0))));
              }
            }
          }
        }
      }
    }
  }
  return util::Status::Ok();
}

// Decodes the DC image of frame `i` into *dc (sized dcw x dch). `prev` is
// the previous frame's DC image (empty for the first frame).
util::Status DecodeDcFrame(const CmvFile& file, size_t i,
                           const media::GrayImage& prev, int dcw, int dch,
                           media::GrayImage* dc) {
  const FrameRecord& rec = file.frames[i];
  BitReader reader(rec.payload);
  if (rec.type == FrameType::kIntra) {
    // Dims-only plane: the DC-only intra walk never touches samples, so
    // skip the width*height allocation entirely.
    Plane y_dims;
    y_dims.width = file.width;
    y_dims.height = file.height;
    std::vector<double> dcs;
    dcs.reserve(static_cast<size_t>(dcw) * dch);
    CLASSMINER_RETURN_IF_ERROR(DecodeIntraPlane(
        &reader, file.quality, false, &y_dims, /*dc_only=*/true, &dcs));
    for (int by = 0; by < dch; ++by) {
      for (int bx = 0; bx < dcw; ++bx) {
        const double v = dcs[static_cast<size_t>(by) * dcw + bx];
        dc->set(bx, by,
                static_cast<uint8_t>(std::lround(std::clamp(v, 0.0, 255.0))));
      }
    }
    // Chroma planes still occupy the bitstream; no need to parse them for
    // the luma-only DC series (payloads are length-delimited per frame).
    return util::Status::Ok();
  }
  if (i == 0) return util::Status::DataLoss("stream starts with P-frame");
  PFrameSink sink;
  sink.dc_image = dc;
  sink.prev_dc = &prev;
  return DecodePredictedFrame(&reader, file.width, file.height, file.quality,
                              &sink);
}

}  // namespace

namespace internal {

util::StatusOr<Picture> DecodePicture(const FrameRecord& rec, int width,
                                      int height, int quality,
                                      const Picture* ref,
                                      std::pmr::memory_resource* scratch) {
  const int cw = (width + 1) / 2;
  const int ch = (height + 1) / 2;
  BitReader reader(rec.payload);
  // Planes are constructed on `scratch` and the picture returned by move,
  // which preserves the resource (assignment through an existing Picture
  // would not — see Plane).
  Picture out{Plane::Make(width, height, 0, scratch),
              Plane::Make(cw, ch, 0, scratch),
              Plane::Make(cw, ch, 0, scratch)};
  if (rec.type == FrameType::kIntra) {
    CLASSMINER_RETURN_IF_ERROR(
        DecodeIntraPlane(&reader, quality, false, &out.y, false, nullptr));
    CLASSMINER_RETURN_IF_ERROR(
        DecodeIntraPlane(&reader, quality, true, &out.cb, false, nullptr));
    CLASSMINER_RETURN_IF_ERROR(
        DecodeIntraPlane(&reader, quality, true, &out.cr, false, nullptr));
    return out;
  }
  if (ref == nullptr) {
    return util::Status::DataLoss("P-frame without a reference picture");
  }
  PFrameSink sink;
  sink.recon = &out;
  sink.ref = ref;
  CLASSMINER_RETURN_IF_ERROR(
      DecodePredictedFrame(&reader, width, height, quality, &sink, scratch));
  return out;
}

}  // namespace internal

util::StatusOr<media::Video> DecodeVideo(
    const CmvFile& file, const util::CancellationToken* cancel) {
  CLASSMINER_RETURN_IF_ERROR(util::FailPoint::Check("codec.decode_video"));
  if (file.width <= 0 || file.height <= 0) {
    return util::Status::InvalidArgument("CMV file has empty dimensions");
  }
  media::Video video(file.name, file.fps);
  video.Reserve(file.frames.size());

  // Double-buffered bump arenas: frame i decodes into arena i % 2 while the
  // previous reconstruction (the P-frame reference) stays live in the other
  // one. Resetting an arena only discards the frame from two steps back,
  // which nothing references any more. The decoded pixels escape into the
  // video as heap-backed Images, never as arena memory.
  util::Arena arenas[2];
  std::optional<Picture> slots[2];
  const Picture* recon = nullptr;
  for (size_t i = 0; i < file.frames.size(); ++i) {
    if (cancel != nullptr && cancel->cancelled()) {
      return util::Status::Cancelled("video decode cancelled");
    }
    const FrameRecord& rec = file.frames[i];
    if (rec.type != FrameType::kIntra && i == 0) {
      return util::Status::DataLoss("stream starts with P-frame");
    }
    util::Arena& frame_arena = arenas[i % 2];
    slots[i % 2].reset();
    frame_arena.Reset();
    util::StatusOr<Picture> next = internal::DecodePicture(
        rec, file.width, file.height, file.quality,
        rec.type == FrameType::kIntra ? nullptr : recon, &frame_arena);
    CLASSMINER_RETURN_IF_ERROR(next.status());
    recon = &slots[i % 2].emplace(std::move(*next));
    video.AppendFrame(ToImage(*recon, file.width, file.height));
  }
  return video;
}

util::StatusOr<std::vector<media::GrayImage>> DecodeDcImages(
    const CmvFile& file, const util::CancellationToken* cancel) {
  if (file.width <= 0 || file.height <= 0) {
    return util::Status::InvalidArgument("CMV file has empty dimensions");
  }
  const int dcw = BlocksAcross(file.width);
  const int dch = BlocksAcross(file.height);

  std::vector<media::GrayImage> out;
  out.reserve(file.frames.size());
  media::GrayImage prev;
  for (size_t i = 0; i < file.frames.size(); ++i) {
    if (cancel != nullptr && cancel->cancelled()) {
      return util::Status::Cancelled("DC image extraction cancelled");
    }
    media::GrayImage dc(dcw, dch);
    CLASSMINER_RETURN_IF_ERROR(DecodeDcFrame(file, i, prev, dcw, dch, &dc));
    prev = dc;
    out.push_back(std::move(dc));
  }
  return out;
}

util::StatusOr<std::vector<media::GrayImage>> DecodeDcImagesSalvage(
    const CmvFile& file, util::SalvageReport* report,
    const util::CancellationToken* cancel) {
  util::SalvageReport local;
  if (report == nullptr) report = &local;
  if (file.width <= 0 || file.height <= 0) {
    return util::Status::InvalidArgument("CMV file has empty dimensions");
  }
  const int dcw = BlocksAcross(file.width);
  const int dch = BlocksAcross(file.height);

  std::vector<media::GrayImage> out;
  out.reserve(file.frames.size());
  media::GrayImage prev(dcw, dch);  // mid-frame fallback when frame 0 fails
  for (int x = 0; x < dcw; ++x) {
    for (int y = 0; y < dch; ++y) prev.set(x, y, 128);
  }
  int decoded = 0;
  // Once a frame in a GOP fails, every P-frame until the next I-frame
  // predicts from garbage; hold the last good DC image until the stream
  // resynchronises at an I-frame.
  bool skipping = false;
  for (size_t i = 0; i < file.frames.size(); ++i) {
    if (cancel != nullptr && cancel->cancelled()) {
      return util::Status::Cancelled("DC image extraction cancelled");
    }
    const bool intra = file.frames[i].type == FrameType::kIntra;
    if (skipping && intra) skipping = false;
    media::GrayImage dc(dcw, dch);
    util::Status frame = skipping
                             ? util::Status::DataLoss("GOP lost upstream")
                             : DecodeDcFrame(file, i, prev, dcw, dch, &dc);
    if (frame.ok()) {
      ++decoded;
      prev = dc;
      out.push_back(std::move(dc));
      continue;
    }
    if (!skipping) {
      skipping = true;
      report->gops_skipped += 1;
      report->AddNote("decode: frame " + std::to_string(i) + ": " +
                      frame.message());
    }
    report->items_dropped += 1;
    out.push_back(prev);  // keep frame indices aligned with the container
  }
  if (decoded == 0 && !file.frames.empty()) {
    return util::Status::DataLoss("no frame in the stream decodes");
  }
  report->items_recovered += decoded;
  return out;
}

double Psnr(const media::Image& a, const media::Image& b) {
  const int w = std::min(a.width(), b.width());
  const int h = std::min(a.height(), b.height());
  if (w == 0 || h == 0) return 0.0;
  double mse = 0.0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const media::Rgb pa = a.at(x, y);
      const media::Rgb pb = b.at(x, y);
      const double dr = static_cast<double>(pa.r) - pb.r;
      const double dg = static_cast<double>(pa.g) - pb.g;
      const double db = static_cast<double>(pa.b) - pb.b;
      mse += (dr * dr + dg * dg + db * db) / 3.0;
    }
  }
  mse /= static_cast<double>(w) * h;
  if (mse <= 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace classminer::codec

#ifndef CLASSMINER_CODEC_BITSTREAM_H_
#define CLASSMINER_CODEC_BITSTREAM_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace classminer::codec {

// MSB-first bit writer used by the entropy coder.
class BitWriter {
 public:
  void PutBit(int bit);
  void PutBits(uint32_t value, int count);  // writes `count` low bits, MSB first

  // Unsigned exp-Golomb code (H.264-style): v >= 0.
  void PutUE(uint32_t v);
  // Signed exp-Golomb: 0, 1, -1, 2, -2, ...
  void PutSE(int32_t v);

  // Pads with zero bits to a byte boundary and returns the buffer.
  std::vector<uint8_t> Finish();

  size_t bit_count() const { return bytes_.size() * 8 + bit_pos_; }

 private:
  std::vector<uint8_t> bytes_;
  uint8_t current_ = 0;
  int bit_pos_ = 0;  // bits already used in `current_`
};

// MSB-first bit reader; out-of-data reads return DATA_LOSS.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BitReader(const std::vector<uint8_t>& bytes)
      : BitReader(bytes.data(), bytes.size()) {}

  util::StatusOr<int> GetBit();
  util::StatusOr<uint32_t> GetBits(int count);
  util::StatusOr<uint32_t> GetUE();
  util::StatusOr<int32_t> GetSE();

  size_t bits_consumed() const { return byte_pos_ * 8 + bit_pos_; }
  bool exhausted() const { return byte_pos_ >= size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t byte_pos_ = 0;
  int bit_pos_ = 0;
};

}  // namespace classminer::codec

#endif  // CLASSMINER_CODEC_BITSTREAM_H_

#include "codec/container.h"

#include <algorithm>
#include <cstring>

#include "util/failpoint.h"
#include "util/serial.h"

namespace classminer::codec {
namespace {

// Reads the fixed header (magic .. gop_size) into *file. Shared by the
// strict and best-effort parsers; there is nothing to salvage before the
// header, so both fail identically when it is damaged.
util::Status ParseHeader(util::ByteReader* r, CmvFile* file) {
  r->set_section("header");
  util::StatusOr<uint32_t> magic = r->GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != CmvFile::kMagic) return r->Corrupt("bad CMV magic");

  util::StatusOr<std::string> name = r->GetString();
  if (!name.ok()) return name.status();
  file->name = *name;

  auto get_i32 = [r](int* out) -> util::Status {
    util::StatusOr<int32_t> v = r->GetI32();
    if (!v.ok()) return v.status();
    *out = *v;
    return util::Status::Ok();
  };
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file->width));
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file->height));
  if (file->width < 0 || file->height < 0 || file->width > 16384 ||
      file->height > 16384) {
    return r->Corrupt("implausible CMV dimensions");
  }
  util::StatusOr<double> fps = r->GetF64();
  if (!fps.ok()) return fps.status();
  file->fps = *fps;
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file->quality));
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file->gop_size));
  return util::Status::Ok();
}

// Reads one frame record.
util::Status ParseFrameRecord(util::ByteReader* r, FrameRecord* rec) {
  util::StatusOr<uint8_t> type = r->GetU8();
  if (!type.ok()) return type.status();
  if (*type > 1) return r->Corrupt("unknown frame type");
  rec->type = static_cast<FrameType>(*type);
  util::StatusOr<uint32_t> size = r->GetU32();
  if (!size.ok()) return size.status();
  if (*size > r->remaining()) {
    return r->Corrupt("frame payload exceeds container");
  }
  rec->payload.resize(*size);
  return r->GetBytes(rec->payload.data(), *size);
}

// Reads the audio section (sample rate + PCM) into *file.
util::Status ParseAudio(util::ByteReader* r, CmvFile* file) {
  r->set_section("audio");
  util::StatusOr<int32_t> rate = r->GetI32();
  if (!rate.ok()) return rate.status();
  file->audio_sample_rate = *rate;
  util::StatusOr<uint32_t> sample_count = r->GetU32();
  if (!sample_count.ok()) return sample_count.status();
  if (*sample_count > r->remaining() / 4) {
    return r->Corrupt("audio sample count exceeds container");
  }
  file->audio_pcm.resize(*sample_count);
  for (uint32_t i = 0; i < *sample_count; ++i) {
    util::StatusOr<uint32_t> bits = r->GetU32();
    if (!bits.ok()) return bits.status();
    uint32_t b = *bits;
    std::memcpy(&file->audio_pcm[i], &b, sizeof(float));
  }
  return util::Status::Ok();
}

// Reads the trailing GOP-index section and validates it against the frame
// records; any short read or inconsistency is corruption.
util::Status ParseGopIndex(util::ByteReader* r, CmvFile* file) {
  r->set_section("gop_index");
  util::StatusOr<uint32_t> index_magic = r->GetU32();
  if (!index_magic.ok()) return index_magic.status();
  if (*index_magic != CmvFile::kGopIndexMagic) {
    return r->Corrupt("bad GOP index magic");
  }
  util::StatusOr<uint32_t> gop_count = r->GetU32();
  if (!gop_count.ok()) return gop_count.status();
  // Each entry occupies 24 bytes.
  if (*gop_count > r->remaining() / 24) {
    return r->Corrupt("truncated GOP index");
  }
  file->gop_index.reserve(*gop_count);
  for (uint32_t i = 0; i < *gop_count; ++i) {
    GopIndexEntry entry;
    util::StatusOr<int32_t> start = r->GetI32();
    if (!start.ok()) return start.status();
    entry.start_frame = *start;
    util::StatusOr<int32_t> count = r->GetI32();
    if (!count.ok()) return count.status();
    entry.frame_count = *count;
    util::StatusOr<uint64_t> off = r->GetU64();
    if (!off.ok()) return off.status();
    entry.byte_offset = *off;
    util::StatusOr<uint64_t> size = r->GetU64();
    if (!size.ok()) return size.status();
    entry.byte_size = *size;
    file->gop_index.push_back(entry);
  }
  util::StatusOr<std::vector<GopIndexEntry>> derived =
      CmvFile::DeriveGopIndex(file->frames);
  if (!derived.ok() || *derived != file->gop_index) {
    return r->Corrupt("GOP index inconsistent with frame records");
  }
  return util::Status::Ok();
}

}  // namespace

size_t CmvFile::VideoPayloadBytes() const {
  size_t total = 0;
  for (const FrameRecord& f : frames) total += f.payload.size();
  return total;
}

util::StatusOr<std::vector<GopIndexEntry>> CmvFile::DeriveGopIndex(
    const std::vector<FrameRecord>& frames) {
  std::vector<GopIndexEntry> index;
  uint64_t offset = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    const FrameRecord& rec = frames[i];
    if (rec.type == FrameType::kIntra) {
      GopIndexEntry entry;
      entry.start_frame = static_cast<int>(i);
      entry.byte_offset = offset;
      index.push_back(entry);
    } else if (index.empty()) {
      return util::Status::DataLoss("stream starts with P-frame");
    }
    index.back().frame_count += 1;
    index.back().byte_size += rec.payload.size();
    offset += rec.payload.size();
  }
  return index;
}

util::Status CmvFile::RebuildGopIndex() {
  util::StatusOr<std::vector<GopIndexEntry>> index = DeriveGopIndex(frames);
  if (!index.ok()) return index.status();
  gop_index = std::move(index).value();
  return util::Status::Ok();
}

int CmvFile::GopOfFrame(int frame_index) const {
  if (gop_index.empty() || frame_index < 0 ||
      frame_index >= frame_count()) {
    return -1;
  }
  // Last GOP whose start_frame <= frame_index.
  int lo = 0;
  int hi = gop_count() - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (gop_index[static_cast<size_t>(mid)].start_frame <= frame_index) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const GopIndexEntry& g = gop_index[static_cast<size_t>(lo)];
  if (frame_index < g.start_frame ||
      frame_index >= g.start_frame + g.frame_count) {
    return -1;
  }
  return lo;
}

std::vector<uint8_t> CmvFile::Serialize() const {
  util::ByteWriter w;
  w.PutU32(kMagic);
  w.PutString(name);
  w.PutI32(width);
  w.PutI32(height);
  w.PutF64(fps);
  w.PutI32(quality);
  w.PutI32(gop_size);

  w.PutU32(static_cast<uint32_t>(frames.size()));
  for (const FrameRecord& f : frames) {
    w.PutU8(static_cast<uint8_t>(f.type));
    w.PutU32(static_cast<uint32_t>(f.payload.size()));
    w.PutBytes(f.payload.data(), f.payload.size());
  }

  w.PutI32(audio_sample_rate);
  w.PutU32(static_cast<uint32_t>(audio_pcm.size()));
  for (float s : audio_pcm) {
    uint32_t bits;
    std::memcpy(&bits, &s, sizeof(bits));
    w.PutU32(bits);
  }

  // Trailing GOP-index section. Readers that predate it stop after the
  // audio track and ignore the extra bytes; Parse validates it against the
  // frame records. Omitted entirely when the file carries no index (legacy
  // round trips stay byte-stable).
  if (!gop_index.empty()) {
    w.PutU32(kGopIndexMagic);
    w.PutU32(static_cast<uint32_t>(gop_index.size()));
    for (const GopIndexEntry& g : gop_index) {
      w.PutI32(g.start_frame);
      w.PutI32(g.frame_count);
      w.PutU64(g.byte_offset);
      w.PutU64(g.byte_size);
    }
  }
  return w.Release();
}

util::StatusOr<CmvFile> CmvFile::Parse(const std::vector<uint8_t>& bytes) {
  CLASSMINER_RETURN_IF_ERROR(util::FailPoint::Check("codec.container.parse"));
  util::ByteReader r(bytes);
  CmvFile file;
  CLASSMINER_RETURN_IF_ERROR(ParseHeader(&r, &file));

  r.set_section("frames");
  util::StatusOr<uint32_t> frame_count = r.GetU32();
  if (!frame_count.ok()) return frame_count.status();
  // Each frame record occupies at least 5 bytes; a larger claim cannot be
  // satisfied by the remaining buffer (guards hostile reserve sizes).
  if (*frame_count > r.remaining() / 5) {
    return r.Corrupt("frame count exceeds container size");
  }
  file.frames.reserve(*frame_count);
  for (uint32_t i = 0; i < *frame_count; ++i) {
    r.set_section("frames[" + std::to_string(i) + "]");
    FrameRecord rec;
    CLASSMINER_RETURN_IF_ERROR(ParseFrameRecord(&r, &rec));
    file.frames.push_back(std::move(rec));
  }

  CLASSMINER_RETURN_IF_ERROR(ParseAudio(&r, &file));

  if (r.remaining() == 0) {
    // Legacy container without an index section: rebuild from the frame
    // records. A stream opening with a P-frame keeps an empty index (and
    // fails at decode time, as before).
    (void)file.RebuildGopIndex();
    return file;
  }
  CLASSMINER_RETURN_IF_ERROR(ParseGopIndex(&r, &file));
  return file;
}

util::StatusOr<CmvFile> CmvFile::ParseBestEffort(
    const std::vector<uint8_t>& bytes, util::SalvageReport* report) {
  util::SalvageReport local;
  if (report == nullptr) report = &local;
  util::ByteReader r(bytes);
  CmvFile file;
  // Nothing precedes the header, so a damaged header is unrecoverable.
  CLASSMINER_RETURN_IF_ERROR(ParseHeader(&r, &file));

  r.set_section("frames");
  util::StatusOr<uint32_t> frame_count = r.GetU32();
  if (!frame_count.ok()) return frame_count.status();
  // The declared count is untrusted; reserve only what could possibly fit.
  const uint32_t plausible =
      static_cast<uint32_t>(std::min<size_t>(*frame_count, r.remaining() / 5));
  file.frames.reserve(plausible);
  bool truncated = false;
  for (uint32_t i = 0; i < *frame_count; ++i) {
    r.set_section("frames[" + std::to_string(i) + "]");
    const size_t record_start = r.position();
    FrameRecord rec;
    const util::Status record = ParseFrameRecord(&r, &rec);
    if (!record.ok()) {
      // Torn or corrupt record: everything from here on is unframed bytes.
      // Keep the intact prefix; the audio and index sections (if the file
      // had them) are unreachable behind the damage.
      truncated = true;
      report->bytes_dropped += bytes.size() - record_start;
      report->items_dropped += static_cast<int>(*frame_count - i);
      report->AddNote("frames: " + record.message());
      break;
    }
    file.frames.push_back(std::move(rec));
  }

  // A stream must open with an I-frame to decode; drop any leading P-run
  // (an isolated corruption can fake one by flipping the first type byte —
  // that case surfaces as a torn record above instead).
  size_t leading_p = 0;
  while (leading_p < file.frames.size() &&
         file.frames[leading_p].type != FrameType::kIntra) {
    ++leading_p;
  }
  if (leading_p > 0) {
    uint64_t dropped_bytes = 0;
    for (size_t i = 0; i < leading_p; ++i) {
      dropped_bytes += 5 + file.frames[i].payload.size();
    }
    file.frames.erase(file.frames.begin(),
                      file.frames.begin() + static_cast<ptrdiff_t>(leading_p));
    report->bytes_dropped += dropped_bytes;
    report->items_dropped += static_cast<int>(leading_p);
    report->AddNote("frames: dropped " + std::to_string(leading_p) +
                    " leading P-frame(s) with no opening I-frame");
  }
  if (file.frames.empty() && (truncated || leading_p > 0)) {
    return util::Status::DataLoss(
        "no decodable GOP survives salvage (every frame record lost)");
  }

  if (truncated) {
    file.audio_sample_rate = 0;
    file.audio_pcm.clear();
    report->audio_dropped = true;
    report->index_rebuilt = true;
    report->AddNote(
        "audio/gop_index: sections unreachable behind truncated frames");
  } else {
    const size_t audio_start = r.position();
    const util::Status audio = ParseAudio(&r, &file);
    if (!audio.ok()) {
      // The audio track is optional for mining; drop it rather than the
      // whole container. The index section behind it is gone too.
      file.audio_sample_rate = 0;
      file.audio_pcm.clear();
      report->bytes_dropped += bytes.size() - audio_start;
      report->audio_dropped = true;
      report->index_rebuilt = true;
      report->AddNote("audio: " + audio.message());
    } else if (r.remaining() > 0) {
      const size_t index_start = r.position();
      const util::Status index = ParseGopIndex(&r, &file);
      if (!index.ok()) {
        file.gop_index.clear();
        report->bytes_dropped += bytes.size() - index_start;
        report->index_rebuilt = true;
        report->AddNote("gop_index: " + index.message());
      }
    }
  }

  // Re-derive the seek index over whatever survived. The recovered prefix
  // always opens with an I-frame (leading P-run dropped above), so this
  // cannot fail on a non-empty stream.
  if (file.gop_index.empty()) (void)file.RebuildGopIndex();
  report->items_recovered += file.frame_count();
  report->gops_recovered += file.gop_count();
  return file;
}

util::Status CmvFile::SaveToFile(const std::string& path) const {
  return util::WriteFile(path, Serialize());
}

util::StatusOr<CmvFile> CmvFile::LoadFromFile(const std::string& path) {
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return Parse(*bytes);
}

util::StatusOr<CmvFile> CmvFile::LoadFromFileBestEffort(
    const std::string& path, util::SalvageReport* report) {
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseBestEffort(*bytes, report);
}

}  // namespace classminer::codec

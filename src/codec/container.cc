#include "codec/container.h"

#include <cstring>

#include "util/serial.h"

namespace classminer::codec {

size_t CmvFile::VideoPayloadBytes() const {
  size_t total = 0;
  for (const FrameRecord& f : frames) total += f.payload.size();
  return total;
}

util::StatusOr<std::vector<GopIndexEntry>> CmvFile::DeriveGopIndex(
    const std::vector<FrameRecord>& frames) {
  std::vector<GopIndexEntry> index;
  uint64_t offset = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    const FrameRecord& rec = frames[i];
    if (rec.type == FrameType::kIntra) {
      GopIndexEntry entry;
      entry.start_frame = static_cast<int>(i);
      entry.byte_offset = offset;
      index.push_back(entry);
    } else if (index.empty()) {
      return util::Status::DataLoss("stream starts with P-frame");
    }
    index.back().frame_count += 1;
    index.back().byte_size += rec.payload.size();
    offset += rec.payload.size();
  }
  return index;
}

util::Status CmvFile::RebuildGopIndex() {
  util::StatusOr<std::vector<GopIndexEntry>> index = DeriveGopIndex(frames);
  if (!index.ok()) return index.status();
  gop_index = std::move(index).value();
  return util::Status::Ok();
}

int CmvFile::GopOfFrame(int frame_index) const {
  if (gop_index.empty() || frame_index < 0 ||
      frame_index >= frame_count()) {
    return -1;
  }
  // Last GOP whose start_frame <= frame_index.
  int lo = 0;
  int hi = gop_count() - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (gop_index[static_cast<size_t>(mid)].start_frame <= frame_index) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const GopIndexEntry& g = gop_index[static_cast<size_t>(lo)];
  if (frame_index < g.start_frame ||
      frame_index >= g.start_frame + g.frame_count) {
    return -1;
  }
  return lo;
}

std::vector<uint8_t> CmvFile::Serialize() const {
  util::ByteWriter w;
  w.PutU32(kMagic);
  w.PutString(name);
  w.PutI32(width);
  w.PutI32(height);
  w.PutF64(fps);
  w.PutI32(quality);
  w.PutI32(gop_size);

  w.PutU32(static_cast<uint32_t>(frames.size()));
  for (const FrameRecord& f : frames) {
    w.PutU8(static_cast<uint8_t>(f.type));
    w.PutU32(static_cast<uint32_t>(f.payload.size()));
    w.PutBytes(f.payload.data(), f.payload.size());
  }

  w.PutI32(audio_sample_rate);
  w.PutU32(static_cast<uint32_t>(audio_pcm.size()));
  for (float s : audio_pcm) {
    uint32_t bits;
    std::memcpy(&bits, &s, sizeof(bits));
    w.PutU32(bits);
  }

  // Trailing GOP-index section. Readers that predate it stop after the
  // audio track and ignore the extra bytes; Parse validates it against the
  // frame records. Omitted entirely when the file carries no index (legacy
  // round trips stay byte-stable).
  if (!gop_index.empty()) {
    w.PutU32(kGopIndexMagic);
    w.PutU32(static_cast<uint32_t>(gop_index.size()));
    for (const GopIndexEntry& g : gop_index) {
      w.PutI32(g.start_frame);
      w.PutI32(g.frame_count);
      w.PutU64(g.byte_offset);
      w.PutU64(g.byte_size);
    }
  }
  return w.Release();
}

util::StatusOr<CmvFile> CmvFile::Parse(const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  util::StatusOr<uint32_t> magic = r.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic) return util::Status::DataLoss("bad CMV magic");

  CmvFile file;
  util::StatusOr<std::string> name = r.GetString();
  if (!name.ok()) return name.status();
  file.name = *name;

  auto get_i32 = [&r](int* out) -> util::Status {
    util::StatusOr<int32_t> v = r.GetI32();
    if (!v.ok()) return v.status();
    *out = *v;
    return util::Status::Ok();
  };
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file.width));
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file.height));
  if (file.width < 0 || file.height < 0 || file.width > 16384 ||
      file.height > 16384) {
    return util::Status::DataLoss("implausible CMV dimensions");
  }
  util::StatusOr<double> fps = r.GetF64();
  if (!fps.ok()) return fps.status();
  file.fps = *fps;
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file.quality));
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file.gop_size));

  util::StatusOr<uint32_t> frame_count = r.GetU32();
  if (!frame_count.ok()) return frame_count.status();
  // Each frame record occupies at least 5 bytes; a larger claim cannot be
  // satisfied by the remaining buffer (guards hostile reserve sizes).
  if (*frame_count > r.remaining() / 5) {
    return util::Status::DataLoss("frame count exceeds container size");
  }
  file.frames.reserve(*frame_count);
  for (uint32_t i = 0; i < *frame_count; ++i) {
    FrameRecord rec;
    util::StatusOr<uint8_t> type = r.GetU8();
    if (!type.ok()) return type.status();
    if (*type > 1) return util::Status::DataLoss("unknown frame type");
    rec.type = static_cast<FrameType>(*type);
    util::StatusOr<uint32_t> size = r.GetU32();
    if (!size.ok()) return size.status();
    if (*size > r.remaining()) {
      return util::Status::DataLoss("frame payload exceeds container");
    }
    rec.payload.resize(*size);
    CLASSMINER_RETURN_IF_ERROR(r.GetBytes(rec.payload.data(), *size));
    file.frames.push_back(std::move(rec));
  }

  CLASSMINER_RETURN_IF_ERROR(get_i32(&file.audio_sample_rate));
  util::StatusOr<uint32_t> sample_count = r.GetU32();
  if (!sample_count.ok()) return sample_count.status();
  if (*sample_count > r.remaining() / 4) {
    return util::Status::DataLoss("audio sample count exceeds container");
  }
  file.audio_pcm.resize(*sample_count);
  for (uint32_t i = 0; i < *sample_count; ++i) {
    util::StatusOr<uint32_t> bits = r.GetU32();
    if (!bits.ok()) return bits.status();
    uint32_t b = *bits;
    std::memcpy(&file.audio_pcm[i], &b, sizeof(float));
  }

  if (r.remaining() == 0) {
    // Legacy container without an index section: rebuild from the frame
    // records. A stream opening with a P-frame keeps an empty index (and
    // fails at decode time, as before).
    (void)file.RebuildGopIndex();
    return file;
  }

  // Index section present: any short read or inconsistency is corruption.
  util::StatusOr<uint32_t> index_magic = r.GetU32();
  if (!index_magic.ok()) return index_magic.status();
  if (*index_magic != kGopIndexMagic) {
    return util::Status::DataLoss("bad GOP index magic");
  }
  util::StatusOr<uint32_t> gop_count = r.GetU32();
  if (!gop_count.ok()) return gop_count.status();
  // Each entry occupies 24 bytes.
  if (*gop_count > r.remaining() / 24) {
    return util::Status::DataLoss("truncated GOP index");
  }
  file.gop_index.reserve(*gop_count);
  for (uint32_t i = 0; i < *gop_count; ++i) {
    GopIndexEntry entry;
    util::StatusOr<int32_t> start = r.GetI32();
    if (!start.ok()) return start.status();
    entry.start_frame = *start;
    util::StatusOr<int32_t> count = r.GetI32();
    if (!count.ok()) return count.status();
    entry.frame_count = *count;
    util::StatusOr<uint64_t> off = r.GetU64();
    if (!off.ok()) return off.status();
    entry.byte_offset = *off;
    util::StatusOr<uint64_t> size = r.GetU64();
    if (!size.ok()) return size.status();
    entry.byte_size = *size;
    file.gop_index.push_back(entry);
  }
  util::StatusOr<std::vector<GopIndexEntry>> derived =
      DeriveGopIndex(file.frames);
  if (!derived.ok() || *derived != file.gop_index) {
    return util::Status::DataLoss(
        "GOP index inconsistent with frame records");
  }
  return file;
}

util::Status CmvFile::SaveToFile(const std::string& path) const {
  return util::WriteFile(path, Serialize());
}

util::StatusOr<CmvFile> CmvFile::LoadFromFile(const std::string& path) {
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return Parse(*bytes);
}

}  // namespace classminer::codec

#include "codec/container.h"

#include <cstring>

#include "util/serial.h"

namespace classminer::codec {

size_t CmvFile::VideoPayloadBytes() const {
  size_t total = 0;
  for (const FrameRecord& f : frames) total += f.payload.size();
  return total;
}

std::vector<uint8_t> CmvFile::Serialize() const {
  util::ByteWriter w;
  w.PutU32(kMagic);
  w.PutString(name);
  w.PutI32(width);
  w.PutI32(height);
  w.PutF64(fps);
  w.PutI32(quality);
  w.PutI32(gop_size);

  w.PutU32(static_cast<uint32_t>(frames.size()));
  for (const FrameRecord& f : frames) {
    w.PutU8(static_cast<uint8_t>(f.type));
    w.PutU32(static_cast<uint32_t>(f.payload.size()));
    w.PutBytes(f.payload.data(), f.payload.size());
  }

  w.PutI32(audio_sample_rate);
  w.PutU32(static_cast<uint32_t>(audio_pcm.size()));
  for (float s : audio_pcm) {
    uint32_t bits;
    std::memcpy(&bits, &s, sizeof(bits));
    w.PutU32(bits);
  }
  return w.Release();
}

util::StatusOr<CmvFile> CmvFile::Parse(const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  util::StatusOr<uint32_t> magic = r.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic) return util::Status::DataLoss("bad CMV magic");

  CmvFile file;
  util::StatusOr<std::string> name = r.GetString();
  if (!name.ok()) return name.status();
  file.name = *name;

  auto get_i32 = [&r](int* out) -> util::Status {
    util::StatusOr<int32_t> v = r.GetI32();
    if (!v.ok()) return v.status();
    *out = *v;
    return util::Status::Ok();
  };
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file.width));
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file.height));
  if (file.width < 0 || file.height < 0 || file.width > 16384 ||
      file.height > 16384) {
    return util::Status::DataLoss("implausible CMV dimensions");
  }
  util::StatusOr<double> fps = r.GetF64();
  if (!fps.ok()) return fps.status();
  file.fps = *fps;
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file.quality));
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file.gop_size));

  util::StatusOr<uint32_t> frame_count = r.GetU32();
  if (!frame_count.ok()) return frame_count.status();
  // Each frame record occupies at least 5 bytes; a larger claim cannot be
  // satisfied by the remaining buffer (guards hostile reserve sizes).
  if (*frame_count > r.remaining() / 5) {
    return util::Status::DataLoss("frame count exceeds container size");
  }
  file.frames.reserve(*frame_count);
  for (uint32_t i = 0; i < *frame_count; ++i) {
    FrameRecord rec;
    util::StatusOr<uint8_t> type = r.GetU8();
    if (!type.ok()) return type.status();
    if (*type > 1) return util::Status::DataLoss("unknown frame type");
    rec.type = static_cast<FrameType>(*type);
    util::StatusOr<uint32_t> size = r.GetU32();
    if (!size.ok()) return size.status();
    if (*size > r.remaining()) {
      return util::Status::DataLoss("frame payload exceeds container");
    }
    rec.payload.resize(*size);
    CLASSMINER_RETURN_IF_ERROR(r.GetBytes(rec.payload.data(), *size));
    file.frames.push_back(std::move(rec));
  }

  CLASSMINER_RETURN_IF_ERROR(get_i32(&file.audio_sample_rate));
  util::StatusOr<uint32_t> sample_count = r.GetU32();
  if (!sample_count.ok()) return sample_count.status();
  if (*sample_count > r.remaining() / 4) {
    return util::Status::DataLoss("audio sample count exceeds container");
  }
  file.audio_pcm.resize(*sample_count);
  for (uint32_t i = 0; i < *sample_count; ++i) {
    util::StatusOr<uint32_t> bits = r.GetU32();
    if (!bits.ok()) return bits.status();
    uint32_t b = *bits;
    std::memcpy(&file.audio_pcm[i], &b, sizeof(float));
  }
  return file;
}

util::Status CmvFile::SaveToFile(const std::string& path) const {
  return util::WriteFile(path, Serialize());
}

util::StatusOr<CmvFile> CmvFile::LoadFromFile(const std::string& path) {
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return Parse(*bytes);
}

}  // namespace classminer::codec

#include "codec/container.h"

#include <algorithm>
#include <cstring>

#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/serial.h"

namespace classminer::codec {
namespace {

// The checksum a CMV2 frame record carries: CRC-32 over the type byte and
// the payload (the size field is implied by the framing; a corrupted size
// misaligns the payload read and fails the checksum anyway).
uint32_t RecordCrc(FrameType type, const std::vector<uint8_t>& payload) {
  const uint8_t t = static_cast<uint8_t>(type);
  return util::Crc32(payload.data(), payload.size(), util::Crc32(&t, 1));
}

// Serialized size of one frame record including framing.
size_t RecordBytes(const FrameRecord& rec, bool checksums) {
  return 1 + 4 + rec.payload.size() + (checksums ? 4 : 0);
}

uint32_t ReadU32LE(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

// Reads the fixed header (magic .. gop_size) into *file. Shared by the
// strict and best-effort parsers; there is nothing to salvage before the
// header, so both fail identically when it is damaged.
util::Status ParseHeader(util::ByteReader* r, CmvFile* file) {
  r->set_section("header");
  util::StatusOr<uint32_t> magic = r->GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic == CmvFile::kMagic) {
    file->record_checksums = false;  // CMV1: no per-record CRC
  } else if (*magic == CmvFile::kMagicV2) {
    file->record_checksums = true;
  } else {
    return r->Corrupt("bad CMV magic");
  }

  util::StatusOr<std::string> name = r->GetString();
  if (!name.ok()) return name.status();
  file->name = *name;

  auto get_i32 = [r](int* out) -> util::Status {
    util::StatusOr<int32_t> v = r->GetI32();
    if (!v.ok()) return v.status();
    *out = *v;
    return util::Status::Ok();
  };
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file->width));
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file->height));
  if (file->width < 0 || file->height < 0 || file->width > 16384 ||
      file->height > 16384) {
    return r->Corrupt("implausible CMV dimensions");
  }
  util::StatusOr<double> fps = r->GetF64();
  if (!fps.ok()) return fps.status();
  file->fps = *fps;
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file->quality));
  CLASSMINER_RETURN_IF_ERROR(get_i32(&file->gop_size));
  return util::Status::Ok();
}

// Reads one frame record; `checksums` selects the CMV2 layout with the
// trailing CRC-32, verified against the bytes just read.
util::Status ParseFrameRecord(util::ByteReader* r, bool checksums,
                              FrameRecord* rec) {
  util::StatusOr<uint8_t> type = r->GetU8();
  if (!type.ok()) return type.status();
  if (*type > 1) return r->Corrupt("unknown frame type");
  rec->type = static_cast<FrameType>(*type);
  util::StatusOr<uint32_t> size = r->GetU32();
  if (!size.ok()) return size.status();
  const size_t trailer = checksums ? 4 : 0;
  if (*size + trailer > r->remaining()) {
    return r->Corrupt("frame payload exceeds container");
  }
  rec->payload.resize(*size);
  CLASSMINER_RETURN_IF_ERROR(r->GetBytes(rec->payload.data(), *size));
  if (checksums) {
    util::StatusOr<uint32_t> stored = r->GetU32();
    if (!stored.ok()) return stored.status();
    if (*stored != RecordCrc(rec->type, rec->payload)) {
      return r->Corrupt("frame record checksum mismatch");
    }
  }
  return util::Status::Ok();
}

// Attempts to read one checksummed frame record starting at `pos` of the
// raw buffer. True only when the framing is plausible AND the stored CRC
// matches the bytes — a false positive on arbitrary garbage is ~2^-32, so
// the salvage scanner can treat a hit as a confirmed sync point.
bool TryRecordAt(const std::vector<uint8_t>& bytes, size_t pos,
                 FrameRecord* rec, size_t* end) {
  if (pos + 9 > bytes.size()) return false;
  const uint8_t type = bytes[pos];
  if (type > 1) return false;
  const uint32_t size = ReadU32LE(bytes.data() + pos + 1);
  if (size > bytes.size() - pos - 9) return false;
  const uint8_t* payload = bytes.data() + pos + 5;
  const uint32_t stored = ReadU32LE(payload + size);
  if (stored != util::Crc32(payload, size, util::Crc32(&type, 1))) {
    return false;
  }
  rec->type = static_cast<FrameType>(type);
  rec->payload.assign(payload, payload + size);
  *end = pos + 9 + size;
  return true;
}

// Attempts to interpret bytes[pos..end) as a complete trailer: the audio
// section, optionally followed by a GOP-index section, consuming the
// buffer exactly. Validation is structural only (after a resynchronisation
// the stored seek index cannot match the gap-ridden record list, so the
// caller rebuilds it); the exact-length requirement makes a false positive
// at a random scan offset ~2^-32. Commits the audio track on success.
bool TryTrailerAt(const std::vector<uint8_t>& bytes, size_t pos,
                  CmvFile* file) {
  if (pos + 8 > bytes.size()) return false;
  const size_t remaining = bytes.size() - pos;
  const uint32_t sample_count = ReadU32LE(bytes.data() + pos + 4);
  if (sample_count > (remaining - 8) / 4) return false;
  const size_t audio_end = pos + 8 + 4 * static_cast<size_t>(sample_count);
  const size_t left = bytes.size() - audio_end;
  if (left != 0) {
    // Whatever follows the audio must be exactly one GOP-index section.
    if (left < 8) return false;
    if (ReadU32LE(bytes.data() + audio_end) != CmvFile::kGopIndexMagic) {
      return false;
    }
    const uint32_t gops = ReadU32LE(bytes.data() + audio_end + 4);
    if (left != 8 + 24ull * gops) return false;
  }
  file->audio_sample_rate =
      static_cast<int32_t>(ReadU32LE(bytes.data() + pos));
  file->audio_pcm.resize(sample_count);
  for (uint32_t i = 0; i < sample_count; ++i) {
    const uint32_t bits = ReadU32LE(bytes.data() + pos + 8 + 4 * i);
    std::memcpy(&file->audio_pcm[i], &bits, sizeof(float));
  }
  return true;
}

// Reads the audio section (sample rate + PCM) into *file.
util::Status ParseAudio(util::ByteReader* r, CmvFile* file) {
  r->set_section("audio");
  util::StatusOr<int32_t> rate = r->GetI32();
  if (!rate.ok()) return rate.status();
  file->audio_sample_rate = *rate;
  util::StatusOr<uint32_t> sample_count = r->GetU32();
  if (!sample_count.ok()) return sample_count.status();
  if (*sample_count > r->remaining() / 4) {
    return r->Corrupt("audio sample count exceeds container");
  }
  file->audio_pcm.resize(*sample_count);
  for (uint32_t i = 0; i < *sample_count; ++i) {
    util::StatusOr<uint32_t> bits = r->GetU32();
    if (!bits.ok()) return bits.status();
    uint32_t b = *bits;
    std::memcpy(&file->audio_pcm[i], &b, sizeof(float));
  }
  return util::Status::Ok();
}

// Reads the trailing GOP-index section and validates it against the frame
// records; any short read or inconsistency is corruption.
util::Status ParseGopIndex(util::ByteReader* r, CmvFile* file) {
  r->set_section("gop_index");
  util::StatusOr<uint32_t> index_magic = r->GetU32();
  if (!index_magic.ok()) return index_magic.status();
  if (*index_magic != CmvFile::kGopIndexMagic) {
    return r->Corrupt("bad GOP index magic");
  }
  util::StatusOr<uint32_t> gop_count = r->GetU32();
  if (!gop_count.ok()) return gop_count.status();
  // Each entry occupies 24 bytes.
  if (*gop_count > r->remaining() / 24) {
    return r->Corrupt("truncated GOP index");
  }
  file->gop_index.reserve(*gop_count);
  for (uint32_t i = 0; i < *gop_count; ++i) {
    GopIndexEntry entry;
    util::StatusOr<int32_t> start = r->GetI32();
    if (!start.ok()) return start.status();
    entry.start_frame = *start;
    util::StatusOr<int32_t> count = r->GetI32();
    if (!count.ok()) return count.status();
    entry.frame_count = *count;
    util::StatusOr<uint64_t> off = r->GetU64();
    if (!off.ok()) return off.status();
    entry.byte_offset = *off;
    util::StatusOr<uint64_t> size = r->GetU64();
    if (!size.ok()) return size.status();
    entry.byte_size = *size;
    file->gop_index.push_back(entry);
  }
  util::StatusOr<std::vector<GopIndexEntry>> derived =
      CmvFile::DeriveGopIndex(file->frames);
  if (!derived.ok() || *derived != file->gop_index) {
    return r->Corrupt("GOP index inconsistent with frame records");
  }
  return util::Status::Ok();
}

}  // namespace

size_t CmvFile::VideoPayloadBytes() const {
  size_t total = 0;
  for (const FrameRecord& f : frames) total += f.payload.size();
  return total;
}

util::StatusOr<std::vector<GopIndexEntry>> CmvFile::DeriveGopIndex(
    const std::vector<FrameRecord>& frames) {
  std::vector<GopIndexEntry> index;
  uint64_t offset = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    const FrameRecord& rec = frames[i];
    if (rec.type == FrameType::kIntra) {
      GopIndexEntry entry;
      entry.start_frame = static_cast<int>(i);
      entry.byte_offset = offset;
      index.push_back(entry);
    } else if (index.empty()) {
      return util::Status::DataLoss("stream starts with P-frame");
    }
    index.back().frame_count += 1;
    index.back().byte_size += rec.payload.size();
    offset += rec.payload.size();
  }
  return index;
}

util::Status CmvFile::RebuildGopIndex() {
  util::StatusOr<std::vector<GopIndexEntry>> index = DeriveGopIndex(frames);
  if (!index.ok()) return index.status();
  gop_index = std::move(index).value();
  return util::Status::Ok();
}

int CmvFile::GopOfFrame(int frame_index) const {
  if (gop_index.empty() || frame_index < 0 ||
      frame_index >= frame_count()) {
    return -1;
  }
  // Last GOP whose start_frame <= frame_index.
  int lo = 0;
  int hi = gop_count() - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (gop_index[static_cast<size_t>(mid)].start_frame <= frame_index) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const GopIndexEntry& g = gop_index[static_cast<size_t>(lo)];
  if (frame_index < g.start_frame ||
      frame_index >= g.start_frame + g.frame_count) {
    return -1;
  }
  return lo;
}

util::Status CmvFile::ValidateForSerialize() const {
  CLASSMINER_RETURN_IF_ERROR(util::CheckU32Count(name.size(), "CMV name"));
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(frames.size(), "CMV frame"));
  for (const FrameRecord& f : frames) {
    CLASSMINER_RETURN_IF_ERROR(
        util::CheckU32Count(f.payload.size(), "CMV frame payload"));
  }
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(audio_pcm.size(), "CMV audio sample"));
  return util::CheckU32Count(gop_index.size(), "CMV GOP index entry");
}

std::vector<uint8_t> CmvFile::Serialize() const {
  util::ByteWriter w;
  w.PutU32(record_checksums ? kMagicV2 : kMagic);
  w.PutString(name);
  w.PutI32(width);
  w.PutI32(height);
  w.PutF64(fps);
  w.PutI32(quality);
  w.PutI32(gop_size);

  w.PutU32(static_cast<uint32_t>(frames.size()));
  for (const FrameRecord& f : frames) {
    w.PutU8(static_cast<uint8_t>(f.type));
    w.PutU32(static_cast<uint32_t>(f.payload.size()));
    w.PutBytes(f.payload.data(), f.payload.size());
    if (record_checksums) w.PutU32(RecordCrc(f.type, f.payload));
  }

  w.PutI32(audio_sample_rate);
  w.PutU32(static_cast<uint32_t>(audio_pcm.size()));
  for (float s : audio_pcm) {
    uint32_t bits;
    std::memcpy(&bits, &s, sizeof(bits));
    w.PutU32(bits);
  }

  // Trailing GOP-index section. Readers that predate it stop after the
  // audio track and ignore the extra bytes; Parse validates it against the
  // frame records. Omitted entirely when the file carries no index (legacy
  // round trips stay byte-stable).
  if (!gop_index.empty()) {
    w.PutU32(kGopIndexMagic);
    w.PutU32(static_cast<uint32_t>(gop_index.size()));
    for (const GopIndexEntry& g : gop_index) {
      w.PutI32(g.start_frame);
      w.PutI32(g.frame_count);
      w.PutU64(g.byte_offset);
      w.PutU64(g.byte_size);
    }
  }
  return w.Release();
}

util::StatusOr<CmvFile> CmvFile::Parse(const std::vector<uint8_t>& bytes) {
  CLASSMINER_RETURN_IF_ERROR(util::FailPoint::Check("codec.container.parse"));
  util::ByteReader r(bytes);
  CmvFile file;
  CLASSMINER_RETURN_IF_ERROR(ParseHeader(&r, &file));

  r.set_section("frames");
  util::StatusOr<uint32_t> frame_count = r.GetU32();
  if (!frame_count.ok()) return frame_count.status();
  // Each frame record occupies at least 5 (CMV1) / 9 (CMV2) bytes; a larger
  // claim cannot be satisfied by the remaining buffer (guards hostile
  // reserve sizes).
  const size_t min_record = file.record_checksums ? 9 : 5;
  if (*frame_count > r.remaining() / min_record) {
    return r.Corrupt("frame count exceeds container size");
  }
  file.frames.reserve(*frame_count);
  for (uint32_t i = 0; i < *frame_count; ++i) {
    r.set_section("frames[" + std::to_string(i) + "]");
    FrameRecord rec;
    CLASSMINER_RETURN_IF_ERROR(
        ParseFrameRecord(&r, file.record_checksums, &rec));
    file.frames.push_back(std::move(rec));
  }

  CLASSMINER_RETURN_IF_ERROR(ParseAudio(&r, &file));

  if (r.remaining() == 0) {
    // Legacy container without an index section: rebuild from the frame
    // records. A stream opening with a P-frame keeps an empty index (and
    // fails at decode time, as before).
    (void)file.RebuildGopIndex();
    return file;
  }
  CLASSMINER_RETURN_IF_ERROR(ParseGopIndex(&r, &file));
  return file;
}

util::StatusOr<CmvFile> CmvFile::ParseBestEffort(
    const std::vector<uint8_t>& bytes, util::SalvageReport* report) {
  util::SalvageReport local;
  if (report == nullptr) report = &local;
  util::ByteReader r(bytes);
  CmvFile file;
  // Nothing precedes the header, so a damaged header is unrecoverable.
  CLASSMINER_RETURN_IF_ERROR(ParseHeader(&r, &file));

  r.set_section("frames");
  util::StatusOr<uint32_t> frame_count = r.GetU32();
  if (!frame_count.ok()) return frame_count.status();
  // The declared count is untrusted; reserve only what could possibly fit.
  const size_t min_record = file.record_checksums ? 9 : 5;
  const uint32_t plausible = static_cast<uint32_t>(
      std::min<size_t>(*frame_count, r.remaining() / min_record));
  file.frames.reserve(plausible);
  bool truncated = false;       // at least one record span was lost
  bool trailer_parsed = false;  // audio (+ index length) recovered via resync
  uint32_t parsed = 0;
  for (uint32_t i = 0; i < *frame_count && !trailer_parsed; ++i) {
    r.set_section("frames[" + std::to_string(i) + "]");
    const size_t record_start = r.position();
    FrameRecord rec;
    const util::Status record = ParseFrameRecord(&r, file.record_checksums, &rec);
    if (record.ok()) {
      file.frames.push_back(std::move(rec));
      ++parsed;
      continue;
    }
    // The cursor may in fact be sitting on the trailer: an earlier resync
    // skipped records, so the declared count overshoots (or the count field
    // itself was corrupted upward). The exact-length structural check makes
    // a false positive here as unlikely as a CRC collision.
    if (TryTrailerAt(bytes, record_start, &file)) {
      trailer_parsed = true;
      break;
    }
    // Genuine tear: everything from record_start until the next confirmed
    // sync point is unframed bytes.
    truncated = true;
    report->AddNote("frames: " + record.message());
    if (!file.record_checksums) {
      // CMV1 records carry no checksum, so no forward scan can *confirm* a
      // sync point; keep the intact prefix only (the audio and index
      // sections are unreachable behind the damage).
      report->bytes_dropped += bytes.size() - record_start;
      break;
    }
    // CMV2: scan forward for the next checksum-confirmed I-frame record
    // (a P-frame could not decode without its reference, so keep scanning
    // past those) or for the trailer, and resynchronise there.
    bool resynced = false;
    for (size_t scan = record_start + 1; scan < bytes.size(); ++scan) {
      FrameRecord candidate;
      size_t end = 0;
      if (TryRecordAt(bytes, scan, &candidate, &end) &&
          candidate.type == FrameType::kIntra) {
        report->bytes_dropped += scan - record_start;
        report->resync_points += 1;
        report->AddNote("frames: resynchronised onto checksum-confirmed "
                        "I-frame at byte offset " +
                        std::to_string(scan) + " (dropped " +
                        std::to_string(scan - record_start) + " bytes)");
        file.frames.push_back(std::move(candidate));
        ++parsed;
        (void)r.SeekTo(end);
        resynced = true;
        break;
      }
      if (TryTrailerAt(bytes, scan, &file)) {
        report->bytes_dropped += scan - record_start;
        report->resync_points += 1;
        report->AddNote("frames: resynchronised onto trailer at byte "
                        "offset " +
                        std::to_string(scan) + " (dropped " +
                        std::to_string(scan - record_start) + " bytes)");
        trailer_parsed = true;
        resynced = true;
        break;
      }
    }
    if (!resynced) {
      // No confirmed sync point behind the tear; the rest is lost.
      report->bytes_dropped += bytes.size() - record_start;
      break;
    }
  }
  if (parsed < *frame_count) {
    report->items_dropped += static_cast<int>(*frame_count - parsed);
  }

  // A stream must open with an I-frame to decode; drop any leading P-run
  // (an isolated corruption can fake one by flipping the first type byte —
  // that case surfaces as a torn record above instead).
  size_t leading_p = 0;
  while (leading_p < file.frames.size() &&
         file.frames[leading_p].type != FrameType::kIntra) {
    ++leading_p;
  }
  if (leading_p > 0) {
    uint64_t dropped_bytes = 0;
    for (size_t i = 0; i < leading_p; ++i) {
      dropped_bytes += RecordBytes(file.frames[i], file.record_checksums);
    }
    file.frames.erase(file.frames.begin(),
                      file.frames.begin() + static_cast<ptrdiff_t>(leading_p));
    report->bytes_dropped += dropped_bytes;
    report->items_dropped += static_cast<int>(leading_p);
    report->AddNote("frames: dropped " + std::to_string(leading_p) +
                    " leading P-frame(s) with no opening I-frame");
  }
  if (file.frames.empty() && (truncated || leading_p > 0)) {
    return util::Status::DataLoss(
        "no decodable GOP survives salvage (every frame record lost)");
  }

  if (trailer_parsed) {
    // A resynchronisation landed on the trailer: TryTrailerAt committed the
    // audio track. The stored seek index (if the file carried one) cannot
    // match a gap-ridden record list, so it is rebuilt below regardless.
    file.gop_index.clear();
    report->index_rebuilt = true;
  } else if (truncated) {
    file.audio_sample_rate = 0;
    file.audio_pcm.clear();
    report->audio_dropped = true;
    report->index_rebuilt = true;
    report->AddNote(
        "audio/gop_index: sections unreachable behind truncated frames");
  } else {
    const size_t audio_start = r.position();
    const util::Status audio = ParseAudio(&r, &file);
    if (!audio.ok()) {
      // The audio track is optional for mining; drop it rather than the
      // whole container. The index section behind it is gone too.
      file.audio_sample_rate = 0;
      file.audio_pcm.clear();
      report->bytes_dropped += bytes.size() - audio_start;
      report->audio_dropped = true;
      report->index_rebuilt = true;
      report->AddNote("audio: " + audio.message());
    } else if (r.remaining() > 0) {
      const size_t index_start = r.position();
      const util::Status index = ParseGopIndex(&r, &file);
      if (!index.ok()) {
        file.gop_index.clear();
        report->bytes_dropped += bytes.size() - index_start;
        report->index_rebuilt = true;
        report->AddNote("gop_index: " + index.message());
      }
    }
  }

  // Re-derive the seek index over whatever survived. The recovered prefix
  // always opens with an I-frame (leading P-run dropped above), so this
  // cannot fail on a non-empty stream.
  if (file.gop_index.empty()) (void)file.RebuildGopIndex();
  report->items_recovered += file.frame_count();
  report->gops_recovered += file.gop_count();
  return file;
}

util::Status CmvFile::SaveToFile(const std::string& path) const {
  CLASSMINER_RETURN_IF_ERROR(ValidateForSerialize());
  return util::WriteFile(path, Serialize());
}

util::StatusOr<CmvFile> CmvFile::LoadFromFile(const std::string& path) {
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return Parse(*bytes);
}

util::StatusOr<CmvFile> CmvFile::LoadFromFileBestEffort(
    const std::string& path, util::SalvageReport* report) {
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseBestEffort(*bytes, report);
}

}  // namespace classminer::codec

#include "codec/dct.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/cpu.h"

namespace classminer::codec {
namespace internal {

namespace {

DctTables MakeTables() {
  DctTables tables;
  for (int u = 0; u < kBlockSize; ++u) {
    const double cu = (u == 0) ? std::sqrt(1.0 / kBlockSize)
                               : std::sqrt(2.0 / kBlockSize);
    for (int x = 0; x < kBlockSize; ++x) {
      const double v = cu * std::cos((2.0 * x + 1.0) * u * std::numbers::pi /
                                     (2.0 * kBlockSize));
      tables.basis[u][x] = v;
      tables.basis_t[x][u] = v;
    }
  }
  return tables;
}

}  // namespace

const DctTables& Tables() {
  static const DctTables tables = MakeTables();
  return tables;
}

Block ForwardDctScalar(const Block& spatial) {
  const auto& t = Tables().basis;
  // Separable: rows then columns.
  Block tmp{};
  for (int y = 0; y < kBlockSize; ++y) {
    for (int u = 0; u < kBlockSize; ++u) {
      double acc = 0.0;
      for (int x = 0; x < kBlockSize; ++x) {
        acc += spatial[static_cast<size_t>(y) * kBlockSize + x] * t[u][x];
      }
      tmp[static_cast<size_t>(y) * kBlockSize + u] = acc;
    }
  }
  Block out{};
  for (int u = 0; u < kBlockSize; ++u) {
    for (int v = 0; v < kBlockSize; ++v) {
      double acc = 0.0;
      for (int y = 0; y < kBlockSize; ++y) {
        acc += tmp[static_cast<size_t>(y) * kBlockSize + u] * t[v][y];
      }
      out[static_cast<size_t>(v) * kBlockSize + u] = acc;
    }
  }
  return out;
}

Block InverseDctScalar(const Block& freq) {
  const auto& t = Tables().basis;
  Block tmp{};
  for (int u = 0; u < kBlockSize; ++u) {
    for (int y = 0; y < kBlockSize; ++y) {
      double acc = 0.0;
      for (int v = 0; v < kBlockSize; ++v) {
        acc += freq[static_cast<size_t>(v) * kBlockSize + u] * t[v][y];
      }
      tmp[static_cast<size_t>(y) * kBlockSize + u] = acc;
    }
  }
  Block out{};
  for (int y = 0; y < kBlockSize; ++y) {
    for (int x = 0; x < kBlockSize; ++x) {
      double acc = 0.0;
      for (int u = 0; u < kBlockSize; ++u) {
        acc += tmp[static_cast<size_t>(y) * kBlockSize + u] * t[u][x];
      }
      out[static_cast<size_t>(y) * kBlockSize + x] = acc;
    }
  }
  return out;
}

}  // namespace internal

namespace {

inline bool UseDctAccel() {
  return util::ActiveDispatchLevel() >= util::DispatchLevel::kAvx2 &&
         internal::DctAccelAvailable();
}

}  // namespace

Block ForwardDct(const Block& spatial) {
  if (UseDctAccel()) return internal::ForwardDctAccel(spatial);
  return internal::ForwardDctScalar(spatial);
}

Block InverseDct(const Block& freq) {
  if (UseDctAccel()) return internal::InverseDctAccel(freq);
  return internal::InverseDctScalar(freq);
}

Picture FromImage(const media::Image& image) {
  const int w = image.width();
  const int h = image.height();
  const int cw = (w + 1) / 2;
  const int ch = (h + 1) / 2;

  Picture pic;
  pic.y = Plane::Make(w, h);
  pic.cb = Plane::Make(cw, ch);
  pic.cr = Plane::Make(cw, ch);

  // Full-resolution YCbCr, then average 2x2 for chroma.
  std::vector<double> cb_full(static_cast<size_t>(w) * h);
  std::vector<double> cr_full(static_cast<size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const media::Rgb p = image.at(x, y);
      const double yy = 0.299 * p.r + 0.587 * p.g + 0.114 * p.b;
      const double cb = 128.0 - 0.168736 * p.r - 0.331264 * p.g + 0.5 * p.b;
      const double cr = 128.0 + 0.5 * p.r - 0.418688 * p.g - 0.081312 * p.b;
      pic.y.set(x, y, static_cast<int16_t>(std::lround(
                          std::clamp(yy, 0.0, 255.0))));
      cb_full[static_cast<size_t>(y) * w + x] = cb;
      cr_full[static_cast<size_t>(y) * w + x] = cr;
    }
  }
  for (int y = 0; y < ch; ++y) {
    for (int x = 0; x < cw; ++x) {
      double sum_cb = 0.0, sum_cr = 0.0;
      int n = 0;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          const int sx = 2 * x + dx;
          const int sy = 2 * y + dy;
          if (sx < w && sy < h) {
            sum_cb += cb_full[static_cast<size_t>(sy) * w + sx];
            sum_cr += cr_full[static_cast<size_t>(sy) * w + sx];
            ++n;
          }
        }
      }
      pic.cb.set(x, y, static_cast<int16_t>(std::lround(
                           std::clamp(sum_cb / n, 0.0, 255.0))));
      pic.cr.set(x, y, static_cast<int16_t>(std::lround(
                           std::clamp(sum_cr / n, 0.0, 255.0))));
    }
  }
  return pic;
}

media::Image ToImage(const Picture& picture, int width, int height) {
  media::Image out(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double yy = picture.y.at(std::min(x, picture.y.width - 1),
                                     std::min(y, picture.y.height - 1));
      const int cx = std::min(x / 2, picture.cb.width - 1);
      const int cy = std::min(y / 2, picture.cb.height - 1);
      const double cb = picture.cb.at(cx, cy) - 128.0;
      const double cr = picture.cr.at(cx, cy) - 128.0;
      auto to8 = [](double v) {
        return static_cast<uint8_t>(std::lround(std::clamp(v, 0.0, 255.0)));
      };
      out.set(x, y,
              media::Rgb{to8(yy + 1.402 * cr),
                         to8(yy - 0.344136 * cb - 0.714136 * cr),
                         to8(yy + 1.772 * cb)});
    }
  }
  return out;
}

Block GetBlock(const Plane& plane, int bx, int by, bool center) {
  Block block{};
  const double offset = center ? 128.0 : 0.0;
  for (int y = 0; y < kBlockSize; ++y) {
    const int sy = std::min(by * kBlockSize + y, plane.height - 1);
    for (int x = 0; x < kBlockSize; ++x) {
      const int sx = std::min(bx * kBlockSize + x, plane.width - 1);
      block[static_cast<size_t>(y) * kBlockSize + x] =
          plane.at(sx, sy) - offset;
    }
  }
  return block;
}

void PutBlock(Plane* plane, int bx, int by, const Block& block, bool center) {
  const double offset = center ? 128.0 : 0.0;
  for (int y = 0; y < kBlockSize; ++y) {
    const int dy = by * kBlockSize + y;
    if (dy >= plane->height) break;
    for (int x = 0; x < kBlockSize; ++x) {
      const int dx = bx * kBlockSize + x;
      if (dx >= plane->width) break;
      const double v =
          block[static_cast<size_t>(y) * kBlockSize + x] + offset;
      plane->set(dx, dy, static_cast<int16_t>(
                             std::lround(std::clamp(v, 0.0, 255.0))));
    }
  }
}

}  // namespace classminer::codec

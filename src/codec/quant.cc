#include "codec/quant.h"

#include <algorithm>
#include <cmath>

namespace classminer::codec {
namespace {

// JPEG Annex K luminance matrix.
constexpr int kBaseMatrix[kBlockPixels] = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

double StepSize(int index, int quality, bool chroma) {
  const double scale = std::max(1, quality) / 8.0;
  const double chroma_boost = chroma ? 1.4 : 1.0;
  return std::max(1.0, kBaseMatrix[index] * scale * chroma_boost);
}

std::array<int, kBlockPixels> BuildZigzag() {
  std::array<int, kBlockPixels> order{};
  int idx = 0;
  for (int s = 0; s < 2 * kBlockSize - 1; ++s) {
    if (s % 2 == 0) {
      // Walk up-right.
      for (int y = std::min(s, kBlockSize - 1); y >= 0 && s - y < kBlockSize;
           --y) {
        order[static_cast<size_t>(idx++)] = y * kBlockSize + (s - y);
      }
    } else {
      for (int x = std::min(s, kBlockSize - 1); x >= 0 && s - x < kBlockSize;
           --x) {
        order[static_cast<size_t>(idx++)] = (s - x) * kBlockSize + x;
      }
    }
  }
  return order;
}

}  // namespace

const std::array<int, kBlockPixels>& ZigzagOrder() {
  static const std::array<int, kBlockPixels> order = BuildZigzag();
  return order;
}

QuantizedBlock Quantize(const Block& freq, int quality, bool chroma) {
  QuantizedBlock q{};
  for (int i = 0; i < kBlockPixels; ++i) {
    q[static_cast<size_t>(i)] = static_cast<int32_t>(
        std::lround(freq[static_cast<size_t>(i)] / StepSize(i, quality, chroma)));
  }
  return q;
}

Block Dequantize(const QuantizedBlock& q, int quality, bool chroma) {
  Block freq{};
  for (int i = 0; i < kBlockPixels; ++i) {
    freq[static_cast<size_t>(i)] =
        q[static_cast<size_t>(i)] * StepSize(i, quality, chroma);
  }
  return freq;
}

int32_t EncodeBlock(BitWriter* writer, const QuantizedBlock& q,
                    int32_t dc_predictor) {
  const auto& zz = ZigzagOrder();
  const int32_t dc = q[0];
  writer->PutSE(dc - dc_predictor);

  int run = 0;
  for (int i = 1; i < kBlockPixels; ++i) {
    const int32_t level = q[static_cast<size_t>(zz[static_cast<size_t>(i)])];
    if (level == 0) {
      ++run;
      continue;
    }
    writer->PutBit(1);  // coefficient flag
    writer->PutUE(static_cast<uint32_t>(run));
    writer->PutSE(level);
    run = 0;
  }
  writer->PutBit(0);  // EOB
  return dc;
}

util::StatusOr<int32_t> DecodeBlock(BitReader* reader, QuantizedBlock* q,
                                    int32_t dc_predictor) {
  q->fill(0);
  const auto& zz = ZigzagOrder();

  util::StatusOr<int32_t> dc_delta = reader->GetSE();
  if (!dc_delta.ok()) return dc_delta.status();
  const int32_t dc = dc_predictor + *dc_delta;
  (*q)[0] = dc;

  int pos = 1;
  while (true) {
    util::StatusOr<int> flag = reader->GetBit();
    if (!flag.ok()) return flag.status();
    if (*flag == 0) break;  // EOB
    util::StatusOr<uint32_t> run = reader->GetUE();
    if (!run.ok()) return run.status();
    util::StatusOr<int32_t> level = reader->GetSE();
    if (!level.ok()) return level.status();
    pos += static_cast<int>(*run);
    if (pos >= kBlockPixels) {
      return util::Status::DataLoss("AC run exceeds block size");
    }
    (*q)[static_cast<size_t>(zz[static_cast<size_t>(pos)])] = *level;
    ++pos;
  }
  return dc;
}

}  // namespace classminer::codec

#ifndef CLASSMINER_CODEC_FRAME_SOURCE_H_
#define CLASSMINER_CODEC_FRAME_SOURCE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "codec/gop_reader.h"
#include "media/image.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace classminer::codec {

// A decoded GOP held by the cache; shared so handles outlive eviction.
using DecodedGop = std::vector<media::Image>;

// A pinned view of one decoded frame. Holding a handle keeps its whole GOP
// alive, so the image reference stays valid even after the cache evicts the
// GOP. Default-constructed handles are empty (valid() is false).
class FrameHandle {
 public:
  FrameHandle() = default;
  bool valid() const { return gop_ != nullptr; }
  const media::Image& image() const { return (*gop_)[offset_]; }

 private:
  friend class FrameSource;
  FrameHandle(std::shared_ptr<const DecodedGop> gop, size_t offset)
      : gop_(std::move(gop)), offset_(offset) {}

  std::shared_ptr<const DecodedGop> gop_;
  size_t offset_ = 0;
};

// Construction options for FrameSource (namespace scope so it can serve as
// a default argument of FrameSource::Create).
struct FrameSourceOptions {
  // Maximum decoded GOPs held by the cache (>= 1). Bounds resident memory
  // at capacity * gop_size full frames.
  int cache_capacity_gops = 8;
  // Adaptive capacity ceiling. 0 (the default) keeps the capacity fixed at
  // cache_capacity_gops. When > cache_capacity_gops, the source observes
  // its own Stats: a cache miss on a GOP it already decoded once means the
  // LRU evicted something still in the working set, so the capacity doubles
  // (up to this ceiling) to stop the re-decode thrash. When a window of
  // accesses shows no misses and touches at most half the current capacity,
  // the capacity halves back toward cache_capacity_gops, releasing memory a
  // scan-heavy phase grabbed that a sparse phase no longer needs.
  int cache_capacity_max_gops = 0;
  // Borrowed; may be null. Checked inside the per-GOP decode loop.
  const util::CancellationToken* cancel = nullptr;
  // Salvage mode for damaged containers: a GOP whose decode fails is marked
  // bad (counted in Stats::failed_gops) instead of poisoning the whole
  // source. GetFrame on a bad GOP keeps failing with the recorded error,
  // but frames in intact GOPs stay reachable.
  bool salvage = false;
};

// Thread-safe random-access frame supplier over a CMV container: a
// GopReader plus a capacity-bounded LRU cache of decoded GOPs. Callers ask
// for individual frames; the source decodes (at most) the containing GOP,
// so sparse access patterns — one representative frame per shot, sampled
// cue frames — cost O(touched GOPs * GOP size) decode work instead of
// O(frames). Frames are bit-identical to the same index of a full
// DecodeVideo pass (shared per-frame decode core; each GOP starts at an
// I-frame, so its decode is self-contained).
//
// Concurrency: GetFrame may be called from any number of threads. A GOP
// being decoded by one thread is awaited (not re-decoded) by concurrent
// requesters of the same GOP; distinct GOPs decode in parallel outside the
// lock. The first *non-retryable* decode failure is sticky — every later
// GetFrame returns it, mirroring pipeline first-error-wins semantics.
// Cancellation and transient codes (kUnavailable) do not poison the source:
// a later GetFrame retries the decode. In salvage mode (Options::salvage)
// nothing is sticky; failures are confined to their GOP.
class FrameSource {
 public:
  using Options = FrameSourceOptions;

  struct Stats {
    int64_t decoded_gops = 0;    // GOP decodes actually performed
    int64_t decoded_frames = 0;  // frames materialised by those decodes
    int64_t cache_hits = 0;      // GetFrame served from cache
    int64_t cache_misses = 0;    // GetFrame that triggered a decode
    int64_t evictions = 0;       // GOPs dropped by LRU pressure
    int64_t failed_gops = 0;     // GOPs marked bad in salvage mode
    double decode_ms = 0.0;      // wall time spent inside GOP decodes
    int capacity_gops = 0;       // current (possibly adapted) capacity
    int64_t capacity_grows = 0;  // adaptive capacity doublings
    int64_t capacity_shrinks = 0;  // adaptive capacity halvings
  };

  // Validates the file/index via GopReader::Create.
  static util::StatusOr<std::unique_ptr<FrameSource>> Create(
      const CmvFile* file, const Options& options = Options());

  // Returns a pinned handle to frame `frame_index`, decoding its GOP on a
  // cache miss. Fails with kOutOfRange for bad indices, kCancelled when the
  // token fires, or the sticky first decode error.
  util::StatusOr<FrameHandle> GetFrame(int frame_index);

  int frame_count() const { return reader_.frame_count(); }
  int gop_count() const { return reader_.gop_count(); }
  const GopReader& reader() const { return reader_; }

  Stats stats() const;

 private:
  FrameSource(GopReader reader, const Options& options);

  // Reacts to one cache lookup under the lock: grows the capacity when a
  // previously decoded GOP missed (it was evicted while still wanted) and,
  // at window boundaries, shrinks it when the working set no longer needs
  // the headroom. No-op unless max_capacity_ > base_capacity_.
  void AdaptCapacityLocked(int gop, bool hit);
  // Drops LRU tails until the cache fits capacity_.
  void EvictOverflowLocked();

  GopReader reader_;
  const int base_capacity_;
  const int max_capacity_;
  int capacity_;
  const util::CancellationToken* cancel_;
  const bool salvage_;

  mutable std::mutex mutex_;
  std::condition_variable decoded_cv_;
  // LRU order, most recent at the front; values are GOP indices.
  std::list<int> lru_;
  struct CacheEntry {
    std::shared_ptr<const DecodedGop> frames;
    std::list<int>::iterator lru_pos;
  };
  std::unordered_map<int, CacheEntry> cache_;
  std::set<int> inflight_;  // GOPs currently decoding on some thread
  std::set<int> ever_decoded_;  // GOPs decoded at least once (adaptive only)
  std::set<int> window_gops_;   // distinct GOPs touched this window
  int window_accesses_ = 0;
  int window_misses_ = 0;
  util::Status error_;      // sticky first non-retryable decode failure
  // Salvage mode: GOPs that failed to decode, with the recorded error.
  std::unordered_map<int, util::Status> bad_gops_;
  Stats stats_;
};

}  // namespace classminer::codec

#endif  // CLASSMINER_CODEC_FRAME_SOURCE_H_

#ifndef CLASSMINER_CODEC_MOTION_H_
#define CLASSMINER_CODEC_MOTION_H_

#include <cstdint>

#include "codec/dct.h"

namespace classminer::codec {

inline constexpr int kMacroblockSize = 16;

struct MotionVector {
  int dx = 0;
  int dy = 0;

  friend bool operator==(const MotionVector&, const MotionVector&) = default;
};

// Sum of absolute differences between the 16x16 macroblock at (mx, my) in
// `cur` and the block displaced by (dx, dy) in `ref` (edge-clamped).
// Interior blocks (both footprints fully in bounds) dispatch to an AVX2
// kernel when util::ActiveDispatchLevel() allows; the sum is integer, so
// every path is exactly equal.
int64_t MacroblockSad(const Plane& cur, const Plane& ref, int mx, int my,
                      int dx, int dy);

namespace internal {

// Reference kernel (portable C++, handles edge clamping and partial
// blocks).
int64_t MacroblockSadScalar(const Plane& cur, const Plane& ref, int mx,
                            int my, int dx, int dy);

// AVX2 kernel (x86-64 only). Callable only when SadAccelAvailable() and
// only for interior blocks: the 16x16 footprints at (mx, my) in `cur` and
// (mx + dx, my + dy) in `ref` must lie fully inside their planes.
bool SadAccelAvailable();
int64_t MacroblockSadAccel(const Plane& cur, const Plane& ref, int mx,
                           int my, int dx, int dy);

}  // namespace internal

// Full-search motion estimation over [-range, range]^2 with an early-exit
// centre bias; returns the vector minimising SAD.
MotionVector EstimateMotion(const Plane& cur, const Plane& ref, int mx,
                            int my, int range);

// Copies the (possibly displaced, edge-clamped) macroblock of `ref` into
// the prediction plane `pred` at (mx, my). `block_size` lets chroma reuse
// this with 8x8 blocks and halved vectors.
void MotionCompensate(const Plane& ref, Plane* pred, int mx, int my,
                      MotionVector mv, int block_size);

}  // namespace classminer::codec

#endif  // CLASSMINER_CODEC_MOTION_H_

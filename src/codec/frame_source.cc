#include "codec/frame_source.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "util/retry.h"

namespace classminer::codec {

util::StatusOr<std::unique_ptr<FrameSource>> FrameSource::Create(
    const CmvFile* file, const Options& options) {
  util::StatusOr<GopReader> reader = GopReader::Create(file);
  if (!reader.ok()) return reader.status();
  return std::unique_ptr<FrameSource>(
      new FrameSource(std::move(reader).value(), options));
}

FrameSource::FrameSource(GopReader reader, const Options& options)
    : reader_(std::move(reader)),
      base_capacity_(std::max(1, options.cache_capacity_gops)),
      max_capacity_(std::max(base_capacity_, options.cache_capacity_max_gops)),
      capacity_(base_capacity_),
      cancel_(options.cancel),
      salvage_(options.salvage) {}

void FrameSource::AdaptCapacityLocked(int gop, bool hit) {
  if (max_capacity_ <= base_capacity_) return;
  ++window_accesses_;
  window_gops_.insert(gop);
  if (!hit) {
    ++window_misses_;
    // A miss on a GOP we already decoded means the LRU evicted part of the
    // live working set: every pass over it will re-pay the decode. Double
    // the capacity (up to the ceiling) so the set fits.
    if (ever_decoded_.count(gop) != 0 && capacity_ < max_capacity_) {
      capacity_ = std::min(capacity_ * 2, max_capacity_);
      ++stats_.capacity_grows;
    }
  }
  // Shrink with hysteresis, judged one window at a time: only when a whole
  // window ran without a single miss AND touched at most half the current
  // capacity is the headroom provably idle. A scan over more GOPs than
  // capacity/2 keeps the window's distinct count high, so oscillation
  // (shrink -> thrash -> grow) can't start.
  constexpr int kWindow = 64;
  if (window_accesses_ >= kWindow) {
    if (window_misses_ == 0 && capacity_ > base_capacity_ &&
        static_cast<int>(window_gops_.size()) <= capacity_ / 2) {
      capacity_ = std::max(base_capacity_, capacity_ / 2);
      ++stats_.capacity_shrinks;
      EvictOverflowLocked();
    }
    window_accesses_ = 0;
    window_misses_ = 0;
    window_gops_.clear();
  }
}

void FrameSource::EvictOverflowLocked() {
  while (static_cast<int>(cache_.size()) > capacity_) {
    const int victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    ++stats_.evictions;
  }
}

util::StatusOr<FrameHandle> FrameSource::GetFrame(int frame_index) {
  const int g = reader_.GopOfFrame(frame_index);
  if (g < 0) {
    return util::Status::OutOfRange(
        "frame index " + std::to_string(frame_index) + " outside [0, " +
        std::to_string(reader_.frame_count()) + ")");
  }
  const size_t offset = static_cast<size_t>(
      frame_index - reader_.gop(g).start_frame);

  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!error_.ok()) return error_;
    if (salvage_) {
      auto bad = bad_gops_.find(g);
      if (bad != bad_gops_.end()) return bad->second;
    }
    auto it = cache_.find(g);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      ++stats_.cache_hits;
      AdaptCapacityLocked(g, /*hit=*/true);
      return FrameHandle(it->second.frames, offset);
    }
    if (inflight_.count(g) == 0) break;
    decoded_cv_.wait(lock);
  }
  AdaptCapacityLocked(g, /*hit=*/false);

  // Decode outside the lock; other GOPs (and waiters on this one) proceed.
  inflight_.insert(g);
  lock.unlock();
  const auto start = std::chrono::steady_clock::now();
  util::StatusOr<std::vector<media::Image>> gop =
      reader_.DecodeGop(g, cancel_);
  const double elapsed_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - start)
          .count();
  lock.lock();
  inflight_.erase(g);
  if (!gop.ok()) {
    const util::StatusCode code = gop.status().code();
    // Cancellation is transient caller state and kUnavailable-class codes
    // are retryable environment hiccups; neither is container corruption,
    // so neither poisons the source — a later GetFrame retries the decode.
    const bool retryable = code == util::StatusCode::kCancelled ||
                           util::IsTransientCode(code);
    if (salvage_ && !retryable) {
      // Confine the damage to this GOP; intact GOPs stay reachable.
      bad_gops_.emplace(g, gop.status());
      ++stats_.failed_gops;
    } else if (!salvage_ && !retryable && error_.ok()) {
      error_ = gop.status();
    }
    decoded_cv_.notify_all();
    return gop.status();
  }
  ++stats_.cache_misses;
  ++stats_.decoded_gops;
  stats_.decoded_frames += static_cast<int64_t>(gop->size());
  stats_.decode_ms += elapsed_ms;
  if (max_capacity_ > base_capacity_) ever_decoded_.insert(g);

  auto entry = std::make_shared<const DecodedGop>(std::move(gop).value());
  lru_.push_front(g);
  cache_[g] = CacheEntry{entry, lru_.begin()};
  EvictOverflowLocked();
  decoded_cv_.notify_all();
  return FrameHandle(std::move(entry), offset);
}

FrameSource::Stats FrameSource::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.capacity_gops = capacity_;
  return out;
}

}  // namespace classminer::codec

#include "audio/audio_buffer.h"

#include <algorithm>

namespace classminer::audio {

size_t AudioBuffer::SampleAt(double sec) const {
  if (sec <= 0.0 || samples_.empty()) return 0;
  const size_t idx = static_cast<size_t>(sec * sample_rate_);
  return std::min(idx, samples_.size());
}

AudioBuffer AudioBuffer::Slice(double start_sec, double dur_sec) const {
  const size_t begin = SampleAt(start_sec);
  const size_t end = SampleAt(start_sec + std::max(0.0, dur_sec));
  AudioBuffer out(sample_rate_);
  if (begin < end) {
    out.samples_.assign(samples_.begin() + static_cast<ptrdiff_t>(begin),
                        samples_.begin() + static_cast<ptrdiff_t>(end));
  }
  return out;
}

}  // namespace classminer::audio

#ifndef CLASSMINER_AUDIO_AUDIO_BUFFER_H_
#define CLASSMINER_AUDIO_AUDIO_BUFFER_H_

#include <cstddef>
#include <span>
#include <vector>

namespace classminer::audio {

// Mono PCM audio in [-1, 1] at a fixed sample rate. The audio track of a
// video is one AudioBuffer aligned with frame timestamps.
class AudioBuffer {
 public:
  AudioBuffer() : sample_rate_(16000) {}
  explicit AudioBuffer(int sample_rate) : sample_rate_(sample_rate) {}
  AudioBuffer(int sample_rate, std::vector<float> samples)
      : sample_rate_(sample_rate), samples_(std::move(samples)) {}

  int sample_rate() const { return sample_rate_; }
  size_t sample_count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double DurationSeconds() const {
    return sample_rate_ > 0
               ? static_cast<double>(samples_.size()) / sample_rate_
               : 0.0;
  }

  float at(size_t i) const { return samples_[i]; }
  const std::vector<float>& samples() const { return samples_; }
  std::vector<float>& samples() { return samples_; }

  void Append(std::span<const float> chunk) {
    samples_.insert(samples_.end(), chunk.begin(), chunk.end());
  }

  // Returns the sample range covering [start_sec, start_sec + dur_sec),
  // clamped to the buffer. May be empty.
  AudioBuffer Slice(double start_sec, double dur_sec) const;

  // Index of the sample at time `sec` (clamped).
  size_t SampleAt(double sec) const;

 private:
  int sample_rate_;
  std::vector<float> samples_;
};

}  // namespace classminer::audio

#endif  // CLASSMINER_AUDIO_AUDIO_BUFFER_H_

#ifndef CLASSMINER_AUDIO_SPEAKER_SEGMENTER_H_
#define CLASSMINER_AUDIO_SPEAKER_SEGMENTER_H_

#include <optional>
#include <vector>

#include "audio/audio_buffer.h"
#include "audio/bic.h"
#include "audio/features.h"
#include "audio/gmm.h"
#include "audio/mfcc.h"
#include "util/exec_context.h"
#include "util/matrix.h"

namespace classminer::audio {

// Per-shot audio analysis (paper Sec. 4.2): the shot's audio is split into
// ~2 s clips; each clip is classified clean-speech vs non-speech; the most
// speech-like clip becomes the shot's representative clip, from which MFCCs
// are extracted for the BIC speaker test.
struct ShotAudioAnalysis {
  int shot_index = -1;
  bool analyzable = false;   // shot was at least one clip long
  bool has_speech = false;   // representative clip classified as speech
  double speech_margin = 0.0;
  ClipFeatures rep_features{};
  util::Matrix mfcc;         // rep clip MFCC sequence (n x 14)
};

// Trains the clean-speech vs non-speech GMM classifier from labelled clips:
// rows of `speech` / `nonspeech` are 14-d clip feature vectors.
util::StatusOr<GmmClassifier> TrainSpeechClassifier(
    const util::Matrix& nonspeech, const util::Matrix& speech,
    int components = 3, uint64_t seed = 23);

class SpeakerSegmenter {
 public:
  struct Options {
    double clip_seconds = 2.0;
    // Shots shorter than this are discarded from audio analysis (paper:
    // "a video shot with its length less than 2 seconds is discarded").
    double min_shot_seconds = 2.0;
    // BIC penalty factor lambda. With ~200 MFCC frames per clip the
    // same-speaker likelihood ratio runs up to ~1.4x the lambda=1 penalty
    // (different clips of one voice differ in syllable content), while
    // cross-speaker ratios exceed 4x; 2.0 sits safely between.
    double bic_penalty = 2.0;
  };

  SpeakerSegmenter() : SpeakerSegmenter(Options()) {}
  explicit SpeakerSegmenter(Options options,
                            std::optional<GmmClassifier> classifier = {})
      : options_(options), classifier_(std::move(classifier)) {}

  // Analyzes the audio of one shot spanning [start_sec, end_sec). The
  // context's pool parallelises per-clip feature extraction (independent
  // clip slots, serial best-clip selection; bit-identical to serial).
  // Nesting is safe: a caller already parallelising across shots may pass
  // the same context through, and the shared pool interleaves the work.
  ShotAudioAnalysis AnalyzeShot(const AudioBuffer& audio, double start_sec,
                                double end_sec, int shot_index,
                                const util::ExecutionContext& ctx = {}) const;

  // BIC speaker-change decision between two analyzed shots. Shots without
  // usable speech never assert a change.
  bool SpeakerChange(const ShotAudioAnalysis& a,
                     const ShotAudioAnalysis& b) const;

  // Detailed test result (for diagnostics / tests).
  BicResult SpeakerChangeDetail(const ShotAudioAnalysis& a,
                                const ShotAudioAnalysis& b) const;

  // Shot-level speaker diarization: groups speech shots into speaker
  // labels via pairwise BIC no-change links (transitively closed with
  // union-find). Returns one label per analysis: -1 for shots without
  // usable speech, otherwise a 0-based speaker id in order of first
  // appearance. Underpins the dialog rule's "duplicated speaker" check
  // and answers queries like "how many people speak in this scene?".
  std::vector<int> DiarizeShots(
      const std::vector<ShotAudioAnalysis>& analyses) const;

 private:
  // Heuristic speech detector used when no trained classifier is supplied:
  // voiced pitch in speech range plus moderate pause structure.
  static bool HeuristicIsSpeech(const ClipFeatures& f);
  static double HeuristicMargin(const ClipFeatures& f);

  Options options_;
  std::optional<GmmClassifier> classifier_;
};

}  // namespace classminer::audio

#endif  // CLASSMINER_AUDIO_SPEAKER_SEGMENTER_H_

#include "audio/speaker_segmenter.h"

#include <algorithm>
#include <functional>
#include <map>

namespace classminer::audio {

util::StatusOr<GmmClassifier> TrainSpeechClassifier(
    const util::Matrix& nonspeech, const util::Matrix& speech, int components,
    uint64_t seed) {
  Gmm::TrainOptions opts;
  opts.components = components;
  opts.seed = seed;
  util::StatusOr<Gmm> m0 = Gmm::Train(nonspeech, opts);
  if (!m0.ok()) return m0.status();
  opts.seed = seed + 1;
  util::StatusOr<Gmm> m1 = Gmm::Train(speech, opts);
  if (!m1.ok()) return m1.status();
  return GmmClassifier(std::move(*m0), std::move(*m1));
}

bool SpeakerSegmenter::HeuristicIsSpeech(const ClipFeatures& f) {
  return HeuristicMargin(f) > 0.0;
}

double SpeakerSegmenter::HeuristicMargin(const ClipFeatures& f) {
  // Speech: voiced pitch in the 60-400 Hz band, audible volume, energy
  // concentrated below ~1.7 kHz, and some (but not total) silence.
  double score = 0.0;
  const double pitch_hz = f[6] * 1000.0;
  score += (pitch_hz >= 60.0 && pitch_hz <= 400.0) ? 1.0 : -1.0;
  score += (f[0] > 0.01) ? 0.5 : -1.0;                  // volume mean
  score += (f[10] + f[11] > 0.5) ? 0.5 : -0.5;          // low-band energy
  score += (f[3] < 0.9) ? 0.25 : -0.5;                  // not all silence
  return score;
}

ShotAudioAnalysis SpeakerSegmenter::AnalyzeShot(
    const AudioBuffer& audio, double start_sec, double end_sec,
    int shot_index, const util::ExecutionContext& ctx) const {
  ShotAudioAnalysis out;
  out.shot_index = shot_index;
  const double duration = end_sec - start_sec;
  if (duration < options_.min_shot_seconds) return out;

  const AudioBuffer span = audio.Slice(start_sec, duration);
  const std::vector<AudioBuffer> clips =
      SplitIntoClips(span, options_.clip_seconds);
  if (clips.empty()) return out;
  out.analyzable = true;

  // Feature every clip (independent slots), then pick the clip most like
  // clean speech with a serial scan — first-best wins either way.
  std::vector<ClipFeatures> features(clips.size());
  util::ParallelFor(ctx, static_cast<int>(clips.size()), [&](int i) {
    features[static_cast<size_t>(i)] =
        ComputeClipFeatures(clips[static_cast<size_t>(i)]);
  });
  double best_margin = -1e18;
  size_t best_clip = 0;
  for (size_t i = 0; i < clips.size(); ++i) {
    double margin;
    if (classifier_.has_value()) {
      util::Matrix row(1, kClipFeatureDims);
      for (int d = 0; d < kClipFeatureDims; ++d) {
        row.at(0, static_cast<size_t>(d)) = features[i][static_cast<size_t>(d)];
      }
      margin = classifier_->Margin(row);
    } else {
      margin = HeuristicMargin(features[i]);
    }
    if (margin > best_margin) {
      best_margin = margin;
      best_clip = i;
    }
  }
  out.speech_margin = best_margin;
  out.has_speech = best_margin > 0.0;
  out.rep_features = features[best_clip];
  out.mfcc = ComputeMfcc(clips[best_clip]);
  return out;
}

BicResult SpeakerSegmenter::SpeakerChangeDetail(
    const ShotAudioAnalysis& a, const ShotAudioAnalysis& b) const {
  return BicSpeakerChangeTest(a.mfcc, b.mfcc, options_.bic_penalty);
}

bool SpeakerSegmenter::SpeakerChange(const ShotAudioAnalysis& a,
                                     const ShotAudioAnalysis& b) const {
  if (!a.has_speech || !b.has_speech) return false;
  if (a.mfcc.rows() < 8 || b.mfcc.rows() < 8) return false;
  return SpeakerChangeDetail(a, b).speaker_change;
}

std::vector<int> SpeakerSegmenter::DiarizeShots(
    const std::vector<ShotAudioAnalysis>& analyses) const {
  const size_t n = analyses.size();
  // Union-find over speech shots; a BIC "no change" verdict links a pair.
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto usable = [&](size_t i) {
    return analyses[i].has_speech && analyses[i].mfcc.rows() >= 8;
  };
  for (size_t i = 0; i < n; ++i) {
    if (!usable(i)) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (!usable(j)) continue;
      if (!SpeakerChangeDetail(analyses[i], analyses[j]).speaker_change) {
        parent[find(i)] = find(j);
      }
    }
  }
  std::vector<int> labels(n, -1);
  std::map<size_t, int> label_of_root;
  for (size_t i = 0; i < n; ++i) {
    if (!usable(i)) continue;
    const size_t root = find(i);
    auto it = label_of_root.find(root);
    if (it == label_of_root.end()) {
      it = label_of_root.emplace(root,
                                 static_cast<int>(label_of_root.size()))
               .first;
    }
    labels[i] = it->second;
  }
  return labels;
}

}  // namespace classminer::audio

#include "audio/bic.h"

#include <cmath>

#include "util/logging.h"

namespace classminer::audio {

BicResult BicSpeakerChangeTest(const util::Matrix& xi, const util::Matrix& xj,
                               double penalty_factor) {
  BicResult result;
  const size_t ni = xi.rows();
  const size_t nj = xj.rows();
  const size_t p = xi.cols();
  if (ni == 0 || nj == 0) return result;  // vacuous: no change claimed
  CM_CHECK(xj.cols() == p) << "BIC inputs must share dimensionality";

  // Pooled sample matrix.
  util::Matrix pooled(ni + nj, p);
  for (size_t r = 0; r < ni; ++r) {
    for (size_t c = 0; c < p; ++c) pooled.at(r, c) = xi.at(r, c);
  }
  for (size_t r = 0; r < nj; ++r) {
    for (size_t c = 0; c < p; ++c) pooled.at(ni + r, c) = xj.at(r, c);
  }

  const double n = static_cast<double>(ni + nj);
  const double logdet_all = util::LogDetPsd(util::Covariance(pooled));
  const double logdet_i = util::LogDetPsd(util::Covariance(xi));
  const double logdet_j = util::LogDetPsd(util::Covariance(xj));

  result.lambda_r = 0.5 * (n * logdet_all -
                           static_cast<double>(ni) * logdet_i -
                           static_cast<double>(nj) * logdet_j);
  const double pd = static_cast<double>(p);
  result.penalty = penalty_factor * 0.5 *
                   (pd + 0.5 * pd * (pd + 1.0)) * std::log(n);
  result.delta_bic = -result.lambda_r + result.penalty;
  result.speaker_change = result.delta_bic < 0.0;
  return result;
}

}  // namespace classminer::audio

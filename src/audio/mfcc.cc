#include "audio/mfcc.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/fft.h"

namespace classminer::audio {
namespace {

double HzToMel(double hz) { return 2595.0 * std::log10(1.0 + hz / 700.0); }
double MelToHz(double mel) {
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

// Triangular mel filterbank over FFT bins [0, n_bins).
std::vector<std::vector<double>> BuildFilterbank(int n_filters, int n_bins,
                                                 double bin_hz, double low_hz,
                                                 double high_hz) {
  const double low_mel = HzToMel(low_hz);
  const double high_mel = HzToMel(high_hz);
  std::vector<double> centers(static_cast<size_t>(n_filters) + 2);
  for (int i = 0; i < n_filters + 2; ++i) {
    const double mel =
        low_mel + (high_mel - low_mel) * i / (n_filters + 1.0);
    centers[static_cast<size_t>(i)] = MelToHz(mel);
  }
  std::vector<std::vector<double>> bank(
      static_cast<size_t>(n_filters),
      std::vector<double>(static_cast<size_t>(n_bins), 0.0));
  for (int m = 0; m < n_filters; ++m) {
    const double lo = centers[static_cast<size_t>(m)];
    const double mid = centers[static_cast<size_t>(m) + 1];
    const double hi = centers[static_cast<size_t>(m) + 2];
    for (int b = 0; b < n_bins; ++b) {
      const double hz = b * bin_hz;
      double w = 0.0;
      if (hz >= lo && hz <= mid && mid > lo) {
        w = (hz - lo) / (mid - lo);
      } else if (hz > mid && hz <= hi && hi > mid) {
        w = (hi - hz) / (hi - mid);
      }
      bank[static_cast<size_t>(m)][static_cast<size_t>(b)] = w;
    }
  }
  return bank;
}

}  // namespace

util::Matrix ComputeMfcc(const AudioBuffer& clip, const MfccOptions& options) {
  const int sr = clip.sample_rate();
  const size_t win =
      static_cast<size_t>(std::max(2.0, options.window_seconds * sr));
  const size_t hop =
      static_cast<size_t>(std::max(1.0, options.hop_seconds * sr));
  const std::vector<float>& s = clip.samples();
  if (s.size() < win) return util::Matrix(0, kMfccDims);

  const size_t fft_size = util::NextPowerOfTwo(win);
  const int n_bins = static_cast<int>(fft_size / 2 + 1);
  const double bin_hz = static_cast<double>(sr) / static_cast<double>(fft_size);
  const double high_hz = options.high_hz > 0.0
                             ? std::min(options.high_hz, sr / 2.0)
                             : sr / 2.0;
  const std::vector<std::vector<double>> bank = BuildFilterbank(
      options.mel_filters, n_bins, bin_hz, options.low_hz, high_hz);

  // Hamming window.
  std::vector<double> hamming(win);
  for (size_t i = 0; i < win; ++i) {
    hamming[i] = 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * i /
                                        (static_cast<double>(win) - 1.0));
  }

  const size_t n_windows = (s.size() - win) / hop + 1;
  util::Matrix mfcc(n_windows, kMfccDims);

  std::vector<std::complex<double>> buf(fft_size);
  std::vector<double> mel_log(static_cast<size_t>(options.mel_filters));
  for (size_t w = 0; w < n_windows; ++w) {
    const size_t start = w * hop;
    // Pre-emphasis + window.
    for (size_t i = 0; i < fft_size; ++i) {
      if (i < win) {
        const double cur = s[start + i];
        const double prev = (start + i > 0) ? s[start + i - 1] : 0.0;
        buf[i] = {(cur - options.pre_emphasis * prev) * hamming[i], 0.0};
      } else {
        buf[i] = {0.0, 0.0};
      }
    }
    util::Fft(&buf);

    for (int m = 0; m < options.mel_filters; ++m) {
      double acc = 0.0;
      for (int b = 0; b < n_bins; ++b) {
        const double mag = std::abs(buf[static_cast<size_t>(b)]);
        acc += bank[static_cast<size_t>(m)][static_cast<size_t>(b)] * mag * mag;
      }
      mel_log[static_cast<size_t>(m)] = std::log(std::max(acc, 1e-12));
    }

    // DCT-II of the log mel energies -> cepstral coefficients 0..13.
    for (int k = 0; k < kMfccDims; ++k) {
      double acc = 0.0;
      for (int m = 0; m < options.mel_filters; ++m) {
        acc += mel_log[static_cast<size_t>(m)] *
               std::cos(std::numbers::pi * k * (m + 0.5) /
                        options.mel_filters);
      }
      mfcc.at(w, static_cast<size_t>(k)) = acc;
    }
  }
  return mfcc;
}

util::Matrix AppendDeltas(const util::Matrix& mfcc, int reach) {
  const size_t n = mfcc.rows();
  const size_t d = mfcc.cols();
  util::Matrix out(n, 2 * d);
  if (n == 0) return out;
  double norm = 0.0;
  for (int t = 1; t <= reach; ++t) norm += 2.0 * t * t;
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < d; ++c) {
      out.at(i, c) = mfcc.at(i, c);
      double acc = 0.0;
      for (int t = 1; t <= reach; ++t) {
        const size_t fwd =
            std::min(n - 1, i + static_cast<size_t>(t));
        const size_t bwd =
            i >= static_cast<size_t>(t) ? i - static_cast<size_t>(t) : 0;
        acc += t * (mfcc.at(fwd, c) - mfcc.at(bwd, c));
      }
      out.at(i, d + c) = norm > 0.0 ? acc / norm : 0.0;
    }
  }
  return out;
}

void CepstralMeanNormalize(util::Matrix* mfcc) {
  const size_t n = mfcc->rows();
  const size_t d = mfcc->cols();
  if (n == 0) return;
  for (size_t c = 0; c < d; ++c) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) mean += mfcc->at(i, c);
    mean /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) mfcc->at(i, c) -= mean;
  }
}

}  // namespace classminer::audio

#ifndef CLASSMINER_AUDIO_GMM_H_
#define CLASSMINER_AUDIO_GMM_H_

#include <vector>

#include "util/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace classminer::audio {

// Diagonal-covariance Gaussian mixture model trained with EM. Used for the
// clean-speech vs non-speech clip classifier (paper Sec. 4.2).
class Gmm {
 public:
  struct Component {
    double weight = 0.0;
    std::vector<double> mean;
    std::vector<double> variance;  // diagonal
  };

  struct TrainOptions {
    int components = 4;
    int max_iterations = 50;
    double min_variance = 1e-4;
    double tolerance = 1e-4;  // relative log-likelihood improvement
    uint64_t seed = 17;
  };

  // Fits a GMM to the rows of `samples` (n x d). Requires n >= components.
  static util::StatusOr<Gmm> Train(const util::Matrix& samples,
                                   const TrainOptions& options);
  static util::StatusOr<Gmm> Train(const util::Matrix& samples) {
    return Train(samples, TrainOptions());
  }

  int dimensions() const {
    return components_.empty()
               ? 0
               : static_cast<int>(components_.front().mean.size());
  }
  int component_count() const { return static_cast<int>(components_.size()); }
  const std::vector<Component>& components() const { return components_; }

  // Log density of one vector under the mixture.
  double LogLikelihood(std::span<const double> x) const;

  // Mean log density of all rows.
  double AverageLogLikelihood(const util::Matrix& samples) const;

 private:
  std::vector<Component> components_;
};

// Two-class maximum-likelihood classifier over GMMs (e.g. speech vs
// non-speech). Returns the index of the model with the higher average
// log-likelihood on the sample rows.
class GmmClassifier {
 public:
  GmmClassifier(Gmm class0, Gmm class1)
      : models_{std::move(class0), std::move(class1)} {}

  int Classify(const util::Matrix& samples) const;
  // Margin = avg-loglik(class1) - avg-loglik(class0); > 0 means class 1.
  double Margin(const util::Matrix& samples) const;

 private:
  Gmm models_[2];
};

}  // namespace classminer::audio

#endif  // CLASSMINER_AUDIO_GMM_H_

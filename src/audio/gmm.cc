#include "audio/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace classminer::audio {
namespace {

double LogGaussianDiag(std::span<const double> x,
                       const std::vector<double>& mean,
                       const std::vector<double>& variance) {
  double acc = 0.0;
  for (size_t d = 0; d < mean.size(); ++d) {
    const double diff = x[d] - mean[d];
    acc += -0.5 * (std::log(2.0 * std::numbers::pi * variance[d]) +
                   diff * diff / variance[d]);
  }
  return acc;
}

double LogSumExp(const std::vector<double>& v) {
  double mx = -std::numeric_limits<double>::infinity();
  for (double x : v) mx = std::max(mx, x);
  if (!std::isfinite(mx)) return mx;
  double acc = 0.0;
  for (double x : v) acc += std::exp(x - mx);
  return mx + std::log(acc);
}

}  // namespace

util::StatusOr<Gmm> Gmm::Train(const util::Matrix& samples,
                               const TrainOptions& options) {
  const size_t n = samples.rows();
  const size_t d = samples.cols();
  const size_t k = static_cast<size_t>(std::max(1, options.components));
  if (n < k) {
    return util::Status::InvalidArgument(
        "GMM training requires at least as many samples as components");
  }

  // Global variance for initialisation floors.
  std::vector<double> global_mean(d, 0.0), global_var(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) global_mean[j] += samples.at(i, j);
  }
  for (double& m : global_mean) m /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double diff = samples.at(i, j) - global_mean[j];
      global_var[j] += diff * diff;
    }
  }
  for (double& v : global_var) {
    v = std::max(v / static_cast<double>(n), options.min_variance);
  }

  // Init: random distinct samples as means, global variance, equal weights.
  util::Rng rng(options.seed);
  Gmm gmm;
  gmm.components_.resize(k);
  std::vector<size_t> picks;
  while (picks.size() < k) {
    const size_t cand = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(n) - 1));
    if (std::find(picks.begin(), picks.end(), cand) == picks.end()) {
      picks.push_back(cand);
    }
  }
  for (size_t c = 0; c < k; ++c) {
    Component& comp = gmm.components_[c];
    comp.weight = 1.0 / static_cast<double>(k);
    comp.mean.assign(d, 0.0);
    for (size_t j = 0; j < d; ++j) comp.mean[j] = samples.at(picks[c], j);
    comp.variance = global_var;
  }

  std::vector<std::vector<double>> resp(
      n, std::vector<double>(k, 0.0));  // responsibilities
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // E-step.
    double total_ll = 0.0;
    std::vector<double> logp(k);
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < k; ++c) {
        const Component& comp = gmm.components_[c];
        logp[c] = std::log(std::max(comp.weight, 1e-12)) +
                  LogGaussianDiag(samples.row(i), comp.mean, comp.variance);
      }
      const double lse = LogSumExp(logp);
      total_ll += lse;
      for (size_t c = 0; c < k; ++c) resp[i][c] = std::exp(logp[c] - lse);
    }

    // M-step.
    for (size_t c = 0; c < k; ++c) {
      Component& comp = gmm.components_[c];
      double nk = 0.0;
      for (size_t i = 0; i < n; ++i) nk += resp[i][c];
      if (nk < 1e-8) {
        // Dead component: re-seed on a random sample.
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int>(n) - 1));
        for (size_t j = 0; j < d; ++j) comp.mean[j] = samples.at(pick, j);
        comp.variance = global_var;
        comp.weight = 1.0 / static_cast<double>(n);
        continue;
      }
      comp.weight = nk / static_cast<double>(n);
      for (size_t j = 0; j < d; ++j) {
        double m = 0.0;
        for (size_t i = 0; i < n; ++i) m += resp[i][c] * samples.at(i, j);
        comp.mean[j] = m / nk;
      }
      for (size_t j = 0; j < d; ++j) {
        double v = 0.0;
        for (size_t i = 0; i < n; ++i) {
          const double diff = samples.at(i, j) - comp.mean[j];
          v += resp[i][c] * diff * diff;
        }
        comp.variance[j] = std::max(v / nk, options.min_variance);
      }
    }

    if (iter > 0 &&
        std::fabs(total_ll - prev_ll) <
            options.tolerance * (std::fabs(prev_ll) + 1.0)) {
      break;
    }
    prev_ll = total_ll;
  }
  return gmm;
}

double Gmm::LogLikelihood(std::span<const double> x) const {
  std::vector<double> logp(components_.size());
  for (size_t c = 0; c < components_.size(); ++c) {
    const Component& comp = components_[c];
    logp[c] = std::log(std::max(comp.weight, 1e-12)) +
              LogGaussianDiag(x, comp.mean, comp.variance);
  }
  return LogSumExp(logp);
}

double Gmm::AverageLogLikelihood(const util::Matrix& samples) const {
  if (samples.rows() == 0) return -std::numeric_limits<double>::infinity();
  double acc = 0.0;
  for (size_t i = 0; i < samples.rows(); ++i) {
    acc += LogLikelihood(samples.row(i));
  }
  return acc / static_cast<double>(samples.rows());
}

int GmmClassifier::Classify(const util::Matrix& samples) const {
  return Margin(samples) > 0.0 ? 1 : 0;
}

double GmmClassifier::Margin(const util::Matrix& samples) const {
  return models_[1].AverageLogLikelihood(samples) -
         models_[0].AverageLogLikelihood(samples);
}

}  // namespace classminer::audio

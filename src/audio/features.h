#ifndef CLASSMINER_AUDIO_FEATURES_H_
#define CLASSMINER_AUDIO_FEATURES_H_

#include <array>
#include <vector>

#include "audio/audio_buffer.h"

namespace classminer::audio {

// 14 clip-level audio features (paper Sec. 4.2, after Liu & Huang [22]),
// computed over ~2 s clips from 30 ms analysis frames with 10 ms hop:
//   0 volume mean (RMS)          7 pitch std (Hz / 1000)
//   1 volume std                 8 spectral centroid mean (norm.)
//   2 volume dynamic range       9 spectral bandwidth mean (norm.)
//   3 silence ratio             10 subband energy ratio 0-630 Hz
//   4 ZCR mean                  11 subband ratio 630-1720 Hz
//   5 ZCR std                   12 subband ratio 1720-4400 Hz
//   6 pitch mean (Hz / 1000)    13 subband ratio 4400 Hz-Nyquist
inline constexpr int kClipFeatureDims = 14;

using ClipFeatures = std::array<double, kClipFeatureDims>;

struct ClipFeatureOptions {
  double frame_seconds = 0.030;
  double hop_seconds = 0.010;
};

// Computes clip features; an empty clip yields all zeros.
ClipFeatures ComputeClipFeatures(const AudioBuffer& clip,
                                 const ClipFeatureOptions& options = {});

// Splits `audio` into adjacent clips of `clip_seconds`; the trailing
// remainder shorter than half a clip is dropped.
std::vector<AudioBuffer> SplitIntoClips(const AudioBuffer& audio,
                                        double clip_seconds = 2.0);

}  // namespace classminer::audio

#endif  // CLASSMINER_AUDIO_FEATURES_H_

#ifndef CLASSMINER_AUDIO_BIC_H_
#define CLASSMINER_AUDIO_BIC_H_

#include "util/matrix.h"

namespace classminer::audio {

// Bayesian Information Criterion speaker-change test (paper Eqs. 17-19,
// after Delacourt & Wellekens DISTBIC [23]).
//
// Given MFCC sequences X_i (n_i x p) and X_j (n_j x p), tests
//   H0: both drawn from one Gaussian N(mu, Sigma)
//   H1: drawn from two Gaussians N(mu_i, Sigma_i), N(mu_j, Sigma_j)
// via the penalised likelihood ratio
//   Lambda(R) = (N/2) log|Sigma| - (N_i/2) log|Sigma_i| - (N_j/2) log|Sigma_j|
//   DeltaBIC  = -Lambda(R) + lambda * P,
//   P = (1/2)(p + p(p+1)/2) log N.
// DeltaBIC < 0  =>  speaker change between the two clips.
struct BicResult {
  double lambda_r = 0.0;   // likelihood ratio statistic
  double penalty = 0.0;    // lambda * P
  double delta_bic = 0.0;  // -lambda_r + penalty
  bool speaker_change = false;
};

// `penalty_factor` is the lambda of Eq. 19 (1.0 in the reference setting).
BicResult BicSpeakerChangeTest(const util::Matrix& xi, const util::Matrix& xj,
                               double penalty_factor = 1.0);

}  // namespace classminer::audio

#endif  // CLASSMINER_AUDIO_BIC_H_

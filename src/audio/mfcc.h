#ifndef CLASSMINER_AUDIO_MFCC_H_
#define CLASSMINER_AUDIO_MFCC_H_

#include <vector>

#include "audio/audio_buffer.h"
#include "util/matrix.h"

namespace classminer::audio {

// 14-dimensional mel-frequency cepstral coefficients (paper Sec. 4.2):
// 30 ms sliding windows with 20 ms overlap (10 ms hop), pre-emphasis,
// Hamming window, mel filterbank, log, DCT.
inline constexpr int kMfccDims = 14;

struct MfccOptions {
  double window_seconds = 0.030;
  double hop_seconds = 0.010;  // 20 ms overlap of 30 ms windows
  int mel_filters = 26;
  double pre_emphasis = 0.97;
  double low_hz = 60.0;
  double high_hz = 0.0;  // 0 = Nyquist
};

// Returns an (num_windows x 14) matrix of MFCC vectors; empty (0 x 14) when
// the clip is shorter than one window.
util::Matrix ComputeMfcc(const AudioBuffer& clip,
                         const MfccOptions& options = {});

// Appends first-order delta coefficients (linear regression over +-2
// neighbouring windows), doubling the feature dimensionality to 28. Speech
// dynamics sharpen speaker discrimination in the BIC test.
util::Matrix AppendDeltas(const util::Matrix& mfcc, int reach = 2);

// Cepstral mean normalisation in place: subtracts each coefficient's mean
// over the clip, removing stationary channel colouring.
void CepstralMeanNormalize(util::Matrix* mfcc);

}  // namespace classminer::audio

#endif  // CLASSMINER_AUDIO_MFCC_H_

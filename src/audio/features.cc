#include "audio/features.h"

#include <algorithm>
#include <cmath>

#include "util/fft.h"
#include "util/mathutil.h"

namespace classminer::audio {
namespace {

double FrameRms(std::span<const float> frame) {
  if (frame.empty()) return 0.0;
  double acc = 0.0;
  for (float s : frame) acc += static_cast<double>(s) * s;
  return std::sqrt(acc / static_cast<double>(frame.size()));
}

double FrameZcr(std::span<const float> frame) {
  if (frame.size() < 2) return 0.0;
  int crossings = 0;
  for (size_t i = 1; i < frame.size(); ++i) {
    if ((frame[i - 1] >= 0.0f) != (frame[i] >= 0.0f)) ++crossings;
  }
  return static_cast<double>(crossings) /
         static_cast<double>(frame.size() - 1);
}

// Autocorrelation pitch in [60, 500] Hz; 0 when unvoiced.
double FramePitch(std::span<const float> frame, int sample_rate) {
  const int min_lag = sample_rate / 500;
  const int max_lag = sample_rate / 60;
  if (static_cast<int>(frame.size()) <= max_lag || min_lag < 1) return 0.0;
  double energy = 0.0;
  for (float s : frame) energy += static_cast<double>(s) * s;
  if (energy < 1e-9) return 0.0;

  double best = 0.0;
  int best_lag = 0;
  for (int lag = min_lag; lag <= max_lag; ++lag) {
    double acc = 0.0;
    for (size_t i = 0; i + static_cast<size_t>(lag) < frame.size(); ++i) {
      acc += static_cast<double>(frame[i]) * frame[i + static_cast<size_t>(lag)];
    }
    if (acc > best) {
      best = acc;
      best_lag = lag;
    }
  }
  // Voicing gate: the autocorrelation peak must carry a meaningful share of
  // the energy.
  if (best_lag == 0 || best < 0.25 * energy) return 0.0;
  return static_cast<double>(sample_rate) / best_lag;
}

struct SpectralStats {
  double centroid = 0.0;   // normalised to [0, 1] of Nyquist
  double bandwidth = 0.0;  // normalised
  std::array<double, 4> subband{};  // energy ratios
};

SpectralStats FrameSpectral(std::span<const float> frame, int sample_rate) {
  SpectralStats stats;
  if (frame.size() < 8) return stats;
  std::vector<double> buf(frame.begin(), frame.end());
  const std::vector<double> mags = util::MagnitudeSpectrum(buf);
  const double nyquist = sample_rate / 2.0;
  const double bin_hz = nyquist / (static_cast<double>(mags.size()) - 1.0);

  double total = 0.0, weighted = 0.0;
  for (size_t i = 0; i < mags.size(); ++i) {
    const double e = mags[i] * mags[i];
    total += e;
    weighted += e * (static_cast<double>(i) * bin_hz);
  }
  if (total < 1e-12) return stats;
  const double centroid_hz = weighted / total;
  stats.centroid = centroid_hz / nyquist;

  double spread = 0.0;
  for (size_t i = 0; i < mags.size(); ++i) {
    const double e = mags[i] * mags[i];
    const double d = static_cast<double>(i) * bin_hz - centroid_hz;
    spread += e * d * d;
  }
  stats.bandwidth = std::sqrt(spread / total) / nyquist;

  constexpr double kEdges[5] = {0.0, 630.0, 1720.0, 4400.0, 1e9};
  for (size_t i = 0; i < mags.size(); ++i) {
    const double hz = static_cast<double>(i) * bin_hz;
    const double e = mags[i] * mags[i];
    for (int b = 0; b < 4; ++b) {
      if (hz >= kEdges[b] && hz < std::min(kEdges[b + 1], nyquist + 1.0)) {
        stats.subband[static_cast<size_t>(b)] += e;
        break;
      }
    }
  }
  for (double& s : stats.subband) s /= total;
  return stats;
}

}  // namespace

ClipFeatures ComputeClipFeatures(const AudioBuffer& clip,
                                 const ClipFeatureOptions& options) {
  ClipFeatures f{};
  const int sr = clip.sample_rate();
  const size_t frame_len =
      static_cast<size_t>(std::max(1.0, options.frame_seconds * sr));
  const size_t hop = static_cast<size_t>(std::max(1.0, options.hop_seconds * sr));
  if (clip.sample_count() < frame_len) return f;

  std::vector<double> volumes, zcrs, pitches, centroids, bandwidths;
  std::array<double, 4> subband_acc{};
  size_t spectral_frames = 0;

  const std::vector<float>& s = clip.samples();
  for (size_t start = 0; start + frame_len <= s.size(); start += hop) {
    std::span<const float> frame(s.data() + start, frame_len);
    volumes.push_back(FrameRms(frame));
    zcrs.push_back(FrameZcr(frame));
    const double pitch = FramePitch(frame, sr);
    if (pitch > 0.0) pitches.push_back(pitch);
    const SpectralStats st = FrameSpectral(frame, sr);
    centroids.push_back(st.centroid);
    bandwidths.push_back(st.bandwidth);
    for (size_t b = 0; b < 4; ++b) subband_acc[b] += st.subband[b];
    ++spectral_frames;
  }
  if (volumes.empty()) return f;

  const double vol_mean = util::Mean(volumes);
  double vol_max = 0.0, vol_min = 1e9;
  for (double v : volumes) {
    vol_max = std::max(vol_max, v);
    vol_min = std::min(vol_min, v);
  }
  size_t silent = 0;
  for (double v : volumes) {
    if (v < 0.1 * std::max(vol_mean, 1e-6)) ++silent;
  }

  f[0] = vol_mean;
  f[1] = util::StdDev(volumes);
  f[2] = vol_max > 1e-9 ? (vol_max - vol_min) / vol_max : 0.0;
  f[3] = static_cast<double>(silent) / static_cast<double>(volumes.size());
  f[4] = util::Mean(zcrs);
  f[5] = util::StdDev(zcrs);
  f[6] = util::Mean(pitches) / 1000.0;
  f[7] = util::StdDev(pitches) / 1000.0;
  f[8] = util::Mean(centroids);
  f[9] = util::Mean(bandwidths);
  for (size_t b = 0; b < 4; ++b) {
    f[10 + b] = spectral_frames > 0
                    ? subband_acc[b] / static_cast<double>(spectral_frames)
                    : 0.0;
  }
  return f;
}

std::vector<AudioBuffer> SplitIntoClips(const AudioBuffer& audio,
                                        double clip_seconds) {
  std::vector<AudioBuffer> clips;
  if (audio.empty() || clip_seconds <= 0.0) return clips;
  const double total = audio.DurationSeconds();
  double t = 0.0;
  while (t + clip_seconds / 2.0 <= total) {
    clips.push_back(audio.Slice(t, clip_seconds));
    t += clip_seconds;
  }
  return clips;
}

}  // namespace classminer::audio

#ifndef CLASSMINER_SERVER_WIRE_H_
#define CLASSMINER_SERVER_WIRE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/status.h"

namespace classminer::server {

// Socket plumbing for the classminerd protocol: EINTR-safe full-buffer
// transfers, non-blocking single-shot transfers for the reactor, and
// CRC-framed message exchange over file descriptors. Every loop resumes
// across signal interruptions and short reads/writes — a signal mid-frame
// must never surface as a torn frame.

// Creates a listening IPv4 TCP socket bound to host:port (port 0 picks an
// ephemeral port; BoundPort reads the choice back).
util::StatusOr<int> ListenOn(const std::string& host, int port, int backlog);

// The port a bound socket actually listens on.
util::StatusOr<int> BoundPort(int fd);

// Blocking connect to host:port.
util::StatusOr<int> ConnectTo(const std::string& host, int port);

// Switches O_NONBLOCK on `fd`.
util::Status SetNonBlocking(int fd, bool enabled);

// Accepts one pending connection from a non-blocking listener. Returns -1
// when no connection is pending (EAGAIN/EWOULDBLOCK) or the accept was
// aborted by the peer (ECONNABORTED); resumes across EINTR.
util::StatusOr<int> TryAccept(int listen_fd);

// Writes exactly `size` bytes, resuming across EINTR and partial sends.
// A closed peer surfaces as kUnavailable (never SIGPIPE). A non-blocking
// fd that would block is a caller contract violation and surfaces as
// kFailedPrecondition — use TrySend for readiness-driven writers.
util::Status SendAll(int fd, const uint8_t* data, size_t size);

// Reads exactly `size` bytes, resuming across EINTR and partial reads.
// End-of-stream before `size` bytes is kUnavailable("connection closed"),
// which connection loops treat as a normal hangup. EAGAIN/EWOULDBLOCK is
// kFailedPrecondition (blocking contract; see TryRecv), never conflated
// with a real transport error.
util::Status RecvAll(int fd, uint8_t* data, size_t size);

// Single recv() for readiness-driven readers: returns the number of bytes
// read (> 0), 0 when the socket would block (EAGAIN/EWOULDBLOCK — not an
// error), kUnavailable("connection closed") on a clean peer hangup, or the
// errno status on a real transport failure. Resumes across EINTR.
util::StatusOr<size_t> TryRecv(int fd, uint8_t* data, size_t size);

// Single send() counterpart: bytes written (> 0), 0 when the socket would
// block, kUnavailable when the peer vanished. Resumes across EINTR; never
// raises SIGPIPE.
util::StatusOr<size_t> TrySend(int fd, const uint8_t* data, size_t size);

// Serializes one frame — magic, body size, CRC-32 of the body, body — into
// a byte buffer without touching a socket (the reactor queues these on
// per-connection write queues). Bodies larger than `max_frame_bytes` are
// refused (kInvalidArgument).
util::StatusOr<std::vector<uint8_t>> EncodeFrame(
    uint32_t magic, const std::vector<uint8_t>& body, size_t max_frame_bytes);

// Sends one frame (EncodeFrame + SendAll) on a blocking fd.
util::Status WriteFrame(int fd, uint32_t magic,
                        const std::vector<uint8_t>& body,
                        size_t max_frame_bytes);

// Receives one frame and returns its body after verifying the magic, the
// size bound and the CRC-32. A peer hangup before the first header byte is
// kUnavailable("connection closed"); a checksum or framing violation is
// kDataLoss. `magic_out`, when non-null, receives the frame's magic and the
// frame is accepted if its magic is any of `magics`; the single-magic
// overload keeps the original contract.
util::StatusOr<std::vector<uint8_t>> ReadFrame(int fd, uint32_t magic,
                                               size_t max_frame_bytes);
util::StatusOr<std::vector<uint8_t>> ReadFrameAny(
    int fd, const std::vector<uint32_t>& magics, size_t max_frame_bytes,
    uint32_t* magic_out);

// Incremental frame assembly for non-blocking readers: feed whatever bytes
// recv produced, pop complete frames. The assembler validates the magic
// (against the accepted set) and the size bound as soon as the 12-byte
// header is complete — a hostile size never allocates past the bound — and
// the CRC once the body is in. Any violation is a sticky kDataLoss: the
// byte stream cannot be trusted afterwards, so the connection must close.
class FrameAssembler {
 public:
  struct Frame {
    uint32_t magic = 0;
    std::vector<uint8_t> body;
  };

  FrameAssembler(std::vector<uint32_t> accepted_magics,
                 size_t max_frame_bytes);

  // Appends raw socket bytes and extracts every complete frame they close.
  // Returns the sticky kDataLoss on framing damage.
  util::Status Feed(const uint8_t* data, size_t size);

  // Pops the next complete frame in arrival order; false when none is
  // ready.
  bool PopFrame(Frame* out);

  // Bytes of a partially assembled frame still waiting for their tail
  // (0 at a frame boundary).
  size_t partial_bytes() const { return buffer_.size() - consumed_; }

 private:
  util::Status Corrupt(const std::string& what);

  const std::vector<uint32_t> accepted_;
  const size_t max_frame_bytes_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // parsed prefix of buffer_
  std::deque<Frame> ready_;
  util::Status error_;  // sticky framing damage
};

// Closes `fd`, resuming across EINTR; no-op for fd < 0.
void CloseFd(int fd);

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_WIRE_H_

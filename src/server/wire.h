#ifndef CLASSMINER_SERVER_WIRE_H_
#define CLASSMINER_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace classminer::server {

// Socket plumbing for the classminerd protocol: EINTR-safe full-buffer
// transfers and CRC-framed message exchange over file descriptors. Every
// loop resumes across signal interruptions and short reads/writes — a
// signal mid-frame must never surface as a torn frame.

// Creates a listening IPv4 TCP socket bound to host:port (port 0 picks an
// ephemeral port; BoundPort reads the choice back).
util::StatusOr<int> ListenOn(const std::string& host, int port, int backlog);

// The port a bound socket actually listens on.
util::StatusOr<int> BoundPort(int fd);

// Blocking connect to host:port.
util::StatusOr<int> ConnectTo(const std::string& host, int port);

// Writes exactly `size` bytes, resuming across EINTR and partial sends.
// A closed peer surfaces as kUnavailable (never SIGPIPE).
util::Status SendAll(int fd, const uint8_t* data, size_t size);

// Reads exactly `size` bytes, resuming across EINTR and partial reads.
// End-of-stream before `size` bytes is kUnavailable("connection closed"),
// which connection loops treat as a normal hangup.
util::Status RecvAll(int fd, uint8_t* data, size_t size);

// Sends one frame: magic, body size, CRC-32 of the body, body. Bodies
// larger than `max_frame_bytes` are refused (kInvalidArgument) before any
// byte is written.
util::Status WriteFrame(int fd, uint32_t magic,
                        const std::vector<uint8_t>& body,
                        size_t max_frame_bytes);

// Receives one frame and returns its body after verifying the magic, the
// size bound and the CRC-32. A peer hangup before the first header byte is
// kUnavailable("connection closed"); a checksum or framing violation is
// kDataLoss.
util::StatusOr<std::vector<uint8_t>> ReadFrame(int fd, uint32_t magic,
                                               size_t max_frame_bytes);

// Closes `fd`, resuming across EINTR; no-op for fd < 0.
void CloseFd(int fd);

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_WIRE_H_

#ifndef CLASSMINER_SERVER_OPS_H_
#define CLASSMINER_SERVER_OPS_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "codec/container.h"
#include "core/classminer.h"
#include "index/access_control.h"
#include "util/status.h"

namespace classminer::server {

// The operation layer shared by the classminer CLI and classminerd: one
// implementation of mine/browse/skim/verify/repair that renders a
// deterministic report. The CLI prints the report to stdout; the daemon
// ships it as the response body — so a server response is byte-identical to
// the equivalent CLI invocation by construction, at any thread count
// (mining is bit-identical across thread counts; see core/classminer.h).
//
// Everything non-deterministic — per-stage wall-clock tables, degradation
// and salvage notes — goes to OpDiagnostics instead; the CLI prints it to
// stderr, the daemon logs it.

// Report accumulator with an optional streaming tap. Every op writes its
// report through one of these; the full text is always accumulated (it is
// what the CLI prints and what the result cache stores), and when a sink is
// attached, completed fragments of at least `chunk_bytes` are forwarded as
// they close — the daemon ships them as non-final v2 response chunks while
// the op is still running. The concatenation of the forwarded fragments
// plus the unsent tail is the accumulated report, byte for byte, so
// streaming can never change what a client reassembles.
class ReportStream {
 public:
  // Receives one report fragment; fragments arrive in order and never
  // overlap. May block (the daemon uses that for write-queue backpressure).
  using ChunkSink = std::function<void(const std::string& fragment)>;

  explicit ReportStream(ChunkSink sink = nullptr,
                        size_t chunk_bytes = 64u << 10)
      : sink_(std::move(sink)),
        chunk_bytes_(chunk_bytes > 0 ? chunk_bytes : 1) {}

  // Appends raw text to the report, forwarding any chunk it completes.
  void Append(const std::string& text);
  // printf-append (same formatter the report strings always used).
  void Appendf(const char* fmt, ...);

  // The full report accumulated so far (streamed prefix included).
  const std::string& report() const { return report_; }
  // Bytes already handed to the sink (a prefix of report()).
  size_t streamed_bytes() const { return streamed_; }

 private:
  void ForwardCompletedChunks();

  ChunkSink sink_;
  size_t chunk_bytes_;
  std::string report_;
  size_t streamed_ = 0;  // prefix of report_ already sent to sink_
};

// Execution environment for one operation.
struct OpEnv {
  core::MiningOptions mining;  // threads, cancellation, failure policy
  std::string media_dir;       // where repair finds source containers
  // Optional streaming tap for the report-rendering ops (mine, browse,
  // skim). Null = accumulate only (CLI, verify/repair, cache fills).
  ReportStream::ChunkSink chunk_sink;
  size_t chunk_bytes = 64u << 10;  // fragment size when chunk_sink is set
};

// Advisory side channel: never part of the report body.
struct OpDiagnostics {
  std::vector<std::string> notes;  // degradation / salvage, one per line
  // Per-stage cost tables (timing — non-deterministic), pre-labelled.
  std::vector<std::string> metrics;
};

// What an operation produced. `report` is filled whenever the operation ran
// far enough to have something to say — verify and repair return their
// report text even when the status is non-OK (a dirty database is a
// finding, not a transport failure).
struct OpResult {
  util::Status status;
  std::string report;
  // Prefix of `report` already delivered through env.chunk_sink (0 when no
  // sink was attached). The daemon's final response chunk carries only
  // report.substr(streamed_bytes).
  size_t streamed_bytes = 0;

  bool ok() const { return status.ok(); }
};

// mine <path> [--fast] [--strict]: structure + event summary of one
// container.
OpResult MineOp(const std::string& path, bool fast, bool strict,
                const OpEnv& env, OpDiagnostics* diag);

// browse <path...> [--strict]: mines every container into an in-memory
// database and renders the browse tree visible to `user` (multilevel
// access control: clearance + denied subtrees filter scenes and videos).
OpResult BrowseOp(const std::vector<std::string>& paths, bool strict,
                  const index::UserCredential& user, const OpEnv& env,
                  OpDiagnostics* diag);

// skim <path> [level]: the four-level skim table with `level` marked.
// `file_out` / `result_out` (may be null) receive the loaded container and
// mining result so the CLI can build exports without re-mining.
OpResult SkimOp(const std::string& path, int level, const OpEnv& env,
                OpDiagnostics* diag, codec::CmvFile* file_out = nullptr,
                core::MiningResult* result_out = nullptr);

// verify <db>: integrity audit of one database file. Status is kOk only
// when the file is pristine (kDataLoss("database not clean") otherwise);
// the report is returned either way.
OpResult VerifyOp(const std::string& db_path);

// repair <db>: re-mines degraded entries from `env.media_dir` and rewrites
// the database when anything healed. Status is kOk when no entry was left
// unrepaired (kDataLoss otherwise); the report is returned either way.
OpResult RepairOp(const std::string& db_path, const OpEnv& env,
                  OpDiagnostics* diag);

// compact <db> [--shard K] [--force]: folds a sharded database's append
// logs into pristine generations, dropping superseded records and
// tombstones (shard < 0 = every shard; force folds even shards with no
// dead records). The report lists each shard's verdict. Monolithic files
// are refused with kInvalidArgument — compaction is a sharded-tier
// operation, never a silent whole-file rewrite.
OpResult CompactOp(const std::string& db_path, int shard, bool force);

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_OPS_H_

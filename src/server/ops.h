#ifndef CLASSMINER_SERVER_OPS_H_
#define CLASSMINER_SERVER_OPS_H_

#include <string>
#include <vector>

#include "codec/container.h"
#include "core/classminer.h"
#include "index/access_control.h"
#include "util/status.h"

namespace classminer::server {

// The operation layer shared by the classminer CLI and classminerd: one
// implementation of mine/browse/skim/verify/repair that renders a
// deterministic report. The CLI prints the report to stdout; the daemon
// ships it as the response body — so a server response is byte-identical to
// the equivalent CLI invocation by construction, at any thread count
// (mining is bit-identical across thread counts; see core/classminer.h).
//
// Everything non-deterministic — per-stage wall-clock tables, degradation
// and salvage notes — goes to OpDiagnostics instead; the CLI prints it to
// stderr, the daemon logs it.

// Execution environment for one operation.
struct OpEnv {
  core::MiningOptions mining;  // threads, cancellation, failure policy
  std::string media_dir;       // where repair finds source containers
};

// Advisory side channel: never part of the report body.
struct OpDiagnostics {
  std::vector<std::string> notes;  // degradation / salvage, one per line
  // Per-stage cost tables (timing — non-deterministic), pre-labelled.
  std::vector<std::string> metrics;
};

// What an operation produced. `report` is filled whenever the operation ran
// far enough to have something to say — verify and repair return their
// report text even when the status is non-OK (a dirty database is a
// finding, not a transport failure).
struct OpResult {
  util::Status status;
  std::string report;

  bool ok() const { return status.ok(); }
};

// mine <path> [--fast] [--strict]: structure + event summary of one
// container.
OpResult MineOp(const std::string& path, bool fast, bool strict,
                const OpEnv& env, OpDiagnostics* diag);

// browse <path...> [--strict]: mines every container into an in-memory
// database and renders the browse tree visible to `user` (multilevel
// access control: clearance + denied subtrees filter scenes and videos).
OpResult BrowseOp(const std::vector<std::string>& paths, bool strict,
                  const index::UserCredential& user, const OpEnv& env,
                  OpDiagnostics* diag);

// skim <path> [level]: the four-level skim table with `level` marked.
// `file_out` / `result_out` (may be null) receive the loaded container and
// mining result so the CLI can build exports without re-mining.
OpResult SkimOp(const std::string& path, int level, const OpEnv& env,
                OpDiagnostics* diag, codec::CmvFile* file_out = nullptr,
                core::MiningResult* result_out = nullptr);

// verify <db>: integrity audit of one database file. Status is kOk only
// when the file is pristine (kDataLoss("database not clean") otherwise);
// the report is returned either way.
OpResult VerifyOp(const std::string& db_path);

// repair <db>: re-mines degraded entries from `env.media_dir` and rewrites
// the database when anything healed. Status is kOk when no entry was left
// unrepaired (kDataLoss otherwise); the report is returned either way.
OpResult RepairOp(const std::string& db_path, const OpEnv& env,
                  OpDiagnostics* diag);

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_OPS_H_

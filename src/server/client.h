#ifndef CLASSMINER_SERVER_CLIENT_H_
#define CLASSMINER_SERVER_CLIENT_H_

#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "server/protocol.h"
#include "util/status.h"

namespace classminer::server {

// Client side of the classminerd protocol: one TCP session, requests
// answered in order. Connect() performs the hello handshake, so a
// constructed client is always an authenticated session.
class Client {
 public:
  // Connects and binds the session credential. Fails with the server's
  // status when the handshake is refused (e.g. kUnavailable at connection
  // capacity).
  static util::StatusOr<Client> Connect(const std::string& host, int port,
                                        const SessionHello& hello,
                                        size_t max_frame_bytes =
                                            kMaxFrameBytes);

  Client(Client&& other) noexcept : fd_(other.fd_), max_frame_(other.max_frame_) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      max_frame_ = other.max_frame_;
      other.fd_ = -1;
    }
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client() { Close(); }

  // Sends one request and waits for its response. A transport failure (the
  // daemon vanished, a torn frame) is the returned status; an operation
  // failure arrives inside the Response, whose body may still carry a
  // report (verify/repair on a dirty database).
  util::StatusOr<Response> Call(const Request& request);

  // Convenience: Call() collapsing operation failures into the status —
  // the response body is returned only when the operation succeeded.
  util::StatusOr<std::string> CallForReport(RequestKind kind,
                                            std::vector<std::string> args,
                                            uint32_t deadline_ms = 0);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Client(int fd, size_t max_frame) : fd_(fd), max_frame_(max_frame) {}

  int fd_ = -1;
  size_t max_frame_ = kMaxFrameBytes;
};

// Pipelined (protocol v2) session: every request carries a client-assigned
// tag, many requests ride the wire at once, and responses complete out of
// order. A dedicated reader thread reassembles each response from its
// tagged chunk frames — streamed report fragments concatenate back into
// the exact bytes a v1 response would have carried — and resolves the
// matching future. One AsyncCall is cheap: the transport cost of an idle
// pipelined session is a blocked read, not a thread per request.
class PipelinedClient {
 public:
  // Connects, performs the (tagged) hello handshake, and starts the reader.
  static util::StatusOr<std::unique_ptr<PipelinedClient>> Connect(
      const std::string& host, int port, const SessionHello& hello,
      size_t max_frame_bytes = kMaxFrameBytes);

  PipelinedClient(const PipelinedClient&) = delete;
  PipelinedClient& operator=(const PipelinedClient&) = delete;
  ~PipelinedClient();

  // Sends one tagged request and returns the future of its reassembled
  // response. The request's request_id is overwritten with a session-unique
  // tag. Safe to call from any thread; responses resolve in whatever order
  // the server finishes them.
  std::future<util::StatusOr<Response>> AsyncCall(Request request);

  // Synchronous conveniences matching Client.
  util::StatusOr<Response> Call(const Request& request);
  util::StatusOr<std::string> CallForReport(RequestKind kind,
                                            std::vector<std::string> args,
                                            uint32_t deadline_ms = 0);

  // Fails every in-flight call with kUnavailable and joins the reader.
  void Close();
  bool connected() const;

 private:
  struct State;
  PipelinedClient() = default;

  std::shared_ptr<State> state_;
};

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_CLIENT_H_

#ifndef CLASSMINER_SERVER_CLIENT_H_
#define CLASSMINER_SERVER_CLIENT_H_

#include <string>
#include <utility>

#include "server/protocol.h"
#include "util/status.h"

namespace classminer::server {

// Client side of the classminerd protocol: one TCP session, requests
// answered in order. Connect() performs the hello handshake, so a
// constructed client is always an authenticated session.
class Client {
 public:
  // Connects and binds the session credential. Fails with the server's
  // status when the handshake is refused (e.g. kUnavailable at connection
  // capacity).
  static util::StatusOr<Client> Connect(const std::string& host, int port,
                                        const SessionHello& hello,
                                        size_t max_frame_bytes =
                                            kMaxFrameBytes);

  Client(Client&& other) noexcept : fd_(other.fd_), max_frame_(other.max_frame_) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      max_frame_ = other.max_frame_;
      other.fd_ = -1;
    }
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client() { Close(); }

  // Sends one request and waits for its response. A transport failure (the
  // daemon vanished, a torn frame) is the returned status; an operation
  // failure arrives inside the Response, whose body may still carry a
  // report (verify/repair on a dirty database).
  util::StatusOr<Response> Call(const Request& request);

  // Convenience: Call() collapsing operation failures into the status —
  // the response body is returned only when the operation succeeded.
  util::StatusOr<std::string> CallForReport(RequestKind kind,
                                            std::vector<std::string> args,
                                            uint32_t deadline_ms = 0);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Client(int fd, size_t max_frame) : fd_(fd), max_frame_(max_frame) {}

  int fd_ = -1;
  size_t max_frame_ = kMaxFrameBytes;
};

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_CLIENT_H_

#ifndef CLASSMINER_SERVER_CLIENT_H_
#define CLASSMINER_SERVER_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "server/protocol.h"
#include "util/retry.h"
#include "util/status.h"

namespace classminer::server {

// Client side of the classminerd protocol: one TCP session, requests
// answered in order. Connect() performs the hello handshake, so a
// constructed client is always an authenticated session.
class Client {
 public:
  // Connects and binds the session credential. Fails with the server's
  // status when the handshake is refused (e.g. kUnavailable at connection
  // capacity).
  static util::StatusOr<Client> Connect(const std::string& host, int port,
                                        const SessionHello& hello,
                                        size_t max_frame_bytes =
                                            kMaxFrameBytes);

  Client(Client&& other) noexcept : fd_(other.fd_), max_frame_(other.max_frame_) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      max_frame_ = other.max_frame_;
      other.fd_ = -1;
    }
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client() { Close(); }

  // Sends one request and waits for its response. A transport failure (the
  // daemon vanished, a torn frame) is the returned status; an operation
  // failure arrives inside the Response, whose body may still carry a
  // report (verify/repair on a dirty database).
  util::StatusOr<Response> Call(const Request& request);

  // Convenience: Call() collapsing operation failures into the status —
  // the response body is returned only when the operation succeeded.
  util::StatusOr<std::string> CallForReport(RequestKind kind,
                                            std::vector<std::string> args,
                                            uint32_t deadline_ms = 0);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Client(int fd, size_t max_frame) : fd_(fd), max_frame_(max_frame) {}

  int fd_ = -1;
  size_t max_frame_ = kMaxFrameBytes;
};

// Pipelined (protocol v2) session: every request carries a client-assigned
// tag, many requests ride the wire at once, and responses complete out of
// order. A dedicated reader thread reassembles each response from its
// tagged chunk frames — streamed report fragments concatenate back into
// the exact bytes a v1 response would have carried — and resolves the
// matching future. One AsyncCall is cheap: the transport cost of an idle
// pipelined session is a blocked read, not a thread per request.
class PipelinedClient {
 public:
  // Connects, performs the (tagged) hello handshake, and starts the reader.
  static util::StatusOr<std::unique_ptr<PipelinedClient>> Connect(
      const std::string& host, int port, const SessionHello& hello,
      size_t max_frame_bytes = kMaxFrameBytes);

  PipelinedClient(const PipelinedClient&) = delete;
  PipelinedClient& operator=(const PipelinedClient&) = delete;
  ~PipelinedClient();

  // Sends one tagged request and returns the future of its reassembled
  // response. The request's request_id is overwritten with a session-unique
  // tag. Safe to call from any thread; responses resolve in whatever order
  // the server finishes them.
  std::future<util::StatusOr<Response>> AsyncCall(Request request);

  // Synchronous conveniences matching Client.
  util::StatusOr<Response> Call(const Request& request);
  util::StatusOr<std::string> CallForReport(RequestKind kind,
                                            std::vector<std::string> args,
                                            uint32_t deadline_ms = 0);

  // Fails every in-flight call with kUnavailable and joins the reader.
  void Close();
  bool connected() const;

 private:
  struct State;
  PipelinedClient() = default;

  std::shared_ptr<State> state_;
};

// Reconnecting, resumable session. Wraps a PipelinedClient and makes one
// logical call survive a dying transport: when the connection drops
// mid-call (daemon restart, reset, torn frame) the client redials, repeats
// the hello handshake, and re-offers the request through util::Retry's
// backoff schedule.
//
// Every stateful request (mine/browse/skim/verify/repair) is stamped with
// an idempotency key before its first send — a canonical fingerprint of
// the request (kind · deadline · args) scoped by a per-session nonce and a
// call sequence number, so resends of the SAME logical call repeat the key
// while distinct calls never collide. The server records the outcome under
// that key: a resend that raced the original's completion replays the
// recorded bytes, one that raced its execution joins the in-flight run.
// Either way the operation executes at most once — which is what makes
// retrying a `repair` safe.
//
// Thread-safe: concurrent Call()s share the underlying pipelined session
// (that is how to pipeline through this class — one thread per in-flight
// call); any of them may trigger the reconnect, the rest fail over onto
// the fresh session on their own next attempt.
class ResilientClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;
    SessionHello hello;
    size_t max_frame_bytes = kMaxFrameBytes;
    // Backoff schedule for re-offering a call: max_attempts bounds how
    // many times one logical call touches the wire. kUnavailable — from
    // the transport OR in a response (admission control) — is the only
    // code retried.
    util::RetryOptions retry;
    // Per-session component of generated idempotency keys. 0 = draw a
    // random nonce at construction; fix it only when a test needs
    // predictable keys.
    uint64_t session_nonce = 0;
  };

  struct Stats {
    uint64_t dials = 0;          // successful handshakes (first included)
    uint64_t resumed_calls = 0;  // attempts re-offered after a backoff
  };

  explicit ResilientClient(Options options);
  ~ResilientClient();

  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  // One resumable call. Dials lazily (the first call connects), stamps the
  // idempotency key if the request lacks one, retries kUnavailable with
  // backoff, reconnecting whenever the transport failed. Non-transient
  // outcomes — op errors, permission denials — return after one attempt.
  util::StatusOr<Response> Call(Request request);

  // Convenience matching Client/PipelinedClient.
  util::StatusOr<std::string> CallForReport(RequestKind kind,
                                            std::vector<std::string> args,
                                            uint32_t deadline_ms = 0);

  void Close();
  bool connected() const;
  Stats StatsSnapshot() const;

 private:
  util::StatusOr<std::shared_ptr<PipelinedClient>> EnsureConnected();
  // Drops `conn` if it is still the current session, so the next attempt
  // redials instead of re-using a transport known to be broken.
  void Invalidate(const std::shared_ptr<PipelinedClient>& conn);
  std::string NextIdempotencyKey(const Request& request);

  Options options_;
  uint64_t nonce_ = 0;
  std::atomic<uint64_t> seq_{0};

  mutable std::mutex mu_;
  std::shared_ptr<PipelinedClient> conn_;  // null until first dial / after drop
  bool closed_ = false;
  Stats stats_;
};

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_CLIENT_H_

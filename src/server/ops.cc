#include "server/ops.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "core/cmv_pipeline.h"
#include "core/metrics.h"
#include "core/repair.h"
#include "index/browser.h"
#include "index/concept.h"
#include "index/database.h"
#include "index/hier_index.h"
#include "index/persist.h"
#include "index/repair.h"
#include "index/shard.h"
#include "skim/playback.h"
#include "skim/skimmer.h"
#include "util/salvage.h"

namespace classminer::server {
namespace {

// printf-append into the report string; every format below matches what the
// CLI historically printed, so the report stays stable across the refactor.
void Appendf(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buffer[512];
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min(static_cast<size_t>(n),
                                          sizeof(buffer) - 1));
}

}  // namespace

void ReportStream::Append(const std::string& text) {
  report_.append(text);
  ForwardCompletedChunks();
}

void ReportStream::Appendf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buffer[512];
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) {
    report_.append(buffer, std::min(static_cast<size_t>(n),
                                    sizeof(buffer) - 1));
  }
  ForwardCompletedChunks();
}

void ReportStream::ForwardCompletedChunks() {
  if (!sink_) return;
  while (report_.size() - streamed_ >= chunk_bytes_) {
    sink_(report_.substr(streamed_, chunk_bytes_));
    streamed_ += chunk_bytes_;
  }
}

namespace {

// Binds an op's OpResult to its report stream: the accumulated text becomes
// the report, the forwarded prefix is recorded so the caller ships only the
// tail in its final chunk.
void FinishReport(const ReportStream& stream, OpResult* out) {
  out->report = stream.report();
  out->streamed_bytes = stream.streamed_bytes();
}

void Note(OpDiagnostics* diag, std::string line) {
  if (diag != nullptr) diag->notes.push_back(std::move(line));
}

// Degradation details are advisory (which stages were lost, what salvage
// recovered), so they go to the diagnostics channel, not the report.
void NoteDegradation(OpDiagnostics* diag, const std::string& path,
                     const core::MiningResult& result) {
  if (!result.degraded || diag == nullptr) return;
  Note(diag, path + ": degraded result");
  for (const core::StageFailure& f : result.stage_failures) {
    Note(diag, "  stage " + f.stage + " " + f.status.ToString());
  }
  const std::string salvage = result.salvage.ToString();
  if (!salvage.empty()) Note(diag, "  " + salvage);
}

void NoteMetrics(OpDiagnostics* diag, std::string label, std::string table) {
  if (diag == nullptr || table.empty()) return;
  diag->metrics.push_back(std::move(label) + ":\n" + std::move(table));
}

// Loads and mines one container. The default is the resilient path —
// salvage parsing plus the degraded failure policy — so damaged archives
// still yield flagged results; `strict` restores all-or-nothing semantics.
util::Status LoadAndMine(const std::string& path, const OpEnv& env,
                         bool strict, bool fast, codec::CmvFile* file,
                         core::MiningResult* result) {
  util::SalvageReport salvage;
  util::StatusOr<codec::CmvFile> loaded =
      strict ? codec::CmvFile::LoadFromFile(path)
             : codec::CmvFile::LoadFromFileBestEffort(path, &salvage);
  if (!loaded.ok()) {
    return {loaded.status().code(),
            path + ": " + loaded.status().message()};
  }
  core::MiningOptions options = env.mining;
  if (!strict) options.failure_policy = core::FailurePolicy::kDegraded;
  util::StatusOr<core::MiningResult> mined =
      fast ? core::MineCmvFileFast(*loaded, options)
           : core::MineCmvFile(*loaded, options);
  if (!mined.ok()) {
    return {mined.status().code(),
            path + ": mining failed: " + mined.status().message()};
  }
  *file = std::move(*loaded);
  *result = std::move(*mined);
  result->salvage.Merge(salvage);
  if (result->salvage.salvaged) result->degraded = true;
  return util::Status::Ok();
}

}  // namespace

OpResult MineOp(const std::string& path, bool fast, bool strict,
                const OpEnv& env, OpDiagnostics* diag) {
  OpResult out;
  codec::CmvFile file;
  core::MiningResult result;
  out.status = LoadAndMine(path, env, strict, fast, &file, &result);
  if (!out.ok()) return out;
  NoteDegradation(diag, path, result);

  ReportStream stream(env.chunk_sink, env.chunk_bytes);
  const structure::ContentStructure& cs = result.structure;
  stream.Appendf(
      "%s: %zu shots, %zu groups, %d scenes, %zu clustered scenes "
      "(CRF %.3f)\n",
      file.name.c_str(), cs.shots.size(), cs.groups.size(),
      cs.ActiveSceneCount(), cs.clustered_scenes.size(),
      cs.CompressionRateFactor());
  for (const events::EventRecord& rec : result.events) {
    const structure::Scene& scene =
        cs.scenes[static_cast<size_t>(rec.scene_index)];
    stream.Appendf("  scene %2d: %-18s %2d shots (groups %d..%d)\n",
                   scene.index, events::EventTypeName(rec.type),
                   cs.ShotCountOfScene(scene), scene.start_group,
                   scene.end_group);
  }
  NoteMetrics(diag, path + " per-stage metrics",
              result.metrics.ToString());
  FinishReport(stream, &out);
  return out;
}

OpResult BrowseOp(const std::vector<std::string>& paths, bool strict,
                  const index::UserCredential& user, const OpEnv& env,
                  OpDiagnostics* diag) {
  OpResult out;
  index::VideoDatabase db;
  for (const std::string& path : paths) {
    codec::CmvFile file;
    core::MiningResult result;
    out.status = LoadAndMine(path, env, strict, false, &file, &result);
    if (!out.ok()) return out;
    NoteDegradation(diag, path, result);
    NoteMetrics(diag, path + " pipeline cost", result.metrics.ToString());
    db.AddVideo(file.name, std::move(result.structure),
                std::move(result.events), result.degraded);
  }
  const index::ConceptHierarchy concepts =
      index::ConceptHierarchy::MedicalDefault();
  // Shared (per-database) costs — index construction and browse-tree
  // assembly — land in one registry through the context.
  core::PipelineMetrics shared;
  const util::ExecutionContext ctx(nullptr, &shared, env.mining.cancel,
                                   nullptr);
  const index::HierarchicalIndex hier(&db, &concepts,
                                      index::HierarchicalIndex::Options(),
                                      ctx);
  const index::AccessController access(&concepts);
  const auto tree = index::BuildBrowseTree(db, concepts, access, user, ctx);
  ReportStream stream(env.chunk_sink, env.chunk_bytes);
  stream.Append(index::RenderBrowseTree(tree));
  if (db.DegradedCount() > 0) {
    stream.Appendf("%d of %d video(s) indexed degraded\n",
                   db.DegradedCount(), db.video_count());
  }
  NoteMetrics(diag, "shared index/browse cost", shared.ToString());
  FinishReport(stream, &out);
  return out;
}

OpResult SkimOp(const std::string& path, int level, const OpEnv& env,
                OpDiagnostics* diag, codec::CmvFile* file_out,
                core::MiningResult* result_out) {
  OpResult out;
  if (level < 1 || level > skim::kSkimLevels) {
    out.status = util::Status::InvalidArgument(
        "skim level must be in [1, " + std::to_string(skim::kSkimLevels) +
        "], got " + std::to_string(level));
    return out;
  }
  codec::CmvFile file;
  core::MiningResult result;
  out.status = LoadAndMine(path, env, /*strict=*/false, /*fast=*/false,
                           &file, &result);
  if (!out.ok()) return out;
  NoteDegradation(diag, path, result);
  // Build the skim through a metrics-carrying context so the cost table
  // includes a "skim" row alongside the mining stages.
  const util::ExecutionContext skim_ctx(nullptr, &result.metrics, nullptr,
                                        nullptr);
  const skim::ScalableSkim sk(&result.structure, skim_ctx);

  ReportStream stream(env.chunk_sink, env.chunk_bytes);
  stream.Appendf("%-6s %-12s %-10s %s\n", "level", "skim shots", "frames",
                 "FCR");
  for (int lvl = skim::kSkimLevels; lvl >= 1; --lvl) {
    const skim::SkimTrack& t = sk.track(lvl);
    stream.Appendf("%-6d %-12zu %-10ld %.3f%s\n", lvl,
                   t.shot_indices.size(), t.frame_count, sk.Fcr(lvl),
                   lvl == level ? "  <-" : "");
  }
  const auto plan = skim::BuildPlaybackPlan(sk, level, file.fps);
  stream.Appendf("level %d plays %.1f s of %.1f s\n", level,
                 skim::PlanDurationSeconds(plan), file.frame_count() / file.fps);
  NoteMetrics(diag, path + " per-stage metrics",
              result.metrics.ToString());
  FinishReport(stream, &out);
  if (file_out != nullptr) *file_out = std::move(file);
  if (result_out != nullptr) *result_out = std::move(result);
  return out;
}

OpResult VerifyOp(const std::string& db_path) {
  OpResult out;
  const index::VerifyReport report = index::VerifyDatabaseFile(db_path);
  Appendf(&out.report, "%s: %s\n", db_path.c_str(),
          report.ToString().c_str());
  out.status = report.clean()
                   ? util::Status::Ok()
                   : util::Status::DataLoss(db_path + ": database not clean");
  return out;
}

OpResult RepairOp(const std::string& db_path, const OpEnv& env,
                  OpDiagnostics* diag) {
  OpResult out;
  util::SalvageReport salvage;
  util::StatusOr<index::RepairReport> report = index::RepairDatabaseFile(
      db_path, core::MakeCmvRemineFn(env.media_dir, env.mining), &salvage);
  if (!report.ok()) {
    out.status = {report.status().code(),
                  db_path + ": " + report.status().message()};
    return out;
  }
  Appendf(&out.report, "%s: %s\n", db_path.c_str(),
          report->ToString().c_str());
  for (const std::string& note : report->notes) {
    Appendf(&out.report, "  %s\n", note.c_str());
  }
  const std::string recovery = salvage.ToString();
  if (!recovery.empty()) {
    Appendf(&out.report, "  open: %s\n", recovery.c_str());
  }
  out.status = report->failed == 0
                   ? util::Status::Ok()
                   : util::Status::DataLoss(
                         db_path + ": " + std::to_string(report->failed) +
                         " entr" + (report->failed == 1 ? "y" : "ies") +
                         " left unrepaired");
  (void)diag;  // repair details are part of the report itself
  return out;
}

OpResult CompactOp(const std::string& db_path, int shard, bool force) {
  OpResult out;
  const util::StatusOr<std::vector<index::ShardedDatabase::CompactionReport>>
      reports = index::CompactDatabaseFile(db_path, shard, force);
  if (!reports.ok()) {
    out.status = {reports.status().code(),
                  db_path + ": " + reports.status().message()};
    return out;
  }
  uint64_t folded = 0;
  uint64_t dropped = 0;
  for (const index::ShardedDatabase::CompactionReport& report : *reports) {
    Appendf(&out.report, "%s: %s\n", db_path.c_str(),
            report.ToString().c_str());
    if (!report.skipped) {
      ++folded;
      dropped += report.dead_dropped;
    }
  }
  Appendf(&out.report,
          "%s: compacted %llu shard(s), dropped %llu dead record(s)\n",
          db_path.c_str(), static_cast<unsigned long long>(folded),
          static_cast<unsigned long long>(dropped));
  return out;
}

}  // namespace classminer::server

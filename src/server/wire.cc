#include "server/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/crc32.h"

namespace classminer::server {
namespace {

util::Status Errno(const std::string& what) {
  return util::Status::Unavailable(what + ": " + std::strerror(errno));
}

util::StatusOr<sockaddr_in> ResolveV4(const std::string& host, int port) {
  if (port < 0 || port > 65535) {
    return util::Status::InvalidArgument("port out of range: " +
                                         std::to_string(port));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

void PutU32LE(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
}

uint32_t ReadU32LE(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

util::StatusOr<int> ListenOn(const std::string& host, int port, int backlog) {
  util::StatusOr<sockaddr_in> addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) !=
      0) {
    const util::Status status = Errno("bind " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return status;
  }
  if (listen(fd, backlog) != 0) {
    const util::Status status = Errno("listen");
    CloseFd(fd);
    return status;
  }
  return fd;
}

util::StatusOr<int> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

util::StatusOr<int> ConnectTo(const std::string& host, int port) {
  util::StatusOr<sockaddr_in> addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&*addr),
                 sizeof(*addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const util::Status status =
        Errno("connect " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return status;
  }
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

util::Status SendAll(int fd, const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // resume, do not restart
    return Errno("send");
  }
  return util::Status::Ok();
}

util::Status RecvAll(int fd, uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = recv(fd, data + done, size - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // resume, do not restart
    if (n == 0) {
      return done == 0
                 ? util::Status::Unavailable("connection closed")
                 : util::Status::DataLoss("connection closed mid-frame");
    }
    return Errno("recv");
  }
  return util::Status::Ok();
}

util::Status WriteFrame(int fd, uint32_t magic,
                        const std::vector<uint8_t>& body,
                        size_t max_frame_bytes) {
  if (body.size() > max_frame_bytes) {
    return util::Status::InvalidArgument(
        "frame body of " + std::to_string(body.size()) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte limit");
  }
  uint8_t header[12];
  PutU32LE(header, magic);
  PutU32LE(header + 4, static_cast<uint32_t>(body.size()));
  PutU32LE(header + 8, util::Crc32(body));
  CLASSMINER_RETURN_IF_ERROR(SendAll(fd, header, sizeof(header)));
  if (!body.empty()) {
    CLASSMINER_RETURN_IF_ERROR(SendAll(fd, body.data(), body.size()));
  }
  return util::Status::Ok();
}

util::StatusOr<std::vector<uint8_t>> ReadFrame(int fd, uint32_t magic,
                                               size_t max_frame_bytes) {
  uint8_t header[12];
  CLASSMINER_RETURN_IF_ERROR(RecvAll(fd, header, sizeof(header)));
  if (ReadU32LE(header) != magic) {
    return util::Status::DataLoss("bad frame magic");
  }
  const uint32_t size = ReadU32LE(header + 4);
  if (size > max_frame_bytes) {
    return util::Status::DataLoss(
        "frame body of " + std::to_string(size) + " bytes exceeds the " +
        std::to_string(max_frame_bytes) + "-byte limit");
  }
  std::vector<uint8_t> body(size);
  if (size > 0) {
    CLASSMINER_RETURN_IF_ERROR(RecvAll(fd, body.data(), body.size()));
  }
  if (util::Crc32(body) != ReadU32LE(header + 8)) {
    return util::Status::DataLoss("frame checksum mismatch");
  }
  return body;
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = close(fd);
  } while (rc != 0 && errno == EINTR);
}

}  // namespace classminer::server

#include "server/wire.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/crc32.h"
#include "util/failpoint.h"

namespace classminer::server {
namespace {

util::Status Errno(const std::string& what) {
  return util::Status::Unavailable(what + ": " + std::strerror(errno));
}

bool WouldBlock(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

util::StatusOr<sockaddr_in> ResolveV4(const std::string& host, int port) {
  if (port < 0 || port > 65535) {
    return util::Status::InvalidArgument("port out of range: " +
                                         std::to_string(port));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

void PutU32LE(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
}

uint32_t ReadU32LE(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

util::StatusOr<int> ListenOn(const std::string& host, int port, int backlog) {
  util::StatusOr<sockaddr_in> addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) !=
      0) {
    const util::Status status = Errno("bind " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return status;
  }
  if (listen(fd, backlog) != 0) {
    const util::Status status = Errno("listen");
    CloseFd(fd);
    return status;
  }
  return fd;
}

util::StatusOr<int> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

util::StatusOr<int> ConnectTo(const std::string& host, int port) {
  util::StatusOr<sockaddr_in> addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&*addr),
                 sizeof(*addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const util::Status status =
        Errno("connect " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return status;
  }
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

util::Status SetNonBlocking(int fd, bool enabled) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int want = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && fcntl(fd, F_SETFL, want) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return util::Status::Ok();
}

util::StatusOr<int> TryAccept(int listen_fd) {
  for (;;) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    if (WouldBlock(errno) || errno == ECONNABORTED) return -1;
    return Errno("accept");
  }
}

util::Status SendAll(int fd, const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // resume, do not restart
    if (n < 0 && WouldBlock(errno)) {
      // Not a transport failure: the caller handed a non-blocking fd to a
      // blocking-contract helper. Readiness-driven writers use TrySend.
      return util::Status::FailedPrecondition(
          "send would block on a non-blocking fd; use TrySend");
    }
    return Errno("send");
  }
  return util::Status::Ok();
}

util::Status RecvAll(int fd, uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = recv(fd, data + done, size - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // resume, do not restart
    if (n < 0 && WouldBlock(errno)) {
      // Distinct from a real transport error: nothing is wrong with the
      // connection, the fd simply has no bytes ready and is non-blocking
      // (or carries a receive timeout). Readiness-driven readers use
      // TryRecv instead of looping here.
      return util::Status::FailedPrecondition(
          "recv would block on a non-blocking fd; use TryRecv");
    }
    if (n == 0) {
      return done == 0
                 ? util::Status::Unavailable("connection closed")
                 : util::Status::DataLoss("connection closed mid-frame");
    }
    return Errno("recv");
  }
  return util::Status::Ok();
}

util::StatusOr<size_t> TryRecv(int fd, uint8_t* data, size_t size) {
  // Chaos site: the reactor observes a connection reset on a healthy peer.
  // Only the server's readiness loop calls TryRecv, so arming this in a
  // test process does not perturb the (blocking) client helpers.
  if (const util::Status injected =
          util::FailPoint::Check("server.wire.recv.reset");
      !injected.ok()) {
    return injected;
  }
  for (;;) {
    const ssize_t n = recv(fd, data, size, 0);
    if (n > 0) return static_cast<size_t>(n);
    if (n == 0) return util::Status::Unavailable("connection closed");
    if (errno == EINTR) continue;
    if (WouldBlock(errno)) return static_cast<size_t>(0);
    return Errno("recv");
  }
}

util::StatusOr<size_t> TrySend(int fd, const uint8_t* data, size_t size) {
  // Chaos sites, checked in escalating order of damage:
  //   delay — the frame leaves late (stalled peer / congested link);
  //   short — the kernel accepts a prefix (exercises the resume loop);
  //   torn  — a prefix escapes to the wire, then the transport dies:
  //           the peer sees half a frame followed by FIN (mid-stream
  //           EPIPE from the writer's point of view).
  if (!util::FailPoint::Check("server.wire.send.delay").ok()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (size > 1 && !util::FailPoint::Check("server.wire.send.short").ok()) {
    size = std::max<size_t>(1, size / 4);
  }
  const bool tear = !util::FailPoint::Check("server.wire.send.torn").ok();
  if (tear) size = std::max<size_t>(1, size / 2);
  for (;;) {
    const ssize_t n = send(fd, data, size, MSG_NOSIGNAL);
    if (n >= 0) {
      if (tear) {
        return util::Status::Unavailable(
            "injected torn send: transport reset after " + std::to_string(n) +
            " of " + std::to_string(size) + " bytes");
      }
      return static_cast<size_t>(n);
    }
    if (errno == EINTR) continue;
    if (WouldBlock(errno)) return static_cast<size_t>(0);
    return Errno("send");
  }
}

util::StatusOr<std::vector<uint8_t>> EncodeFrame(
    uint32_t magic, const std::vector<uint8_t>& body,
    size_t max_frame_bytes) {
  if (body.size() > max_frame_bytes) {
    return util::Status::InvalidArgument(
        "frame body of " + std::to_string(body.size()) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte limit");
  }
  std::vector<uint8_t> frame(12 + body.size());
  PutU32LE(frame.data(), magic);
  PutU32LE(frame.data() + 4, static_cast<uint32_t>(body.size()));
  PutU32LE(frame.data() + 8, util::Crc32(body));
  std::copy(body.begin(), body.end(), frame.begin() + 12);
  return frame;
}

util::Status WriteFrame(int fd, uint32_t magic,
                        const std::vector<uint8_t>& body,
                        size_t max_frame_bytes) {
  util::StatusOr<std::vector<uint8_t>> frame =
      EncodeFrame(magic, body, max_frame_bytes);
  if (!frame.ok()) return frame.status();
  return SendAll(fd, frame->data(), frame->size());
}

util::StatusOr<std::vector<uint8_t>> ReadFrameAny(
    int fd, const std::vector<uint32_t>& magics, size_t max_frame_bytes,
    uint32_t* magic_out) {
  uint8_t header[12];
  CLASSMINER_RETURN_IF_ERROR(RecvAll(fd, header, sizeof(header)));
  const uint32_t magic = ReadU32LE(header);
  if (std::find(magics.begin(), magics.end(), magic) == magics.end()) {
    return util::Status::DataLoss("bad frame magic");
  }
  const uint32_t size = ReadU32LE(header + 4);
  if (size > max_frame_bytes) {
    return util::Status::DataLoss(
        "frame body of " + std::to_string(size) + " bytes exceeds the " +
        std::to_string(max_frame_bytes) + "-byte limit");
  }
  std::vector<uint8_t> body(size);
  if (size > 0) {
    CLASSMINER_RETURN_IF_ERROR(RecvAll(fd, body.data(), body.size()));
  }
  if (util::Crc32(body) != ReadU32LE(header + 8)) {
    return util::Status::DataLoss("frame checksum mismatch");
  }
  if (magic_out != nullptr) *magic_out = magic;
  return body;
}

util::StatusOr<std::vector<uint8_t>> ReadFrame(int fd, uint32_t magic,
                                               size_t max_frame_bytes) {
  return ReadFrameAny(fd, {magic}, max_frame_bytes, nullptr);
}

FrameAssembler::FrameAssembler(std::vector<uint32_t> accepted_magics,
                               size_t max_frame_bytes)
    : accepted_(std::move(accepted_magics)),
      max_frame_bytes_(max_frame_bytes) {}

util::Status FrameAssembler::Corrupt(const std::string& what) {
  error_ = util::Status::DataLoss(what);
  return error_;
}

util::Status FrameAssembler::Feed(const uint8_t* data, size_t size) {
  if (!error_.ok()) return error_;
  buffer_.insert(buffer_.end(), data, data + size);
  for (;;) {
    const size_t have = buffer_.size() - consumed_;
    if (have < 12) break;
    const uint8_t* header = buffer_.data() + consumed_;
    const uint32_t magic = ReadU32LE(header);
    // Header checks run the moment the header closes, before the body
    // arrives: a hostile size is rejected without reserving it.
    if (std::find(accepted_.begin(), accepted_.end(), magic) ==
        accepted_.end()) {
      return Corrupt("bad frame magic");
    }
    const uint32_t body_size = ReadU32LE(header + 4);
    if (body_size > max_frame_bytes_) {
      return Corrupt("frame body of " + std::to_string(body_size) +
                     " bytes exceeds the " +
                     std::to_string(max_frame_bytes_) + "-byte limit");
    }
    if (have < 12 + static_cast<size_t>(body_size)) break;
    Frame frame;
    frame.magic = magic;
    frame.body.assign(header + 12, header + 12 + body_size);
    if (util::Crc32(frame.body) != ReadU32LE(header + 8)) {
      return Corrupt("frame checksum mismatch");
    }
    consumed_ += 12 + static_cast<size_t>(body_size);
    ready_.push_back(std::move(frame));
  }
  // Compact once the parsed prefix dominates, keeping Feed amortised O(n).
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return util::Status::Ok();
}

bool FrameAssembler::PopFrame(Frame* out) {
  if (ready_.empty()) return false;
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = close(fd);
  } while (rc != 0 && errno == EINTR);
}

}  // namespace classminer::server

#include "server/server.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstdlib>
#include <future>
#include <utility>

#include "index/access_control.h"
#include "server/wire.h"

namespace classminer::server {
namespace {

// Parses a base-10 integer argument; kInvalidArgument on junk.
util::StatusOr<int> ParseIntArg(const std::string& text,
                                const std::string& what) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || value < -1000000 ||
      value > 1000000) {
    return util::Status::InvalidArgument("bad " + what + " '" + text + "'");
  }
  return static_cast<int>(value);
}

}  // namespace

ClassMinerServer::ClassMinerServer(ServerOptions options)
    : options_(std::move(options)),
      concepts_(index::ConceptHierarchy::MedicalDefault()) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.max_queue < 0) options_.max_queue = 0;
  if (options_.max_connections < 1) options_.max_connections = 1;
}

ClassMinerServer::~ClassMinerServer() { Stop(); }

util::Status ClassMinerServer::Start() {
  util::StatusOr<int> fd =
      ListenOn(options_.host, options_.port, options_.backlog);
  if (!fd.ok()) return fd.status();
  util::StatusOr<int> port = BoundPort(*fd);
  if (!port.ok()) {
    CloseFd(*fd);
    return port.status();
  }
  listen_fd_ = *fd;
  port_ = *port;
  pool_ = std::make_unique<util::ThreadPool>(options_.worker_threads);
  deadline_thread_ = std::thread([this] { DeadlineLoop(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return util::Status::Ok();
}

void ClassMinerServer::Stop() {
  if (stopping_.exchange(true)) {
    // A concurrent/second Stop still waits for the first teardown by
    // joining whatever is left; thread::join is not concurrency-safe, so
    // the second caller simply returns — the destructor is the only other
    // caller and runs after Stop by construction.
    return;
  }
  if (listen_fd_ >= 0) {
    // Unblocks accept() so the accept thread can observe stopping_.
    shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Shut down only the read side: a connection mid-request still writes
    // its response; its next read sees EOF and the loop exits.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (Connection& conn : connections_) {
      if (conn.fd >= 0) shutdown(conn.fd, SHUT_RD);
    }
  }
  for (;;) {
    Connection* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      for (Connection& c : connections_) {
        if (c.thread.joinable()) {
          conn = &c;
          break;
        }
      }
    }
    if (conn == nullptr) break;
    conn->thread.join();  // entries are never erased while stopping_
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(deadline_mutex_);
    deadline_cv_.notify_all();
  }
  if (deadline_thread_.joinable()) deadline_thread_.join();
  pool_.reset();
}

ServerStats ClassMinerServer::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void ClassMinerServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd;
    do {
      fd = accept(listen_fd_, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      if (errno == ECONNABORTED) continue;
      break;  // listener shut down (Stop) or unrecoverable
    }
    if (stopping_.load(std::memory_order_acquire)) {
      CloseFd(fd);
      break;
    }

    std::lock_guard<std::mutex> lock(conn_mutex_);
    // Reap sessions that hung up, so a long-lived daemon does not
    // accumulate dead entries (and their joined threads release).
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (it->fd < 0) {
        if (it->thread.joinable()) it->thread.join();
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      // The peer's first read (its hello response) reports the rejection.
      const Response busy = MakeResponse(util::Status::Unavailable(
          "server at connection capacity"));
      util::StatusOr<std::vector<uint8_t>> bytes = busy.Serialize();
      if (bytes.ok()) {
        (void)WriteFrame(fd, kResponseMagic, *bytes,
                         options_.max_frame_bytes);
      }
      CloseFd(fd);
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.connections_rejected;
      continue;
    }
    connections_.emplace_back();
    Connection* conn = &connections_.back();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.connections_accepted;
      ++stats_.connections_active;
    }
    conn->thread = std::thread([this, conn] { ConnectionLoop(conn); });
  }
}

void ClassMinerServer::ConnectionLoop(Connection* conn) {
  for (;;) {
    util::StatusOr<std::vector<uint8_t>> frame =
        ReadFrame(conn->fd, kRequestMagic, options_.max_frame_bytes);
    if (!frame.ok()) {
      // kUnavailable is a normal hangup; framing damage (kDataLoss) gets a
      // best-effort error response, but the stream cannot be trusted
      // afterwards, so the connection closes either way.
      if (frame.status().code() != util::StatusCode::kUnavailable) {
        const Response err = MakeResponse(frame.status());
        util::StatusOr<std::vector<uint8_t>> bytes = err.Serialize();
        if (bytes.ok()) {
          (void)WriteFrame(conn->fd, kResponseMagic, *bytes,
                           options_.max_frame_bytes);
        }
      }
      break;
    }
    util::StatusOr<Request> request = Request::Parse(*frame);
    Response response;
    if (!request.ok()) {
      // The frame boundary held (CRC passed), so the stream stays usable.
      response = MakeResponse(request.status());
    } else {
      response = HandleRequest(conn, *request);
    }
    util::StatusOr<std::vector<uint8_t>> bytes = response.Serialize();
    if (!bytes.ok()) {
      bytes = MakeResponse(bytes.status()).Serialize();
    }
    if (!bytes.ok() ||
        !WriteFrame(conn->fd, kResponseMagic, *bytes,
                    options_.max_frame_bytes)
             .ok()) {
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    CloseFd(conn->fd);
    conn->fd = -1;  // marks the entry reapable
  }
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  --stats_.connections_active;
}

Response ClassMinerServer::HandleRequest(Connection* conn,
                                         const Request& request) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests_received;
  }

  if (request.kind == RequestKind::kHello) {
    if (request.args.size() != 1) {
      return MakeResponse(util::Status::InvalidArgument(
          "hello carries exactly one credential argument"));
    }
    util::StatusOr<SessionHello> hello = SessionHello::Parse(request.args[0]);
    if (!hello.ok()) return MakeResponse(hello.status());
    conn->user = hello->ToCredential();
    conn->authenticated = true;
    return MakeResponse(util::Status::Ok(),
                        "session " + hello->user + " clearance " +
                            std::to_string(hello->clearance) + "\n");
  }
  if (!conn->authenticated) {
    return MakeResponse(util::Status::FailedPrecondition(
        "session not established; send hello first"));
  }

  // Multilevel access control: the session's clearance must cover the
  // request kind, and the account must not be denied the concept root
  // (a root denial disables the account outright).
  const index::AccessController access(&concepts_);
  const int required =
      options_.min_clearance[static_cast<size_t>(request.kind)];
  if (conn->user.clearance < required ||
      !access.CanAccessNode(conn->user, concepts_.root())) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.permission_denied;
    }
    return MakeResponse(util::Status::PermissionDenied(
        std::string(RequestKindName(request.kind)) + " requires clearance " +
        std::to_string(required) + "; session '" + conn->user.name +
        "' has " + std::to_string(conn->user.clearance)));
  }

  // Admission control: bound the number of admitted-but-not-executing
  // requests. Past the bound the client hears kUnavailable immediately —
  // the transient code util::Retry backs off on — instead of queueing
  // without bound.
  int queued = queued_.load(std::memory_order_acquire);
  do {
    if (queued >= options_.max_queue) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected_admission;
      return MakeResponse(util::Status::Unavailable(
          "server queue full (" + std::to_string(queued) +
          " requests waiting); retry"));
    }
  } while (!queued_.compare_exchange_weak(queued, queued + 1,
                                          std::memory_order_acq_rel));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests_admitted;
  }

  const bool has_deadline = request.deadline_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(request.deadline_ms);

  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  pool_->Schedule([this, conn, &request, &promise, has_deadline, deadline] {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    if (options_.request_started_hook) {
      options_.request_started_hook(request.kind);
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      // Expired while waiting in the queue: never start the op.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.deadline_exceeded;
      ++stats_.requests_failed;
      promise.set_value(MakeResponse(util::Status::DeadlineExceeded(
          "deadline expired before execution")));
      return;
    }
    util::CancellationToken cancel;
    std::shared_ptr<DeadlineEntry> watch;
    if (has_deadline) watch = WatchDeadline(deadline, &cancel);
    Response response = ExecuteRequest(*conn, request, &cancel);
    if (watch != nullptr) ReleaseDeadline(watch);
    if (response.code == util::StatusCode::kCancelled && has_deadline &&
        std::chrono::steady_clock::now() >= deadline) {
      // The cancellation was the deadline firing, not a client abort.
      response.code = util::StatusCode::kDeadlineExceeded;
      response.message = "deadline of " +
                         std::to_string(request.deadline_ms) +
                         " ms exceeded";
      response.body.clear();
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (response.ok()) {
        ++stats_.requests_ok;
      } else {
        ++stats_.requests_failed;
        if (response.code == util::StatusCode::kDeadlineExceeded) {
          ++stats_.deadline_exceeded;
        }
      }
    }
    promise.set_value(std::move(response));
  });
  // The reader thread waits for its own request; pipelining is per-
  // connection serial, concurrency comes from multiple connections.
  return future.get();
}

Response ClassMinerServer::ExecuteRequest(const Connection& conn,
                                          const Request& request,
                                          util::CancellationToken* cancel) {
  OpEnv env;
  env.mining = options_.mining;
  env.mining.cancel = cancel;
  env.media_dir = options_.media_dir;

  OpResult result;
  switch (request.kind) {
    case RequestKind::kHello:
      return MakeResponse(
          util::Status::Internal("hello handled before dispatch"));
    case RequestKind::kMine: {
      if (request.args.empty()) {
        return MakeResponse(
            util::Status::InvalidArgument("mine needs a container path"));
      }
      bool fast = false, strict = false;
      for (size_t i = 1; i < request.args.size(); ++i) {
        if (request.args[i] == "--fast") {
          fast = true;
        } else if (request.args[i] == "--strict") {
          strict = true;
        } else {
          return MakeResponse(util::Status::InvalidArgument(
              "unknown mine argument '" + request.args[i] + "'"));
        }
      }
      result = MineOp(request.args[0], fast, strict, env, nullptr);
      break;
    }
    case RequestKind::kBrowse: {
      bool strict = false;
      std::vector<std::string> paths;
      for (const std::string& arg : request.args) {
        if (arg == "--strict") {
          strict = true;
        } else {
          paths.push_back(arg);
        }
      }
      if (paths.empty()) {
        return MakeResponse(util::Status::InvalidArgument(
            "browse needs at least one container path"));
      }
      result = BrowseOp(paths, strict, conn.user, env, nullptr);
      break;
    }
    case RequestKind::kSkim: {
      if (request.args.empty() || request.args.size() > 2) {
        return MakeResponse(util::Status::InvalidArgument(
            "skim needs a container path and an optional level"));
      }
      int level = 3;
      if (request.args.size() == 2) {
        util::StatusOr<int> parsed =
            ParseIntArg(request.args[1], "skim level");
        if (!parsed.ok()) return MakeResponse(parsed.status());
        level = *parsed;
      }
      result = SkimOp(request.args[0], level, env, nullptr);
      break;
    }
    case RequestKind::kVerify: {
      if (request.args.size() != 1) {
        return MakeResponse(
            util::Status::InvalidArgument("verify needs a database path"));
      }
      result = VerifyOp(request.args[0]);
      break;
    }
    case RequestKind::kRepair: {
      if (request.args.size() != 1) {
        return MakeResponse(
            util::Status::InvalidArgument("repair needs a database path"));
      }
      result = RepairOp(request.args[0], env, nullptr);
      break;
    }
  }
  // Verify/repair carry their report even on a dirty outcome: the body is
  // the finding, the status says whether it was clean.
  return MakeResponse(result.status, std::move(result.report));
}

std::shared_ptr<ClassMinerServer::DeadlineEntry>
ClassMinerServer::WatchDeadline(std::chrono::steady_clock::time_point deadline,
                                util::CancellationToken* cancel) {
  auto entry = std::make_shared<DeadlineEntry>();
  entry->deadline = deadline;
  entry->cancel = cancel;
  std::lock_guard<std::mutex> lock(deadline_mutex_);
  deadlines_.push_back(entry);
  deadline_cv_.notify_all();
  return entry;
}

void ClassMinerServer::ReleaseDeadline(
    const std::shared_ptr<DeadlineEntry>& entry) {
  std::lock_guard<std::mutex> lock(deadline_mutex_);
  entry->done = true;
  for (auto it = deadlines_.begin(); it != deadlines_.end(); ++it) {
    if (*it == entry) {
      deadlines_.erase(it);
      break;
    }
  }
  deadline_cv_.notify_all();
}

void ClassMinerServer::DeadlineLoop() {
  std::unique_lock<std::mutex> lock(deadline_mutex_);
  while (!stopping_.load(std::memory_order_acquire) || !deadlines_.empty()) {
    auto next = std::chrono::steady_clock::time_point::max();
    const auto now = std::chrono::steady_clock::now();
    for (const std::shared_ptr<DeadlineEntry>& entry : deadlines_) {
      if (entry->done) continue;
      if (entry->deadline <= now) {
        entry->cancel->Cancel();  // the run answers kDeadlineExceeded
      } else if (entry->deadline < next) {
        next = entry->deadline;
      }
    }
    if (stopping_.load(std::memory_order_acquire) && deadlines_.empty()) {
      break;
    }
    if (next == std::chrono::steady_clock::time_point::max()) {
      deadline_cv_.wait_for(lock, std::chrono::milliseconds(100));
    } else {
      deadline_cv_.wait_until(lock, next);
    }
  }
}

}  // namespace classminer::server

#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "index/access_control.h"
#include "server/wire.h"
#include "util/failpoint.h"

namespace classminer::server {
namespace {

// Parses a base-10 integer argument; kInvalidArgument on junk.
util::StatusOr<int> ParseIntArg(const std::string& text,
                                const std::string& what) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || value < -1000000 ||
      value > 1000000) {
    return util::Status::InvalidArgument("bad " + what + " '" + text + "'");
  }
  return static_cast<int>(value);
}

// Steady-clock milliseconds for idle-timeout bookkeeping: monotonic, cheap
// to stamp from the reactor and cheap to compare from the monitor thread.
int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The magic of an already-encoded frame (first four little-endian bytes).
uint32_t FrameMagicOf(const std::vector<uint8_t>& frame) {
  if (frame.size() < 4) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(frame[i]) << (8 * i);
  return v;
}

// Derives the cache identity of a request, when it has one. Only mine and
// skim are cacheable: their reports depend solely on (container bytes,
// options, flags). Browse renders through the session's credential and
// verify/repair mutate database files, so they always execute. Requests
// whose arguments would be rejected by the op bypass the cache too — the
// op's own error message is the answer.
bool CacheSignature(const Request& request, std::string* path,
                    std::string* signature) {
  switch (request.kind) {
    case RequestKind::kMine: {
      if (request.args.empty()) return false;
      bool fast = false, strict = false;
      for (size_t i = 1; i < request.args.size(); ++i) {
        if (request.args[i] == "--fast") {
          fast = true;
        } else if (request.args[i] == "--strict") {
          strict = true;
        } else {
          return false;
        }
      }
      *path = request.args[0];
      *signature = std::string("mine:fast=") + (fast ? "1" : "0") +
                   ",strict=" + (strict ? "1" : "0");
      return true;
    }
    case RequestKind::kSkim: {
      if (request.args.empty() || request.args.size() > 2) return false;
      int level = 3;
      if (request.args.size() == 2) {
        util::StatusOr<int> parsed =
            ParseIntArg(request.args[1], "skim level");
        if (!parsed.ok()) return false;
        level = *parsed;
      }
      *path = request.args[0];
      *signature = "skim:level=" + std::to_string(level);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

// The slice of per-connection state a worker thread may touch. Everything
// else about a connection lives on the reactor thread; workers see only
// this mirror, used to block a streaming op until the peer drains its
// socket (backpressure) and to unblock it for good when the session dies.
struct ClassMinerServer::ConnShared {
  std::mutex mu;
  std::condition_variable cv;
  size_t queued_bytes = 0;  // reactor's write_queue_bytes, mirrored
  bool dead = false;        // connection closed; stop waiting, drop output
  // Last wire activity (NowMs), stamped by the reactor on accept, read and
  // write progress; read by the deadline monitor's idle reaper.
  std::atomic<int64_t> last_activity_ms{0};
};

// Reactor-owned per-session state machine.
struct ClassMinerServer::Connection {
  uint64_t id = 0;
  int fd = -1;
  FrameAssembler assembler;

  bool authenticated = false;
  index::UserCredential user;

  // Requests read off the wire but not yet dispatched (pipeline depth or
  // v1 serialization holding them back). Parse errors ride along as
  // inline_error entries so v1 responses keep arrival order.
  std::deque<PendingRequest> pending;
  int executing = 0;             // responses still owed by workers/leaders
  bool serial_inflight = false;  // a v1 request is in flight: stay serial

  // Write side: fully encoded frames; the front one is sent up to
  // write_offset. write_queue_bytes counts unsent bytes across the queue.
  std::deque<std::vector<uint8_t>> write_queue;
  size_t write_queue_bytes = 0;
  size_t write_offset = 0;

  // Finished v2 responses whose bodies still chunk out as the queue
  // drains (bounded memory: at most ~one chunk past the bound is encoded).
  struct Streaming {
    uint32_t request_id = 0;
    Response response;  // body holds the unsent remainder from `offset`
    size_t offset = 0;
    bool multi = false;  // delivered as 2+ chunks (live-streamed or split)
  };
  std::deque<Streaming> streaming;

  bool read_closed = false;  // EOF seen, framing damage, or drain begun
  bool want_write = false;   // current poller write-interest registration
  std::shared_ptr<ConnShared> shared;

  // v2 request_ids currently in flight on this session (registered at
  // parse, released when the final response is enqueued). A second request
  // reusing a live id is rejected — chunk reassembly would be ambiguous.
  std::unordered_set<uint32_t> live_v2_ids;
  // Inline protocol-error answers charged against max_session_errors.
  int inline_errors = 0;

  Connection(std::vector<uint32_t> magics, size_t max_frame)
      : assembler(std::move(magics), max_frame) {}
};

// Everything a pool task needs, detached from the Connection so the
// session can die while the op still runs.
struct ClassMinerServer::TaskCtx {
  uint64_t conn_id = 0;
  bool v2 = false;
  Request request;
  index::UserCredential user;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline;
  std::string lead_key;  // non-empty: this run leads a single-flight entry
  std::string idem_key;  // non-empty: this run leads an idempotency record
  bool owns_id = false;  // final response releases the session's live id
  std::shared_ptr<ConnShared> shared;
};

// Readiness multiplexer: epoll on Linux, poll(2) everywhere else (and as a
// runtime fallback when epoll_create1 fails). Watches are tagged with the
// connection id (0 = listener, 1 = wake pipe).
class ClassMinerServer::Poller {
 public:
  struct Ready {
    uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    bool hangup = false;  // peer fully closed (POLLHUP)
    bool error = false;
  };

  Poller() {
#ifdef __linux__
    epfd_ = epoll_create1(EPOLL_CLOEXEC);
#endif
  }
  ~Poller() {
    if (epfd_ >= 0) CloseFd(epfd_);
  }

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  util::Status Add(int fd, uint64_t tag, bool read, bool write) {
    watched_[fd] = Watch{tag, read, write};
    return Ctl(fd, tag, read, write, /*add=*/true);
  }

  util::Status Mod(int fd, uint64_t tag, bool read, bool write) {
    auto it = watched_.find(fd);
    if (it == watched_.end()) {
      return util::Status::Internal("poller: fd not watched");
    }
    it->second = Watch{tag, read, write};
    return Ctl(fd, tag, read, write, /*add=*/false);
  }

  void Del(int fd) {
    watched_.erase(fd);
#ifdef __linux__
    if (epfd_ >= 0) {
      epoll_event ev{};
      (void)epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
    }
#endif
  }

  // Blocks until at least one watched fd is ready or `timeout_ms` elapses
  // (-1 = forever); fills `out` (empty on timeout). The reactor passes a
  // finite heartbeat so a lost wake-pipe byte delays worker events instead
  // of stranding them.
  util::Status Wait(std::vector<Ready>* out, int timeout_ms) {
    out->clear();
#ifdef __linux__
    if (epfd_ >= 0) {
      epoll_event events[128];
      int n;
      do {
        n = epoll_wait(epfd_, events, 128, timeout_ms);
      } while (n < 0 && errno == EINTR);
      if (n < 0) {
        return util::Status::Internal(std::string("epoll_wait: ") +
                                      std::strerror(errno));
      }
      for (int i = 0; i < n; ++i) {
        Ready r;
        r.tag = events[i].data.u64;
        r.readable = (events[i].events & EPOLLIN) != 0;
        r.writable = (events[i].events & EPOLLOUT) != 0;
        r.hangup = (events[i].events & EPOLLHUP) != 0;
        r.error = (events[i].events & EPOLLERR) != 0;
        out->push_back(r);
      }
      return util::Status::Ok();
    }
#endif
    std::vector<pollfd> fds;
    std::vector<uint64_t> tags;
    fds.reserve(watched_.size());
    tags.reserve(watched_.size());
    for (const auto& [fd, watch] : watched_) {
      pollfd p{};
      p.fd = fd;
      p.events = static_cast<short>((watch.read ? POLLIN : 0) |
                                    (watch.write ? POLLOUT : 0));
      fds.push_back(p);
      tags.push_back(watch.tag);
    }
    int n;
    do {
      n = poll(fds.data(), fds.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      return util::Status::Internal(std::string("poll: ") +
                                    std::strerror(errno));
    }
    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      Ready r;
      r.tag = tags[i];
      r.readable = (fds[i].revents & POLLIN) != 0;
      r.writable = (fds[i].revents & POLLOUT) != 0;
      r.hangup = (fds[i].revents & POLLHUP) != 0;
      r.error = (fds[i].revents & (POLLERR | POLLNVAL)) != 0;
      out->push_back(r);
    }
    return util::Status::Ok();
  }

 private:
  struct Watch {
    uint64_t tag = 0;
    bool read = false;
    bool write = false;
  };

  util::Status Ctl(int fd, uint64_t tag, bool read, bool write, bool add) {
#ifdef __linux__
    if (epfd_ >= 0) {
      epoll_event ev{};
      ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
      ev.data.u64 = tag;
      if (epoll_ctl(epfd_, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd, &ev) !=
          0) {
        return util::Status::Internal(std::string("epoll_ctl: ") +
                                      std::strerror(errno));
      }
    }
#else
    (void)fd;
    (void)tag;
    (void)read;
    (void)write;
    (void)add;
#endif
    return util::Status::Ok();
  }

  int epfd_ = -1;
  std::unordered_map<int, Watch> watched_;  // authoritative for poll()
};

ClassMinerServer::ClassMinerServer(ServerOptions options)
    : options_(std::move(options)),
      concepts_(index::ConceptHierarchy::MedicalDefault()),
      cache_(ResultCache::Options{
          options_.cache_max_bytes > 0 ? options_.cache_max_bytes : 1,
          options_.cache_max_entries > 0 ? options_.cache_max_entries : 1}),
      idem_cache_(ResultCache::Options{
          options_.idem_cache_max_bytes > 0 ? options_.idem_cache_max_bytes
                                            : 1,
          options_.idem_cache_max_entries > 0 ? options_.idem_cache_max_entries
                                              : 1}) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.max_queue < 0) options_.max_queue = 0;
  if (options_.max_connections < 1) options_.max_connections = 1;
  if (options_.max_pipeline < 1) options_.max_pipeline = 1;
  if (options_.stream_chunk_bytes == 0) options_.stream_chunk_bytes = 1;
  if (options_.idle_timeout_ms < 0) options_.idle_timeout_ms = 0;
  if (options_.max_session_errors < 0) options_.max_session_errors = 0;
  if (options_.scrub_interval_ms < 0) options_.scrub_interval_ms = 0;
}

ClassMinerServer::~ClassMinerServer() { Stop(); }

util::Status ClassMinerServer::Start() {
  util::StatusOr<int> fd =
      ListenOn(options_.host, options_.port, options_.backlog);
  if (!fd.ok()) return fd.status();
  util::StatusOr<int> port = BoundPort(*fd);
  if (!port.ok()) {
    CloseFd(*fd);
    return port.status();
  }
  if (pipe(wake_fds_) != 0) {
    CloseFd(*fd);
    return util::Status::Unavailable(std::string("pipe: ") +
                                     std::strerror(errno));
  }
  util::Status setup = SetNonBlocking(*fd, true);
  if (setup.ok()) setup = SetNonBlocking(wake_fds_[0], true);
  if (setup.ok()) setup = SetNonBlocking(wake_fds_[1], true);
  auto poller = std::make_unique<Poller>();
  if (setup.ok()) setup = poller->Add(*fd, 0, /*read=*/true, /*write=*/false);
  if (setup.ok()) {
    setup = poller->Add(wake_fds_[0], 1, /*read=*/true, /*write=*/false);
  }
  if (!setup.ok()) {
    CloseFd(*fd);
    CloseFd(wake_fds_[0]);
    CloseFd(wake_fds_[1]);
    wake_fds_[0] = wake_fds_[1] = -1;
    return setup;
  }
  listen_fd_ = *fd;
  port_ = *port;
  poller_ = std::move(poller);
  pool_ = std::make_unique<util::ThreadPool>(options_.worker_threads);
  if (!options_.scrub_db_path.empty() && options_.scrub_interval_ms > 0) {
    ScrubberOptions scrub;
    scrub.db_path = options_.scrub_db_path;
    scrub.interval_ms = options_.scrub_interval_ms;
    scrub.max_yield_ms = options_.scrub_max_yield_ms;
    scrub.compact_logs = options_.scrub_compact;
    scrub.busy = [this] {
      return queued_.load(std::memory_order_acquire) > 0 ||
             busy_workers_.load(std::memory_order_acquire) > 0;
    };
    scrub.env.mining = options_.mining;
    scrub.env.media_dir = options_.media_dir;
    scrubber_ = std::make_unique<IntegrityScrubber>(std::move(scrub));
    scrubber_->Start();
  }
  deadline_thread_ = std::thread([this] { DeadlineLoop(); });
  reactor_thread_ = std::thread([this] { ReactorLoop(); });
  return util::Status::Ok();
}

void ClassMinerServer::Stop() {
  if (stopping_.exchange(true)) {
    // A second Stop simply returns; the destructor is the only other caller
    // and runs after the first Stop by construction.
    return;
  }
  if (scrubber_ != nullptr) scrubber_->Stop();
  Wake();
  if (reactor_thread_.joinable()) reactor_thread_.join();
  if (listen_fd_ >= 0) {
    // Start() succeeded but the reactor never ran (or drain already closed
    // it, leaving -1).
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(deadline_mutex_);
    deadline_cv_.notify_all();
  }
  if (deadline_thread_.joinable()) deadline_thread_.join();
  // Workers may still be finishing ops for sessions that died; they post
  // events nobody reads and Wake() a pipe that is still open. Only after
  // the pool drains is it safe to tear the pipe down.
  pool_.reset();
  CloseFd(wake_fds_[0]);
  CloseFd(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  poller_.reset();
}

ServerStats ClassMinerServer::StatsSnapshot() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out = stats_;
  }
  const ResultCache::Stats cache = cache_.stats();
  out.cache_hits = cache.hits;
  out.cache_joined = cache.joined;
  out.cache_misses = cache.misses;
  if (scrubber_ != nullptr) {
    const ScrubberStats scrub = scrubber_->StatsSnapshot();
    out.scrub_passes = scrub.passes;
    out.scrub_dirty = scrub.dirty_found;
    out.scrub_repairs = scrub.repairs;
    out.scrub_repair_failures = scrub.repair_failures;
    out.scrub_compactions = scrub.compactions;
    out.scrub_dead_dropped = scrub.dead_dropped;
  }
  return out;
}

std::string ClassMinerServer::BuildHealthReport() const {
  const ServerStats stats = StatsSnapshot();
  std::string out;
  out += "classminerd health\n";
  out += "status: ";
  out += draining_ ? "draining" : "serving";
  out += "\n";
  out += "connections: " + std::to_string(stats.connections_active) + "\n";
  out += "requests ok: " + std::to_string(stats.requests_ok) + "\n";
  out += "requests failed: " + std::to_string(stats.requests_failed) + "\n";
  if (scrubber_ != nullptr && scrubber_->enabled()) {
    const ScrubberStats scrub = scrubber_->StatsSnapshot();
    out += "scrub: enabled\n";
    out += "scrub passes: " + std::to_string(scrub.passes) + "\n";
    out += "scrub dirty: " + std::to_string(scrub.dirty_found) + "\n";
    out += "scrub repaired: " + std::to_string(scrub.repairs) + "\n";
    out += "scrub repair failures: " +
           std::to_string(scrub.repair_failures) + "\n";
    if (options_.scrub_compact) {
      out += "scrub compactions: " + std::to_string(scrub.compactions) + "\n";
      out += "scrub dead records dropped: " +
             std::to_string(scrub.dead_dropped) + "\n";
    }
    if (!scrub.ever_ran) {
      out += "last scrub: never\n";
    } else if (scrub.last_clean) {
      out += "last scrub: clean\n";
    } else {
      out += "last scrub: dirty";
      if (!scrub.last_error.empty()) out += " (" + scrub.last_error + ")";
      out += "\n";
    }
    out += "degraded entries: " + std::to_string(scrub.last_degraded) + "\n";
  } else {
    out += "scrub: disabled\n";
  }
  return out;
}

void ClassMinerServer::Wake() {
  if (wake_fds_[1] < 0) return;
  // Chaos site: the wake byte is lost. Worker events then ride the
  // reactor's heartbeat poll timeout instead of a prompt wake-up — slower,
  // never stranded.
  if (!util::FailPoint::Check("server.wake.drop").ok()) return;
  const uint8_t byte = 1;
  ssize_t n;
  do {
    n = write(wake_fds_[1], &byte, 1);
  } while (n < 0 && errno == EINTR);
  // EAGAIN means the pipe is full: a wake-up is already pending.
}

void ClassMinerServer::PostEvent(WorkerEvent event) {
  {
    std::lock_guard<std::mutex> lock(event_mutex_);
    events_.push_back(std::move(event));
  }
  Wake();
}

void ClassMinerServer::CountOutcome(const Response& response) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (response.ok()) {
    ++stats_.requests_ok;
  } else {
    ++stats_.requests_failed;
    if (response.code == util::StatusCode::kDeadlineExceeded) {
      ++stats_.deadline_exceeded;
    }
  }
}

// ---------------------------------------------------------------------------
// Reactor thread.

void ClassMinerServer::ReactorLoop() {
  std::vector<Poller::Ready> ready;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire) && !draining_) BeginDrain();
    if (draining_ && conns_.empty()) break;
    // Finite heartbeat: a dropped wake-pipe byte (chaos, or a full pipe
    // racing teardown) delays event pickup by at most one beat.
    if (!poller_->Wait(&ready, 100).ok()) {
      break;  // unrecoverable multiplexer loss
    }
    for (const Poller::Ready& r : ready) {
      if (r.tag == 1 && r.readable) {
        uint8_t buf[256];
        for (;;) {
          const ssize_t n = read(wake_fds_[0], buf, sizeof(buf));
          if (n < 0 && errno == EINTR) continue;
          if (n < static_cast<ssize_t>(sizeof(buf))) break;
        }
      }
    }
    if (stopping_.load(std::memory_order_acquire) && !draining_) BeginDrain();
    for (const Poller::Ready& r : ready) {
      if (r.tag == 0) {
        if (!draining_) HandleAccept();
        continue;
      }
      if (r.tag == 1) continue;
      auto it = conns_.find(r.tag);
      if (it == conns_.end()) continue;
      Connection* conn = it->second.get();
      if (r.error || (r.hangup && conn->read_closed)) {
        // The socket is gone (or the peer fully closed after we stopped
        // reading — nothing we queue can reach it).
        CloseConnection(conn->id);
        continue;
      }
      if (r.readable && !conn->read_closed) HandleReadable(conn);
      it = conns_.find(r.tag);  // HandleReadable may close on hard errors
      if (it == conns_.end()) continue;
      conn = it->second.get();
      if (r.writable) FlushConn(conn);
    }
    ProcessEvents();
    // Close sessions that have said everything they are going to say.
    std::vector<uint64_t> done;
    for (const auto& [id, conn] : conns_) {
      if (conn->read_closed && ConnDrained(*conn)) done.push_back(id);
    }
    for (uint64_t id : done) CloseConnection(id);
  }
}

void ClassMinerServer::BeginDrain() {
  draining_ = true;
  if (listen_fd_ >= 0) {
    poller_->Del(listen_fd_);
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [id, conn] : conns_) {
    // Mirror the old daemon's SHUT_RD drain: in-flight requests finish and
    // flush their responses; requests still sitting unread (or undispatched)
    // are dropped.
    conn->read_closed = true;
    conn->pending.clear();
    shutdown(conn->fd, SHUT_RD);
    (void)poller_->Mod(conn->fd, id, /*read=*/false, conn->want_write);
  }
}

void ClassMinerServer::HandleAccept() {
  for (;;) {
    util::StatusOr<int> fd = TryAccept(listen_fd_);
    if (!fd.ok() || *fd < 0) break;
    // Chaos site: the connection dies the moment it is accepted — the peer
    // sees its handshake read fail (kUnavailable) and retries.
    if (!util::FailPoint::Check("server.accept.reset").ok()) {
      CloseFd(*fd);
      continue;
    }
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      // The peer's first read (its hello response) reports the rejection.
      // The fresh fd is still blocking, so one synchronous frame is fine.
      const Response busy = MakeResponse(
          util::Status::Unavailable("server at connection capacity"));
      util::StatusOr<std::vector<uint8_t>> bytes = busy.Serialize();
      if (bytes.ok()) {
        (void)WriteFrame(*fd, kResponseMagic, *bytes,
                         options_.max_frame_bytes);
      }
      CloseFd(*fd);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections_rejected;
      continue;
    }
    if (!SetNonBlocking(*fd, true).ok()) {
      CloseFd(*fd);
      continue;
    }
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(
        std::vector<uint32_t>{kRequestMagic, kRequestMagicV2},
        options_.max_frame_bytes);
    conn->id = id;
    conn->fd = *fd;
    conn->shared = std::make_shared<ConnShared>();
    conn->shared->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
    if (!poller_->Add(*fd, id, /*read=*/true, /*write=*/false).ok()) {
      CloseFd(*fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(idle_mutex_);
      idle_watch_.emplace(id, conn->shared);
    }
    conns_.emplace(id, std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.connections_accepted;
    ++stats_.connections_active;
  }
}

void ClassMinerServer::HandleReadable(Connection* conn) {
  uint8_t buf[64 * 1024];
  for (;;) {
    util::StatusOr<size_t> n = TryRecv(conn->fd, buf, sizeof(buf));
    if (!n.ok()) {
      if (n.status().code() == util::StatusCode::kUnavailable) {
        // Clean hangup. A torn frame at EOF matches the blocking daemon's
        // "closed mid-frame" answer before the goodbye.
        if (conn->assembler.partial_bytes() > 0) {
          PendingRequest p;
          p.inline_error = true;
          p.error = MakeResponse(
              util::Status::DataLoss("connection closed mid-frame"));
          PushInlineError(conn, std::move(p));
        }
        conn->read_closed = true;
        (void)poller_->Mod(conn->fd, conn->id, /*read=*/false,
                           conn->want_write);
      } else {
        CloseConnection(conn->id);
        return;
      }
      break;
    }
    if (*n == 0) break;  // would block; the poller re-arms us
    conn->shared->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
    const util::Status fed = conn->assembler.Feed(buf, *n);
    FrameAssembler::Frame frame;
    while (conn->assembler.PopFrame(&frame)) {
      PendingRequest p;
      if (frame.magic == kRequestMagic) {
        util::StatusOr<Request> request = Request::Parse(frame.body);
        if (request.ok()) {
          p.request = std::move(*request);
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.requests_received;
        } else {
          // The frame boundary held (CRC passed), so the stream stays
          // usable; the error answer keeps its place in line.
          p.inline_error = true;
          p.error = MakeResponse(request.status());
        }
      } else {
        p.v2 = true;
        util::StatusOr<Request> request = Request::ParseTagged(frame.body);
        if (request.ok() &&
            !conn->live_v2_ids.insert(request->request_id).second) {
          // The tag is still answering an earlier request: a second stream
          // of chunks under the same id would reassemble ambiguously on the
          // client. Reject the newcomer; the original keeps its id.
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.duplicate_request_ids;
          }
          p.inline_error = true;
          p.error = MakeResponse(util::Status::InvalidArgument(
              "duplicate request_id " + std::to_string(request->request_id) +
              " already in flight on this session"));
          p.error.request_id = request->request_id;
        } else if (request.ok()) {
          p.owns_id = true;
          p.request = std::move(*request);
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.requests_received;
        } else {
          p.inline_error = true;
          p.error = MakeResponse(request.status());
          p.error.request_id = PeekRequestId(frame.body);
        }
      }
      if (p.inline_error) {
        PushInlineError(conn, std::move(p));
        if (conn->read_closed) break;  // error budget spent mid-batch
      } else {
        conn->pending.push_back(std::move(p));
      }
    }
    if (conn->read_closed) break;
    if (!fed.ok()) {
      // Framing damage: the stream cannot be trusted past this point. A
      // best-effort error response queues behind whatever was already owed,
      // then the connection closes once flushed.
      PendingRequest p;
      p.inline_error = true;
      p.error = MakeResponse(fed);
      PushInlineError(conn, std::move(p));
      conn->read_closed = true;
      (void)poller_->Mod(conn->fd, conn->id, /*read=*/false,
                         conn->want_write);
      break;
    }
    if (*n < sizeof(buf)) break;  // likely drained; LT polling re-reports
  }
  TryDispatch(conn);
}

void ClassMinerServer::PushInlineError(Connection* conn,
                                       PendingRequest error) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.protocol_errors;
  }
  ++conn->inline_errors;
  conn->pending.push_back(std::move(error));
  if (options_.max_session_errors > 0 &&
      conn->inline_errors >= options_.max_session_errors &&
      !conn->read_closed) {
    // Error budget spent: a peer that keeps sending damage stops being
    // read. Every answer already owed (including this one) still flushes,
    // then the connection closes cleanly instead of wedging half-alive.
    conn->read_closed = true;
    (void)poller_->Mod(conn->fd, conn->id, /*read=*/false, conn->want_write);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.error_budget_closed;
  }
}

void ClassMinerServer::TryDispatch(Connection* conn) {
  while (!conn->pending.empty()) {
    const PendingRequest& front = conn->pending.front();
    // v1 semantics: one request at a time, in order. A v1 request neither
    // starts while anything is in flight nor lets later requests pass it.
    if (conn->serial_inflight) break;
    if (!front.inline_error) {
      if (!front.v2 && conn->executing > 0) break;
      if (front.v2 && conn->executing >= options_.max_pipeline) break;
    }
    PendingRequest pending = std::move(conn->pending.front());
    conn->pending.pop_front();
    DispatchRequest(conn, std::move(pending));
  }
}

void ClassMinerServer::DispatchRequest(Connection* conn,
                                       PendingRequest&& pending) {
  if (pending.inline_error) {
    // Inline errors never registered a live id (a duplicate-id rejection
    // must not free the original's), so nothing is released here.
    EnqueueFinal(conn, pending.v2, std::move(pending.error), 0,
                 /*release_id=*/false);
    return;
  }
  const bool v2 = pending.v2;
  const bool owns_id = pending.owns_id;
  Request& request = pending.request;

  if (request.kind == RequestKind::kHealth) {
    // Liveness probe: clearance 0, allowed before hello, answered on the
    // reactor without admission control — a saturated or draining daemon
    // can still tell a load balancer how it is doing.
    Response response = MakeResponse(util::Status::Ok(), BuildHealthReport());
    response.request_id = request.request_id;
    EnqueueFinal(conn, v2, std::move(response), 0, owns_id);
    return;
  }

  if (request.kind == RequestKind::kHello) {
    Response response;
    if (request.args.size() != 1) {
      response = MakeResponse(util::Status::InvalidArgument(
          "hello carries exactly one credential argument"));
    } else {
      util::StatusOr<SessionHello> hello =
          SessionHello::Parse(request.args[0]);
      if (!hello.ok()) {
        response = MakeResponse(hello.status());
      } else {
        conn->user = hello->ToCredential();
        conn->authenticated = true;
        response = MakeResponse(util::Status::Ok(),
                                "session " + hello->user + " clearance " +
                                    std::to_string(hello->clearance) + "\n");
      }
    }
    response.request_id = request.request_id;
    EnqueueFinal(conn, v2, std::move(response), 0, owns_id);
    return;
  }
  if (!conn->authenticated) {
    Response response = MakeResponse(util::Status::FailedPrecondition(
        "session not established; send hello first"));
    response.request_id = request.request_id;
    EnqueueFinal(conn, v2, std::move(response), 0, owns_id);
    return;
  }

  // Multilevel access control: the session's clearance must cover the
  // request kind, and the account must not be denied the concept root
  // (a root denial disables the account outright).
  const index::AccessController access(&concepts_);
  const int required =
      options_.min_clearance[static_cast<size_t>(request.kind)];
  if (conn->user.clearance < required ||
      !access.CanAccessNode(conn->user, concepts_.root())) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.permission_denied;
    }
    Response response = MakeResponse(util::Status::PermissionDenied(
        std::string(RequestKindName(request.kind)) + " requires clearance " +
        std::to_string(required) + "; session '" + conn->user.name +
        "' has " + std::to_string(conn->user.clearance)));
    response.request_id = request.request_id;
    EnqueueFinal(conn, v2, std::move(response), 0, owns_id);
    return;
  }

  // Idempotent resume (v2 sessions): a keyed request whose connection died
  // mid-call is resent with the same key after a reconnect. Recorded
  // outcomes replay byte-for-byte; a key still executing is joined — either
  // way the work runs at most once per key. A key is scoped to the user so
  // sessions cannot replay each other's outcomes.
  std::string idem_lead = std::move(pending.idem_lead);
  if (v2 && idem_lead.empty() && !request.idempotency_key.empty()) {
    std::string key = std::string("idem\x1f") + conn->user.name + "\x1f" +
                      request.idempotency_key;
    CachedResult recorded;
    const uint64_t conn_id = conn->id;
    const Request request_copy = request;
    const ResultCache::Admission admission = idem_cache_.JoinOrLead(
        key, &recorded,
        [this, conn_id, v2, owns_id,
         request_copy](const CachedResult* result) {
          WorkerEvent event;
          event.conn_id = conn_id;
          event.v2 = v2;
          event.owns_id = owns_id;
          event.request_id = request_copy.request_id;
          if (result != nullptr) {
            event.kind = WorkerEvent::Kind::kFinal;
            event.response.code = result->code;
            event.response.message = result->message;
            event.response.body = result->body;
            event.response.request_id = request_copy.request_id;
            CountOutcome(event.response);
          } else {
            // The original attempt never executed (admission rejection,
            // shutdown); this retry runs its own copy.
            event.kind = WorkerEvent::Kind::kRedispatch;
            event.request = request_copy;
          }
          PostEvent(std::move(event));
        });
    if (admission == ResultCache::Admission::kHit) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.idempotent_hits;
      }
      Response response;
      response.code = recorded.code;
      response.message = std::move(recorded.message);
      response.body = std::move(recorded.body);
      response.request_id = request.request_id;
      CountOutcome(response);
      EnqueueFinal(conn, v2, std::move(response), 0, owns_id);
      return;
    }
    if (admission == ResultCache::Admission::kJoined) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.idempotent_joined;
      }
      ++conn->executing;
      return;
    }
    idem_lead = std::move(key);
  }

  // Single-flight result cache: identical concurrent runs collapse onto one
  // leader; identical later runs answer from the stored entry, byte for
  // byte what a fresh execution would have said.
  std::string lead_key;
  if (options_.enable_result_cache) {
    std::string path, signature;
    if (CacheSignature(request, &path, &signature)) {
      util::StatusOr<std::string> key =
          MiningCacheKey(path, signature, options_.mining);
      if (key.ok()) {
        CachedResult cached;
        const uint64_t conn_id = conn->id;
        const Request request_copy = request;
        const ResultCache::Admission admission = cache_.JoinOrLead(
            *key, &cached,
            [this, conn_id, v2, owns_id, idem_lead,
             request_copy](const CachedResult* result) {
              // Runs on the leader's worker thread when it completes.
              if (result != nullptr && !idem_lead.empty()) {
                // The joined result is also this request's recorded
                // outcome: a keyed retry after reconnect must replay it,
                // not recompute it.
                idem_cache_.Complete(idem_lead, *result, /*cacheable=*/true);
              }
              WorkerEvent event;
              event.conn_id = conn_id;
              event.v2 = v2;
              event.owns_id = owns_id;
              event.request_id = request_copy.request_id;
              if (result != nullptr) {
                event.kind = WorkerEvent::Kind::kFinal;
                event.response.code = result->code;
                event.response.message = result->message;
                event.response.body = result->body;
                event.response.request_id = request_copy.request_id;
                CountOutcome(event.response);
              } else {
                // The leader finished without a shareable result; run our
                // own copy of the request from scratch.
                event.kind = WorkerEvent::Kind::kRedispatch;
                event.request = request_copy;
                event.idem_lead = idem_lead;
              }
              PostEvent(std::move(event));
            });
        if (admission == ResultCache::Admission::kHit) {
          if (!idem_lead.empty()) {
            idem_cache_.Complete(idem_lead, cached, /*cacheable=*/true);
          }
          Response response;
          response.code = cached.code;
          response.message = std::move(cached.message);
          response.body = std::move(cached.body);
          response.request_id = request.request_id;
          CountOutcome(response);
          EnqueueFinal(conn, v2, std::move(response), 0, owns_id);
          return;
        }
        if (admission == ResultCache::Admission::kJoined) {
          ++conn->executing;
          if (!v2) conn->serial_inflight = true;
          return;
        }
        lead_key = std::move(*key);
      }
    }
  }

  // Admission control: bound the number of admitted-but-not-executing
  // requests. Past the bound the client hears kUnavailable immediately —
  // the transient code util::Retry backs off on — instead of queueing
  // without bound.
  int queued = queued_.load(std::memory_order_acquire);
  bool rejected = false;
  do {
    if (queued >= options_.max_queue) {
      rejected = true;
      break;
    }
  } while (!queued_.compare_exchange_weak(queued, queued + 1,
                                          std::memory_order_acq_rel));
  if (rejected) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected_admission;
    }
    if (!lead_key.empty()) {
      // Waiters joined a flight that will never run; send them back out.
      cache_.Complete(lead_key, CachedResult{}, /*cacheable=*/false);
    }
    if (!idem_lead.empty()) {
      // Never executed, so nothing to replay: the retry runs for real.
      idem_cache_.Complete(idem_lead, CachedResult{}, /*cacheable=*/false);
    }
    Response response = MakeResponse(util::Status::Unavailable(
        "server queue full (" + std::to_string(queued) +
        " requests waiting); retry"));
    response.request_id = request.request_id;
    EnqueueFinal(conn, v2, std::move(response), 0, owns_id);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests_admitted;
    if (conn->executing > 0) ++stats_.requests_pipelined;
  }

  auto ctx = std::make_shared<TaskCtx>();
  ctx->conn_id = conn->id;
  ctx->v2 = v2;
  ctx->user = conn->user;
  ctx->has_deadline = request.deadline_ms > 0;
  ctx->deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(request.deadline_ms);
  ctx->lead_key = std::move(lead_key);
  ctx->idem_key = std::move(idem_lead);
  ctx->owns_id = owns_id;
  ctx->shared = conn->shared;
  ctx->request = std::move(request);

  ++conn->executing;
  if (!v2) conn->serial_inflight = true;
  pool_->Schedule([this, ctx] { WorkerRun(ctx); });
}

void ClassMinerServer::EnqueueFinal(Connection* conn, bool v2,
                                    Response response, size_t streamed_bytes,
                                    bool release_id) {
  if (v2 && release_id) {
    // The tagged id's lifetime ends with its final answer; the client may
    // legitimately reuse it for a fresh request after this frame.
    conn->live_v2_ids.erase(response.request_id);
  }
  if (!v2) {
    util::StatusOr<std::vector<uint8_t>> bytes = response.Serialize();
    if (!bytes.ok()) bytes = MakeResponse(bytes.status()).Serialize();
    if (!bytes.ok()) return;  // cannot even say what went wrong
    util::StatusOr<std::vector<uint8_t>> frame =
        EncodeFrame(kResponseMagic, *bytes, options_.max_frame_bytes);
    if (frame.ok()) EnqueueFrameBytes(conn, std::move(*frame));
    return;
  }
  // v2: the body past what the op already streamed ships as chunk frames,
  // paced by FillStreaming so a huge report never sits encoded in memory
  // ahead of a slow reader.
  if (streamed_bytes > 0 && streamed_bytes <= response.body.size()) {
    response.body.erase(0, streamed_bytes);
  }
  response.final_chunk = true;
  Connection::Streaming s;
  s.request_id = response.request_id;
  s.multi = streamed_bytes > 0;
  s.response = std::move(response);
  conn->streaming.push_back(std::move(s));
  FillStreaming(conn);
}

void ClassMinerServer::FillStreaming(Connection* conn) {
  while (!conn->streaming.empty() &&
         conn->write_queue_bytes <= options_.max_write_queue_bytes) {
    Connection::Streaming& s = conn->streaming.front();
    const std::string& body = s.response.body;
    const size_t remaining = body.size() - s.offset;
    Response piece;
    piece.request_id = s.request_id;
    bool last;
    if (remaining > options_.stream_chunk_bytes) {
      piece.final_chunk = false;
      piece.body = body.substr(s.offset, options_.stream_chunk_bytes);
      s.offset += options_.stream_chunk_bytes;
      s.multi = true;
      last = false;
    } else {
      piece.final_chunk = true;
      piece.code = s.response.code;
      piece.message = s.response.message;
      piece.body = body.substr(s.offset);
      last = true;
    }
    util::StatusOr<std::vector<uint8_t>> bytes = piece.SerializeChunk();
    if (bytes.ok()) {
      util::StatusOr<std::vector<uint8_t>> frame =
          EncodeFrame(kResponseMagicV2, *bytes, options_.max_frame_bytes);
      if (frame.ok()) EnqueueFrameBytes(conn, std::move(*frame));
    }
    if (last) {
      if (s.multi) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.responses_streamed;
      }
      conn->streaming.pop_front();
    }
  }
}

void ClassMinerServer::EnqueueFrameBytes(Connection* conn,
                                         std::vector<uint8_t> frame) {
  // Fault injection: duplicate a final v2 chunk on the wire, modelling a
  // retransmit-after-ack. Only FINAL chunks are duplicated — the client
  // forgets the tag once the final frame lands, so the copy exercises the
  // unknown-tag drop path; duplicating a middle chunk would instead corrupt
  // reassembly, which no real transport does under TCP.
  bool dup = false;
  if (frame.size() >= 17 && FrameMagicOf(frame) == kResponseMagicV2 &&
      (frame[16] & 1) != 0) {
    dup = !util::FailPoint::Check("server.wire.frame.dup").ok();
  }
  for (int copies = dup ? 2 : 1; copies > 0; --copies) {
    std::vector<uint8_t> bytes = copies > 1 ? frame : std::move(frame);
    conn->write_queue_bytes += bytes.size();
    conn->write_queue.push_back(std::move(bytes));
  }
  {
    std::lock_guard<std::mutex> lock(conn->shared->mu);
    conn->shared->queued_bytes = conn->write_queue_bytes;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (conn->write_queue_bytes > stats_.write_queue_peak_bytes) {
      stats_.write_queue_peak_bytes = conn->write_queue_bytes;
    }
  }
  UpdateWriteInterest(conn);
}

void ClassMinerServer::FlushConn(Connection* conn) {
  for (;;) {
    if (conn->write_queue.empty()) {
      FillStreaming(conn);
      if (conn->write_queue.empty()) break;
    }
    std::vector<uint8_t>& front = conn->write_queue.front();
    util::StatusOr<size_t> n =
        TrySend(conn->fd, front.data() + conn->write_offset,
                front.size() - conn->write_offset);
    if (!n.ok()) {
      // Peer vanished; whatever was owed can never be delivered.
      CloseConnection(conn->id);
      return;
    }
    if (*n == 0) break;  // socket buffer full; EPOLLOUT re-arms us
    conn->shared->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
    conn->write_offset += *n;
    conn->write_queue_bytes -= *n;
    if (conn->write_offset == front.size()) {
      conn->write_queue.pop_front();
      conn->write_offset = 0;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn->shared->mu);
    conn->shared->queued_bytes = conn->write_queue_bytes;
  }
  conn->shared->cv.notify_all();  // unblock ops waiting out backpressure
  UpdateWriteInterest(conn);
}

void ClassMinerServer::UpdateWriteInterest(Connection* conn) {
  const bool want =
      !conn->write_queue.empty() || !conn->streaming.empty();
  if (want == conn->want_write) return;
  conn->want_write = want;
  (void)poller_->Mod(conn->fd, conn->id, /*read=*/!conn->read_closed, want);
}

bool ClassMinerServer::ConnDrained(const Connection& conn) const {
  return conn.pending.empty() && conn.executing == 0 &&
         conn.write_queue.empty() && conn.streaming.empty();
}

void ClassMinerServer::CloseConnection(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  poller_->Del(conn->fd);
  CloseFd(conn->fd);
  {
    std::lock_guard<std::mutex> lock(conn->shared->mu);
    conn->shared->dead = true;
  }
  conn->shared->cv.notify_all();  // release any op blocked on backpressure
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    idle_watch_.erase(id);
  }
  conns_.erase(it);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  --stats_.connections_active;
}

void ClassMinerServer::ProcessEvents() {
  std::deque<WorkerEvent> batch;
  {
    std::lock_guard<std::mutex> lock(event_mutex_);
    batch.swap(events_);
  }
  for (WorkerEvent& event : batch) {
    auto it = conns_.find(event.conn_id);
    if (it == conns_.end()) {
      // Session died; drop the output. A redispatch this request was
      // leading in the idempotency cache must still resolve, or keyed
      // retries after reconnect would join a flight that never completes.
      if (!event.idem_lead.empty()) {
        idem_cache_.Complete(event.idem_lead, CachedResult{},
                             /*cacheable=*/false);
      }
      continue;
    }
    Connection* conn = it->second.get();
    switch (event.kind) {
      case WorkerEvent::Kind::kChunk: {
        Response chunk;
        chunk.request_id = event.request_id;
        chunk.final_chunk = false;
        chunk.body = std::move(event.response.body);
        util::StatusOr<std::vector<uint8_t>> bytes = chunk.SerializeChunk();
        if (bytes.ok()) {
          util::StatusOr<std::vector<uint8_t>> frame = EncodeFrame(
              kResponseMagicV2, *bytes, options_.max_frame_bytes);
          if (frame.ok()) EnqueueFrameBytes(conn, std::move(*frame));
        }
        break;
      }
      case WorkerEvent::Kind::kFinal: {
        --conn->executing;
        if (!event.v2) conn->serial_inflight = false;
        event.response.request_id = event.request_id;
        EnqueueFinal(conn, event.v2, std::move(event.response),
                     event.streamed_bytes, event.owns_id);
        TryDispatch(conn);
        break;
      }
      case WorkerEvent::Kind::kRedispatch: {
        --conn->executing;
        if (!event.v2) conn->serial_inflight = false;
        if (draining_) {
          // The run this request had joined evaporated during shutdown.
          if (!event.idem_lead.empty()) {
            idem_cache_.Complete(event.idem_lead, CachedResult{},
                                 /*cacheable=*/false);
          }
          Response response =
              MakeResponse(util::Status::Unavailable("server stopping"));
          response.request_id = event.request_id;
          EnqueueFinal(conn, event.v2, std::move(response), 0,
                       event.owns_id);
        } else {
          PendingRequest pending;
          pending.v2 = event.v2;
          pending.owns_id = event.owns_id;
          pending.idem_lead = std::move(event.idem_lead);
          pending.request = std::move(event.request);
          DispatchRequest(conn, std::move(pending));
        }
        TryDispatch(conn);
        break;
      }
      case WorkerEvent::Kind::kCloseIdle: {
        // Advisory from the deadline monitor; the reactor re-checks the
        // authoritative per-connection state before acting, since work may
        // have arrived between the scan and this event draining.
        if (options_.idle_timeout_ms <= 0) break;
        if (conn->executing > 0 || !conn->pending.empty() ||
            !conn->write_queue.empty() || !conn->streaming.empty()) {
          break;
        }
        const int64_t last =
            conn->shared->last_activity_ms.load(std::memory_order_relaxed);
        if (NowMs() - last < options_.idle_timeout_ms) break;
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.idle_closed;
        }
        CloseConnection(event.conn_id);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Worker side.

void ClassMinerServer::WorkerRun(const std::shared_ptr<TaskCtx>& ctx) {
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  busy_workers_.fetch_add(1, std::memory_order_acq_rel);
  if (options_.request_started_hook) {
    options_.request_started_hook(ctx->request.kind);
  }
  Response response;
  size_t streamed = 0;
  bool executed = true;
  if (ctx->has_deadline &&
      std::chrono::steady_clock::now() >= ctx->deadline) {
    // Expired while waiting in the queue: never start the op.
    executed = false;
    response = MakeResponse(util::Status::DeadlineExceeded(
        "deadline expired before execution"));
    CountOutcome(response);
  } else {
    util::CancellationToken cancel;
    std::shared_ptr<DeadlineEntry> watch;
    if (ctx->has_deadline) watch = WatchDeadline(ctx->deadline, &cancel);

    OpEnv env;
    env.mining = options_.mining;
    env.mining.cancel = &cancel;
    env.media_dir = options_.media_dir;
    if (ctx->v2 && (ctx->request.kind == RequestKind::kMine ||
                    ctx->request.kind == RequestKind::kBrowse ||
                    ctx->request.kind == RequestKind::kSkim)) {
      env.chunk_bytes = options_.stream_chunk_bytes;
      env.chunk_sink = [this, ctx](const std::string& fragment) {
        WorkerEvent event;
        event.kind = WorkerEvent::Kind::kChunk;
        event.conn_id = ctx->conn_id;
        event.v2 = true;
        event.request_id = ctx->request.request_id;
        event.response.body = fragment;
        PostEvent(std::move(event));
        // Backpressure: the op pauses until the peer drains its socket
        // below the write-queue bound (or the session dies). A slow reader
        // stalls only its own op, never the reactor or other sessions.
        std::unique_lock<std::mutex> lock(ctx->shared->mu);
        ctx->shared->cv.wait(lock, [&] {
          return ctx->shared->dead ||
                 ctx->shared->queued_bytes <= options_.max_write_queue_bytes;
        });
      };
    }
    response = ExecuteRequest(ctx->user, ctx->request, env, &streamed);
    if (watch != nullptr) ReleaseDeadline(watch);
    if (response.code == util::StatusCode::kCancelled && ctx->has_deadline &&
        std::chrono::steady_clock::now() >= ctx->deadline) {
      // The cancellation was the deadline firing, not a client abort.
      response.code = util::StatusCode::kDeadlineExceeded;
      response.message = "deadline of " +
                         std::to_string(ctx->request.deadline_ms) +
                         " ms exceeded";
      response.body.clear();
      streamed = 0;
    }
    CountOutcome(response);
  }
  if (!ctx->lead_key.empty()) {
    // Leader hand-in: store only clean results (and only un-streamed ones —
    // a partially shipped body is still byte-complete here, so it caches
    // fine; the *next* asker gets it in one piece).
    CachedResult result;
    result.code = response.code;
    result.message = response.message;
    result.body = response.body;
    cache_.Complete(ctx->lead_key, result, /*cacheable=*/response.ok());
  }
  if (!ctx->idem_key.empty()) {
    if (executed) {
      // Record the outcome — errors included. The op RAN; a keyed retry
      // must replay what happened, never run the side effects twice
      // (at-most-once is the whole point for `repair`).
      CachedResult result;
      result.code = response.code;
      result.message = response.message;
      result.body = response.body;
      idem_cache_.Complete(ctx->idem_key, result, /*cacheable=*/true);
    } else {
      // Expired in the queue before running: nothing happened, so a keyed
      // retry is entitled to a fresh execution.
      idem_cache_.Complete(ctx->idem_key, CachedResult{},
                           /*cacheable=*/false);
    }
  }
  busy_workers_.fetch_sub(1, std::memory_order_acq_rel);
  WorkerEvent event;
  event.kind = WorkerEvent::Kind::kFinal;
  event.conn_id = ctx->conn_id;
  event.v2 = ctx->v2;
  event.owns_id = ctx->owns_id;
  event.request_id = ctx->request.request_id;
  event.response = std::move(response);
  event.streamed_bytes = streamed;
  PostEvent(std::move(event));
}

Response ClassMinerServer::ExecuteRequest(const index::UserCredential& user,
                                          const Request& request,
                                          const OpEnv& env,
                                          size_t* streamed_bytes) {
  OpResult result;
  switch (request.kind) {
    case RequestKind::kHello:
      return MakeResponse(
          util::Status::Internal("hello handled before dispatch"));
    case RequestKind::kMine: {
      if (request.args.empty()) {
        return MakeResponse(
            util::Status::InvalidArgument("mine needs a container path"));
      }
      bool fast = false, strict = false;
      for (size_t i = 1; i < request.args.size(); ++i) {
        if (request.args[i] == "--fast") {
          fast = true;
        } else if (request.args[i] == "--strict") {
          strict = true;
        } else {
          return MakeResponse(util::Status::InvalidArgument(
              "unknown mine argument '" + request.args[i] + "'"));
        }
      }
      result = MineOp(request.args[0], fast, strict, env, nullptr);
      break;
    }
    case RequestKind::kBrowse: {
      bool strict = false;
      std::vector<std::string> paths;
      for (const std::string& arg : request.args) {
        if (arg == "--strict") {
          strict = true;
        } else {
          paths.push_back(arg);
        }
      }
      if (paths.empty()) {
        return MakeResponse(util::Status::InvalidArgument(
            "browse needs at least one container path"));
      }
      result = BrowseOp(paths, strict, user, env, nullptr);
      break;
    }
    case RequestKind::kSkim: {
      if (request.args.empty() || request.args.size() > 2) {
        return MakeResponse(util::Status::InvalidArgument(
            "skim needs a container path and an optional level"));
      }
      int level = 3;
      if (request.args.size() == 2) {
        util::StatusOr<int> parsed =
            ParseIntArg(request.args[1], "skim level");
        if (!parsed.ok()) return MakeResponse(parsed.status());
        level = *parsed;
      }
      result = SkimOp(request.args[0], level, env, nullptr);
      break;
    }
    case RequestKind::kVerify: {
      if (request.args.size() != 1) {
        return MakeResponse(
            util::Status::InvalidArgument("verify needs a database path"));
      }
      result = VerifyOp(request.args[0]);
      break;
    }
    case RequestKind::kRepair: {
      if (request.args.size() != 1) {
        return MakeResponse(
            util::Status::InvalidArgument("repair needs a database path"));
      }
      result = RepairOp(request.args[0], env, nullptr);
      break;
    }
    case RequestKind::kHealth:
      return MakeResponse(
          util::Status::Internal("health handled before dispatch"));
  }
  if (streamed_bytes != nullptr) *streamed_bytes = result.streamed_bytes;
  // Verify/repair carry their report even on a dirty outcome: the body is
  // the finding, the status says whether it was clean.
  return MakeResponse(result.status, std::move(result.report));
}

// ---------------------------------------------------------------------------
// Deadline monitor (unchanged from the thread-per-connection daemon).

std::shared_ptr<ClassMinerServer::DeadlineEntry>
ClassMinerServer::WatchDeadline(std::chrono::steady_clock::time_point deadline,
                                util::CancellationToken* cancel) {
  auto entry = std::make_shared<DeadlineEntry>();
  entry->deadline = deadline;
  entry->cancel = cancel;
  std::lock_guard<std::mutex> lock(deadline_mutex_);
  deadlines_.push_back(entry);
  deadline_cv_.notify_all();
  return entry;
}

void ClassMinerServer::ReleaseDeadline(
    const std::shared_ptr<DeadlineEntry>& entry) {
  std::lock_guard<std::mutex> lock(deadline_mutex_);
  entry->done = true;
  for (auto it = deadlines_.begin(); it != deadlines_.end(); ++it) {
    if (*it == entry) {
      deadlines_.erase(it);
      break;
    }
  }
  deadline_cv_.notify_all();
}

void ClassMinerServer::DeadlineLoop() {
  const bool idle_enabled = options_.idle_timeout_ms > 0;
  std::unique_lock<std::mutex> lock(deadline_mutex_);
  while (!stopping_.load(std::memory_order_acquire) || !deadlines_.empty()) {
    auto next = std::chrono::steady_clock::time_point::max();
    const auto now = std::chrono::steady_clock::now();
    for (const std::shared_ptr<DeadlineEntry>& entry : deadlines_) {
      if (entry->done) continue;
      if (entry->deadline <= now) {
        entry->cancel->Cancel();  // the run answers kDeadlineExceeded
      } else if (entry->deadline < next) {
        next = entry->deadline;
      }
    }
    if (idle_enabled && !stopping_.load(std::memory_order_acquire)) {
      // Idle reaper: flag sessions whose last byte (either direction) is
      // older than the timeout. Only advisory — the reactor owns the
      // connection and re-checks before closing, so a request that lands
      // between scan and close survives. This also covers the slow-loris
      // shape: a half-sent header keeps a connection forever otherwise.
      std::vector<uint64_t> expired;
      {
        std::lock_guard<std::mutex> guard(idle_mutex_);
        const int64_t now_ms = NowMs();
        for (const auto& [id, shared] : idle_watch_) {
          const int64_t last =
              shared->last_activity_ms.load(std::memory_order_relaxed);
          if (now_ms - last >= options_.idle_timeout_ms) {
            expired.push_back(id);
          }
        }
      }
      for (uint64_t id : expired) {
        WorkerEvent event;
        event.kind = WorkerEvent::Kind::kCloseIdle;
        event.conn_id = id;
        PostEvent(std::move(event));
      }
    }
    if (stopping_.load(std::memory_order_acquire) && deadlines_.empty()) {
      break;
    }
    const auto heartbeat = now + std::chrono::milliseconds(100);
    if (next == std::chrono::steady_clock::time_point::max()) {
      deadline_cv_.wait_for(lock, std::chrono::milliseconds(100));
    } else if (idle_enabled && heartbeat < next) {
      // With the reaper on, cap the nap so idle scans keep their cadence
      // even while a long deadline is pending.
      deadline_cv_.wait_until(lock, heartbeat);
    } else {
      deadline_cv_.wait_until(lock, next);
    }
  }
}

}  // namespace classminer::server

#include "server/client.h"

#include <sys/socket.h>

#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "server/wire.h"

namespace classminer::server {

util::StatusOr<Client> Client::Connect(const std::string& host, int port,
                                       const SessionHello& hello,
                                       size_t max_frame_bytes) {
  util::StatusOr<int> fd = ConnectTo(host, port);
  if (!fd.ok()) return fd.status();
  Client client(*fd, max_frame_bytes);

  util::StatusOr<std::string> credential = hello.Serialize();
  if (!credential.ok()) return credential.status();
  Request handshake;
  handshake.kind = RequestKind::kHello;
  handshake.args.push_back(std::move(*credential));
  util::StatusOr<Response> response = client.Call(handshake);
  if (!response.ok()) return response.status();
  if (!response->ok()) return response->ToStatus();
  return client;
}

util::StatusOr<Response> Client::Call(const Request& request) {
  if (fd_ < 0) return util::Status::FailedPrecondition("client closed");
  util::StatusOr<std::vector<uint8_t>> bytes = request.Serialize();
  if (!bytes.ok()) return bytes.status();
  CLASSMINER_RETURN_IF_ERROR(
      WriteFrame(fd_, kRequestMagic, *bytes, max_frame_));
  util::StatusOr<std::vector<uint8_t>> frame =
      ReadFrame(fd_, kResponseMagic, max_frame_);
  if (!frame.ok()) return frame.status();
  return Response::Parse(*frame);
}

util::StatusOr<std::string> Client::CallForReport(
    RequestKind kind, std::vector<std::string> args, uint32_t deadline_ms) {
  Request request;
  request.kind = kind;
  request.deadline_ms = deadline_ms;
  request.args = std::move(args);
  util::StatusOr<Response> response = Call(request);
  if (!response.ok()) return response.status();
  if (!response->ok()) return response->ToStatus();
  return std::move(response->body);
}

void Client::Close() {
  CloseFd(fd_);
  fd_ = -1;
}

// ---------------------------------------------------------------------------
// PipelinedClient

struct PipelinedClient::State {
  std::mutex mu;
  int fd = -1;
  size_t max_frame = kMaxFrameBytes;
  uint32_t next_id = 1;
  struct Inflight {
    std::promise<util::StatusOr<Response>> promise;
    std::string body;  // fragments accumulated so far
  };
  std::unordered_map<uint32_t, Inflight> inflight;
  util::Status fail = util::Status::Ok();  // sticky transport failure
  std::thread reader;

  // Fails every in-flight call; idempotent per tag.
  void FailAllLocked(const util::Status& status) {
    for (auto& [id, call] : inflight) {
      call.promise.set_value(status);
    }
    inflight.clear();
    if (fail.ok()) fail = status;
  }

  static void ReaderLoop(const std::shared_ptr<State>& state);
};

// Reassembles tagged chunk streams into whole responses until the
// connection dies, then fails whatever is still pending.
void PipelinedClient::State::ReaderLoop(
    const std::shared_ptr<State>& state) {
  for (;;) {
    uint32_t magic = 0;
    util::StatusOr<std::vector<uint8_t>> frame = ReadFrameAny(
        state->fd, {kResponseMagicV2}, state->max_frame, &magic);
    util::Status dead = util::Status::Ok();
    if (!frame.ok()) {
      dead = frame.status();
    } else {
      util::StatusOr<Response> chunk = Response::ParseChunk(*frame);
      if (!chunk.ok()) {
        dead = chunk.status();
      } else {
        std::lock_guard<std::mutex> lock(state->mu);
        auto it = state->inflight.find(chunk->request_id);
        if (it != state->inflight.end()) {  // unknown tags are dropped
          if (!chunk->final_chunk) {
            it->second.body.append(chunk->body);
          } else {
            Response whole = std::move(*chunk);
            whole.body = std::move(it->second.body) + whole.body;
            it->second.promise.set_value(std::move(whole));
            state->inflight.erase(it);
          }
        }
        continue;
      }
    }
    std::lock_guard<std::mutex> lock(state->mu);
    state->FailAllLocked(dead);
    return;
  }
}

util::StatusOr<std::unique_ptr<PipelinedClient>> PipelinedClient::Connect(
    const std::string& host, int port, const SessionHello& hello,
    size_t max_frame_bytes) {
  util::StatusOr<int> fd = ConnectTo(host, port);
  if (!fd.ok()) return fd.status();

  // Handshake synchronously, before the reader exists: one tagged hello,
  // one final chunk back. A capacity rejection arrives as a v1 frame (the
  // server answers before it knows the session's version), so accept both.
  util::StatusOr<std::string> credential = hello.Serialize();
  if (!credential.ok()) {
    CloseFd(*fd);
    return credential.status();
  }
  Request handshake;
  handshake.kind = RequestKind::kHello;
  handshake.args.push_back(std::move(*credential));
  handshake.request_id = 1;
  util::StatusOr<std::vector<uint8_t>> bytes = handshake.SerializeTagged();
  util::Status sent =
      bytes.ok() ? WriteFrame(*fd, kRequestMagicV2, *bytes, max_frame_bytes)
                 : bytes.status();
  if (!sent.ok()) {
    CloseFd(*fd);
    return sent;
  }
  uint32_t magic = 0;
  util::StatusOr<std::vector<uint8_t>> frame = ReadFrameAny(
      *fd, {kResponseMagicV2, kResponseMagic}, max_frame_bytes, &magic);
  if (!frame.ok()) {
    CloseFd(*fd);
    return frame.status();
  }
  util::StatusOr<Response> response = magic == kResponseMagicV2
                                          ? Response::ParseChunk(*frame)
                                          : Response::Parse(*frame);
  if (!response.ok()) {
    CloseFd(*fd);
    return response.status();
  }
  if (!response->ok()) {
    CloseFd(*fd);
    return response->ToStatus();
  }

  auto client = std::unique_ptr<PipelinedClient>(new PipelinedClient());
  client->state_ = std::make_shared<State>();
  client->state_->fd = *fd;
  client->state_->max_frame = max_frame_bytes;
  client->state_->next_id = 2;  // 1 was the hello
  std::shared_ptr<State> state = client->state_;
  client->state_->reader =
      std::thread([state] { State::ReaderLoop(state); });
  return client;
}

PipelinedClient::~PipelinedClient() { Close(); }

std::future<util::StatusOr<Response>> PipelinedClient::AsyncCall(
    Request request) {
  std::promise<util::StatusOr<Response>> failed;
  std::future<util::StatusOr<Response>> future = failed.get_future();
  if (state_ == nullptr) {
    failed.set_value(util::Status::FailedPrecondition("client closed"));
    return future;
  }
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->fd < 0 || !state_->fail.ok()) {
    failed.set_value(state_->fail.ok()
                         ? util::Status::FailedPrecondition("client closed")
                         : state_->fail);
    return future;
  }
  request.request_id = state_->next_id++;
  util::StatusOr<std::vector<uint8_t>> bytes = request.SerializeTagged();
  if (!bytes.ok()) {
    failed.set_value(bytes.status());
    return future;
  }
  // Register before sending: the response may race the send returning.
  State::Inflight& call = state_->inflight[request.request_id];
  future = call.promise.get_future();
  const util::Status sent =
      WriteFrame(state_->fd, kRequestMagicV2, *bytes, state_->max_frame);
  if (!sent.ok()) {
    call.promise.set_value(sent);
    state_->inflight.erase(request.request_id);
  }
  return future;
}

util::StatusOr<Response> PipelinedClient::Call(const Request& request) {
  return AsyncCall(request).get();
}

util::StatusOr<std::string> PipelinedClient::CallForReport(
    RequestKind kind, std::vector<std::string> args, uint32_t deadline_ms) {
  Request request;
  request.kind = kind;
  request.deadline_ms = deadline_ms;
  request.args = std::move(args);
  util::StatusOr<Response> response = Call(request);
  if (!response.ok()) return response.status();
  if (!response->ok()) return response->ToStatus();
  return std::move(response->body);
}

void PipelinedClient::Close() {
  if (state_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->fd >= 0) {
      // Wakes the reader out of its blocking read; it fails any remaining
      // in-flight calls on the way out.
      shutdown(state_->fd, SHUT_RDWR);
    }
  }
  if (state_->reader.joinable()) state_->reader.join();
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->FailAllLocked(util::Status::Unavailable("client closed"));
  CloseFd(state_->fd);
  state_->fd = -1;
}

bool PipelinedClient::connected() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->fd >= 0 && state_->fail.ok();
}

}  // namespace classminer::server

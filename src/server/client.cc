#include "server/client.h"

#include <sys/socket.h>

#include <cstdio>
#include <functional>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "server/wire.h"

namespace classminer::server {

util::StatusOr<Client> Client::Connect(const std::string& host, int port,
                                       const SessionHello& hello,
                                       size_t max_frame_bytes) {
  util::StatusOr<int> fd = ConnectTo(host, port);
  if (!fd.ok()) return fd.status();
  Client client(*fd, max_frame_bytes);

  util::StatusOr<std::string> credential = hello.Serialize();
  if (!credential.ok()) return credential.status();
  Request handshake;
  handshake.kind = RequestKind::kHello;
  handshake.args.push_back(std::move(*credential));
  util::StatusOr<Response> response = client.Call(handshake);
  if (!response.ok()) return response.status();
  if (!response->ok()) return response->ToStatus();
  return client;
}

util::StatusOr<Response> Client::Call(const Request& request) {
  if (fd_ < 0) return util::Status::FailedPrecondition("client closed");
  util::StatusOr<std::vector<uint8_t>> bytes = request.Serialize();
  if (!bytes.ok()) return bytes.status();
  CLASSMINER_RETURN_IF_ERROR(
      WriteFrame(fd_, kRequestMagic, *bytes, max_frame_));
  util::StatusOr<std::vector<uint8_t>> frame =
      ReadFrame(fd_, kResponseMagic, max_frame_);
  if (!frame.ok()) return frame.status();
  return Response::Parse(*frame);
}

util::StatusOr<std::string> Client::CallForReport(
    RequestKind kind, std::vector<std::string> args, uint32_t deadline_ms) {
  Request request;
  request.kind = kind;
  request.deadline_ms = deadline_ms;
  request.args = std::move(args);
  util::StatusOr<Response> response = Call(request);
  if (!response.ok()) return response.status();
  if (!response->ok()) return response->ToStatus();
  return std::move(response->body);
}

void Client::Close() {
  CloseFd(fd_);
  fd_ = -1;
}

// ---------------------------------------------------------------------------
// PipelinedClient

struct PipelinedClient::State {
  std::mutex mu;
  int fd = -1;
  size_t max_frame = kMaxFrameBytes;
  uint32_t next_id = 1;
  struct Inflight {
    std::promise<util::StatusOr<Response>> promise;
    std::string body;  // fragments accumulated so far
  };
  std::unordered_map<uint32_t, Inflight> inflight;
  util::Status fail = util::Status::Ok();  // sticky transport failure
  std::thread reader;

  // Fails every in-flight call; idempotent per tag.
  void FailAllLocked(const util::Status& status) {
    for (auto& [id, call] : inflight) {
      call.promise.set_value(status);
    }
    inflight.clear();
    if (fail.ok()) fail = status;
  }

  static void ReaderLoop(const std::shared_ptr<State>& state);
};

// Reassembles tagged chunk streams into whole responses until the
// connection dies, then fails whatever is still pending.
void PipelinedClient::State::ReaderLoop(
    const std::shared_ptr<State>& state) {
  for (;;) {
    uint32_t magic = 0;
    util::StatusOr<std::vector<uint8_t>> frame = ReadFrameAny(
        state->fd, {kResponseMagicV2}, state->max_frame, &magic);
    util::Status dead = util::Status::Ok();
    if (!frame.ok()) {
      dead = frame.status();
    } else {
      util::StatusOr<Response> chunk = Response::ParseChunk(*frame);
      if (!chunk.ok()) {
        dead = chunk.status();
      } else {
        std::lock_guard<std::mutex> lock(state->mu);
        auto it = state->inflight.find(chunk->request_id);
        if (it != state->inflight.end()) {  // unknown tags are dropped
          if (!chunk->final_chunk) {
            it->second.body.append(chunk->body);
          } else {
            Response whole = std::move(*chunk);
            whole.body = std::move(it->second.body) + whole.body;
            it->second.promise.set_value(std::move(whole));
            state->inflight.erase(it);
          }
        }
        continue;
      }
    }
    std::lock_guard<std::mutex> lock(state->mu);
    state->FailAllLocked(dead);
    return;
  }
}

util::StatusOr<std::unique_ptr<PipelinedClient>> PipelinedClient::Connect(
    const std::string& host, int port, const SessionHello& hello,
    size_t max_frame_bytes) {
  util::StatusOr<int> fd = ConnectTo(host, port);
  if (!fd.ok()) return fd.status();

  // Handshake synchronously, before the reader exists: one tagged hello,
  // one final chunk back. A capacity rejection arrives as a v1 frame (the
  // server answers before it knows the session's version), so accept both.
  util::StatusOr<std::string> credential = hello.Serialize();
  if (!credential.ok()) {
    CloseFd(*fd);
    return credential.status();
  }
  Request handshake;
  handshake.kind = RequestKind::kHello;
  handshake.args.push_back(std::move(*credential));
  handshake.request_id = 1;
  util::StatusOr<std::vector<uint8_t>> bytes = handshake.SerializeTagged();
  util::Status sent =
      bytes.ok() ? WriteFrame(*fd, kRequestMagicV2, *bytes, max_frame_bytes)
                 : bytes.status();
  if (!sent.ok()) {
    CloseFd(*fd);
    return sent;
  }
  uint32_t magic = 0;
  util::StatusOr<std::vector<uint8_t>> frame = ReadFrameAny(
      *fd, {kResponseMagicV2, kResponseMagic}, max_frame_bytes, &magic);
  if (!frame.ok()) {
    CloseFd(*fd);
    return frame.status();
  }
  util::StatusOr<Response> response = magic == kResponseMagicV2
                                          ? Response::ParseChunk(*frame)
                                          : Response::Parse(*frame);
  if (!response.ok()) {
    CloseFd(*fd);
    return response.status();
  }
  if (!response->ok()) {
    CloseFd(*fd);
    return response->ToStatus();
  }

  auto client = std::unique_ptr<PipelinedClient>(new PipelinedClient());
  client->state_ = std::make_shared<State>();
  client->state_->fd = *fd;
  client->state_->max_frame = max_frame_bytes;
  client->state_->next_id = 2;  // 1 was the hello
  std::shared_ptr<State> state = client->state_;
  client->state_->reader =
      std::thread([state] { State::ReaderLoop(state); });
  return client;
}

PipelinedClient::~PipelinedClient() { Close(); }

std::future<util::StatusOr<Response>> PipelinedClient::AsyncCall(
    Request request) {
  std::promise<util::StatusOr<Response>> failed;
  std::future<util::StatusOr<Response>> future = failed.get_future();
  if (state_ == nullptr) {
    failed.set_value(util::Status::FailedPrecondition("client closed"));
    return future;
  }
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->fd < 0 || !state_->fail.ok()) {
    failed.set_value(state_->fail.ok()
                         ? util::Status::FailedPrecondition("client closed")
                         : state_->fail);
    return future;
  }
  request.request_id = state_->next_id++;
  util::StatusOr<std::vector<uint8_t>> bytes = request.SerializeTagged();
  if (!bytes.ok()) {
    failed.set_value(bytes.status());
    return future;
  }
  // Register before sending: the response may race the send returning.
  State::Inflight& call = state_->inflight[request.request_id];
  future = call.promise.get_future();
  const util::Status sent =
      WriteFrame(state_->fd, kRequestMagicV2, *bytes, state_->max_frame);
  if (!sent.ok()) {
    call.promise.set_value(sent);
    state_->inflight.erase(request.request_id);
  }
  return future;
}

util::StatusOr<Response> PipelinedClient::Call(const Request& request) {
  return AsyncCall(request).get();
}

util::StatusOr<std::string> PipelinedClient::CallForReport(
    RequestKind kind, std::vector<std::string> args, uint32_t deadline_ms) {
  Request request;
  request.kind = kind;
  request.deadline_ms = deadline_ms;
  request.args = std::move(args);
  util::StatusOr<Response> response = Call(request);
  if (!response.ok()) return response.status();
  if (!response->ok()) return response->ToStatus();
  return std::move(response->body);
}

void PipelinedClient::Close() {
  if (state_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->fd >= 0) {
      // Wakes the reader out of its blocking read; it fails any remaining
      // in-flight calls on the way out.
      shutdown(state_->fd, SHUT_RDWR);
    }
  }
  if (state_->reader.joinable()) state_->reader.join();
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->FailAllLocked(util::Status::Unavailable("client closed"));
  CloseFd(state_->fd);
  state_->fd = -1;
}

bool PipelinedClient::connected() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->fd >= 0 && state_->fail.ok();
}

// ---------------------------------------------------------------------------
// ResilientClient

namespace {

// Kinds whose calls are stamped with idempotency keys. Hello is handled by
// the session layer; health is a liveness probe whose answer must never be
// a replay of an older one.
bool WantsIdempotencyKey(RequestKind kind) {
  switch (kind) {
    case RequestKind::kMine:
    case RequestKind::kBrowse:
    case RequestKind::kSkim:
    case RequestKind::kVerify:
    case RequestKind::kRepair:
      return true;
    case RequestKind::kHello:
    case RequestKind::kHealth:
      return false;
  }
  return false;
}

}  // namespace

ResilientClient::ResilientClient(Options options)
    : options_(std::move(options)), nonce_(options_.session_nonce) {
  if (nonce_ == 0) {
    std::random_device rd;
    nonce_ = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    if (nonce_ == 0) nonce_ = 1;
  }
}

ResilientClient::~ResilientClient() { Close(); }

std::string ResilientClient::NextIdempotencyKey(const Request& request) {
  // Canonical request fingerprint: the identity fields the server keys its
  // result cache on (kind · deadline · args) hashed for brevity. The
  // nonce+sequence pair already makes the key unique per logical call; the
  // fingerprint ties it to the request's content for debuggability.
  std::string canon = RequestKindName(request.kind);
  canon += '\x1f';
  canon += std::to_string(request.deadline_ms);
  for (const std::string& arg : request.args) {
    canon += '\x1f';
    canon += arg;
  }
  const uint64_t digest = std::hash<std::string>{}(canon);
  char key[64];
  std::snprintf(key, sizeof(key), "rc1-%016llx-%llu-%016llx",
                static_cast<unsigned long long>(nonce_),
                static_cast<unsigned long long>(
                    seq_.fetch_add(1, std::memory_order_relaxed)),
                static_cast<unsigned long long>(digest));
  return key;
}

util::StatusOr<std::shared_ptr<PipelinedClient>>
ResilientClient::EnsureConnected() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return util::Status::FailedPrecondition("client closed");
  if (conn_ != nullptr && conn_->connected()) return conn_;
  conn_.reset();
  util::StatusOr<std::unique_ptr<PipelinedClient>> dialed =
      PipelinedClient::Connect(options_.host, options_.port, options_.hello,
                               options_.max_frame_bytes);
  if (!dialed.ok()) return dialed.status();
  conn_ = std::shared_ptr<PipelinedClient>(std::move(*dialed));
  ++stats_.dials;
  return conn_;
}

void ResilientClient::Invalidate(
    const std::shared_ptr<PipelinedClient>& conn) {
  std::shared_ptr<PipelinedClient> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn_ == conn) dead = std::move(conn_);
  }
  // `dead` (if any) destroys outside the lock: ~PipelinedClient joins the
  // reader thread, which must not happen under mu_.
}

util::StatusOr<Response> ResilientClient::Call(Request request) {
  if (request.idempotency_key.empty() && WantsIdempotencyKey(request.kind)) {
    request.idempotency_key = NextIdempotencyKey(request);
  }
  util::StatusOr<Response> result =
      util::Status::Unavailable("never attempted");
  util::RetryOptions retry = options_.retry;
  retry.on_retry = [this](int, const util::Status&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.resumed_calls;
  };
  const util::Status status = util::Retry(retry, [&]() -> util::Status {
    util::StatusOr<std::shared_ptr<PipelinedClient>> conn = EnsureConnected();
    if (!conn.ok()) {
      // A dial can also die to a torn hello response; same rule as below —
      // transport damage on a resumable client is a transient condition.
      if (conn.status().code() == util::StatusCode::kDataLoss) {
        return util::Status::Unavailable("transport damaged: " +
                                         conn.status().message());
      }
      return conn.status();
    }
    result = (*conn)->Call(request);
    if (!result.ok()) {
      // Transport-level failure: this session is broken (or the server hung
      // up on it); drop it so the next attempt redials. A torn frame
      // surfaces as kDataLoss — for a resumable client that is the same
      // event as a hangup (the transport is dead either way), so map it to
      // the transient code the backoff schedule retries.
      Invalidate(*conn);
      if (result.status().code() == util::StatusCode::kDataLoss) {
        return util::Status::Unavailable("transport damaged: " +
                                         result.status().message());
      }
      return result.status();
    }
    // kUnavailable in a *response* rides a healthy connection — admission
    // control shedding load. Back off and re-offer; the server's
    // idempotency record was released (never executed), so the retry runs
    // for real.
    if (result->code == util::StatusCode::kUnavailable) {
      return result->ToStatus();
    }
    return util::Status::Ok();
  });
  // A final kUnavailable *response* still reaches the caller whole (body
  // and message intact); bare statuses mean we never got an answer.
  if (result.ok()) return result;
  return status;
}

util::StatusOr<std::string> ResilientClient::CallForReport(
    RequestKind kind, std::vector<std::string> args, uint32_t deadline_ms) {
  Request request;
  request.kind = kind;
  request.deadline_ms = deadline_ms;
  request.args = std::move(args);
  util::StatusOr<Response> response = Call(std::move(request));
  if (!response.ok()) return response.status();
  if (!response->ok()) return response->ToStatus();
  return std::move(response->body);
}

void ResilientClient::Close() {
  std::shared_ptr<PipelinedClient> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    dead = std::move(conn_);
  }
}

bool ResilientClient::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !closed_ && conn_ != nullptr && conn_->connected();
}

ResilientClient::Stats ResilientClient::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace classminer::server

#include "server/client.h"

#include <utility>
#include <vector>

#include "server/wire.h"

namespace classminer::server {

util::StatusOr<Client> Client::Connect(const std::string& host, int port,
                                       const SessionHello& hello,
                                       size_t max_frame_bytes) {
  util::StatusOr<int> fd = ConnectTo(host, port);
  if (!fd.ok()) return fd.status();
  Client client(*fd, max_frame_bytes);

  util::StatusOr<std::string> credential = hello.Serialize();
  if (!credential.ok()) return credential.status();
  Request handshake;
  handshake.kind = RequestKind::kHello;
  handshake.args.push_back(std::move(*credential));
  util::StatusOr<Response> response = client.Call(handshake);
  if (!response.ok()) return response.status();
  if (!response->ok()) return response->ToStatus();
  return client;
}

util::StatusOr<Response> Client::Call(const Request& request) {
  if (fd_ < 0) return util::Status::FailedPrecondition("client closed");
  util::StatusOr<std::vector<uint8_t>> bytes = request.Serialize();
  if (!bytes.ok()) return bytes.status();
  CLASSMINER_RETURN_IF_ERROR(
      WriteFrame(fd_, kRequestMagic, *bytes, max_frame_));
  util::StatusOr<std::vector<uint8_t>> frame =
      ReadFrame(fd_, kResponseMagic, max_frame_);
  if (!frame.ok()) return frame.status();
  return Response::Parse(*frame);
}

util::StatusOr<std::string> Client::CallForReport(
    RequestKind kind, std::vector<std::string> args, uint32_t deadline_ms) {
  Request request;
  request.kind = kind;
  request.deadline_ms = deadline_ms;
  request.args = std::move(args);
  util::StatusOr<Response> response = Call(request);
  if (!response.ok()) return response.status();
  if (!response->ok()) return response->ToStatus();
  return std::move(response->body);
}

void Client::Close() {
  CloseFd(fd_);
  fd_ = -1;
}

}  // namespace classminer::server

#ifndef CLASSMINER_SERVER_SERVER_H_
#define CLASSMINER_SERVER_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/classminer.h"
#include "index/concept.h"
#include "server/ops.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/scrubber.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/threadpool.h"

namespace classminer::server {

// classminerd — the mining daemon, built as a readiness-driven reactor.
//
// One reactor thread owns every socket: it accepts, assembles request
// frames from partial reads on non-blocking fds (epoll when available,
// poll otherwise), and drains per-connection write queues when sockets
// become writable. Operations execute on a shared util::ThreadPool; workers
// never touch a socket — they hand responses (and streamed report chunks)
// back to the reactor through an event queue. The thread footprint is fixed
// regardless of connection count: reactor + worker pool + deadline monitor,
// zero per-connection threads — thousands of idle sessions cost file
// descriptors, not stacks.
//
// Sessions speak either protocol version (server/protocol.h): v1 requests
// are answered serially in arrival order, exactly as the thread-per-
// connection daemon did; v2 requests carry a request_id tag, pipeline up to
// max_pipeline deep per session, complete out of order, and large reports
// stream back as tagged chunks while the op is still running. Per-
// connection write-queue memory is bounded: the worker's next chunk waits
// until the peer drains the socket (slow readers stall only their own op),
// and reactor-side chunking of large finished bodies defers until the
// queue has room.
//
// Mining-backed requests (mine, skim) share a single-flight result cache
// keyed by (container identity, canonical options): N sessions asking for
// the same run cost one pipeline execution, and a cache hit is byte-
// identical to a fresh run. Browse bypasses the cache (its report depends
// on the session's credential); verify/repair touch database files and
// always execute.
//
// Each connection opens with a kHello handshake binding an
// index::UserCredential; every later request is checked against it
// (clearance per request kind, denied subtrees through the browse tree)
// before it runs. Admission control bounds the number of requests queued
// behind the workers — past the bound a request is answered kUnavailable
// immediately, which util::Retry treats as transient. A request-level
// deadline cancels the run cooperatively and answers kDeadlineExceeded.
//
// Stop() drains gracefully: the listener closes, no further requests are
// read, every in-flight request finishes and flushes its response, and all
// threads are joined before Stop returns.
struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 picks an ephemeral port; see ClassMinerServer::port()
  int backlog = 64;
  int worker_threads = 4;      // execution pool size
  int max_queue = 16;          // admission bound: requests queued, not running
  int max_connections = 1024;  // concurrent sessions (idle ones are cheap)
  size_t max_frame_bytes = kMaxFrameBytes;

  // v2 pipelining depth per session: requests in flight beyond this stay
  // buffered until one completes (v1 sessions are always depth 1).
  int max_pipeline = 32;
  // Streamed-response fragment size: v2 report bodies ship in chunks of
  // this many bytes.
  size_t stream_chunk_bytes = 64u << 10;
  // Per-connection write-queue bound. Past it, ops streaming to that
  // session block (backpressure) and reactor-side body chunking defers
  // until the peer drains the socket.
  size_t max_write_queue_bytes = 256u << 10;

  // Single-flight mining-result cache (mine/skim). Disabled, every request
  // runs its own pipeline, matching the pre-cache daemon.
  bool enable_result_cache = true;
  size_t cache_max_bytes = 64u << 20;
  size_t cache_max_entries = 256;

  // Per-connection idle timeout: a session with nothing in flight and no
  // wire activity (including a slow-loris peer parked on half a frame
  // header) for this long is closed by the deadline-monitor thread.
  // 0 disables the reaper — idle sessions then cost a file descriptor
  // forever, exactly the pre-timeout daemon.
  int idle_timeout_ms = 0;

  // Per-session protocol-error budget: after this many inline-answered
  // protocol errors (unparseable requests, duplicate request_ids) the
  // session stops being read and closes once its owed responses flush.
  // A peer that keeps sending damage gets a clean goodbye, not a wedge.
  int max_session_errors = 8;

  // Idempotent-retry record (v2 sessions): keyed request outcomes are
  // remembered so a client that reconnects after a dropped connection and
  // resends the same key observes the original execution instead of
  // running the work again (at-most-once for repair). Bounded LRU; an
  // evicted record simply lets the retry re-execute.
  size_t idem_cache_max_bytes = 16u << 20;
  size_t idem_cache_max_entries = 1024;

  // Background integrity scrubber: periodically verify `scrub_db_path` and
  // re-mine-repair it when dirty, yielding to client traffic (see
  // server/scrubber.h). Disabled unless both are set.
  std::string scrub_db_path;
  int scrub_interval_ms = 0;
  int scrub_max_yield_ms = 2000;
  // Fold dead records out of a sharded scrub database after clean passes
  // (ScrubberOptions::compact_logs).
  bool scrub_compact = false;

  // Base environment for every operation; the per-request cancellation
  // token overrides `mining.cancel`.
  core::MiningOptions mining;
  std::string media_dir;  // where repair finds source containers

  // Clearance a session needs per request kind, indexed by RequestKind.
  // Defaults follow the paper's multilevel model: browsing and skimming are
  // open, mining needs operator clearance, verify/repair are administrative.
  // health is clearance 0 and additionally answered before the hello
  // handshake, so an unauthenticated load balancer can probe liveness.
  std::array<int, kRequestKindCount> min_clearance = {0, 1, 0, 0, 2, 3, 0};

  // Test seam: runs on the worker the moment a request begins executing
  // (after admission, before the op). Cache hits and single-flight joiners
  // never execute, so the hook does not fire for them. Lets tests hold
  // workers busy to force deterministic queue-full and deadline outcomes.
  std::function<void(RequestKind)> request_started_hook;
};

// Monotonic counters over the server's lifetime (snapshot is consistent
// per-field, not across fields). write_queue_peak_bytes is a high-water
// gauge, not a counter.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  // over max_connections
  uint64_t connections_active = 0;
  uint64_t requests_received = 0;
  uint64_t requests_admitted = 0;  // passed admission control (incl. running)
  uint64_t requests_ok = 0;        // answered kOk (executed or cache-served)
  uint64_t requests_failed = 0;    // answered non-OK (incl. op errors)
  uint64_t rejected_admission = 0;  // answered kUnavailable, never queued
  uint64_t deadline_exceeded = 0;
  uint64_t permission_denied = 0;
  // Reactor-era counters. reader_threads is the number of dedicated per-
  // connection reader threads — always 0 by construction; the field exists
  // so operational checks can assert the thread-per-connection shape never
  // returns.
  uint64_t reader_threads = 0;
  uint64_t requests_pipelined = 0;  // dispatched while the session had
                                    // other requests in flight
  uint64_t responses_streamed = 0;  // responses delivered as 2+ chunks
  uint64_t cache_hits = 0;          // answered from a stored entry
  uint64_t cache_joined = 0;        // attached to an in-flight run
  uint64_t cache_misses = 0;        // led a run (pipeline executions)
  uint64_t write_queue_peak_bytes = 0;
  // Chaos-hardening counters.
  uint64_t idle_closed = 0;        // sessions reaped by the idle timeout
  uint64_t protocol_errors = 0;    // inline protocol-error answers
  uint64_t error_budget_closed = 0;  // sessions closed for repeat damage
  uint64_t duplicate_request_ids = 0;  // v2 request_id collisions rejected
  uint64_t idempotent_hits = 0;    // keyed retries answered from the record
  uint64_t idempotent_joined = 0;  // keyed retries joined to the original
  // Scrubber mirror (see server/scrubber.h).
  uint64_t scrub_passes = 0;
  uint64_t scrub_dirty = 0;
  uint64_t scrub_repairs = 0;
  uint64_t scrub_repair_failures = 0;
  uint64_t scrub_compactions = 0;
  uint64_t scrub_dead_dropped = 0;
};

class ClassMinerServer {
 public:
  explicit ClassMinerServer(ServerOptions options);
  ~ClassMinerServer();

  ClassMinerServer(const ClassMinerServer&) = delete;
  ClassMinerServer& operator=(const ClassMinerServer&) = delete;

  // Binds, listens and spawns the reactor. Fails without side effects
  // (no thread runs) when the socket cannot be bound.
  util::Status Start();

  // Graceful shutdown: stops accepting, stops reading, finishes in-flight
  // requests and flushes their responses, joins all threads. Idempotent;
  // also runs from the destructor.
  void Stop();

  // The port actually bound (useful with port = 0). -1 before Start().
  int port() const { return port_; }

  ServerStats StatsSnapshot() const;

 private:
  struct Connection;   // reactor-owned per-session state machine
  struct ConnShared;   // the slice workers may touch (backpressure)
  struct TaskCtx;      // everything a pool task needs, detached from conn
  class Poller;        // epoll with poll fallback

  // One parsed-but-not-dispatched request (or a pre-answered parse error
  // held in line so v1 ordering survives pipelined arrival).
  struct PendingRequest {
    bool v2 = false;
    Request request;
    bool inline_error = false;
    Response error;  // when inline_error: answered without dispatch
    // This pending entry registered request.request_id in the session's
    // live-id set; its final response releases the id. False for v1,
    // inline errors, and duplicate-id rejections (the duplicate must not
    // free the original's id).
    bool owns_id = false;
    // Idempotency entry this request already leads (carried through a
    // cache redispatch so the request never re-joins its own entry).
    std::string idem_lead;
  };

  // Worker -> reactor handoff.
  struct WorkerEvent {
    enum class Kind {
      kChunk,       // a streamed report fragment (v2, non-final)
      kFinal,       // the op's response; body is the full report
      kRedispatch,  // single-flight leader failed; run this request anew
      kCloseIdle,   // deadline monitor: conn_id exceeded the idle timeout
    };
    Kind kind = Kind::kFinal;
    uint64_t conn_id = 0;
    bool v2 = false;
    uint32_t request_id = 0;
    Response response;          // kFinal / kChunk (fragment in body)
    size_t streamed_bytes = 0;  // kFinal: prefix already sent as chunks
    Request request;            // kRedispatch
    bool owns_id = false;       // kFinal/kRedispatch: mirrors PendingRequest
    std::string idem_lead;      // kRedispatch: idempotency lead carried over
  };

  // One requests-with-deadline record the monitor thread watches.
  struct DeadlineEntry {
    std::chrono::steady_clock::time_point deadline;
    util::CancellationToken* cancel = nullptr;
    bool done = false;
  };

  // Reactor side (all run on the reactor thread).
  void ReactorLoop();
  void HandleAccept();
  void HandleReadable(Connection* conn);
  void TryDispatch(Connection* conn);
  void DispatchRequest(Connection* conn, PendingRequest&& pending);
  // Queues an inline protocol-error answer, charging the session's error
  // budget (read side closes once the budget is spent).
  void PushInlineError(Connection* conn, PendingRequest error);
  std::string BuildHealthReport() const;
  void EnqueueFinal(Connection* conn, bool v2, Response response,
                    size_t streamed_bytes, bool release_id = false);
  void EnqueueFrameBytes(Connection* conn, std::vector<uint8_t> frame);
  void FillStreaming(Connection* conn);
  void FlushConn(Connection* conn);
  void UpdateWriteInterest(Connection* conn);
  bool ConnDrained(const Connection& conn) const;
  void CloseConnection(uint64_t id);
  void ProcessEvents();
  void BeginDrain();

  // Worker side.
  void WorkerRun(const std::shared_ptr<TaskCtx>& ctx);
  Response ExecuteRequest(const index::UserCredential& user,
                          const Request& request, const OpEnv& env,
                          size_t* streamed_bytes);
  void PostEvent(WorkerEvent event);
  void Wake();
  void CountOutcome(const Response& response);

  std::shared_ptr<DeadlineEntry> WatchDeadline(
      std::chrono::steady_clock::time_point deadline,
      util::CancellationToken* cancel);
  void ReleaseDeadline(const std::shared_ptr<DeadlineEntry>& entry);
  void DeadlineLoop();

  ServerOptions options_;
  index::ConceptHierarchy concepts_;
  ResultCache cache_;
  ResultCache idem_cache_;  // keyed request outcomes (reconnect-and-resume)
  std::unique_ptr<IntegrityScrubber> scrubber_;

  int listen_fd_ = -1;
  int port_ = -1;
  int wake_fds_[2] = {-1, -1};  // [0] read end polled by the reactor
  std::atomic<bool> stopping_{false};
  std::thread reactor_thread_;
  std::unique_ptr<Poller> poller_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::atomic<int> queued_{0};  // admitted but not yet executing
  std::atomic<int> busy_workers_{0};  // requests currently executing

  // Deadline-thread view of per-connection activity for the idle reaper:
  // conn id -> shared slice holding the last-activity stamp. Reactor
  // inserts on accept, erases on close; the monitor only reads stamps and
  // posts kCloseIdle events — the reactor re-checks before closing.
  std::mutex idle_mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<ConnShared>> idle_watch_;

  // Reactor-thread-only session table (tag 0 = listener, 1 = wake pipe).
  uint64_t next_conn_id_ = 2;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  bool draining_ = false;  // Stop() observed; no more reads/accepts

  std::mutex event_mutex_;
  std::deque<WorkerEvent> events_;

  std::mutex deadline_mutex_;
  std::condition_variable deadline_cv_;
  std::vector<std::shared_ptr<DeadlineEntry>> deadlines_;
  std::thread deadline_thread_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_SERVER_H_

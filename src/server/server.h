#ifndef CLASSMINER_SERVER_SERVER_H_
#define CLASSMINER_SERVER_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/classminer.h"
#include "index/concept.h"
#include "server/ops.h"
#include "server/protocol.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/threadpool.h"

namespace classminer::server {

// classminerd — the mining daemon. One TCP listener; one reader thread per
// connection; execution dispatched onto a shared util::ThreadPool. Each
// connection opens with a kHello handshake binding an
// index::UserCredential; every later request is checked against it
// (clearance per request kind, denied subtrees through the browse tree)
// before it runs. Admission control bounds the number of requests queued
// behind the workers — past the bound a request is answered kUnavailable
// immediately, which util::Retry treats as transient. A request-level
// deadline cancels the run cooperatively and answers kDeadlineExceeded.
//
// Stop() drains gracefully: the listener closes, every connection's read
// side is shut down (the in-flight request still writes its response), and
// all threads are joined before Stop returns.
struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 picks an ephemeral port; see ClassMinerServer::port()
  int backlog = 64;
  int worker_threads = 4;    // execution pool size
  int max_queue = 16;        // admission bound: requests queued, not running
  int max_connections = 64;  // concurrent sessions
  size_t max_frame_bytes = kMaxFrameBytes;

  // Base environment for every operation; the per-request cancellation
  // token overrides `mining.cancel`.
  core::MiningOptions mining;
  std::string media_dir;  // where repair finds source containers

  // Clearance a session needs per request kind, indexed by RequestKind.
  // Defaults follow the paper's multilevel model: browsing and skimming are
  // open, mining needs operator clearance, verify/repair are administrative.
  std::array<int, kRequestKindCount> min_clearance = {0, 1, 0, 0, 2, 3};

  // Test seam: runs on the worker the moment a request begins executing
  // (after admission, before the op). Lets tests hold workers busy to force
  // deterministic queue-full and deadline outcomes.
  std::function<void(RequestKind)> request_started_hook;
};

// Monotonic counters over the server's lifetime (snapshot is consistent
// per-field, not across fields).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  // over max_connections
  uint64_t connections_active = 0;
  uint64_t requests_received = 0;
  uint64_t requests_admitted = 0;  // passed admission control (incl. running)
  uint64_t requests_ok = 0;
  uint64_t requests_failed = 0;       // executed, non-OK (incl. op errors)
  uint64_t rejected_admission = 0;    // answered kUnavailable, never queued
  uint64_t deadline_exceeded = 0;
  uint64_t permission_denied = 0;
};

class ClassMinerServer {
 public:
  explicit ClassMinerServer(ServerOptions options);
  ~ClassMinerServer();

  ClassMinerServer(const ClassMinerServer&) = delete;
  ClassMinerServer& operator=(const ClassMinerServer&) = delete;

  // Binds, listens and spawns the accept thread. Fails without side effects
  // (no thread runs) when the socket cannot be bound.
  util::Status Start();

  // Graceful shutdown: stops accepting, shuts down every connection's read
  // side so in-flight requests finish and flush their responses, joins all
  // threads. Idempotent; also runs from the destructor.
  void Stop();

  // The port actually bound (useful with port = 0). -1 before Start().
  int port() const { return port_; }

  ServerStats StatsSnapshot() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    bool authenticated = false;
    index::UserCredential user;
  };

  // One requests-with-deadline record the monitor thread watches.
  struct DeadlineEntry {
    std::chrono::steady_clock::time_point deadline;
    util::CancellationToken* cancel = nullptr;
    bool done = false;
  };

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);
  // Handles one decoded request end to end (admission, permission,
  // dispatch, deadline) and returns the response to write back.
  Response HandleRequest(Connection* conn, const Request& request);
  // The operation itself, running on a pool worker.
  Response ExecuteRequest(const Connection& conn, const Request& request,
                          util::CancellationToken* cancel);
  void DeadlineLoop();

  std::shared_ptr<DeadlineEntry> WatchDeadline(
      std::chrono::steady_clock::time_point deadline,
      util::CancellationToken* cancel);
  void ReleaseDeadline(const std::shared_ptr<DeadlineEntry>& entry);

  ServerOptions options_;
  index::ConceptHierarchy concepts_;

  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::atomic<int> queued_{0};  // admitted but not yet executing

  std::mutex conn_mutex_;
  std::list<Connection> connections_;

  std::mutex deadline_mutex_;
  std::condition_variable deadline_cv_;
  std::vector<std::shared_ptr<DeadlineEntry>> deadlines_;
  std::thread deadline_thread_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_SERVER_H_

#ifndef CLASSMINER_SERVER_SERVER_H_
#define CLASSMINER_SERVER_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/classminer.h"
#include "index/concept.h"
#include "server/ops.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/threadpool.h"

namespace classminer::server {

// classminerd — the mining daemon, built as a readiness-driven reactor.
//
// One reactor thread owns every socket: it accepts, assembles request
// frames from partial reads on non-blocking fds (epoll when available,
// poll otherwise), and drains per-connection write queues when sockets
// become writable. Operations execute on a shared util::ThreadPool; workers
// never touch a socket — they hand responses (and streamed report chunks)
// back to the reactor through an event queue. The thread footprint is fixed
// regardless of connection count: reactor + worker pool + deadline monitor,
// zero per-connection threads — thousands of idle sessions cost file
// descriptors, not stacks.
//
// Sessions speak either protocol version (server/protocol.h): v1 requests
// are answered serially in arrival order, exactly as the thread-per-
// connection daemon did; v2 requests carry a request_id tag, pipeline up to
// max_pipeline deep per session, complete out of order, and large reports
// stream back as tagged chunks while the op is still running. Per-
// connection write-queue memory is bounded: the worker's next chunk waits
// until the peer drains the socket (slow readers stall only their own op),
// and reactor-side chunking of large finished bodies defers until the
// queue has room.
//
// Mining-backed requests (mine, skim) share a single-flight result cache
// keyed by (container identity, canonical options): N sessions asking for
// the same run cost one pipeline execution, and a cache hit is byte-
// identical to a fresh run. Browse bypasses the cache (its report depends
// on the session's credential); verify/repair touch database files and
// always execute.
//
// Each connection opens with a kHello handshake binding an
// index::UserCredential; every later request is checked against it
// (clearance per request kind, denied subtrees through the browse tree)
// before it runs. Admission control bounds the number of requests queued
// behind the workers — past the bound a request is answered kUnavailable
// immediately, which util::Retry treats as transient. A request-level
// deadline cancels the run cooperatively and answers kDeadlineExceeded.
//
// Stop() drains gracefully: the listener closes, no further requests are
// read, every in-flight request finishes and flushes its response, and all
// threads are joined before Stop returns.
struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 picks an ephemeral port; see ClassMinerServer::port()
  int backlog = 64;
  int worker_threads = 4;      // execution pool size
  int max_queue = 16;          // admission bound: requests queued, not running
  int max_connections = 1024;  // concurrent sessions (idle ones are cheap)
  size_t max_frame_bytes = kMaxFrameBytes;

  // v2 pipelining depth per session: requests in flight beyond this stay
  // buffered until one completes (v1 sessions are always depth 1).
  int max_pipeline = 32;
  // Streamed-response fragment size: v2 report bodies ship in chunks of
  // this many bytes.
  size_t stream_chunk_bytes = 64u << 10;
  // Per-connection write-queue bound. Past it, ops streaming to that
  // session block (backpressure) and reactor-side body chunking defers
  // until the peer drains the socket.
  size_t max_write_queue_bytes = 256u << 10;

  // Single-flight mining-result cache (mine/skim). Disabled, every request
  // runs its own pipeline, matching the pre-cache daemon.
  bool enable_result_cache = true;
  size_t cache_max_bytes = 64u << 20;
  size_t cache_max_entries = 256;

  // Base environment for every operation; the per-request cancellation
  // token overrides `mining.cancel`.
  core::MiningOptions mining;
  std::string media_dir;  // where repair finds source containers

  // Clearance a session needs per request kind, indexed by RequestKind.
  // Defaults follow the paper's multilevel model: browsing and skimming are
  // open, mining needs operator clearance, verify/repair are administrative.
  std::array<int, kRequestKindCount> min_clearance = {0, 1, 0, 0, 2, 3};

  // Test seam: runs on the worker the moment a request begins executing
  // (after admission, before the op). Cache hits and single-flight joiners
  // never execute, so the hook does not fire for them. Lets tests hold
  // workers busy to force deterministic queue-full and deadline outcomes.
  std::function<void(RequestKind)> request_started_hook;
};

// Monotonic counters over the server's lifetime (snapshot is consistent
// per-field, not across fields). write_queue_peak_bytes is a high-water
// gauge, not a counter.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  // over max_connections
  uint64_t connections_active = 0;
  uint64_t requests_received = 0;
  uint64_t requests_admitted = 0;  // passed admission control (incl. running)
  uint64_t requests_ok = 0;        // answered kOk (executed or cache-served)
  uint64_t requests_failed = 0;    // answered non-OK (incl. op errors)
  uint64_t rejected_admission = 0;  // answered kUnavailable, never queued
  uint64_t deadline_exceeded = 0;
  uint64_t permission_denied = 0;
  // Reactor-era counters. reader_threads is the number of dedicated per-
  // connection reader threads — always 0 by construction; the field exists
  // so operational checks can assert the thread-per-connection shape never
  // returns.
  uint64_t reader_threads = 0;
  uint64_t requests_pipelined = 0;  // dispatched while the session had
                                    // other requests in flight
  uint64_t responses_streamed = 0;  // responses delivered as 2+ chunks
  uint64_t cache_hits = 0;          // answered from a stored entry
  uint64_t cache_joined = 0;        // attached to an in-flight run
  uint64_t cache_misses = 0;        // led a run (pipeline executions)
  uint64_t write_queue_peak_bytes = 0;
};

class ClassMinerServer {
 public:
  explicit ClassMinerServer(ServerOptions options);
  ~ClassMinerServer();

  ClassMinerServer(const ClassMinerServer&) = delete;
  ClassMinerServer& operator=(const ClassMinerServer&) = delete;

  // Binds, listens and spawns the reactor. Fails without side effects
  // (no thread runs) when the socket cannot be bound.
  util::Status Start();

  // Graceful shutdown: stops accepting, stops reading, finishes in-flight
  // requests and flushes their responses, joins all threads. Idempotent;
  // also runs from the destructor.
  void Stop();

  // The port actually bound (useful with port = 0). -1 before Start().
  int port() const { return port_; }

  ServerStats StatsSnapshot() const;

 private:
  struct Connection;   // reactor-owned per-session state machine
  struct ConnShared;   // the slice workers may touch (backpressure)
  struct TaskCtx;      // everything a pool task needs, detached from conn
  class Poller;        // epoll with poll fallback

  // One parsed-but-not-dispatched request (or a pre-answered parse error
  // held in line so v1 ordering survives pipelined arrival).
  struct PendingRequest {
    bool v2 = false;
    Request request;
    bool inline_error = false;
    Response error;  // when inline_error: answered without dispatch
  };

  // Worker -> reactor handoff.
  struct WorkerEvent {
    enum class Kind {
      kChunk,       // a streamed report fragment (v2, non-final)
      kFinal,       // the op's response; body is the full report
      kRedispatch,  // single-flight leader failed; run this request anew
    };
    Kind kind = Kind::kFinal;
    uint64_t conn_id = 0;
    bool v2 = false;
    uint32_t request_id = 0;
    Response response;          // kFinal / kChunk (fragment in body)
    size_t streamed_bytes = 0;  // kFinal: prefix already sent as chunks
    Request request;            // kRedispatch
  };

  // One requests-with-deadline record the monitor thread watches.
  struct DeadlineEntry {
    std::chrono::steady_clock::time_point deadline;
    util::CancellationToken* cancel = nullptr;
    bool done = false;
  };

  // Reactor side (all run on the reactor thread).
  void ReactorLoop();
  void HandleAccept();
  void HandleReadable(Connection* conn);
  void TryDispatch(Connection* conn);
  void DispatchRequest(Connection* conn, PendingRequest&& pending);
  void EnqueueFinal(Connection* conn, bool v2, Response response,
                    size_t streamed_bytes);
  void EnqueueFrameBytes(Connection* conn, std::vector<uint8_t> frame);
  void FillStreaming(Connection* conn);
  void FlushConn(Connection* conn);
  void UpdateWriteInterest(Connection* conn);
  bool ConnDrained(const Connection& conn) const;
  void CloseConnection(uint64_t id);
  void ProcessEvents();
  void BeginDrain();

  // Worker side.
  void WorkerRun(const std::shared_ptr<TaskCtx>& ctx);
  Response ExecuteRequest(const index::UserCredential& user,
                          const Request& request, const OpEnv& env,
                          size_t* streamed_bytes);
  void PostEvent(WorkerEvent event);
  void Wake();
  void CountOutcome(const Response& response);

  std::shared_ptr<DeadlineEntry> WatchDeadline(
      std::chrono::steady_clock::time_point deadline,
      util::CancellationToken* cancel);
  void ReleaseDeadline(const std::shared_ptr<DeadlineEntry>& entry);
  void DeadlineLoop();

  ServerOptions options_;
  index::ConceptHierarchy concepts_;
  ResultCache cache_;

  int listen_fd_ = -1;
  int port_ = -1;
  int wake_fds_[2] = {-1, -1};  // [0] read end polled by the reactor
  std::atomic<bool> stopping_{false};
  std::thread reactor_thread_;
  std::unique_ptr<Poller> poller_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::atomic<int> queued_{0};  // admitted but not yet executing

  // Reactor-thread-only session table (tag 0 = listener, 1 = wake pipe).
  uint64_t next_conn_id_ = 2;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  bool draining_ = false;  // Stop() observed; no more reads/accepts

  std::mutex event_mutex_;
  std::deque<WorkerEvent> events_;

  std::mutex deadline_mutex_;
  std::condition_variable deadline_cv_;
  std::vector<std::shared_ptr<DeadlineEntry>> deadlines_;
  std::thread deadline_thread_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_SERVER_H_

#ifndef CLASSMINER_SERVER_PROTOCOL_H_
#define CLASSMINER_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/access_control.h"
#include "util/status.h"

namespace classminer::server {

// The classminerd wire protocol: length-prefixed binary frames over TCP,
// built on the same ByteWriter/ByteReader + CRC-32 idioms as the CMV/CMDB
// on-disk formats (DESIGN.md documents the full layout).
//
// Every frame is
//   u32 magic      "CMRQ" (request) or "CMRS" (response)
//   u32 body size
//   u32 CRC-32 over the body bytes
//   body
// so a torn or bit-flipped frame is detected before its body is parsed,
// exactly like a CMVE database entry.
//
// Two protocol minor versions share the frame layout and differ only in
// magic and body prefix:
//
//   v1 ("CMRQ"/"CMRS"): one request frame yields exactly one response
//   frame; requests on one connection are processed serially, in order.
//
//   v2 ("CMQ2"/"CMS2"): every request carries a client-chosen request_id
//   tag, a session may have many requests in flight (pipelining), and
//   responses carry the tag back and may complete out of order. A v2
//   response may arrive as a *sequence* of chunk frames sharing the tag:
//   zero or more non-final chunks carrying body fragments, then exactly one
//   final chunk carrying the status and the body tail. The concatenation of
//   the fragments is byte-identical to the single v1 response body for the
//   same request.
//
// A server accepts both versions on one listener (and even interleaved on
// one connection): the frame magic selects the parse.
inline constexpr uint32_t kRequestMagic = 0x51524d43;     // "CMRQ" (v1)
inline constexpr uint32_t kResponseMagic = 0x53524d43;    // "CMRS" (v1)
inline constexpr uint32_t kRequestMagicV2 = 0x32514d43;   // "CMQ2"
inline constexpr uint32_t kResponseMagicV2 = 0x32534d43;  // "CMS2"

// Upper bound on a frame body. Oversized frames are rejected before
// allocation on both sides (a hostile peer cannot make the server reserve
// gigabytes), and serializers refuse to emit one.
inline constexpr size_t kMaxFrameBytes = 64u << 20;

// What a session asks the daemon to do. kHello must be the first request
// of every connection: it binds the session's credential (the paper's
// multilevel access control, Sec. 3); every later kind is checked against
// that credential before it runs.
enum class RequestKind : uint8_t {
  kHello = 0,
  kMine = 1,
  kBrowse = 2,
  kSkim = 3,
  kVerify = 4,
  kRepair = 5,
  // Liveness/scrub probe: answered on the reactor thread, bypasses
  // admission control, requires clearance 0 and no prior hello, so load
  // balancers can probe a saturated or still-draining daemon.
  kHealth = 6,
};
inline constexpr int kRequestKindCount = 7;

// Stable lowercase name ("mine", "browse", ...).
const char* RequestKindName(RequestKind kind);
// Inverse of RequestKindName; kInvalidArgument for unknown names.
util::StatusOr<RequestKind> ParseRequestKind(const std::string& name);

// One request: the kind, an optional relative deadline (0 = none; the
// server cancels and answers kDeadlineExceeded once it elapses), and
// kind-specific string arguments:
//   hello   (none — the credential travels in the Hello body, see below)
//   mine    <path.cmv> [--fast] [--strict]
//   browse  <path.cmv> [more.cmv ...] [--strict]
//   skim    <path.cmv> [level]
//   verify  <db.cmdb>
//   repair  <db.cmdb>
struct Request {
  RequestKind kind = RequestKind::kHello;
  uint32_t deadline_ms = 0;
  std::vector<std::string> args;
  // v2 only: the pipelining tag echoed by every response chunk. Client-
  // chosen, unique among the session's in-flight requests. Not serialized
  // by the v1 layout.
  uint32_t request_id = 0;
  // v2 only: opaque retry token. A client that loses its connection mid-
  // call reconnects and resends the request with the same key; the server
  // remembers the outcome of every keyed request it executed (and joins
  // keyed requests still in flight), so the retry observes the original
  // execution instead of running the work again. Empty = not idempotent.
  // Not serialized by the v1 layout.
  std::string idempotency_key;

  // v1 body: kind u8 · deadline_ms u32 · arg_count u32 · args.
  util::StatusOr<std::vector<uint8_t>> Serialize() const;
  static util::StatusOr<Request> Parse(const std::vector<uint8_t>& bytes);

  // v2 body: request_id u32 · kind u8 · deadline_ms u32 · arg_count u32 ·
  // args · idempotency_key string.
  util::StatusOr<std::vector<uint8_t>> SerializeTagged() const;
  static util::StatusOr<Request> ParseTagged(
      const std::vector<uint8_t>& bytes);
};

// Best-effort request_id of a (possibly malformed) v2 request body, so an
// error response can still carry the tag the client is waiting on. 0 when
// the body is too short to hold one.
uint32_t PeekRequestId(const std::vector<uint8_t>& bytes);

// The session handshake payload, carried as args[0] (a binary string) of a
// kHello request: who is asking and with what clearance/denials. The server
// copies it into an index::UserCredential for every access decision the
// session makes.
struct SessionHello {
  std::string user;
  int32_t clearance = 0;
  std::vector<int32_t> denied_nodes;  // concept ids denied to this session

  util::StatusOr<std::string> Serialize() const;
  static util::StatusOr<SessionHello> Parse(const std::string& bytes);

  index::UserCredential ToCredential() const;
};

// One response: the operation's StatusCode (kOk on success; kUnavailable
// for admission-control rejection, kPermissionDenied for a clearance
// failure, kDeadlineExceeded for an elapsed deadline, the op's own code
// otherwise), its message, and the report body — byte-identical to what
// the equivalent classminer CLI invocation prints to stdout.
struct Response {
  util::StatusCode code = util::StatusCode::kOk;
  std::string message;
  std::string body;
  // v2 only: the request tag this chunk answers, and whether it is the
  // final chunk of that response. Non-final chunks carry a body fragment
  // with code kOk and an empty message; the final chunk carries the real
  // status plus the body tail. v1 responses are always final.
  uint32_t request_id = 0;
  bool final_chunk = true;

  bool ok() const { return code == util::StatusCode::kOk; }
  // Convenience: the response's status view (message included).
  util::Status ToStatus() const { return {code, message}; }

  // v1 body: code u32 · message string · body string.
  util::StatusOr<std::vector<uint8_t>> Serialize() const;
  static util::StatusOr<Response> Parse(const std::vector<uint8_t>& bytes);

  // v2 body: request_id u32 · flags u8 (bit0 = final, others reserved 0) ·
  // code u32 · message string · body string.
  util::StatusOr<std::vector<uint8_t>> SerializeChunk() const;
  static util::StatusOr<Response> ParseChunk(
      const std::vector<uint8_t>& bytes);
};

// Builds a response carrying `status` and an optional report body.
Response MakeResponse(const util::Status& status, std::string body = {});

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_PROTOCOL_H_

#ifndef CLASSMINER_SERVER_PROTOCOL_H_
#define CLASSMINER_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/access_control.h"
#include "util/status.h"

namespace classminer::server {

// The classminerd wire protocol: length-prefixed binary frames over TCP,
// built on the same ByteWriter/ByteReader + CRC-32 idioms as the CMV/CMDB
// on-disk formats (DESIGN.md documents the full layout).
//
// Every frame is
//   u32 magic      "CMRQ" (request) or "CMRS" (response)
//   u32 body size
//   u32 CRC-32 over the body bytes
//   body
// so a torn or bit-flipped frame is detected before its body is parsed,
// exactly like a CMVE database entry. One request frame yields exactly one
// response frame; requests on one connection are processed in order.
inline constexpr uint32_t kRequestMagic = 0x51524d43;   // "CMRQ"
inline constexpr uint32_t kResponseMagic = 0x53524d43;  // "CMRS"

// Upper bound on a frame body. Oversized frames are rejected before
// allocation on both sides (a hostile peer cannot make the server reserve
// gigabytes), and serializers refuse to emit one.
inline constexpr size_t kMaxFrameBytes = 64u << 20;

// What a session asks the daemon to do. kHello must be the first request
// of every connection: it binds the session's credential (the paper's
// multilevel access control, Sec. 3); every later kind is checked against
// that credential before it runs.
enum class RequestKind : uint8_t {
  kHello = 0,
  kMine = 1,
  kBrowse = 2,
  kSkim = 3,
  kVerify = 4,
  kRepair = 5,
};
inline constexpr int kRequestKindCount = 6;

// Stable lowercase name ("mine", "browse", ...).
const char* RequestKindName(RequestKind kind);
// Inverse of RequestKindName; kInvalidArgument for unknown names.
util::StatusOr<RequestKind> ParseRequestKind(const std::string& name);

// One request: the kind, an optional relative deadline (0 = none; the
// server cancels and answers kDeadlineExceeded once it elapses), and
// kind-specific string arguments:
//   hello   (none — the credential travels in the Hello body, see below)
//   mine    <path.cmv> [--fast] [--strict]
//   browse  <path.cmv> [more.cmv ...] [--strict]
//   skim    <path.cmv> [level]
//   verify  <db.cmdb>
//   repair  <db.cmdb>
struct Request {
  RequestKind kind = RequestKind::kHello;
  uint32_t deadline_ms = 0;
  std::vector<std::string> args;

  util::StatusOr<std::vector<uint8_t>> Serialize() const;
  static util::StatusOr<Request> Parse(const std::vector<uint8_t>& bytes);
};

// The session handshake payload, carried as args[0] (a binary string) of a
// kHello request: who is asking and with what clearance/denials. The server
// copies it into an index::UserCredential for every access decision the
// session makes.
struct SessionHello {
  std::string user;
  int32_t clearance = 0;
  std::vector<int32_t> denied_nodes;  // concept ids denied to this session

  util::StatusOr<std::string> Serialize() const;
  static util::StatusOr<SessionHello> Parse(const std::string& bytes);

  index::UserCredential ToCredential() const;
};

// One response: the operation's StatusCode (kOk on success; kUnavailable
// for admission-control rejection, kPermissionDenied for a clearance
// failure, kDeadlineExceeded for an elapsed deadline, the op's own code
// otherwise), its message, and the report body — byte-identical to what
// the equivalent classminer CLI invocation prints to stdout.
struct Response {
  util::StatusCode code = util::StatusCode::kOk;
  std::string message;
  std::string body;

  bool ok() const { return code == util::StatusCode::kOk; }
  // Convenience: the response's status view (message included).
  util::Status ToStatus() const { return {code, message}; }

  util::StatusOr<std::vector<uint8_t>> Serialize() const;
  static util::StatusOr<Response> Parse(const std::vector<uint8_t>& bytes);
};

// Builds a response carrying `status` and an optional report body.
Response MakeResponse(const util::Status& status, std::string body = {});

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_PROTOCOL_H_

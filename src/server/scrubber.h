#ifndef CLASSMINER_SERVER_SCRUBBER_H_
#define CLASSMINER_SERVER_SCRUBBER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "server/ops.h"
#include "util/status.h"

namespace classminer::server {

// Background integrity scrubber: the daemon-resident half of the
// verify→repair cycle the CLI runs by hand. A long-lived library rots from
// underneath a running daemon (bad media, interrupted writes from other
// tools); the scrubber notices before a client does.
//
// A single low-priority thread periodically audits the configured database
// through the same ops layer the request path uses (`VerifyOp`), and when
// the audit finds degraded or damaged entries it schedules a re-mine repair
// (`RepairOp`, sourcing pristine containers from the media dir) followed by
// a confirming re-verify. Scrub work yields to client traffic: before each
// pass the scrubber waits for the server's admission queue and workers to
// go quiet, but only up to a bounded grace period — under sustained load it
// still makes progress, it just picks polite moments when it can.
//
// The scrubber never touches sockets or server internals; the server probes
// it for counters (StatsSnapshot, the `health` request kind) and it probes
// the server for load through the `busy` callback.
struct ScrubberOptions {
  std::string db_path;    // database file to audit (empty = scrubber off)
  int interval_ms = 0;    // pause between passes (0 = scrubber off)
  // How long one pass may defer to live traffic before running anyway.
  int max_yield_ms = 2000;
  // Load probe: true while client work is queued or executing. Polled
  // between yields; null = never busy.
  std::function<bool()> busy;
  // Also fold a sharded database's append logs after each pass that left
  // the file clean: dead records (superseded upserts, tombstones) are the
  // normal exhaust of the append-only tier, and the scrubber is the
  // daemon-resident janitor that keeps them from accumulating. Shards with
  // nothing dead are skipped; monolithic databases ignore this flag.
  bool compact_logs = false;
  // Environment for the repair re-mine (mining options + media dir).
  OpEnv env;
};

// Counters over the scrubber's lifetime plus the latest pass's verdict.
// Snapshot is internally consistent (taken under one lock).
struct ScrubberStats {
  uint64_t passes = 0;           // verify sweeps completed
  uint64_t dirty_found = 0;      // sweeps whose verify came back not clean
  uint64_t repairs = 0;          // repair runs that brought verify to clean
  uint64_t repair_failures = 0;  // repair runs that left the file dirty
  bool last_clean = false;       // verdict of the most recent pass
  bool ever_ran = false;         // at least one pass has completed
  uint64_t last_degraded = 0;    // degraded entries left after the last pass
  std::string last_error;        // first integrity failure of the last pass
  // Shard-log compaction (only moves when ScrubberOptions::compact_logs is
  // set and the database is sharded).
  uint64_t compactions = 0;          // passes that folded at least one shard
  uint64_t compaction_failures = 0;  // compaction attempts that errored
  uint64_t dead_dropped = 0;         // dead records reclaimed, lifetime
};

class IntegrityScrubber {
 public:
  explicit IntegrityScrubber(ScrubberOptions options);
  ~IntegrityScrubber();

  IntegrityScrubber(const IntegrityScrubber&) = delete;
  IntegrityScrubber& operator=(const IntegrityScrubber&) = delete;

  // Spawns the scrub thread. No-op (and no thread) when the options leave
  // the scrubber disabled.
  void Start();
  // Wakes and joins the thread; idempotent, also run by the destructor.
  void Stop();

  bool enabled() const {
    return !options_.db_path.empty() && options_.interval_ms > 0;
  }

  // One synchronous verify(→repair→verify) pass; updates the counters.
  // Exposed for tests and usable whether or not the thread runs.
  void RunOnce();

  ScrubberStats StatsSnapshot() const;

 private:
  void Loop();
  // Sleeps until the server looks idle or the yield budget runs out.
  void YieldToTraffic();

  ScrubberOptions options_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;

  mutable std::mutex stats_mu_;
  ScrubberStats stats_;
};

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_SCRUBBER_H_

#include "server/scrubber.h"

#include <chrono>
#include <utility>

#include "index/persist.h"
#include "index/shard.h"

namespace classminer::server {

IntegrityScrubber::IntegrityScrubber(ScrubberOptions options)
    : options_(std::move(options)) {
  if (options_.max_yield_ms < 0) options_.max_yield_ms = 0;
}

IntegrityScrubber::~IntegrityScrubber() { Stop(); }

void IntegrityScrubber::Start() {
  if (!enabled() || thread_.joinable()) return;
  thread_ = std::thread([this] { Loop(); });
}

void IntegrityScrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

ScrubberStats IntegrityScrubber::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void IntegrityScrubber::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    YieldToTraffic();
    {
      std::lock_guard<std::mutex> guard(mu_);
      if (stopping_) return;
    }
    RunOnce();
    lock.lock();
  }
}

void IntegrityScrubber::YieldToTraffic() {
  if (!options_.busy) return;
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.max_yield_ms);
  // Polite, not starvable: back off in small slices while clients are being
  // served, but once the grace period is spent the pass runs regardless —
  // a saturated daemon still gets its library audited.
  while (options_.busy() && std::chrono::steady_clock::now() < give_up) {
    std::unique_lock<std::mutex> lock(mu_);
    if (cv_.wait_for(lock, std::chrono::milliseconds(20),
                     [this] { return stopping_; })) {
      return;
    }
  }
}

void IntegrityScrubber::RunOnce() {
  index::VerifyReport report = index::VerifyDatabaseFile(options_.db_path);
  bool clean = report.clean();
  bool repaired = false, repair_failed = false;
  std::string repair_error;
  if (!clean) {
    // Dirty (or unreadable): run the re-mine repair through the ops layer,
    // then let a confirming verify render the verdict. Repair rewrites the
    // database only when something healed, so a clean re-verify means the
    // rot is actually gone, not merely unreported.
    const OpResult repair = RepairOp(options_.db_path, options_.env, nullptr);
    if (!repair.ok()) repair_error = repair.status.message();
    report = index::VerifyDatabaseFile(options_.db_path);
    clean = report.clean();
    if (clean) {
      repaired = true;
    } else {
      repair_failed = true;
    }
  }
  std::string error;
  if (!clean) {
    error = !report.error.empty()
                ? report.error
                : (!repair_error.empty() ? repair_error
                                         : "database not clean");
  }

  // With the library clean, fold any dead records out of a sharded
  // database's append logs. Non-forced compaction skips pristine shards, so
  // a quiet daemon settles into all-skip passes that cost one parallel log
  // parse each.
  bool compacted = false, compact_failed = false;
  uint64_t dropped = 0;
  if (options_.compact_logs && clean &&
      index::IsShardedDatabasePath(options_.db_path)) {
    const util::StatusOr<
        std::vector<index::ShardedDatabase::CompactionReport>>
        folds = index::CompactDatabaseFile(options_.db_path);
    if (!folds.ok()) {
      compact_failed = true;
    } else {
      for (const index::ShardedDatabase::CompactionReport& fold : *folds) {
        if (fold.skipped) continue;
        compacted = true;
        dropped += fold.dead_dropped;
      }
    }
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.passes;
  if (repaired || repair_failed) ++stats_.dirty_found;
  if (repaired) ++stats_.repairs;
  if (repair_failed) ++stats_.repair_failures;
  stats_.last_clean = clean;
  stats_.ever_ran = true;
  stats_.last_degraded = static_cast<uint64_t>(
      report.degraded_videos > 0 ? report.degraded_videos : 0);
  stats_.last_error = std::move(error);
  if (compacted) ++stats_.compactions;
  if (compact_failed) ++stats_.compaction_failures;
  stats_.dead_dropped += dropped;
}

}  // namespace classminer::server

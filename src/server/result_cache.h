#ifndef CLASSMINER_SERVER_RESULT_CACHE_H_
#define CLASSMINER_SERVER_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/classminer.h"
#include "util/status.h"

namespace classminer::server {

// Shared mining-result cache with single-flight deduplication: N sessions
// asking classminerd to mine the same container with the same options cost
// one pipeline run. The first asker leads (runs the op and hands the result
// in), everyone who arrives while the run is in flight joins and is woken
// with the leader's bytes, and later askers hit the stored entry. A cache
// hit is byte-identical to a fresh run by construction — the entry stores
// the exact status + report the leader produced, and mining is
// deterministic for a fixed (container bytes, canonical options) pair.
//
// Keys incorporate the container's mtime and size, so touching or rewriting
// a file naturally invalidates its entries (the stale key is simply never
// asked for again and ages out of the LRU).

// Canonical fingerprint of the MiningOptions fields that influence mined
// *output*. Execution-shape knobs — thread_count, scheduling, cancel, the
// GOP cache capacity bounds — are deliberately excluded: mining is
// bit-identical across them (core/classminer.h), so two requests differing
// only there must share a cache entry.
std::string CanonicalMiningFingerprint(const core::MiningOptions& options);

// Cache key for one mining-backed request: container identity (path +
// mtime + size) · op signature (kind + flags, e.g. "mine:fast=0,strict=1")
// · options fingerprint. Fails when the container cannot be stat'ed; the
// caller then bypasses the cache and lets the op report the real error.
util::StatusOr<std::string> MiningCacheKey(
    const std::string& path, const std::string& op_signature,
    const core::MiningOptions& options);

// Exactly what a fresh run would answer: the op's status and report body.
struct CachedResult {
  util::StatusCode code = util::StatusCode::kOk;
  std::string message;
  std::string body;

  size_t bytes() const { return message.size() + body.size(); }
};

class ResultCache {
 public:
  struct Options {
    size_t max_bytes = 64u << 20;  // sum of cached entry payloads
    size_t max_entries = 256;
  };

  struct Stats {
    uint64_t hits = 0;        // answered from a stored entry
    uint64_t joined = 0;      // attached to an in-flight leader
    uint64_t misses = 0;      // became the leader (one pipeline run each)
    uint64_t insertions = 0;  // entries stored
    uint64_t evictions = 0;   // entries LRU-evicted
  };

  // Wakes one joined waiter when its leader completes. `result` is the
  // leader's answer, valid only for the duration of the call; nullptr means
  // the leader finished without a shareable result (cancelled, deadline
  // expired) — the waiter must redispatch its own run. Waiters fire outside
  // the cache lock, on the leader's thread.
  using Waiter = std::function<void(const CachedResult* result)>;

  enum class Admission {
    kHit,     // *out filled from the cache
    kLead,    // caller runs the op and must call Complete(key, ...)
    kJoined,  // waiter retained; it fires when the leader completes
  };

  explicit ResultCache(Options options) : options_(options) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Single-flight admission for `key`.
  Admission JoinOrLead(const std::string& key, CachedResult* out,
                       Waiter waiter);

  // Leader hand-in. When `cacheable`, the result is stored (subject to the
  // LRU bounds) and every joined waiter receives it; otherwise the waiters
  // receive nullptr and redispatch. Exactly one Complete per kLead.
  void Complete(const std::string& key, const CachedResult& result,
                bool cacheable);

  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    CachedResult result;
  };

  void EvictOverflowLocked();

  const Options options_;
  mutable std::mutex mu_;
  // LRU: front = most recent. The map points into the list.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> by_key_;
  size_t cached_bytes_ = 0;
  std::unordered_map<std::string, std::vector<Waiter>> inflight_;
  Stats stats_;
};

}  // namespace classminer::server

#endif  // CLASSMINER_SERVER_RESULT_CACHE_H_

#include "server/result_cache.h"

#include <sys/stat.h>

#include <cstdio>
#include <utility>

namespace classminer::server {
namespace {

// Exact decimal rendering of a double (%.17g round-trips IEEE 754), so two
// option sets fingerprint equal iff their outputs are bit-identical.
void PutF(std::string* out, const char* name, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.17g;", name, v);
  out->append(buf);
}

void PutI(std::string* out, const char* name, long long v) {
  out->append(name);
  out->append("=");
  out->append(std::to_string(v));
  out->append(";");
}

void PutWeights(std::string* out, const char* name,
                const features::StSimWeights& w) {
  out->append(name);
  out->append("{");
  PutF(out, "color", w.color);
  PutF(out, "texture", w.texture);
  out->append("}");
}

}  // namespace

std::string CanonicalMiningFingerprint(const core::MiningOptions& o) {
  std::string f;
  f.reserve(1024);
  f.append("shot{");
  PutI(&f, "window", o.shot.threshold.window);
  PutF(&f, "activity_sigma", o.shot.threshold.activity_sigma);
  PutF(&f, "min_threshold", o.shot.threshold.min_threshold);
  PutI(&f, "use_entropy", o.shot.threshold.use_entropy ? 1 : 0);
  PutI(&f, "min_shot_frames", o.shot.min_shot_frames);
  f.append("}group{");
  PutF(&f, "t1", o.structure.group.t1);
  PutF(&f, "t2", o.structure.group.t2);
  PutWeights(&f, "w", o.structure.group.weights);
  f.append("}classify{");
  PutF(&f, "cluster_threshold", o.structure.classify.cluster_threshold);
  PutWeights(&f, "w", o.structure.classify.weights);
  f.append("}scene{");
  PutF(&f, "merge_threshold", o.structure.scene.merge_threshold);
  PutF(&f, "merge_floor", o.structure.scene.merge_floor);
  PutI(&f, "min_scene_shots", o.structure.scene.min_scene_shots);
  PutWeights(&f, "w", o.structure.scene.weights);
  f.append("}cluster{");
  PutF(&f, "min_fraction", o.structure.cluster.min_fraction);
  PutF(&f, "max_fraction", o.structure.cluster.max_fraction);
  PutI(&f, "fixed_clusters", o.structure.cluster.fixed_clusters);
  PutWeights(&f, "w", o.structure.cluster.weights);
  f.append("}special{");
  PutF(&f, "black_max_luma", o.cues.special.black_max_luma);
  PutF(&f, "black_max_stddev", o.cues.special.black_max_stddev);
  PutF(&f, "manmade_min_flat", o.cues.special.manmade_min_flat);
  PutF(&f, "manmade_max_luma_entropy",
       o.cues.special.manmade_max_luma_entropy);
  PutI(&f, "manmade_max_colors", o.cues.special.manmade_max_colors);
  PutF(&f, "slide_min_text_rows", o.cues.special.slide_min_text_rows);
  PutF(&f, "sketch_max_saturation", o.cues.special.sketch_max_saturation);
  f.append("}face{");
  PutF(&f, "min_aspect", o.cues.face.min_aspect);
  PutF(&f, "max_aspect", o.cues.face.max_aspect);
  PutF(&f, "min_solidity", o.cues.face.min_solidity);
  PutF(&f, "max_solidity", o.cues.face.max_solidity);
  PutF(&f, "min_profile_score", o.cues.face.min_profile_score);
  PutF(&f, "closeup_fraction", o.cues.face.closeup_fraction);
  f.append("}cues{");
  PutF(&f, "skin_closeup_fraction", o.cues.skin_closeup_fraction);
  f.append("}segmenter{");
  PutF(&f, "clip_seconds", o.events.segmenter.clip_seconds);
  PutF(&f, "min_shot_seconds", o.events.segmenter.min_shot_seconds);
  PutF(&f, "bic_penalty", o.events.segmenter.bic_penalty);
  f.append("}");
  PutI(&f, "failure_policy", static_cast<long long>(o.failure_policy));
  return f;
}

util::StatusOr<std::string> MiningCacheKey(
    const std::string& path, const std::string& op_signature,
    const core::MiningOptions& options) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    return util::Status::NotFound("cannot stat " + path);
  }
  std::string key;
  key.reserve(path.size() + op_signature.size() + 1024);
  key.append(path);
  key.append("\x1f");
  key.append(std::to_string(static_cast<long long>(st.st_mtim.tv_sec)));
  key.append(".");
  key.append(std::to_string(static_cast<long long>(st.st_mtim.tv_nsec)));
  key.append("\x1f");
  key.append(std::to_string(static_cast<long long>(st.st_size)));
  key.append("\x1f");
  key.append(op_signature);
  key.append("\x1f");
  key.append(CanonicalMiningFingerprint(options));
  return key;
}

ResultCache::Admission ResultCache::JoinOrLead(const std::string& key,
                                               CachedResult* out,
                                               Waiter waiter) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto hit = by_key_.find(key);
  if (hit != by_key_.end()) {
    lru_.splice(lru_.begin(), lru_, hit->second);  // refresh recency
    *out = hit->second->result;
    ++stats_.hits;
    return Admission::kHit;
  }
  const auto flight = inflight_.find(key);
  if (flight != inflight_.end()) {
    flight->second.push_back(std::move(waiter));
    ++stats_.joined;
    return Admission::kJoined;
  }
  inflight_.emplace(key, std::vector<Waiter>{});
  ++stats_.misses;
  return Admission::kLead;
}

void ResultCache::Complete(const std::string& key, const CachedResult& result,
                           bool cacheable) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto flight = inflight_.find(key);
    if (flight != inflight_.end()) {
      waiters = std::move(flight->second);
      inflight_.erase(flight);
    }
    // An entry larger than the whole budget would only evict everything and
    // then itself; skip storing it (waiters still get the bytes below).
    if (cacheable && by_key_.find(key) == by_key_.end() &&
        result.bytes() <= options_.max_bytes) {
      lru_.push_front(Entry{key, result});
      by_key_[key] = lru_.begin();
      cached_bytes_ += result.bytes();
      ++stats_.insertions;
      EvictOverflowLocked();
    }
  }
  for (Waiter& waiter : waiters) {
    if (waiter) waiter(cacheable ? &result : nullptr);
  }
}

void ResultCache::EvictOverflowLocked() {
  while (!lru_.empty() && (cached_bytes_ > options_.max_bytes ||
                           lru_.size() > options_.max_entries)) {
    const Entry& tail = lru_.back();
    cached_bytes_ -= tail.result.bytes();
    by_key_.erase(tail.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace classminer::server

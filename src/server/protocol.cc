#include "server/protocol.h"

#include <utility>

#include "util/serial.h"

namespace classminer::server {
namespace {

// The protocol reuses the persistence serializer, so parse errors carry
// section names and byte offsets just like a corrupt container would.
util::Status CheckKind(uint8_t kind) {
  if (kind >= kRequestKindCount) {
    return util::Status::InvalidArgument("unknown request kind " +
                                         std::to_string(kind));
  }
  return util::Status::Ok();
}

util::Status CheckCode(uint32_t code) {
  if (code > static_cast<uint32_t>(util::StatusCode::kDeadlineExceeded)) {
    return util::Status::InvalidArgument("unknown status code " +
                                         std::to_string(code));
  }
  return util::Status::Ok();
}

}  // namespace

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kHello:
      return "hello";
    case RequestKind::kMine:
      return "mine";
    case RequestKind::kBrowse:
      return "browse";
    case RequestKind::kSkim:
      return "skim";
    case RequestKind::kVerify:
      return "verify";
    case RequestKind::kRepair:
      return "repair";
    case RequestKind::kHealth:
      return "health";
  }
  return "unknown";
}

util::StatusOr<RequestKind> ParseRequestKind(const std::string& name) {
  for (int k = 0; k < kRequestKindCount; ++k) {
    const RequestKind kind = static_cast<RequestKind>(k);
    if (name == RequestKindName(kind)) return kind;
  }
  return util::Status::InvalidArgument("unknown request kind '" + name + "'");
}

namespace {

// Shared tail of both request layouts: kind, deadline, args.
util::Status PutRequestCommon(util::ByteWriter* w, const Request& request) {
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(request.args.size(), "request arg"));
  w->PutU8(static_cast<uint8_t>(request.kind));
  w->PutU32(request.deadline_ms);
  w->PutU32(static_cast<uint32_t>(request.args.size()));
  for (const std::string& arg : request.args) {
    CLASSMINER_RETURN_IF_ERROR(
        util::CheckU32Count(arg.size(), "request arg byte"));
    w->PutString(arg);
  }
  return util::Status::Ok();
}

util::StatusOr<Request> GetRequestCommon(util::ByteReader* r) {
  Request request;
  util::StatusOr<uint8_t> kind = r->GetU8();
  if (!kind.ok()) return kind.status();
  CLASSMINER_RETURN_IF_ERROR(CheckKind(*kind));
  request.kind = static_cast<RequestKind>(*kind);
  util::StatusOr<uint32_t> deadline = r->GetU32();
  if (!deadline.ok()) return deadline.status();
  request.deadline_ms = *deadline;
  util::StatusOr<uint32_t> arg_count = r->GetU32();
  if (!arg_count.ok()) return arg_count.status();
  // Each argument occupies at least its 4-byte length prefix.
  if (*arg_count > r->remaining() / 4) {
    return r->Corrupt("request arg count exceeds frame");
  }
  request.args.reserve(*arg_count);
  for (uint32_t i = 0; i < *arg_count; ++i) {
    util::StatusOr<std::string> arg = r->GetString();
    if (!arg.ok()) return arg.status();
    request.args.push_back(std::move(*arg));
  }
  return request;
}

}  // namespace

util::StatusOr<std::vector<uint8_t>> Request::Serialize() const {
  util::ByteWriter w;
  CLASSMINER_RETURN_IF_ERROR(PutRequestCommon(&w, *this));
  if (w.size() > kMaxFrameBytes) {
    return util::Status::InvalidArgument("request exceeds frame size limit");
  }
  return w.Release();
}

util::StatusOr<Request> Request::Parse(const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  r.set_section("request");
  util::StatusOr<Request> request = GetRequestCommon(&r);
  if (!request.ok()) return request.status();
  if (r.remaining() > 0) return r.Corrupt("trailing bytes after request");
  return request;
}

util::StatusOr<std::vector<uint8_t>> Request::SerializeTagged() const {
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(idempotency_key.size(), "idempotency key byte"));
  util::ByteWriter w;
  w.PutU32(request_id);
  CLASSMINER_RETURN_IF_ERROR(PutRequestCommon(&w, *this));
  w.PutString(idempotency_key);
  if (w.size() > kMaxFrameBytes) {
    return util::Status::InvalidArgument("request exceeds frame size limit");
  }
  return w.Release();
}

util::StatusOr<Request> Request::ParseTagged(
    const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  r.set_section("request.v2");
  util::StatusOr<uint32_t> id = r.GetU32();
  if (!id.ok()) return id.status();
  util::StatusOr<Request> request = GetRequestCommon(&r);
  if (!request.ok()) return request.status();
  request->request_id = *id;
  util::StatusOr<std::string> key = r.GetString();
  if (!key.ok()) return key.status();
  request->idempotency_key = std::move(*key);
  if (r.remaining() > 0) return r.Corrupt("trailing bytes after request");
  return request;
}

uint32_t PeekRequestId(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 4) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(bytes[i]) << (8 * i);
  return v;
}

util::StatusOr<std::string> SessionHello::Serialize() const {
  CLASSMINER_RETURN_IF_ERROR(util::CheckU32Count(user.size(), "hello user"));
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(denied_nodes.size(), "hello denied node"));
  util::ByteWriter w;
  w.PutString(user);
  w.PutI32(clearance);
  w.PutU32(static_cast<uint32_t>(denied_nodes.size()));
  for (int32_t node : denied_nodes) w.PutI32(node);
  const std::vector<uint8_t> bytes = w.Release();
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

util::StatusOr<SessionHello> SessionHello::Parse(const std::string& bytes) {
  util::ByteReader r(reinterpret_cast<const uint8_t*>(bytes.data()),
                     bytes.size());
  r.set_section("hello");
  SessionHello hello;
  util::StatusOr<std::string> user = r.GetString();
  if (!user.ok()) return user.status();
  hello.user = std::move(*user);
  util::StatusOr<int32_t> clearance = r.GetI32();
  if (!clearance.ok()) return clearance.status();
  hello.clearance = *clearance;
  util::StatusOr<uint32_t> denied = r.GetU32();
  if (!denied.ok()) return denied.status();
  if (*denied > r.remaining() / 4) {
    return r.Corrupt("denied node count exceeds hello body");
  }
  hello.denied_nodes.reserve(*denied);
  for (uint32_t i = 0; i < *denied; ++i) {
    util::StatusOr<int32_t> node = r.GetI32();
    if (!node.ok()) return node.status();
    hello.denied_nodes.push_back(*node);
  }
  if (r.remaining() > 0) return r.Corrupt("trailing bytes after hello");
  return hello;
}

index::UserCredential SessionHello::ToCredential() const {
  index::UserCredential credential;
  credential.name = user;
  credential.clearance = clearance;
  for (int32_t node : denied_nodes) credential.denied_nodes.insert(node);
  return credential;
}

util::StatusOr<std::vector<uint8_t>> Response::Serialize() const {
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(message.size(), "response message byte"));
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(body.size(), "response body byte"));
  util::ByteWriter w;
  w.PutU32(static_cast<uint32_t>(code));
  w.PutString(message);
  w.PutString(body);
  if (w.size() > kMaxFrameBytes) {
    return util::Status::InvalidArgument("response exceeds frame size limit");
  }
  return w.Release();
}

util::StatusOr<Response> Response::Parse(const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  r.set_section("response");
  Response response;
  util::StatusOr<uint32_t> code = r.GetU32();
  if (!code.ok()) return code.status();
  CLASSMINER_RETURN_IF_ERROR(CheckCode(*code));
  response.code = static_cast<util::StatusCode>(*code);
  util::StatusOr<std::string> message = r.GetString();
  if (!message.ok()) return message.status();
  response.message = std::move(*message);
  util::StatusOr<std::string> body = r.GetString();
  if (!body.ok()) return body.status();
  response.body = std::move(*body);
  if (r.remaining() > 0) return r.Corrupt("trailing bytes after response");
  return response;
}

util::StatusOr<std::vector<uint8_t>> Response::SerializeChunk() const {
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(message.size(), "response message byte"));
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(body.size(), "response body byte"));
  util::ByteWriter w;
  w.PutU32(request_id);
  w.PutU8(final_chunk ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(code));
  w.PutString(message);
  w.PutString(body);
  if (w.size() > kMaxFrameBytes) {
    return util::Status::InvalidArgument("response exceeds frame size limit");
  }
  return w.Release();
}

util::StatusOr<Response> Response::ParseChunk(
    const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  r.set_section("response.v2");
  Response response;
  util::StatusOr<uint32_t> id = r.GetU32();
  if (!id.ok()) return id.status();
  response.request_id = *id;
  util::StatusOr<uint8_t> flags = r.GetU8();
  if (!flags.ok()) return flags.status();
  if ((*flags & ~uint8_t{1}) != 0) {
    return r.Corrupt("reserved response flags set");
  }
  response.final_chunk = (*flags & 1) != 0;
  util::StatusOr<uint32_t> code = r.GetU32();
  if (!code.ok()) return code.status();
  CLASSMINER_RETURN_IF_ERROR(CheckCode(*code));
  response.code = static_cast<util::StatusCode>(*code);
  util::StatusOr<std::string> message = r.GetString();
  if (!message.ok()) return message.status();
  response.message = std::move(*message);
  util::StatusOr<std::string> body = r.GetString();
  if (!body.ok()) return body.status();
  response.body = std::move(*body);
  if (r.remaining() > 0) return r.Corrupt("trailing bytes after response");
  return response;
}

Response MakeResponse(const util::Status& status, std::string body) {
  Response response;
  response.code = status.code();
  response.message = status.message();
  response.body = std::move(body);
  return response;
}

}  // namespace classminer::server

#include "shot/rep_frame.h"

#include <algorithm>

namespace classminer::shot {

int RepresentativeFrameIndex(int start_frame, int end_frame) {
  // The 10th frame of the shot (1-based), i.e. start + 9, clamped to the
  // shot span. A degenerate span (end < start) falls back to the start.
  return std::max(start_frame, std::min(start_frame + 9, end_frame));
}

void PopulateRepresentativeFrames(const media::Video& video,
                                  std::vector<Shot>* shots,
                                  util::ThreadPool* pool) {
  const int frames = video.frame_count();
  util::ParallelFor(
      pool, static_cast<int>(shots->size()),
      [&](int i) {
        Shot& s = (*shots)[static_cast<size_t>(i)];
        s.rep_frame = RepresentativeFrameIndex(s.start_frame, s.end_frame);
        // Shot spans normally lie inside the video, but compressed-domain
        // traces can overshoot by a frame; clamp instead of dropping.
        if (frames > 0 && s.rep_frame >= frames) s.rep_frame = frames - 1;
        if (s.rep_frame >= 0 && s.rep_frame < frames) {
          s.features = features::ExtractShotFeatures(video.frame(s.rep_frame));
        }
      },
      /*grain=*/2);
}

util::Status PopulateRepresentativeFrames(codec::FrameSource* source,
                                          std::vector<Shot>* shots,
                                          const util::ExecutionContext& ctx) {
  const int frames = source->frame_count();
  std::vector<util::Status> statuses(shots->size());
  util::ParallelFor(
      ctx, static_cast<int>(shots->size()),
      [&](int i) {
        Shot& s = (*shots)[static_cast<size_t>(i)];
        s.rep_frame = RepresentativeFrameIndex(s.start_frame, s.end_frame);
        if (frames > 0 && s.rep_frame >= frames) s.rep_frame = frames - 1;
        if (s.rep_frame >= 0 && s.rep_frame < frames) {
          util::StatusOr<codec::FrameHandle> frame =
              source->GetFrame(s.rep_frame);
          if (!frame.ok()) {
            statuses[static_cast<size_t>(i)] = frame.status();
            return;
          }
          s.features = features::ExtractShotFeatures(frame->image());
        }
      },
      /*grain=*/2);
  // First failure in shot order, independent of scheduling.
  for (const util::Status& status : statuses) {
    CLASSMINER_RETURN_IF_ERROR(status);
  }
  return util::Status::Ok();
}

util::Status PopulateRepresentativeFramesSalvage(
    codec::FrameSource* source, std::vector<Shot>* shots,
    const util::ExecutionContext& ctx, int* failed_shots) {
  const int frames = source->frame_count();
  std::vector<util::Status> statuses(shots->size());
  util::ParallelFor(
      ctx, static_cast<int>(shots->size()),
      [&](int i) {
        Shot& s = (*shots)[static_cast<size_t>(i)];
        s.rep_frame = RepresentativeFrameIndex(s.start_frame, s.end_frame);
        if (frames > 0 && s.rep_frame >= frames) s.rep_frame = frames - 1;
        if (s.rep_frame >= 0 && s.rep_frame < frames) {
          util::StatusOr<codec::FrameHandle> frame =
              source->GetFrame(s.rep_frame);
          if (!frame.ok()) {
            // The shot keeps default features; structure mining still sees
            // it, it just carries no visual signature.
            statuses[static_cast<size_t>(i)] = frame.status();
            return;
          }
          s.features = features::ExtractShotFeatures(frame->image());
        }
      },
      /*grain=*/2);
  int failed = 0;
  for (const util::Status& status : statuses) {
    if (status.code() == util::StatusCode::kCancelled) return status;
    if (!status.ok()) ++failed;
  }
  if (failed_shots != nullptr) *failed_shots = failed;
  return util::Status::Ok();
}

}  // namespace classminer::shot

#include "shot/rep_frame.h"

#include <algorithm>

namespace classminer::shot {

int RepresentativeFrameIndex(int start_frame, int end_frame) {
  // The 10th frame of the shot (1-based), i.e. start + 9, clamped.
  return std::min(start_frame + 9, end_frame);
}

void PopulateRepresentativeFrames(const media::Video& video,
                                  std::vector<Shot>* shots) {
  for (Shot& s : *shots) {
    s.rep_frame = RepresentativeFrameIndex(s.start_frame, s.end_frame);
    if (s.rep_frame >= 0 && s.rep_frame < video.frame_count()) {
      s.features = features::ExtractShotFeatures(video.frame(s.rep_frame));
    }
  }
}

}  // namespace classminer::shot

#ifndef CLASSMINER_SHOT_SHOT_H_
#define CLASSMINER_SHOT_SHOT_H_

#include "features/similarity.h"

namespace classminer::shot {

// A physical video shot: frames [start_frame, end_frame] inclusive, the
// single continuous camera run of Definition 2.
struct Shot {
  int index = 0;        // position in the shot sequence
  int start_frame = 0;
  int end_frame = 0;    // inclusive
  int rep_frame = 0;    // representative frame (the shot's 10th frame)
  features::ShotFeatures features{};  // of the representative frame

  int frame_count() const { return end_frame - start_frame + 1; }
  double StartSeconds(double fps) const {
    return fps > 0.0 ? start_frame / fps : 0.0;
  }
  double EndSeconds(double fps) const {
    return fps > 0.0 ? (end_frame + 1) / fps : 0.0;
  }
  double DurationSeconds(double fps) const {
    return fps > 0.0 ? frame_count() / fps : 0.0;
  }
};

}  // namespace classminer::shot

#endif  // CLASSMINER_SHOT_SHOT_H_

#ifndef CLASSMINER_SHOT_REP_FRAME_H_
#define CLASSMINER_SHOT_REP_FRAME_H_

#include <vector>

#include "codec/frame_source.h"
#include "media/video.h"
#include "shot/shot.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/threadpool.h"

namespace classminer::shot {

// Index of the representative frame of a shot span: the shot's 10th frame
// (paper Sec. 3.1), clamped to the shot for shorter shots. Degenerate spans
// (end before start) clamp to the start frame so the index never leaves the
// shot.
int RepresentativeFrameIndex(int start_frame, int end_frame);

// Fills rep_frame and features for every shot from the decoded video. The
// representative index is additionally clamped to the video's frame range,
// so a final shot ending at frame_count() - 1 (or a span produced by a
// mismatched compressed-domain trace) always yields valid features. With a
// pool, shots are processed in parallel (independent per-shot slots;
// bit-identical to serial).
void PopulateRepresentativeFrames(const media::Video& video,
                                  std::vector<Shot>* shots,
                                  util::ThreadPool* pool = nullptr);

// Selective-decode variant: pulls each shot's representative frame through
// `source`, decoding only the GOPs that contain one (plus LRU cache hits)
// instead of requiring a fully materialized video. Features are
// bit-identical to the full-decode overload because FrameSource frames are
// bit-identical to DecodeVideo output. Shots are processed in parallel on
// the context's pool (independent per-shot slots); the first per-shot
// failure in shot order is returned, and a cancelled context returns
// without touching the shots.
util::Status PopulateRepresentativeFrames(codec::FrameSource* source,
                                          std::vector<Shot>* shots,
                                          const util::ExecutionContext& ctx =
                                              {});

// Best-effort variant for damaged containers: a shot whose representative
// frame cannot be decoded (its GOP is corrupt; pair with a FrameSource in
// salvage mode) keeps default features instead of failing the pass.
// `failed_shots` (may be null) receives how many shots were lost that way.
// Only cancellation fails the call.
util::Status PopulateRepresentativeFramesSalvage(
    codec::FrameSource* source, std::vector<Shot>* shots,
    const util::ExecutionContext& ctx = {}, int* failed_shots = nullptr);

}  // namespace classminer::shot

#endif  // CLASSMINER_SHOT_REP_FRAME_H_

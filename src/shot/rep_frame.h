#ifndef CLASSMINER_SHOT_REP_FRAME_H_
#define CLASSMINER_SHOT_REP_FRAME_H_

#include <vector>

#include "media/video.h"
#include "shot/shot.h"

namespace classminer::shot {

// Index of the representative frame of a shot span: the shot's 10th frame
// (paper Sec. 3.1), clamped to the shot for shorter shots.
int RepresentativeFrameIndex(int start_frame, int end_frame);

// Fills rep_frame and features for every shot from the decoded video.
void PopulateRepresentativeFrames(const media::Video& video,
                                  std::vector<Shot>* shots);

}  // namespace classminer::shot

#endif  // CLASSMINER_SHOT_REP_FRAME_H_

#include "shot/threshold.h"

#include <algorithm>

#include "util/mathutil.h"

namespace classminer::shot {

std::vector<double> AdaptiveThresholds(
    std::span<const double> diffs, const AdaptiveThresholdOptions& options) {
  const int n = static_cast<int>(diffs.size());
  std::vector<double> thresholds(static_cast<size_t>(std::max(n, 0)));
  if (n == 0) return thresholds;
  const int window = std::max(2, options.window);

  for (int i = 0; i < n; ++i) {
    const int lo = std::max(0, i - window / 2);
    const int hi = std::min(n, lo + window);
    std::span<const double> local =
        diffs.subspan(static_cast<size_t>(lo), static_cast<size_t>(hi - lo));

    const double entropy_t =
        options.use_entropy ? util::FastEntropyThreshold(local) : 0.0;
    const double activity =
        util::Mean(local) + options.activity_sigma * util::StdDev(local);
    thresholds[static_cast<size_t>(i)] =
        std::max({entropy_t, activity, options.min_threshold});
  }
  return thresholds;
}

}  // namespace classminer::shot

#ifndef CLASSMINER_SHOT_THRESHOLD_H_
#define CLASSMINER_SHOT_THRESHOLD_H_

#include <span>
#include <vector>

namespace classminer::shot {

// Per-position adaptive thresholds over a difference series (paper
// Sec. 3.1): a sliding window (default 30 frames) is centred on each
// position; the window's threshold combines the fast-entropy automatic
// threshold [10] with local activity analysis (mean + k * stddev of the
// window), so quiet shots get low thresholds and busy shots high ones.
struct AdaptiveThresholdOptions {
  int window = 30;
  double activity_sigma = 3.0;  // k in mean + k * stddev
  double min_threshold = 0.08;  // absolute floor on [0,1] differences
  // Ablation switch: disable the fast-entropy term so the threshold is
  // driven by local activity (or by the floor alone).
  bool use_entropy = true;
};

// Returns one threshold per element of `diffs`.
std::vector<double> AdaptiveThresholds(
    std::span<const double> diffs,
    const AdaptiveThresholdOptions& options = {});

}  // namespace classminer::shot

#endif  // CLASSMINER_SHOT_THRESHOLD_H_

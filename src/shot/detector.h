#ifndef CLASSMINER_SHOT_DETECTOR_H_
#define CLASSMINER_SHOT_DETECTOR_H_

#include <vector>

#include "media/image.h"
#include "media/video.h"
#include "shot/shot.h"
#include "shot/threshold.h"
#include "util/exec_context.h"

namespace classminer::shot {

struct ShotDetectorOptions {
  AdaptiveThresholdOptions threshold{};
  int min_shot_frames = 5;  // suppress cuts closer than this
};

// Diagnostic trace behind Fig. 5: the frame-difference series and the
// adaptive per-position thresholds, plus the chosen cut positions
// (cut at k means a boundary between frame k and k+1).
struct ShotDetectionTrace {
  std::vector<double> differences;
  std::vector<double> thresholds;
  std::vector<int> cuts;
};

// Segments a difference series into cut positions. A cut is declared at
// position i when d[i] exceeds its adaptive threshold and is the maximum
// within the minimum-shot-length neighbourhood.
std::vector<int> DetectCuts(std::span<const double> diffs,
                            const ShotDetectorOptions& options,
                            std::vector<double>* thresholds_out = nullptr);

// Pixel-domain detection over a decoded video. Populates shot spans and
// representative-frame features (via shot/rep_frame). The context's pool
// parallelises the per-frame histogram and per-shot feature extraction;
// detection is bit-identical with or without one (a default context — or a
// bare ThreadPool*, which converts — runs inline).
std::vector<Shot> DetectShots(const media::Video& video,
                              const ShotDetectorOptions& options = {},
                              ShotDetectionTrace* trace = nullptr,
                              const util::ExecutionContext& ctx = {});

// Compressed-domain detection over a DC-image sequence (codec fast path).
// Returns shot spans only; callers decode representative frames as needed.
std::vector<Shot> DetectShotsFromDc(const std::vector<media::GrayImage>& dc,
                                    const ShotDetectorOptions& options = {},
                                    ShotDetectionTrace* trace = nullptr);

}  // namespace classminer::shot

#endif  // CLASSMINER_SHOT_DETECTOR_H_

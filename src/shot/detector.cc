#include "shot/detector.h"

#include <algorithm>

#include "features/frame_diff.h"
#include "shot/rep_frame.h"

namespace classminer::shot {
namespace {

std::vector<Shot> ShotsFromCuts(const std::vector<int>& cuts,
                                int frame_count) {
  std::vector<Shot> shots;
  if (frame_count <= 0) return shots;
  int start = 0;
  for (int cut : cuts) {
    Shot s;
    s.index = static_cast<int>(shots.size());
    s.start_frame = start;
    s.end_frame = cut;
    shots.push_back(s);
    start = cut + 1;
  }
  Shot last;
  last.index = static_cast<int>(shots.size());
  last.start_frame = start;
  last.end_frame = frame_count - 1;
  shots.push_back(last);
  return shots;
}

}  // namespace

std::vector<int> DetectCuts(std::span<const double> diffs,
                            const ShotDetectorOptions& options,
                            std::vector<double>* thresholds_out) {
  const std::vector<double> thresholds =
      AdaptiveThresholds(diffs, options.threshold);
  if (thresholds_out != nullptr) *thresholds_out = thresholds;

  const int n = static_cast<int>(diffs.size());
  std::vector<int> cuts;
  int last_cut = -options.min_shot_frames - 1;
  for (int i = 0; i < n; ++i) {
    if (diffs[static_cast<size_t>(i)] <= thresholds[static_cast<size_t>(i)]) {
      continue;
    }
    // Local-maximum test within the minimum-shot neighbourhood: gradual
    // transitions raise several consecutive differences; keep the peak.
    bool is_peak = true;
    const int lo = std::max(0, i - options.min_shot_frames);
    const int hi = std::min(n - 1, i + options.min_shot_frames);
    for (int j = lo; j <= hi; ++j) {
      if (diffs[static_cast<size_t>(j)] > diffs[static_cast<size_t>(i)] ||
          (diffs[static_cast<size_t>(j)] == diffs[static_cast<size_t>(i)] &&
           j < i)) {
        is_peak = false;
        break;
      }
    }
    if (!is_peak) continue;
    if (i - last_cut < options.min_shot_frames) continue;
    cuts.push_back(i);
    last_cut = i;
  }
  return cuts;
}

std::vector<Shot> DetectShots(const media::Video& video,
                              const ShotDetectorOptions& options,
                              ShotDetectionTrace* trace,
                              const util::ExecutionContext& ctx) {
  const std::vector<double> diffs =
      features::FrameDifferenceSeries(video, ctx);
  std::vector<double> thresholds;
  const std::vector<int> cuts = DetectCuts(diffs, options, &thresholds);
  if (trace != nullptr) {
    trace->differences = diffs;
    trace->thresholds = thresholds;
    trace->cuts = cuts;
  }
  std::vector<Shot> shots = ShotsFromCuts(cuts, video.frame_count());
  PopulateRepresentativeFrames(video, &shots, ctx.pool());
  return shots;
}

std::vector<Shot> DetectShotsFromDc(const std::vector<media::GrayImage>& dc,
                                    const ShotDetectorOptions& options,
                                    ShotDetectionTrace* trace) {
  std::vector<double> diffs;
  if (dc.size() >= 2) {
    diffs.reserve(dc.size() - 1);
    for (size_t i = 1; i < dc.size(); ++i) {
      diffs.push_back(features::BlockLumaDifference(dc[i - 1], dc[i]));
    }
  }
  std::vector<double> thresholds;
  const std::vector<int> cuts = DetectCuts(diffs, options, &thresholds);
  if (trace != nullptr) {
    trace->differences = diffs;
    trace->thresholds = thresholds;
    trace->cuts = cuts;
  }
  return ShotsFromCuts(cuts, static_cast<int>(dc.size()));
}

}  // namespace classminer::shot

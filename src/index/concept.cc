#include "index/concept.h"

#include <algorithm>

namespace classminer::index {
namespace {

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

}  // namespace

ConceptHierarchy::ConceptHierarchy() {
  ConceptNode root;
  root.id = 0;
  root.name = "root";
  root.level = ConceptLevel::kRoot;
  nodes_.push_back(root);
}

int ConceptHierarchy::AddChild(int parent, const std::string& name,
                               int security_level) {
  ConceptNode node;
  node.id = static_cast<int>(nodes_.size());
  node.name = name;
  node.parent = parent;
  node.security_level = security_level;
  const ConceptLevel pl = nodes_[static_cast<size_t>(parent)].level;
  node.level = pl == ConceptLevel::kScene
                   ? ConceptLevel::kScene
                   : static_cast<ConceptLevel>(static_cast<int>(pl) + 1);
  nodes_[static_cast<size_t>(parent)].children.push_back(node.id);
  nodes_.push_back(node);
  return node.id;
}

ConceptHierarchy ConceptHierarchy::MedicalDefault() {
  ConceptHierarchy h;
  const int health = h.AddChild(0, "health_care");
  const int education = h.AddChild(0, "medical_education");
  const int report = h.AddChild(0, "medical_report");

  const int medicine = h.AddChild(education, "medicine");
  h.AddChild(education, "nursing");
  h.AddChild(education, "dentistry");

  h.AddChild(medicine, "presentation");
  h.AddChild(medicine, "dialog");
  // Clinical footage is the most sensitive content: higher default level.
  h.AddChild(medicine, "clinical_operation", /*security_level=*/2);
  h.AddChild(medicine, "other");

  (void)health;
  (void)report;
  return h;
}

util::StatusOr<ConceptHierarchy> ConceptHierarchy::FromSpec(
    const std::vector<std::string>& lines) {
  ConceptHierarchy h;
  for (const std::string& raw : lines) {
    if (raw.empty() || raw[0] == '#') continue;
    std::string path = raw;
    int security = 0;
    const size_t colon = raw.rfind(':');
    if (colon != std::string::npos) {
      path = raw.substr(0, colon);
      try {
        security = std::stoi(raw.substr(colon + 1));
      } catch (...) {
        return util::Status::InvalidArgument("bad security level in: " + raw);
      }
    }
    const std::vector<std::string> parts = SplitPath(path);
    if (parts.empty()) {
      return util::Status::InvalidArgument("empty concept path: " + raw);
    }
    int cur = 0;
    for (size_t i = 0; i < parts.size(); ++i) {
      int next = -1;
      for (int child : h.nodes_[static_cast<size_t>(cur)].children) {
        if (h.nodes_[static_cast<size_t>(child)].name == parts[i]) {
          next = child;
          break;
        }
      }
      if (next < 0) next = h.AddChild(cur, parts[i]);
      cur = next;
    }
    h.nodes_[static_cast<size_t>(cur)].security_level = security;
  }
  return h;
}

int ConceptHierarchy::FindByPath(const std::string& path) const {
  int cur = 0;
  for (const std::string& part : SplitPath(path)) {
    int next = -1;
    for (int child : nodes_[static_cast<size_t>(cur)].children) {
      if (nodes_[static_cast<size_t>(child)].name == part) {
        next = child;
        break;
      }
    }
    if (next < 0) return -1;
    cur = next;
  }
  return cur;
}

int ConceptHierarchy::FindByName(const std::string& name) const {
  for (const ConceptNode& n : nodes_) {
    if (n.name == name) return n.id;
  }
  return -1;
}

bool ConceptHierarchy::IsAncestor(int ancestor, int descendant) const {
  int cur = descendant;
  while (cur >= 0) {
    if (cur == ancestor) return true;
    cur = nodes_[static_cast<size_t>(cur)].parent;
  }
  return false;
}

std::string ConceptHierarchy::PathOf(int id) const {
  if (id <= 0) return "";
  std::vector<const std::string*> parts;
  int cur = id;
  while (cur > 0) {
    parts.push_back(&nodes_[static_cast<size_t>(cur)].name);
    cur = nodes_[static_cast<size_t>(cur)].parent;
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += '/';
    out += **it;
  }
  return out;
}

void ConceptHierarchy::SetSecurityLevel(int id, int level) {
  nodes_[static_cast<size_t>(id)].security_level = level;
}

int ConceptHierarchy::SceneNodeForEvent(events::EventType type) const {
  switch (type) {
    case events::EventType::kPresentation:
      return FindByName("presentation");
    case events::EventType::kDialog:
      return FindByName("dialog");
    case events::EventType::kClinicalOperation:
      return FindByName("clinical_operation");
    case events::EventType::kUndetermined:
      return FindByName("other");
  }
  return -1;
}

}  // namespace classminer::index

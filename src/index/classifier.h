#ifndef CLASSMINER_INDEX_CLASSIFIER_H_
#define CLASSMINER_INDEX_CLASSIFIER_H_

#include <vector>

#include "index/concept.h"
#include "index/database.h"

namespace classminer::index {

// The semantic-sensitive video classifier of Sec. 2: every node of the
// concept hierarchy is a semantic concept, and mined content maps onto it.
// Scene-level assignment follows the mined event category; video-level
// (cluster) assignment follows the dominant content mix:
//   presentation-dominated  -> medical_education (lecture material)
//   clinical-dominated      -> health_care (procedure footage)
//   dialog-dominated        -> medical_report (interview/consult material)
struct SceneAssignment {
  int scene_index = -1;
  events::EventType event = events::EventType::kUndetermined;
  int concept_node = -1;  // scene-level node
};

struct VideoAssignment {
  int video_id = -1;
  int cluster_node = -1;  // top-level semantic cluster
  std::vector<SceneAssignment> scenes;

  // Event-category counts backing the decision (diagnostics).
  int presentation_scenes = 0;
  int dialog_scenes = 0;
  int clinical_scenes = 0;
  int undetermined_scenes = 0;
};

class SemanticClassifier {
 public:
  explicit SemanticClassifier(const ConceptHierarchy* concepts);

  // Classifies a mined video into the hierarchy. Never fails: unmatched
  // content maps to the root (node 0).
  VideoAssignment ClassifyVideo(const VideoEntry& video) const;

  // Classifies every video of a database.
  std::vector<VideoAssignment> ClassifyDatabase(const VideoDatabase& db) const;

 private:
  const ConceptHierarchy* concepts_;
  int education_node_ = -1;
  int health_care_node_ = -1;
  int report_node_ = -1;
};

}  // namespace classminer::index

#endif  // CLASSMINER_INDEX_CLASSIFIER_H_

#ifndef CLASSMINER_INDEX_ACCESS_CONTROL_H_
#define CLASSMINER_INDEX_ACCESS_CONTROL_H_

#include <set>
#include <vector>

#include "index/concept.h"
#include "index/query.h"

namespace classminer::index {

// A database user with a clearance level and optional per-node deny rules.
struct UserCredential {
  std::string name;
  int clearance = 0;
  // Concept node ids explicitly denied (applies to their whole subtrees);
  // supports rules like "this account may not view clinical operations".
  std::set<int> denied_nodes;
};

// Hierarchical access control (paper Sec. 2): the concept tree provides the
// protection granularity; a node is accessible when the user's clearance
// covers the node's security level and no ancestor (or the node itself) is
// explicitly denied.
class AccessController {
 public:
  explicit AccessController(const ConceptHierarchy* concepts)
      : concepts_(concepts) {}

  bool CanAccessNode(const UserCredential& user, int node_id) const;

  // Whether the user may see a shot, based on the scene-level concept of
  // its mined event type.
  bool CanAccessShot(const UserCredential& user, const VideoDatabase& db,
                     const ShotRef& ref) const;

  // Drops matches the user may not see (post-filtering of query results).
  std::vector<QueryMatch> FilterMatches(const UserCredential& user,
                                        const VideoDatabase& db,
                                        std::vector<QueryMatch> matches) const;

 private:
  const ConceptHierarchy* concepts_;
};

}  // namespace classminer::index

#endif  // CLASSMINER_INDEX_ACCESS_CONTROL_H_

#ifndef CLASSMINER_INDEX_PERSIST_H_
#define CLASSMINER_INDEX_PERSIST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/database.h"
#include "util/salvage.h"
#include "util/serial.h"
#include "util/status.h"

namespace classminer::index {

// Binary persistence of the mined database (features + structure + events;
// raw media stays in CMV containers). Format "CMDB":
//   v1  bodies written back to back, no per-video degraded flag
//   v2  appends a per-video degraded flag to each body
//   v3  frames every video entry as (entry magic "CMVE", body size u32,
//       CRC-32 u32, body) so a bit-flip is detected at the entry that took
//       it and a salvage parse can resynchronise onto the next
//       checksum-confirmed entry after a tear
// Writers always emit v3; v1/v2 files still load.
//
// On disk a database is up to three files managed as atomic generations:
//   <path>        the current generation (written via util::AtomicWriteFile)
//   <path>.prev   the previous generation, rotated aside durably before the
//                 current one is renamed into place
//   <path>.manifest  advisory "CMGM" record of the current generation
//                 (counter, size, CRC-32); written after the data, so a
//                 mismatch means "a save was interrupted", not corruption
// A crash at any point of SaveDatabase leaves at least one loadable
// generation; OpenDatabaseAnyGeneration finds it.
//
// A database may instead live as a sharded append-log tier (root file
// carries the "CMSM" shard-manifest magic; entries hash-partitioned across
// `<path>.shard<k>` logs — see index/shard.h). SaveDatabase, LoadDatabase,
// LoadDatabaseSalvage, OpenDatabaseAnyGeneration and VerifyDatabaseFile all
// dispatch on the root magic, so callers (repair, server ops, the scrubber)
// work unchanged against either layout.

// Serializability guard: every count SerializeDatabase writes behind a u32
// length prefix (video count, per-entry shot/group/scene/cluster/event
// counts, string lengths) and every framed entry body size must fit 32
// bits, or the narrowing cast would silently truncate it into a
// corrupt-but-checksum-valid file. Returns kInvalidArgument naming the
// offending entry and field; SaveDatabase checks it before serializing.
util::Status ValidateForSerialize(const VideoDatabase& db);

std::vector<uint8_t> SerializeDatabase(const VideoDatabase& db);
// Strict parse: any structural damage — including a v3 entry whose stored
// CRC-32 does not match its body — fails with DataLoss (messages carry the
// section name and byte offset of the damage).
util::StatusOr<VideoDatabase> ParseDatabase(const std::vector<uint8_t>& bytes);

// Best-effort parse for a damaged database file: recovers the valid video
// prefix, and for v3 files scans past a torn entry for the next
// checksum-confirmed entry frame and recovers the suffix behind the damage
// too (dropped spans itemised in `report`, tears crossed counted in
// `report->resync_points`). Fails only when the header is unreadable.
util::StatusOr<VideoDatabase> ParseDatabaseSalvage(
    const std::vector<uint8_t>& bytes, util::SalvageReport* report);

// Derived on-disk companions of a database at `path`.
std::string DatabaseBackupPath(const std::string& path);    // <path>.prev
std::string DatabaseManifestPath(const std::string& path);  // <path>.manifest

// Advisory description of the current generation, stored next to the
// database ("CMGM": generation counter, byte size, CRC-32 of the file).
struct DatabaseManifest {
  uint64_t generation = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
};

std::vector<uint8_t> SerializeManifest(const DatabaseManifest& manifest);
util::StatusOr<DatabaseManifest> ParseManifest(
    const std::vector<uint8_t>& bytes);
util::StatusOr<DatabaseManifest> LoadManifest(const std::string& path);

// SaveDatabase writes the new generation crash-consistently: the previous
// file survives at DatabaseBackupPath(path) and the bytes go through
// util::AtomicWriteFile (sites "serial.atomic_write.*"), then the manifest
// is refreshed. Honours fail point "index.persist.save" (before the write)
// and retries transient file-system failures.
util::Status SaveDatabase(const VideoDatabase& db, const std::string& path);
// LoadDatabase honours fail point "index.persist.load" (before the read).
util::StatusOr<VideoDatabase> LoadDatabase(const std::string& path);
util::StatusOr<VideoDatabase> LoadDatabaseSalvage(const std::string& path,
                                                  util::SalvageReport* report);

// How OpenDatabaseAnyGeneration satisfied the open.
struct OpenResult {
  VideoDatabase db;
  std::string source_path;   // the file that actually loaded
  bool used_backup = false;  // came from the .prev generation
  bool salvaged = false;     // needed a best-effort parse
};

// Opens whichever generation of `path` is loadable, preferring completeness
// over recency: strict current → strict previous → salvage current →
// salvage previous. Fails only when no generation yields a database.
// Fallback steps taken are noted in `report` (nullptr to discard).
util::StatusOr<OpenResult> OpenDatabaseAnyGeneration(
    const std::string& path, util::SalvageReport* report);

// Integrity audit of one database file (strict parse + manifest check).
struct VerifyReport {
  bool loadable = false;          // strict parse succeeded
  int videos = 0;
  int degraded_videos = 0;        // entries still flagged degraded
  bool manifest_present = false;
  bool manifest_matches = false;  // size + CRC match the file bytes
  uint64_t generation = 0;        // from the manifest, when present
  bool sharded = false;           // root file is a CMSM shard manifest
  int shards = 0;                 // shard count, when sharded
  // When the manifest is stale, names exactly which generation it still
  // describes versus what is on disk (monolithic: recorded size/CRC against
  // the file's; sharded: each shard whose log generation disagrees with the
  // manifest) — so "manifest=stale" is actionable, not just clean()==false.
  std::string stale_detail;
  std::string error;              // first integrity failure, empty if none

  // True when the file is pristine: strictly loadable, no degraded
  // entries, and the manifest (if present) describes exactly these bytes.
  bool clean() const {
    return loadable && degraded_videos == 0 &&
           (!manifest_present || manifest_matches);
  }
  std::string ToString() const;
};

VerifyReport VerifyDatabaseFile(const std::string& path);

namespace internal {

// The v3 entry-frame magic "CMVE". The sharded append-log tier reuses the
// exact monolithic frame layout for its upsert records.
inline constexpr uint32_t kEntryFrameMagic = 0x45564d43;

// Serializes one framed v3 entry (magic, body size u32, CRC-32 u32, body).
void PutFramedEntry(util::ByteWriter* w, const VideoEntry& v);
// Parses one framed v3 entry at the cursor, verifying the stored CRC-32
// before touching the body and requiring exact body consumption.
util::Status GetFramedEntry(util::ByteReader* r, VideoEntry* out);
// u32-narrowing guard for a single entry (every count PutFramedEntry writes
// behind a u32 prefix, plus the framed body size itself); `at` labels the
// entry in error messages.
util::Status ValidateEntry(const VideoEntry& v, const std::string& at);

}  // namespace internal

}  // namespace classminer::index

#endif  // CLASSMINER_INDEX_PERSIST_H_

#ifndef CLASSMINER_INDEX_PERSIST_H_
#define CLASSMINER_INDEX_PERSIST_H_

#include <string>
#include <vector>

#include "index/database.h"
#include "util/salvage.h"
#include "util/status.h"

namespace classminer::index {

// Binary persistence of the mined database (features + structure + events;
// raw media stays in CMV containers). Format "CMDB" version 2: v2 appends a
// per-video degraded flag; v1 files (no flag) still load, reading every
// entry as non-degraded. Writers always emit v2.

std::vector<uint8_t> SerializeDatabase(const VideoDatabase& db);
// Strict parse: any structural damage fails with DataLoss (messages carry
// the section name and byte offset of the damage).
util::StatusOr<VideoDatabase> ParseDatabase(const std::vector<uint8_t>& bytes);

// Best-effort parse for a damaged database file: recovers the valid video
// prefix (a torn entry and everything behind it is dropped) instead of
// refusing the whole file. What was dropped lands in `report` (nullptr to
// discard). Fails only when the header is unreadable.
util::StatusOr<VideoDatabase> ParseDatabaseSalvage(
    const std::vector<uint8_t>& bytes, util::SalvageReport* report);

// SaveDatabase honours fail point "index.persist.save" (before the write)
// and retries transient file-system failures via util::WriteFile.
util::Status SaveDatabase(const VideoDatabase& db, const std::string& path);
util::StatusOr<VideoDatabase> LoadDatabase(const std::string& path);
util::StatusOr<VideoDatabase> LoadDatabaseSalvage(const std::string& path,
                                                  util::SalvageReport* report);

}  // namespace classminer::index

#endif  // CLASSMINER_INDEX_PERSIST_H_

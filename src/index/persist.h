#ifndef CLASSMINER_INDEX_PERSIST_H_
#define CLASSMINER_INDEX_PERSIST_H_

#include <string>
#include <vector>

#include "index/database.h"
#include "util/status.h"

namespace classminer::index {

// Binary persistence of the mined database (features + structure + events;
// raw media stays in CMV containers). Format "CMDB" version 1.

std::vector<uint8_t> SerializeDatabase(const VideoDatabase& db);
util::StatusOr<VideoDatabase> ParseDatabase(const std::vector<uint8_t>& bytes);

util::Status SaveDatabase(const VideoDatabase& db, const std::string& path);
util::StatusOr<VideoDatabase> LoadDatabase(const std::string& path);

}  // namespace classminer::index

#endif  // CLASSMINER_INDEX_PERSIST_H_

#include "index/hier_index.h"

#include <algorithm>
#include <chrono>
#include <map>

namespace classminer::index {
namespace {

constexpr events::EventType kEventOrder[] = {
    events::EventType::kPresentation, events::EventType::kDialog,
    events::EventType::kClinicalOperation, events::EventType::kUndetermined};

}  // namespace

HierarchicalIndex::HierarchicalIndex(const VideoDatabase* db,
                                     const ConceptHierarchy* concepts,
                                     const Options& options,
                                     const util::ExecutionContext& ctx)
    : db_(db), concepts_(concepts), options_(options) {
  Build(ctx);
}

HierarchicalIndex::HierarchicalIndex(const VideoDatabase* db,
                                     const ConceptHierarchy* concepts)
    : HierarchicalIndex(db, concepts, Options()) {}

int HierarchicalIndex::BucketKey(const features::ShotFeatures& f) {
  int best = 0;
  double best_v = -1.0;
  for (int i = 0; i < features::kHistogramDims; ++i) {
    if (f.histogram[static_cast<size_t>(i)] > best_v) {
      best_v = f.histogram[static_cast<size_t>(i)];
      best = i;
    }
  }
  return best;
}

std::vector<const features::ShotFeatures*> HierarchicalIndex::PickCenters(
    const std::vector<ShotRef>& members,
    const util::ExecutionContext& ctx) const {
  std::vector<const features::ShotFeatures*> centers;
  if (members.empty()) return centers;
  const int n = static_cast<int>(members.size());
  const int want = std::min<int>(options_.centers_per_node, n);

  // First centre: the medoid (largest average similarity to the others);
  // further centres by farthest-point traversal so multi-modal content gets
  // one centre per mode. The O(n^2) similarity accumulations fill fixed
  // per-member slots in parallel; the argmax/argmin scans stay serial in
  // ascending member order with strict comparisons (first best wins), so
  // the chosen centres match the serial build exactly.
  std::vector<double> avg(members.size(), 0.0);
  util::ParallelFor(
      ctx, n,
      [&](int ii) {
        const size_t i = static_cast<size_t>(ii);
        double acc = 0.0;
        for (size_t j = 0; j < members.size(); ++j) {
          if (i == j) continue;
          acc += features::StSim(db_->Features(members[i]),
                                 db_->Features(members[j]));
        }
        avg[i] = members.size() > 1
                     ? acc / (static_cast<double>(members.size()) - 1.0)
                     : 1.0;
      },
      /*grain=*/4);
  size_t medoid = 0;
  double best_avg = -1.0;
  for (size_t i = 0; i < members.size(); ++i) {
    if (avg[i] > best_avg) {
      best_avg = avg[i];
      medoid = i;
    }
  }
  std::vector<size_t> chosen{medoid};
  while (static_cast<int>(chosen.size()) < want) {
    // Nearest-chosen similarity per unchosen member (-1 marks chosen
    // members; the serial value is always >= 0).
    std::vector<double> nearest(members.size(), -1.0);
    util::ParallelFor(
        ctx, n,
        [&](int ii) {
          const size_t i = static_cast<size_t>(ii);
          if (std::find(chosen.begin(), chosen.end(), i) != chosen.end()) {
            return;
          }
          double sim = 0.0;
          for (size_t c : chosen) {
            sim = std::max(sim, features::StSim(db_->Features(members[i]),
                                                db_->Features(members[c])));
          }
          nearest[i] = sim;
        },
        /*grain=*/4);
    size_t farthest = chosen.front();
    double farthest_sim = 2.0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (nearest[i] < 0.0) continue;
      if (nearest[i] < farthest_sim) {
        farthest_sim = nearest[i];
        farthest = i;
      }
    }
    if (std::find(chosen.begin(), chosen.end(), farthest) != chosen.end()) {
      break;
    }
    chosen.push_back(farthest);
  }
  for (size_t c : chosen) centers.push_back(&db_->Features(members[c]));
  return centers;
}

void HierarchicalIndex::Build(const util::ExecutionContext& ctx) {
  util::StageTimer timer(ctx.metrics(), "index_build", ctx.thread_count());
  // Partition every shot by (event category, video, scene).
  struct SceneKey {
    int video;
    int scene;
    bool operator<(const SceneKey& o) const {
      return video != o.video ? video < o.video : scene < o.scene;
    }
  };
  std::map<events::EventType, std::map<SceneKey, std::vector<ShotRef>>>
      partitions;
  for (int v = 0; v < db_->video_count(); ++v) {
    const VideoEntry& entry = db_->video(v);
    for (size_t s = 0; s < entry.structure.shots.size(); ++s) {
      const int shot = static_cast<int>(s);
      const int scene = entry.SceneOfShot(shot);
      const events::EventType event = entry.EventOfShot(shot);
      partitions[event][SceneKey{v, scene}].push_back(ShotRef{v, shot});
    }
  }

  for (events::EventType event : kEventOrder) {
    auto it = partitions.find(event);
    if (it == partitions.end()) continue;
    ClusterNode cluster;
    cluster.event = event;
    cluster.concept_node = concepts_->SceneNodeForEvent(event);

    // Subclusters: one per video within the category.
    std::map<int, SubclusterNode> subs;
    std::vector<ShotRef> cluster_members;
    for (const auto& [key, shots] : it->second) {
      SubclusterNode& sub = subs[key.video];
      sub.video_id = key.video;
      SceneNode scene;
      scene.shots = shots;
      for (const ShotRef& ref : shots) {
        scene.buckets[BucketKey(db_->Features(ref))].push_back(ref);
      }
      scene.centers = PickCenters(shots, ctx);
      sub.scenes.push_back(std::move(scene));
      cluster_members.insert(cluster_members.end(), shots.begin(),
                             shots.end());
    }
    for (auto& [video, sub] : subs) {
      std::vector<ShotRef> sub_members;
      for (const SceneNode& scene : sub.scenes) {
        sub_members.insert(sub_members.end(), scene.shots.begin(),
                           scene.shots.end());
      }
      sub.centers = PickCenters(sub_members, ctx);
      cluster.subclusters.push_back(std::move(sub));
    }
    cluster.centers = PickCenters(cluster_members, ctx);
    clusters_.push_back(std::move(cluster));
  }
  timer.set_items(static_cast<int64_t>(TotalIndexedShots()));
}

double HierarchicalIndex::CenterSimilarity(
    const features::ShotFeatures& query,
    const std::vector<const features::ShotFeatures*>& centers,
    size_t* comparisons) const {
  double best = 0.0;
  for (const features::ShotFeatures* c : centers) {
    best = std::max(best, features::StSim(query, *c));
    ++*comparisons;
  }
  return best;
}

std::vector<QueryMatch> HierarchicalIndex::Search(
    const features::ShotFeatures& query, int k, QueryStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  QueryStats local;

  // Level 1: rank clusters by centre similarity, keep the best `beam`.
  std::vector<std::pair<double, const ClusterNode*>> cluster_rank;
  for (const ClusterNode& c : clusters_) {
    cluster_rank.emplace_back(
        CenterSimilarity(query, c.centers, &local.cluster_comparisons), &c);
  }
  std::sort(cluster_rank.begin(), cluster_rank.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const size_t beam = static_cast<size_t>(std::max(1, options_.beam_width));

  // Level 2: subclusters within surviving clusters.
  std::vector<std::pair<double, const SubclusterNode*>> sub_rank;
  for (size_t i = 0; i < std::min(beam, cluster_rank.size()); ++i) {
    for (const SubclusterNode& sub : cluster_rank[i].second->subclusters) {
      sub_rank.emplace_back(
          CenterSimilarity(query, sub.centers, &local.subcluster_comparisons),
          &sub);
    }
  }
  std::sort(sub_rank.begin(), sub_rank.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  // Level 3: scene nodes within surviving subclusters.
  std::vector<std::pair<double, const SceneNode*>> scene_rank;
  for (size_t i = 0; i < std::min(beam, sub_rank.size()); ++i) {
    for (const SceneNode& scene : sub_rank[i].second->scenes) {
      scene_rank.emplace_back(
          CenterSimilarity(query, scene.centers, &local.scene_comparisons),
          &scene);
    }
  }
  std::sort(scene_rank.begin(), scene_rank.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  // Level 4: shots of the surviving scene nodes. Probe the hash bucket
  // first; when it cannot satisfy k, fall back to the node's full shot list.
  std::vector<QueryMatch> matches;
  const int bucket = BucketKey(query);
  for (size_t i = 0; i < std::min(beam, scene_rank.size()); ++i) {
    const SceneNode* scene = scene_rank[i].second;
    const std::vector<ShotRef>* candidates = &scene->shots;
    auto bit = scene->buckets.find(bucket);
    if (bit != scene->buckets.end() &&
        bit->second.size() >= static_cast<size_t>(std::max(k, 1))) {
      candidates = &bit->second;
    }
    for (const ShotRef& ref : *candidates) {
      matches.push_back({ref, features::StSim(query, db_->Features(ref))});
      ++local.shot_comparisons;
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              return a.similarity > b.similarity;
            });
  local.ranked = matches.size();
  if (k >= 0 && matches.size() > static_cast<size_t>(k)) {
    matches.resize(static_cast<size_t>(k));
  }
  local.elapsed_us = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  if (stats != nullptr) *stats = local;
  return matches;
}

size_t HierarchicalIndex::TotalSceneNodes() const {
  size_t n = 0;
  for (const ClusterNode& c : clusters_) {
    for (const SubclusterNode& s : c.subclusters) n += s.scenes.size();
  }
  return n;
}

size_t HierarchicalIndex::TotalIndexedShots() const {
  size_t n = 0;
  for (const ClusterNode& c : clusters_) {
    for (const SubclusterNode& s : c.subclusters) {
      for (const SceneNode& scene : s.scenes) n += scene.shots.size();
    }
  }
  return n;
}

}  // namespace classminer::index

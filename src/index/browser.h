#ifndef CLASSMINER_INDEX_BROWSER_H_
#define CLASSMINER_INDEX_BROWSER_H_

#include <string>
#include <vector>

#include "index/access_control.h"
#include "index/classifier.h"
#include "index/database.h"
#include "util/exec_context.h"

namespace classminer::index {

// Hierarchical video browsing (paper Sec. 5): the database presented along
// the concept hierarchy — semantic cluster -> video -> scene (with event
// label) -> shots — filtered by the requesting user's access rights.
struct BrowseShot {
  int shot_index = -1;
  int start_frame = 0;
  int end_frame = 0;
};

struct BrowseScene {
  int scene_index = -1;
  events::EventType event = events::EventType::kUndetermined;
  std::vector<BrowseShot> shots;
};

struct BrowseVideo {
  int video_id = -1;
  std::string name;
  std::vector<BrowseScene> scenes;
};

struct BrowseCluster {
  int concept_node = -1;
  std::string concept_path;
  std::vector<BrowseVideo> videos;
};

// Builds the browse tree for `user`: videos land under their classified
// semantic cluster; scenes (and whole videos) the user may not access are
// omitted. The context's metrics registry (if any) receives one "browse"
// row covering classification and tree assembly, letting the CLI report
// end-to-end per-video cost.
std::vector<BrowseCluster> BuildBrowseTree(
    const VideoDatabase& db, const ConceptHierarchy& concepts,
    const AccessController& access, const UserCredential& user,
    const util::ExecutionContext& ctx = {});

// Renders the tree as an indented text listing.
std::string RenderBrowseTree(const std::vector<BrowseCluster>& tree);

}  // namespace classminer::index

#endif  // CLASSMINER_INDEX_BROWSER_H_

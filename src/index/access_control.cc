#include "index/access_control.h"

#include <algorithm>

namespace classminer::index {

bool AccessController::CanAccessNode(const UserCredential& user,
                                     int node_id) const {
  if (node_id < 0 || node_id >= concepts_->node_count()) return false;
  // Walk to the root: every ancestor must be clear of explicit denials, and
  // the clearance must cover the maximum security level on the path.
  int cur = node_id;
  while (cur >= 0) {
    if (user.denied_nodes.count(cur) > 0) return false;
    if (concepts_->node(cur).security_level > user.clearance) return false;
    cur = concepts_->node(cur).parent;
  }
  return true;
}

bool AccessController::CanAccessShot(const UserCredential& user,
                                     const VideoDatabase& db,
                                     const ShotRef& ref) const {
  const events::EventType event =
      db.video(ref.video_id).EventOfShot(ref.shot_index);
  const int node = concepts_->SceneNodeForEvent(event);
  if (node < 0) {
    // Unmapped content is visible only to clearance >= 1 users (closed
    // default keeps unclassified material away from anonymous accounts).
    return user.clearance >= 1;
  }
  return CanAccessNode(user, node);
}

std::vector<QueryMatch> AccessController::FilterMatches(
    const UserCredential& user, const VideoDatabase& db,
    std::vector<QueryMatch> matches) const {
  matches.erase(std::remove_if(matches.begin(), matches.end(),
                               [&](const QueryMatch& m) {
                                 return !CanAccessShot(user, db, m.ref);
                               }),
                matches.end());
  return matches;
}

}  // namespace classminer::index

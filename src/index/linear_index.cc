#include "index/linear_index.h"

#include <algorithm>
#include <chrono>

namespace classminer::index {

LinearIndex::LinearIndex(const VideoDatabase* db)
    : db_(db), shots_(db->AllShots()) {}

std::vector<QueryMatch> LinearIndex::Search(
    const features::ShotFeatures& query, int k, QueryStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  std::vector<QueryMatch> matches;
  matches.reserve(shots_.size());
  for (const ShotRef& ref : shots_) {
    matches.push_back({ref, features::StSim(query, db_->Features(ref))});
  }
  std::sort(matches.begin(), matches.end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              return a.similarity > b.similarity;
            });
  if (k >= 0 && matches.size() > static_cast<size_t>(k)) {
    matches.resize(static_cast<size_t>(k));
  }
  if (stats != nullptr) {
    stats->shot_comparisons = shots_.size();
    stats->ranked = shots_.size();
    stats->elapsed_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
  }
  return matches;
}

}  // namespace classminer::index

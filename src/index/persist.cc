#include "index/persist.h"

#include <string>
#include <utility>

#include "util/failpoint.h"
#include "util/serial.h"

namespace classminer::index {
namespace {

constexpr uint32_t kMagic = 0x42444d43;  // "CMDB"
// v1: no per-video degraded flag. v2: one u8 degraded flag per video.
constexpr uint32_t kVersion = 2;

void PutFeatures(util::ByteWriter* w, const features::ShotFeatures& f) {
  for (double v : f.histogram) w->PutF64(v);
  for (double v : f.tamura) w->PutF64(v);
}

util::Status GetFeatures(util::ByteReader* r, features::ShotFeatures* f) {
  for (double& v : f->histogram) {
    util::StatusOr<double> x = r->GetF64();
    if (!x.ok()) return x.status();
    v = *x;
  }
  for (double& v : f->tamura) {
    util::StatusOr<double> x = r->GetF64();
    if (!x.ok()) return x.status();
    v = *x;
  }
  return util::Status::Ok();
}

void PutIntVector(util::ByteWriter* w, const std::vector<int>& v) {
  w->PutU32(static_cast<uint32_t>(v.size()));
  for (int x : v) w->PutI32(x);
}

util::Status GetIntVector(util::ByteReader* r, std::vector<int>* v) {
  util::StatusOr<uint32_t> n = r->GetU32();
  if (!n.ok()) return n.status();
  v->resize(*n);
  for (int& x : *v) {
    util::StatusOr<int32_t> i = r->GetI32();
    if (!i.ok()) return i.status();
    x = *i;
  }
  return util::Status::Ok();
}

void PutVideo(util::ByteWriter* w, const VideoEntry& v) {
  w->PutString(v.name);

  const structure::ContentStructure& cs = v.structure;
  w->PutU32(static_cast<uint32_t>(cs.shots.size()));
  for (const shot::Shot& s : cs.shots) {
    w->PutI32(s.index);
    w->PutI32(s.start_frame);
    w->PutI32(s.end_frame);
    w->PutI32(s.rep_frame);
    PutFeatures(w, s.features);
  }

  w->PutU32(static_cast<uint32_t>(cs.groups.size()));
  for (const structure::Group& g : cs.groups) {
    w->PutI32(g.index);
    w->PutI32(g.start_shot);
    w->PutI32(g.end_shot);
    w->PutU8(g.temporally_related ? 1 : 0);
    w->PutU32(static_cast<uint32_t>(g.clusters.size()));
    for (const structure::ShotCluster& c : g.clusters) {
      PutIntVector(w, c.shot_indices);
      w->PutI32(c.rep_shot);
    }
    PutIntVector(w, g.rep_shots);
  }

  w->PutU32(static_cast<uint32_t>(cs.scenes.size()));
  for (const structure::Scene& s : cs.scenes) {
    w->PutI32(s.index);
    w->PutI32(s.start_group);
    w->PutI32(s.end_group);
    w->PutI32(s.rep_group);
    w->PutU8(s.eliminated ? 1 : 0);
  }

  w->PutU32(static_cast<uint32_t>(cs.clustered_scenes.size()));
  for (const structure::SceneCluster& c : cs.clustered_scenes) {
    PutIntVector(w, c.scene_indices);
    w->PutI32(c.rep_group);
  }

  w->PutU32(static_cast<uint32_t>(v.events.size()));
  for (const events::EventRecord& e : v.events) {
    w->PutI32(e.scene_index);
    w->PutI32(static_cast<int32_t>(e.type));
    w->PutU8(e.has_slide ? 1 : 0);
    w->PutU8(e.has_face_closeup ? 1 : 0);
    w->PutU8(e.has_temporal_group ? 1 : 0);
    w->PutU8(e.any_speaker_change ? 1 : 0);
    w->PutU8(e.dialog_speaker_duplicated ? 1 : 0);
    w->PutU8(e.has_skin_closeup ? 1 : 0);
    w->PutU8(e.has_blood ? 1 : 0);
    w->PutI32(e.skin_shot_count);
    w->PutI32(e.shot_count);
  }

  w->PutU8(v.degraded ? 1 : 0);  // v2
}

util::Status GetVideo(util::ByteReader* r, uint32_t version,
                      VideoEntry* out) {
  util::StatusOr<std::string> name = r->GetString();
  if (!name.ok()) return name.status();
  out->name = *name;

  auto get_i32 = [r](int* v) -> util::Status {
    util::StatusOr<int32_t> x = r->GetI32();
    if (!x.ok()) return x.status();
    *v = *x;
    return util::Status::Ok();
  };
  auto get_u8 = [r](bool* v) -> util::Status {
    util::StatusOr<uint8_t> x = r->GetU8();
    if (!x.ok()) return x.status();
    *v = *x != 0;
    return util::Status::Ok();
  };

  structure::ContentStructure& cs = out->structure;
  util::StatusOr<uint32_t> shot_count = r->GetU32();
  if (!shot_count.ok()) return shot_count.status();
  // Every serialised shot carries 4 ints + 266 doubles; reject counts the
  // remaining buffer cannot hold (guards hostile resize sizes).
  if (*shot_count > r->remaining() / (16 + 266 * 8)) {
    return r->Corrupt("shot count exceeds database size");
  }
  cs.shots.resize(*shot_count);
  for (shot::Shot& s : cs.shots) {
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.index));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.start_frame));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.end_frame));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.rep_frame));
    CLASSMINER_RETURN_IF_ERROR(GetFeatures(r, &s.features));
  }

  util::StatusOr<uint32_t> group_count = r->GetU32();
  if (!group_count.ok()) return group_count.status();
  cs.groups.resize(*group_count);
  for (structure::Group& g : cs.groups) {
    CLASSMINER_RETURN_IF_ERROR(get_i32(&g.index));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&g.start_shot));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&g.end_shot));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&g.temporally_related));
    util::StatusOr<uint32_t> clusters = r->GetU32();
    if (!clusters.ok()) return clusters.status();
    g.clusters.resize(*clusters);
    for (structure::ShotCluster& c : g.clusters) {
      CLASSMINER_RETURN_IF_ERROR(GetIntVector(r, &c.shot_indices));
      CLASSMINER_RETURN_IF_ERROR(get_i32(&c.rep_shot));
    }
    CLASSMINER_RETURN_IF_ERROR(GetIntVector(r, &g.rep_shots));
  }

  util::StatusOr<uint32_t> scene_count = r->GetU32();
  if (!scene_count.ok()) return scene_count.status();
  cs.scenes.resize(*scene_count);
  for (structure::Scene& s : cs.scenes) {
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.index));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.start_group));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.end_group));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.rep_group));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&s.eliminated));
  }

  util::StatusOr<uint32_t> cluster_count = r->GetU32();
  if (!cluster_count.ok()) return cluster_count.status();
  cs.clustered_scenes.resize(*cluster_count);
  for (structure::SceneCluster& c : cs.clustered_scenes) {
    CLASSMINER_RETURN_IF_ERROR(GetIntVector(r, &c.scene_indices));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&c.rep_group));
  }

  util::StatusOr<uint32_t> event_count = r->GetU32();
  if (!event_count.ok()) return event_count.status();
  out->events.resize(*event_count);
  for (events::EventRecord& e : out->events) {
    CLASSMINER_RETURN_IF_ERROR(get_i32(&e.scene_index));
    int type = 0;
    CLASSMINER_RETURN_IF_ERROR(get_i32(&type));
    if (type < 0 || type > 3) {
      return r->Corrupt("invalid event type in database");
    }
    e.type = static_cast<events::EventType>(type);
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.has_slide));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.has_face_closeup));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.has_temporal_group));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.any_speaker_change));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.dialog_speaker_duplicated));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.has_skin_closeup));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.has_blood));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&e.skin_shot_count));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&e.shot_count));
  }

  if (version >= 2) {
    CLASSMINER_RETURN_IF_ERROR(get_u8(&out->degraded));
  }
  return util::Status::Ok();
}

// Reads the CMDB header (magic, version, video count).
util::Status ParseDatabaseHeader(util::ByteReader* r, uint32_t* version,
                                 uint32_t* video_count) {
  r->set_section("header");
  util::StatusOr<uint32_t> magic = r->GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic) return r->Corrupt("bad CMDB magic");
  util::StatusOr<uint32_t> v = r->GetU32();
  if (!v.ok()) return v.status();
  if (*v < 1 || *v > kVersion) {
    return r->Corrupt("unsupported CMDB version " + std::to_string(*v));
  }
  *version = *v;
  util::StatusOr<uint32_t> videos = r->GetU32();
  if (!videos.ok()) return videos.status();
  *video_count = *videos;
  return util::Status::Ok();
}

}  // namespace

std::vector<uint8_t> SerializeDatabase(const VideoDatabase& db) {
  util::ByteWriter w;
  w.PutU32(kMagic);
  w.PutU32(kVersion);
  w.PutU32(static_cast<uint32_t>(db.video_count()));
  for (int v = 0; v < db.video_count(); ++v) {
    PutVideo(&w, db.video(v));
  }
  return w.Release();
}

util::StatusOr<VideoDatabase> ParseDatabase(
    const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  uint32_t version = 0;
  uint32_t videos = 0;
  CLASSMINER_RETURN_IF_ERROR(ParseDatabaseHeader(&r, &version, &videos));

  VideoDatabase db;
  for (uint32_t i = 0; i < videos; ++i) {
    r.set_section("videos[" + std::to_string(i) + "]");
    VideoEntry entry;
    CLASSMINER_RETURN_IF_ERROR(GetVideo(&r, version, &entry));
    db.AddVideo(std::move(entry.name), std::move(entry.structure),
                std::move(entry.events), entry.degraded);
  }
  return db;
}

util::StatusOr<VideoDatabase> ParseDatabaseSalvage(
    const std::vector<uint8_t>& bytes, util::SalvageReport* report) {
  util::SalvageReport local;
  if (report == nullptr) report = &local;
  util::ByteReader r(bytes);
  uint32_t version = 0;
  uint32_t videos = 0;
  // Nothing precedes the header, so a damaged header is unrecoverable.
  CLASSMINER_RETURN_IF_ERROR(ParseDatabaseHeader(&r, &version, &videos));

  VideoDatabase db;
  for (uint32_t i = 0; i < videos; ++i) {
    r.set_section("videos[" + std::to_string(i) + "]");
    const size_t entry_start = r.position();
    VideoEntry entry;
    const util::Status video = GetVideo(&r, version, &entry);
    if (!video.ok()) {
      // Entries are written sequentially with no per-entry framing: a torn
      // entry makes everything behind it unframed bytes. Keep the prefix.
      report->bytes_dropped += bytes.size() - entry_start;
      report->items_dropped += static_cast<int>(videos - i);
      report->AddNote("videos: " + video.message());
      break;
    }
    db.AddVideo(std::move(entry.name), std::move(entry.structure),
                std::move(entry.events), entry.degraded);
  }
  report->items_recovered += db.video_count();
  return db;
}

util::Status SaveDatabase(const VideoDatabase& db, const std::string& path) {
  CLASSMINER_RETURN_IF_ERROR(util::FailPoint::Check("index.persist.save"));
  return util::WriteFile(path, SerializeDatabase(db));
}

util::StatusOr<VideoDatabase> LoadDatabase(const std::string& path) {
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseDatabase(*bytes);
}

util::StatusOr<VideoDatabase> LoadDatabaseSalvage(
    const std::string& path, util::SalvageReport* report) {
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseDatabaseSalvage(*bytes, report);
}

}  // namespace classminer::index

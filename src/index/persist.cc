#include "index/persist.h"

#include <cstdio>
#include <string>
#include <utility>

#include "index/shard.h"
#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/serial.h"

namespace classminer::index {
namespace {

constexpr uint32_t kMagic = 0x42444d43;  // "CMDB"
// v1: no per-video degraded flag. v2: one u8 degraded flag per video.
// v3: every video entry framed as (kEntryMagic, body size, CRC-32, body).
constexpr uint32_t kVersion = 3;
constexpr uint32_t kEntryMagic = 0x45564d43;     // "CMVE"
constexpr uint32_t kManifestMagic = 0x4d474d43;  // "CMGM"

uint32_t ReadU32LE(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

void PutFeatures(util::ByteWriter* w, const features::ShotFeatures& f) {
  for (double v : f.histogram) w->PutF64(v);
  for (double v : f.tamura) w->PutF64(v);
}

util::Status GetFeatures(util::ByteReader* r, features::ShotFeatures* f) {
  for (double& v : f->histogram) {
    util::StatusOr<double> x = r->GetF64();
    if (!x.ok()) return x.status();
    v = *x;
  }
  for (double& v : f->tamura) {
    util::StatusOr<double> x = r->GetF64();
    if (!x.ok()) return x.status();
    v = *x;
  }
  return util::Status::Ok();
}

void PutIntVector(util::ByteWriter* w, const std::vector<int>& v) {
  w->PutU32(static_cast<uint32_t>(v.size()));
  for (int x : v) w->PutI32(x);
}

util::Status GetIntVector(util::ByteReader* r, std::vector<int>* v) {
  util::StatusOr<uint32_t> n = r->GetU32();
  if (!n.ok()) return n.status();
  v->resize(*n);
  for (int& x : *v) {
    util::StatusOr<int32_t> i = r->GetI32();
    if (!i.ok()) return i.status();
    x = *i;
  }
  return util::Status::Ok();
}

void PutVideo(util::ByteWriter* w, const VideoEntry& v) {
  w->PutString(v.name);

  const structure::ContentStructure& cs = v.structure;
  w->PutU32(static_cast<uint32_t>(cs.shots.size()));
  for (const shot::Shot& s : cs.shots) {
    w->PutI32(s.index);
    w->PutI32(s.start_frame);
    w->PutI32(s.end_frame);
    w->PutI32(s.rep_frame);
    PutFeatures(w, s.features);
  }

  w->PutU32(static_cast<uint32_t>(cs.groups.size()));
  for (const structure::Group& g : cs.groups) {
    w->PutI32(g.index);
    w->PutI32(g.start_shot);
    w->PutI32(g.end_shot);
    w->PutU8(g.temporally_related ? 1 : 0);
    w->PutU32(static_cast<uint32_t>(g.clusters.size()));
    for (const structure::ShotCluster& c : g.clusters) {
      PutIntVector(w, c.shot_indices);
      w->PutI32(c.rep_shot);
    }
    PutIntVector(w, g.rep_shots);
  }

  w->PutU32(static_cast<uint32_t>(cs.scenes.size()));
  for (const structure::Scene& s : cs.scenes) {
    w->PutI32(s.index);
    w->PutI32(s.start_group);
    w->PutI32(s.end_group);
    w->PutI32(s.rep_group);
    w->PutU8(s.eliminated ? 1 : 0);
  }

  w->PutU32(static_cast<uint32_t>(cs.clustered_scenes.size()));
  for (const structure::SceneCluster& c : cs.clustered_scenes) {
    PutIntVector(w, c.scene_indices);
    w->PutI32(c.rep_group);
  }

  w->PutU32(static_cast<uint32_t>(v.events.size()));
  for (const events::EventRecord& e : v.events) {
    w->PutI32(e.scene_index);
    w->PutI32(static_cast<int32_t>(e.type));
    w->PutU8(e.has_slide ? 1 : 0);
    w->PutU8(e.has_face_closeup ? 1 : 0);
    w->PutU8(e.has_temporal_group ? 1 : 0);
    w->PutU8(e.any_speaker_change ? 1 : 0);
    w->PutU8(e.dialog_speaker_duplicated ? 1 : 0);
    w->PutU8(e.has_skin_closeup ? 1 : 0);
    w->PutU8(e.has_blood ? 1 : 0);
    w->PutI32(e.skin_shot_count);
    w->PutI32(e.shot_count);
  }

  w->PutU8(v.degraded ? 1 : 0);  // v2
}

util::Status GetVideo(util::ByteReader* r, uint32_t version,
                      VideoEntry* out) {
  util::StatusOr<std::string> name = r->GetString();
  if (!name.ok()) return name.status();
  out->name = *name;

  auto get_i32 = [r](int* v) -> util::Status {
    util::StatusOr<int32_t> x = r->GetI32();
    if (!x.ok()) return x.status();
    *v = *x;
    return util::Status::Ok();
  };
  auto get_u8 = [r](bool* v) -> util::Status {
    util::StatusOr<uint8_t> x = r->GetU8();
    if (!x.ok()) return x.status();
    *v = *x != 0;
    return util::Status::Ok();
  };

  structure::ContentStructure& cs = out->structure;
  util::StatusOr<uint32_t> shot_count = r->GetU32();
  if (!shot_count.ok()) return shot_count.status();
  // Every serialised shot carries 4 ints + 266 doubles; reject counts the
  // remaining buffer cannot hold (guards hostile resize sizes).
  if (*shot_count > r->remaining() / (16 + 266 * 8)) {
    return r->Corrupt("shot count exceeds database size");
  }
  cs.shots.resize(*shot_count);
  for (shot::Shot& s : cs.shots) {
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.index));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.start_frame));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.end_frame));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.rep_frame));
    CLASSMINER_RETURN_IF_ERROR(GetFeatures(r, &s.features));
  }

  util::StatusOr<uint32_t> group_count = r->GetU32();
  if (!group_count.ok()) return group_count.status();
  cs.groups.resize(*group_count);
  for (structure::Group& g : cs.groups) {
    CLASSMINER_RETURN_IF_ERROR(get_i32(&g.index));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&g.start_shot));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&g.end_shot));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&g.temporally_related));
    util::StatusOr<uint32_t> clusters = r->GetU32();
    if (!clusters.ok()) return clusters.status();
    g.clusters.resize(*clusters);
    for (structure::ShotCluster& c : g.clusters) {
      CLASSMINER_RETURN_IF_ERROR(GetIntVector(r, &c.shot_indices));
      CLASSMINER_RETURN_IF_ERROR(get_i32(&c.rep_shot));
    }
    CLASSMINER_RETURN_IF_ERROR(GetIntVector(r, &g.rep_shots));
  }

  util::StatusOr<uint32_t> scene_count = r->GetU32();
  if (!scene_count.ok()) return scene_count.status();
  cs.scenes.resize(*scene_count);
  for (structure::Scene& s : cs.scenes) {
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.index));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.start_group));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.end_group));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&s.rep_group));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&s.eliminated));
  }

  util::StatusOr<uint32_t> cluster_count = r->GetU32();
  if (!cluster_count.ok()) return cluster_count.status();
  cs.clustered_scenes.resize(*cluster_count);
  for (structure::SceneCluster& c : cs.clustered_scenes) {
    CLASSMINER_RETURN_IF_ERROR(GetIntVector(r, &c.scene_indices));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&c.rep_group));
  }

  util::StatusOr<uint32_t> event_count = r->GetU32();
  if (!event_count.ok()) return event_count.status();
  out->events.resize(*event_count);
  for (events::EventRecord& e : out->events) {
    CLASSMINER_RETURN_IF_ERROR(get_i32(&e.scene_index));
    int type = 0;
    CLASSMINER_RETURN_IF_ERROR(get_i32(&type));
    if (type < 0 || type > 3) {
      return r->Corrupt("invalid event type in database");
    }
    e.type = static_cast<events::EventType>(type);
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.has_slide));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.has_face_closeup));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.has_temporal_group));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.any_speaker_change));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.dialog_speaker_duplicated));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.has_skin_closeup));
    CLASSMINER_RETURN_IF_ERROR(get_u8(&e.has_blood));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&e.skin_shot_count));
    CLASSMINER_RETURN_IF_ERROR(get_i32(&e.shot_count));
  }

  if (version >= 2) {
    CLASSMINER_RETURN_IF_ERROR(get_u8(&out->degraded));
  }
  return util::Status::Ok();
}

// Writes one v3 framed entry: entry magic, body size, CRC-32 over the
// body bytes, then the body itself.
void PutFramedVideo(util::ByteWriter* w, const VideoEntry& v) {
  util::ByteWriter body;
  PutVideo(&body, v);
  w->PutU32(kEntryMagic);
  w->PutU32(static_cast<uint32_t>(body.size()));
  w->PutU32(util::Crc32(body.bytes()));
  w->PutBytes(body.bytes().data(), body.size());
}

// Reads one v3 framed entry, verifying the stored CRC-32 against the body
// bytes before parsing them (so a bit-flip surfaces as a checksum mismatch
// at this entry, not as a structural error somewhere downstream). The body
// must consume exactly its declared size.
util::Status GetFramedVideo(util::ByteReader* r, uint32_t version,
                            VideoEntry* out) {
  util::StatusOr<uint32_t> magic = r->GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kEntryMagic) return r->Corrupt("bad video entry magic");
  util::StatusOr<uint32_t> body_size = r->GetU32();
  if (!body_size.ok()) return body_size.status();
  util::StatusOr<uint32_t> stored = r->GetU32();
  if (!stored.ok()) return stored.status();
  if (*body_size > r->remaining()) {
    return r->Corrupt("video entry body exceeds database size");
  }
  const size_t body_start = r->position();
  if (util::Crc32(r->data() + body_start, *body_size) != *stored) {
    return r->Corrupt("video entry checksum mismatch");
  }
  CLASSMINER_RETURN_IF_ERROR(GetVideo(r, version, out));
  if (r->position() != body_start + *body_size) {
    return r->Corrupt("video entry body size mismatch");
  }
  return util::Status::Ok();
}

// Dispatches on the format generation: v3 entries are framed + checksummed,
// v1/v2 bodies sit back to back.
util::Status GetVideoEntry(util::ByteReader* r, uint32_t version,
                           VideoEntry* out) {
  if (version >= 3) return GetFramedVideo(r, version, out);
  return GetVideo(r, version, out);
}

// True when a complete, checksum-confirmed v3 entry frame starts at `pos`.
// The CRC makes a false positive on arbitrary bytes ~2^-32, so the salvage
// scanner can treat a hit as a confirmed resynchronisation point.
bool PlausibleEntryAt(const std::vector<uint8_t>& bytes, size_t pos) {
  if (pos + 12 > bytes.size()) return false;
  if (ReadU32LE(bytes.data() + pos) != kEntryMagic) return false;
  const uint32_t body_size = ReadU32LE(bytes.data() + pos + 4);
  if (body_size > bytes.size() - pos - 12) return false;
  return util::Crc32(bytes.data() + pos + 12, body_size) ==
         ReadU32LE(bytes.data() + pos + 8);
}

// Reads the CMDB header (magic, version, video count).
util::Status ParseDatabaseHeader(util::ByteReader* r, uint32_t* version,
                                 uint32_t* video_count) {
  r->set_section("header");
  util::StatusOr<uint32_t> magic = r->GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic) return r->Corrupt("bad CMDB magic");
  util::StatusOr<uint32_t> v = r->GetU32();
  if (!v.ok()) return v.status();
  if (*v < 1 || *v > kVersion) {
    return r->Corrupt("unsupported CMDB version " + std::to_string(*v));
  }
  *version = *v;
  util::StatusOr<uint32_t> videos = r->GetU32();
  if (!videos.ok()) return videos.status();
  *video_count = *videos;
  return util::Status::Ok();
}

// Exact serialized body size of one entry, mirroring PutVideo's layout
// (string = 4 + length, shot = 4 i32 + feature doubles, scene = 4 i32 +
// flag, event = 4 i32 + 7 flags). Counted in 64 bits so an entry too large
// to frame is detected instead of wrapped.
uint64_t SerializedBodySize(const VideoEntry& v) {
  const structure::ContentStructure& cs = v.structure;
  uint64_t size = 4 + v.name.size();
  size += 4;
  for (const shot::Shot& s : cs.shots) {
    size += 16 + 8ull * (s.features.histogram.size() + s.features.tamura.size());
  }
  size += 4;
  for (const structure::Group& g : cs.groups) {
    size += 13 + 4;
    for (const structure::ShotCluster& c : g.clusters) {
      size += 4 + 4ull * c.shot_indices.size() + 4;
    }
    size += 4 + 4ull * g.rep_shots.size();
  }
  size += 4 + 17ull * cs.scenes.size();
  size += 4;
  for (const structure::SceneCluster& c : cs.clustered_scenes) {
    size += 4 + 4ull * c.scene_indices.size() + 4;
  }
  size += 4 + 23ull * v.events.size();
  size += 1;  // degraded flag
  return size;
}

}  // namespace

util::Status ValidateForSerialize(const VideoDatabase& db) {
  CLASSMINER_RETURN_IF_ERROR(util::CheckU32Count(
      static_cast<size_t>(db.video_count()), "CMDB video"));
  for (int i = 0; i < db.video_count(); ++i) {
    CLASSMINER_RETURN_IF_ERROR(internal::ValidateEntry(
        db.video(i), "CMDB videos[" + std::to_string(i) + "]"));
  }
  return util::Status::Ok();
}

namespace internal {

void PutFramedEntry(util::ByteWriter* w, const VideoEntry& v) {
  PutFramedVideo(w, v);
}

util::Status GetFramedEntry(util::ByteReader* r, VideoEntry* out) {
  return GetFramedVideo(r, kVersion, out);
}

util::Status ValidateEntry(const VideoEntry& v, const std::string& at) {
  const structure::ContentStructure& cs = v.structure;
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(v.name.size(), at + " name byte"));
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(cs.shots.size(), at + " shot"));
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(cs.groups.size(), at + " group"));
  for (const structure::Group& g : cs.groups) {
    CLASSMINER_RETURN_IF_ERROR(
        util::CheckU32Count(g.clusters.size(), at + " shot cluster"));
    for (const structure::ShotCluster& c : g.clusters) {
      CLASSMINER_RETURN_IF_ERROR(util::CheckU32Count(
          c.shot_indices.size(), at + " cluster shot index"));
    }
    CLASSMINER_RETURN_IF_ERROR(
        util::CheckU32Count(g.rep_shots.size(), at + " rep shot"));
  }
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(cs.scenes.size(), at + " scene"));
  CLASSMINER_RETURN_IF_ERROR(util::CheckU32Count(
      cs.clustered_scenes.size(), at + " scene cluster"));
  for (const structure::SceneCluster& c : cs.clustered_scenes) {
    CLASSMINER_RETURN_IF_ERROR(util::CheckU32Count(
        c.scene_indices.size(), at + " scene cluster index"));
  }
  CLASSMINER_RETURN_IF_ERROR(
      util::CheckU32Count(v.events.size(), at + " event"));
  return util::CheckU32Count(static_cast<size_t>(SerializedBodySize(v)),
                             at + " entry body byte");
}

}  // namespace internal

std::vector<uint8_t> SerializeDatabase(const VideoDatabase& db) {
  util::ByteWriter w;
  w.PutU32(kMagic);
  w.PutU32(kVersion);
  w.PutU32(static_cast<uint32_t>(db.video_count()));
  for (int v = 0; v < db.video_count(); ++v) {
    PutFramedVideo(&w, db.video(v));
  }
  return w.Release();
}

util::StatusOr<VideoDatabase> ParseDatabase(
    const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  uint32_t version = 0;
  uint32_t videos = 0;
  CLASSMINER_RETURN_IF_ERROR(ParseDatabaseHeader(&r, &version, &videos));

  VideoDatabase db;
  for (uint32_t i = 0; i < videos; ++i) {
    r.set_section("videos[" + std::to_string(i) + "]");
    VideoEntry entry;
    CLASSMINER_RETURN_IF_ERROR(GetVideoEntry(&r, version, &entry));
    db.AddVideo(std::move(entry.name), std::move(entry.structure),
                std::move(entry.events), entry.degraded);
  }
  if (r.remaining() > 0) {
    return r.Corrupt("trailing bytes after last video entry");
  }
  return db;
}

util::StatusOr<VideoDatabase> ParseDatabaseSalvage(
    const std::vector<uint8_t>& bytes, util::SalvageReport* report) {
  util::SalvageReport local;
  if (report == nullptr) report = &local;
  util::ByteReader r(bytes);
  uint32_t version = 0;
  uint32_t videos = 0;
  // Nothing precedes the header, so a damaged header is unrecoverable.
  CLASSMINER_RETURN_IF_ERROR(ParseDatabaseHeader(&r, &version, &videos));

  VideoDatabase db;
  uint32_t parsed = 0;
  for (uint32_t i = 0; i < videos; ++i) {
    r.set_section("videos[" + std::to_string(i) + "]");
    const size_t entry_start = r.position();
    VideoEntry entry;
    const util::Status video = GetVideoEntry(&r, version, &entry);
    if (video.ok()) {
      db.AddVideo(std::move(entry.name), std::move(entry.structure),
                  std::move(entry.events), entry.degraded);
      ++parsed;
      continue;
    }
    report->AddNote("videos: " + video.message());
    if (version < 3) {
      // v1/v2 entries are written back to back with no framing: a torn
      // entry makes everything behind it unframed bytes. Keep the prefix.
      report->bytes_dropped += bytes.size() - entry_start;
      break;
    }
    // v3: scan forward for the next checksum-confirmed entry frame and
    // resynchronise there; the suffix behind the tear is recoverable.
    bool resynced = false;
    for (size_t scan = entry_start + 1; scan < bytes.size(); ++scan) {
      if (!PlausibleEntryAt(bytes, scan)) continue;
      (void)r.SeekTo(scan);
      VideoEntry recovered;
      if (!GetFramedVideo(&r, version, &recovered).ok()) {
        // CRC-confirmed frame whose body still refuses to parse (in
        // practice only hostile bytes); keep scanning behind it.
        continue;
      }
      report->bytes_dropped += scan - entry_start;
      report->resync_points += 1;
      report->AddNote(
          "videos: resynchronised onto checksum-confirmed entry at byte "
          "offset " +
          std::to_string(scan) + " (dropped " +
          std::to_string(scan - entry_start) + " bytes)");
      db.AddVideo(std::move(recovered.name), std::move(recovered.structure),
                  std::move(recovered.events), recovered.degraded);
      ++parsed;
      resynced = true;
      break;
    }
    if (!resynced) {
      // No confirmed entry frame behind the tear; the rest is lost.
      report->bytes_dropped += bytes.size() - entry_start;
      break;
    }
  }
  if (parsed < videos) {
    report->items_dropped += static_cast<int>(videos - parsed);
  }
  report->items_recovered += db.video_count();
  return db;
}

std::string DatabaseBackupPath(const std::string& path) {
  return path + ".prev";
}

std::string DatabaseManifestPath(const std::string& path) {
  return path + ".manifest";
}

std::vector<uint8_t> SerializeManifest(const DatabaseManifest& manifest) {
  util::ByteWriter w;
  w.PutU32(kManifestMagic);
  w.PutU64(manifest.generation);
  w.PutU64(manifest.size);
  w.PutU32(manifest.crc);
  return w.Release();
}

util::StatusOr<DatabaseManifest> ParseManifest(
    const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  r.set_section("manifest");
  util::StatusOr<uint32_t> magic = r.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kManifestMagic) return r.Corrupt("bad CMGM magic");
  DatabaseManifest m;
  util::StatusOr<uint64_t> generation = r.GetU64();
  if (!generation.ok()) return generation.status();
  m.generation = *generation;
  util::StatusOr<uint64_t> size = r.GetU64();
  if (!size.ok()) return size.status();
  m.size = *size;
  util::StatusOr<uint32_t> crc = r.GetU32();
  if (!crc.ok()) return crc.status();
  m.crc = *crc;
  return m;
}

util::StatusOr<DatabaseManifest> LoadManifest(const std::string& path) {
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseManifest(*bytes);
}

util::Status SaveDatabase(const VideoDatabase& db, const std::string& path) {
  CLASSMINER_RETURN_IF_ERROR(util::FailPoint::Check("index.persist.save"));
  if (IsShardedDatabasePath(path)) {
    // A sharded library stays sharded across full rewrites (repair relies
    // on this): partition the entries over the existing shard count.
    util::StatusOr<int> shards = ShardedDatabaseShardCount(path);
    if (!shards.ok()) return shards.status();
    return SaveShardedDatabase(db, path, *shards);
  }
  CLASSMINER_RETURN_IF_ERROR(ValidateForSerialize(db));
  const std::vector<uint8_t> bytes = SerializeDatabase(db);

  DatabaseManifest manifest;
  util::StatusOr<DatabaseManifest> previous =
      LoadManifest(DatabaseManifestPath(path));
  manifest.generation = previous.ok() ? previous->generation + 1 : 1;
  manifest.size = bytes.size();
  manifest.crc = util::Crc32(bytes);

  util::AtomicWriteOptions options;
  options.backup_path = DatabaseBackupPath(path);
  CLASSMINER_RETURN_IF_ERROR(util::AtomicWriteFile(path, bytes, options));
  // The manifest is written after the data: a crash between the two leaves
  // a manifest describing the previous generation, which loads treat as
  // "save was interrupted" (advisory), never as corruption of the data.
  return util::AtomicWriteFile(DatabaseManifestPath(path),
                               SerializeManifest(manifest));
}

util::StatusOr<VideoDatabase> LoadDatabase(const std::string& path) {
  CLASSMINER_RETURN_IF_ERROR(util::FailPoint::Check("index.persist.load"));
  if (IsShardedDatabasePath(path)) return LoadShardedDatabase(path);
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseDatabase(*bytes);
}

util::StatusOr<VideoDatabase> LoadDatabaseSalvage(
    const std::string& path, util::SalvageReport* report) {
  CLASSMINER_RETURN_IF_ERROR(util::FailPoint::Check("index.persist.load"));
  if (IsShardedDatabasePath(path)) {
    return LoadShardedDatabaseSalvage(path, report, nullptr, nullptr);
  }
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseDatabaseSalvage(*bytes, report);
}

util::StatusOr<OpenResult> OpenDatabaseAnyGeneration(
    const std::string& path, util::SalvageReport* report) {
  util::SalvageReport local;
  if (report == nullptr) report = &local;
  if (IsShardedDatabasePath(path)) {
    // Sharded tier: shards fall back / salvage individually inside Open
    // (read-write, so torn tails are truncated back to the last confirmed
    // frame); the flags aggregate "any shard fell back / was salvaged".
    ShardedDatabase::OpenReport shards;
    util::StatusOr<std::unique_ptr<ShardedDatabase>> sdb =
        ShardedDatabase::Open(path, report, &shards, /*read_only=*/false);
    if (!sdb.ok()) return sdb.status();
    return OpenResult{(*sdb)->Snapshot(), path, shards.any_backup(),
                      shards.any_salvaged() || shards.any_lost()};
  }
  const std::string backup = DatabaseBackupPath(path);

  util::StatusOr<VideoDatabase> current = LoadDatabase(path);
  if (current.ok()) {
    return OpenResult{std::move(current).value(), path, false, false};
  }
  report->AddNote("open: " + current.status().message());

  util::StatusOr<VideoDatabase> previous = LoadDatabase(backup);
  if (previous.ok()) {
    report->AddNote("open: fell back to previous generation " + backup);
    return OpenResult{std::move(previous).value(), backup, true, false};
  }
  if (previous.status().code() != util::StatusCode::kNotFound) {
    report->AddNote("open: " + previous.status().message());
  }

  util::StatusOr<VideoDatabase> salvaged = LoadDatabaseSalvage(path, report);
  if (salvaged.ok()) {
    report->AddNote("open: salvaged current generation " + path);
    return OpenResult{std::move(salvaged).value(), path, false, true};
  }

  util::StatusOr<VideoDatabase> salvaged_prev =
      LoadDatabaseSalvage(backup, report);
  if (salvaged_prev.ok()) {
    report->AddNote("open: salvaged previous generation " + backup);
    return OpenResult{std::move(salvaged_prev).value(), backup, true, true};
  }

  return util::Status::DataLoss("no loadable generation of " + path +
                                " (tried strict and salvage on current and "
                                "previous)");
}

std::string VerifyReport::ToString() const {
  std::string s = loadable ? "loadable" : "unloadable";
  if (sharded) s += " sharded shards=" + std::to_string(shards);
  s += " videos=" + std::to_string(videos);
  s += " degraded=" + std::to_string(degraded_videos);
  if (manifest_present) {
    s += " generation=" + std::to_string(generation);
    if (manifest_matches) {
      s += " manifest=ok";
    } else {
      s += " manifest=stale";
      if (!stale_detail.empty()) s += "(" + stale_detail + ")";
    }
  } else {
    s += " manifest=absent";
  }
  if (!error.empty()) s += " error=\"" + error + "\"";
  return s;
}

VerifyReport VerifyDatabaseFile(const std::string& path) {
  VerifyReport report;
  if (IsShardedDatabasePath(path)) {
    VerifyShardedDatabaseFile(path, &report);
    return report;
  }
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) {
    report.error = bytes.status().message();
    return report;
  }
  util::StatusOr<VideoDatabase> db = ParseDatabase(*bytes);
  if (!db.ok()) {
    report.error = db.status().message();
  } else {
    report.loadable = true;
    report.videos = db->video_count();
    report.degraded_videos = db->DegradedCount();
  }
  util::StatusOr<DatabaseManifest> manifest =
      LoadManifest(DatabaseManifestPath(path));
  if (manifest.ok()) {
    report.manifest_present = true;
    report.generation = manifest->generation;
    const uint32_t file_crc = util::Crc32(*bytes);
    report.manifest_matches =
        manifest->size == bytes->size() && manifest->crc == file_crc;
    if (!report.manifest_matches) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "manifest generation %llu records size=%llu crc=%08x; "
                    "file has size=%llu crc=%08x",
                    static_cast<unsigned long long>(manifest->generation),
                    static_cast<unsigned long long>(manifest->size),
                    manifest->crc,
                    static_cast<unsigned long long>(bytes->size()), file_crc);
      report.stale_detail = buf;
    }
  }
  return report;
}

}  // namespace classminer::index

#ifndef CLASSMINER_INDEX_SHARD_H_
#define CLASSMINER_INDEX_SHARD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/database.h"
#include "index/persist.h"
#include "util/salvage.h"
#include "util/status.h"

namespace classminer::index {

// ---------------------------------------------------------------------------
// Sharded append-log database tier.
//
// A monolithic CMDB rewrites the whole file per save, so one upsert into a
// 100k-video library costs O(library). This tier hash-partitions entries
// across N shard logs (the paper's leaf hash-table indexing, Fig. 2) so an
// upsert appends O(entry) to exactly one log.
//
// On disk:
//   <path>              shard manifest "CMSM": version u32, shard count u32,
//                       epoch u64, per-shard {generation u64, live u64,
//                       tombstones u64}, CRC-32 u32 over the preceding
//                       bytes. Written via util::AtomicWriteFile; live and
//                       tombstone counts are advisory (appends do not
//                       rewrite the manifest).
//   <path>.shard<k>     append-only log: header "CMSL" (version u32, shard
//                       index u32, shard count u32, generation u64)
//                       followed by self-delimiting CRC'd records — an
//                       upsert is exactly a monolithic v3 "CMVE" entry
//                       frame; a delete is a "CMVT" tombstone frame whose
//                       body is the entry name. Later records supersede
//                       earlier ones.
//   <path>.shard<k>.prev  the previous generation of that shard, rotated
//                       aside by compaction exactly like the monolithic
//                       two-generation machinery.
//
// Replay: a shard's live state is the last record per name, tombstones
// erasing. Superseded records + tombstones are "dead" bytes; compaction
// folds a log into a pristine next generation (one CMVE frame per live
// entry) with the crash ordering: stage tmp → fsync → rotate current to
// .prev → rename tmp into place → rewrite the manifest. A crash at any
// point (fail-point sites "index.shard.compact.{write,fsync,rename,
// manifest}") leaves either the old generation (directly or via .prev
// fallback) or the new one — the manifest is refreshed last, so at worst it
// is stale, which verify reports as advisory staleness naming the shard.
//
// Appends run under "index.shard.append.{write,fsync}": a frame is written
// and fsync'ed in one shot; on failure the log is truncated back to the
// pre-append size (and a crash that prevents the rollback leaves a torn
// tail that the next open resynchronises away with the CRC-confirmed-frame
// scan). "index.shard.open" injects an unreadable current generation at
// open time, forcing the per-shard fallback.
//
// Opens parse shards in parallel and degrade per shard: strict current →
// strict previous → salvage current → salvage previous → (both dead) an
// empty shard flagged lost. One corrupt shard never takes down the library.
// ---------------------------------------------------------------------------

// Derived per-shard file names: "<path>.shard<k>" and its ".prev".
std::string ShardPath(const std::string& path, int shard);
std::string ShardBackupPath(const std::string& path, int shard);

// Which shard owns `name`: CRC-32(name) mod shard_count (stable across
// platforms; the CRC kernel is bit-identical at every dispatch level).
int ShardOfName(const std::string& name, int shard_count);

// The root "CMSM" manifest.
struct ShardManifest {
  struct Shard {
    uint64_t generation = 0;
    uint64_t live = 0;        // advisory live-entry count at last rewrite
    uint64_t tombstones = 0;  // advisory tombstone-record count
  };
  uint32_t shard_count = 0;
  uint64_t epoch = 0;  // bumped on every manifest rewrite
  std::vector<Shard> shards;
};

std::vector<uint8_t> SerializeShardManifest(const ShardManifest& manifest);
util::StatusOr<ShardManifest> ParseShardManifest(
    const std::vector<uint8_t>& bytes);

// True when `path` names a sharded database: the root file carries the CMSM
// magic, or (root damaged or missing) a shard-0 log sits next to it. The
// persist entry points dispatch on this.
bool IsShardedDatabasePath(const std::string& path);

// Shard count of an existing sharded database, from the manifest or (when
// the manifest is unreadable) from a shard-0 log header.
util::StatusOr<int> ShardedDatabaseShardCount(const std::string& path);

class ShardedDatabase {
 public:
  struct Options {
    int shard_count = 8;       // used by Create / full saves
    bool sync_appends = true;  // fsync the shard log after every append
  };

  // How one shard's open was satisfied.
  struct ShardStatus {
    bool used_backup = false;  // loaded from the .prev generation
    bool salvaged = false;     // needed the CRC-confirmed-frame resync
    bool lost = false;         // no generation loadable; opened empty
    uint64_t generation = 0;   // generation of the log that loaded
  };
  struct OpenReport {
    std::vector<ShardStatus> shards;
    bool any_backup() const;
    bool any_salvaged() const;
    bool any_lost() const;
  };

  struct CompactionReport {
    int shard = -1;
    bool skipped = false;       // nothing dead; log left untouched
    uint64_t generation = 0;    // generation written (current when skipped)
    uint64_t live = 0;          // entries in the (new) generation
    uint64_t dead_dropped = 0;  // superseded + tombstone records folded away
    std::string ToString() const;
  };

  // Creates a fresh sharded database: N empty generation-1 shard logs, then
  // the manifest. Refuses to overwrite an existing file at `path`.
  static util::StatusOr<std::unique_ptr<ShardedDatabase>> Create(
      const std::string& path, const Options& options);

  // Opens an existing sharded database, parsing shards in parallel with
  // per-shard fallback (see file comment). Fallbacks and salvage decisions
  // land in `report`; per-shard outcomes in `open_report` (both optional).
  // Read-write opens (`read_only == false`) truncate torn shard tails back
  // to the last checksum-confirmed frame so subsequent appends extend a
  // structurally clean log; read-only opens never modify any file. A shard
  // that loaded from backup or needed a mid-log resync is rewritten as a
  // pristine next generation before its first append (self-healing).
  static util::StatusOr<std::unique_ptr<ShardedDatabase>> Open(
      const std::string& path, util::SalvageReport* report = nullptr,
      OpenReport* open_report = nullptr, bool read_only = false);

  int shard_count() const { return shard_count_; }
  uint64_t epoch() const;
  const std::string& path() const { return path_; }
  int live_count() const;        // live entries across all shards
  uint64_t dead_records() const; // superseded + tombstone records across logs

  // Inserts or replaces the entry, appending one CMVE frame (O(entry)) to
  // the owning shard log with write+fsync discipline. Thread-safe;
  // concurrent upserts to different shards do not contend.
  util::Status Upsert(std::string name, structure::ContentStructure structure,
                      std::vector<events::EventRecord> events, bool degraded);

  // Deletes the entry by appending a CMVT tombstone. kNotFound when absent.
  util::Status Remove(const std::string& name);

  bool Contains(const std::string& name) const;

  // Merged point-in-time view, shard-major in per-shard insertion order
  // (deterministic for a given append history).
  VideoDatabase Snapshot() const;

  // Folds shard `shard`'s log into a pristine next generation (one frame
  // per live entry), then rewrites the manifest. Interlocked with
  // concurrent appends via the per-shard lock; skipped when the log has no
  // dead records (unless `force`).
  util::StatusOr<CompactionReport> CompactShard(int shard, bool force = false);
  // Compacts every shard that has dead records.
  util::StatusOr<std::vector<CompactionReport>> CompactAll(bool force = false);

  ~ShardedDatabase();
  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

 private:
  struct ShardState;
  ShardedDatabase(std::string path, int shard_count, bool sync_appends);

  util::Status SelfHealLocked(ShardState& s, int shard);
  util::Status RewriteManifest();

  std::string path_;
  int shard_count_ = 0;
  bool sync_appends_ = true;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::unique_ptr<std::mutex> manifest_mu_;
  std::unique_ptr<std::atomic<uint64_t>> epoch_;
};

// Full rewrite of a sharded database from `db` (every shard advances one
// generation through the staged compaction path, then the manifest). Used
// by SaveDatabase dispatch, repair promotion, and bulk loads; `shard_count`
// must be >= 1.
util::Status SaveShardedDatabase(const VideoDatabase& db,
                                 const std::string& path, int shard_count);

// Strict load: the manifest and every shard log must parse cleanly
// (generation staleness stays advisory). Parses shards in parallel.
util::StatusOr<VideoDatabase> LoadShardedDatabase(const std::string& path);

// Best-effort load via a read-only ShardedDatabase::Open (no file is
// modified). `used_backup` / `salvaged` (optional) report whether any shard
// fell back or needed salvage.
util::StatusOr<VideoDatabase> LoadShardedDatabaseSalvage(
    const std::string& path, util::SalvageReport* report, bool* used_backup,
    bool* salvaged);

// Open-compact-close convenience for the scrubber, server ops and the CLI:
// compacts shard `shard` (-1 = every shard with dead records). Returns the
// per-shard reports, skipped shards included.
util::StatusOr<std::vector<ShardedDatabase::CompactionReport>>
CompactDatabaseFile(const std::string& path, int shard = -1,
                    bool force = false);

// Fills `report` for a sharded database: strict per-shard parse (aggregate
// live/degraded counts), manifest presence, and generation staleness with
// per-shard diagnostics in report->stale_detail. Never modifies any file.
void VerifyShardedDatabaseFile(const std::string& path, VerifyReport* report);

}  // namespace classminer::index

#endif  // CLASSMINER_INDEX_SHARD_H_

#ifndef CLASSMINER_INDEX_DATABASE_H_
#define CLASSMINER_INDEX_DATABASE_H_

#include <string>
#include <vector>

#include "events/event_miner.h"
#include "structure/types.h"
#include "util/status.h"

namespace classminer::index {

// Identifies one shot in the database.
struct ShotRef {
  int video_id = -1;
  int shot_index = -1;

  friend bool operator==(const ShotRef&, const ShotRef&) = default;
};

// One ingested video: its mined structure and events. Raw media stays in
// codec containers on disk; the database holds features and structure only.
struct VideoEntry {
  int id = -1;
  std::string name;
  structure::ContentStructure structure;
  std::vector<events::EventRecord> events;  // per active scene
  // True when the entry came from a degraded mining run (optional stages
  // lost, or the source container needed salvage). The structure is still
  // queryable; event/cue-derived answers may be incomplete. Persisted from
  // CMDB v2 on.
  bool degraded = false;

  // Event type of the (active) scene owning a shot; kUndetermined when the
  // shot belongs to an eliminated scene.
  events::EventType EventOfShot(int shot_index) const;
  // Index of the scene (in structure.scenes) containing the shot; -1 if none.
  int SceneOfShot(int shot_index) const;
};

// The video database: a collection of mined videos addressable by shot.
class VideoDatabase {
 public:
  // Adds a mined video; returns its id. `degraded` marks an entry mined
  // from a damaged source or with optional stages lost.
  int AddVideo(std::string name, structure::ContentStructure structure,
               std::vector<events::EventRecord> events,
               bool degraded = false);

  // Replaces an existing entry in place (the id is preserved). The repair
  // pass uses this to swap a degraded entry for a freshly re-mined one.
  util::Status ReplaceVideo(int id, std::string name,
                            structure::ContentStructure structure,
                            std::vector<events::EventRecord> events,
                            bool degraded = false);

  int video_count() const { return static_cast<int>(videos_.size()); }
  // Entries flagged degraded.
  int DegradedCount() const;
  const VideoEntry& video(int id) const {
    return videos_[static_cast<size_t>(id)];
  }

  size_t TotalShotCount() const;

  // All shot refs in insertion order.
  std::vector<ShotRef> AllShots() const;

  const features::ShotFeatures& Features(const ShotRef& ref) const;
  const shot::Shot& GetShot(const ShotRef& ref) const;

 private:
  std::vector<VideoEntry> videos_;
};

}  // namespace classminer::index

#endif  // CLASSMINER_INDEX_DATABASE_H_

#ifndef CLASSMINER_INDEX_LINEAR_INDEX_H_
#define CLASSMINER_INDEX_LINEAR_INDEX_H_

#include <vector>

#include "index/query.h"

namespace classminer::index {

// Flat-scan baseline (Sec. 6.2, Eq. 24): every query compares against all
// NT shots and ranks them. The database must outlive the index.
class LinearIndex : public ShotIndex {
 public:
  explicit LinearIndex(const VideoDatabase* db);

  std::vector<QueryMatch> Search(const features::ShotFeatures& query, int k,
                                 QueryStats* stats = nullptr) const override;

 private:
  const VideoDatabase* db_;
  std::vector<ShotRef> shots_;
};

}  // namespace classminer::index

#endif  // CLASSMINER_INDEX_LINEAR_INDEX_H_

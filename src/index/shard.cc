#include "index/shard.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/serial.h"

namespace classminer::index {
namespace {

constexpr uint32_t kShardManifestMagic = 0x4d534d43;  // "CMSM"
constexpr uint32_t kShardLogMagic = 0x4c534d43;       // "CMSL"
constexpr uint32_t kTombstoneMagic = 0x54564d43;      // "CMVT"
constexpr uint32_t kCmdbMagic = 0x42444d43;           // "CMDB"
constexpr uint32_t kManifestVersion = 1;
constexpr uint32_t kLogVersion = 1;
constexpr int kMaxShards = 4096;
constexpr size_t kLogHeaderSize = 4 + 4 + 4 + 4 + 8;

uint32_t ReadU32LE(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string Errno() { return std::string(std::strerror(errno)); }

util::Status WriteSpan(FILE* f, const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const size_t n = fwrite(data + done, 1, size - done, f);
    if (n == 0) {
      if (ferror(f) != 0 && errno == EINTR) {
        clearerr(f);
        continue;
      }
      return util::Status::Unavailable("short write to shard file: " +
                                       Errno());
    }
    done += n;
  }
  return util::Status::Ok();
}

util::Status FlushAndSync(FILE* f) {
  if (fflush(f) != 0) {
    return util::Status::Unavailable("fflush of shard file failed: " +
                                     Errno());
  }
  int rc = 0;
  do {
    rc = fsync(fileno(f));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return util::Status::Unavailable("fsync of shard file failed: " + Errno());
  }
  return util::Status::Ok();
}

util::Status TruncateTo(const std::string& path, uint64_t size) {
  int rc = 0;
  do {
    rc = ::truncate(path.c_str(), static_cast<off_t>(size));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return util::Status::Unavailable("truncate of " + path + " failed: " +
                                     Errno());
  }
  return util::Status::Ok();
}

// -------------------------------------------------------------------------
// Shard log records.

struct LogRecord {
  bool tombstone = false;
  VideoEntry entry;  // when !tombstone
  std::string name;  // when tombstone
};

struct ShardLogContents {
  uint32_t shard_index = 0;
  uint32_t shard_count = 0;
  uint64_t generation = 0;
  std::vector<LogRecord> records;
};

void PutLogHeader(util::ByteWriter* w, uint32_t shard_index,
                  uint32_t shard_count, uint64_t generation) {
  w->PutU32(kShardLogMagic);
  w->PutU32(kLogVersion);
  w->PutU32(shard_index);
  w->PutU32(shard_count);
  w->PutU64(generation);
}

util::Status ParseLogHeader(util::ByteReader* r, ShardLogContents* out) {
  r->set_section("shard header");
  util::StatusOr<uint32_t> magic = r->GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kShardLogMagic) return r->Corrupt("bad CMSL magic");
  util::StatusOr<uint32_t> version = r->GetU32();
  if (!version.ok()) return version.status();
  if (*version != kLogVersion) {
    return r->Corrupt("unsupported CMSL version " + std::to_string(*version));
  }
  util::StatusOr<uint32_t> index = r->GetU32();
  if (!index.ok()) return index.status();
  out->shard_index = *index;
  util::StatusOr<uint32_t> count = r->GetU32();
  if (!count.ok()) return count.status();
  if (*count < 1 || *count > static_cast<uint32_t>(kMaxShards)) {
    return r->Corrupt("implausible shard count " + std::to_string(*count));
  }
  out->shard_count = *count;
  util::StatusOr<uint64_t> generation = r->GetU64();
  if (!generation.ok()) return generation.status();
  out->generation = *generation;
  return util::Status::Ok();
}

std::vector<uint8_t> BuildEntryFrame(const VideoEntry& entry) {
  util::ByteWriter w;
  internal::PutFramedEntry(&w, entry);
  return w.Release();
}

std::vector<uint8_t> BuildTombstoneFrame(const std::string& name) {
  util::ByteWriter body;
  body.PutString(name);
  util::ByteWriter w;
  w.PutU32(kTombstoneMagic);
  w.PutU32(static_cast<uint32_t>(body.size()));
  w.PutU32(util::Crc32(body.bytes()));
  w.PutBytes(body.bytes().data(), body.size());
  return w.Release();
}

// Parses a tombstone frame with the cursor just past the magic: body size,
// CRC-32, then a single length-prefixed name that must consume the body
// exactly.
util::Status ParseTombstoneBody(util::ByteReader* r, std::string* name) {
  util::StatusOr<uint32_t> body_size = r->GetU32();
  if (!body_size.ok()) return body_size.status();
  util::StatusOr<uint32_t> stored = r->GetU32();
  if (!stored.ok()) return stored.status();
  if (*body_size > r->remaining()) {
    return r->Corrupt("tombstone body exceeds shard log size");
  }
  const size_t body_start = r->position();
  if (util::Crc32(r->data() + body_start, *body_size) != *stored) {
    return r->Corrupt("tombstone checksum mismatch");
  }
  util::StatusOr<std::string> n = r->GetString();
  if (!n.ok()) return n.status();
  *name = *n;
  if (r->position() != body_start + *body_size) {
    return r->Corrupt("tombstone body size mismatch");
  }
  return util::Status::Ok();
}

// One record at the cursor: a CMVE entry frame or a CMVT tombstone.
util::Status ParseOneRecord(util::ByteReader* r, LogRecord* rec) {
  const size_t start = r->position();
  util::StatusOr<uint32_t> magic = r->GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic == internal::kEntryFrameMagic) {
    CLASSMINER_RETURN_IF_ERROR(r->SeekTo(start));
    return internal::GetFramedEntry(r, &rec->entry);
  }
  if (*magic == kTombstoneMagic) {
    rec->tombstone = true;
    return ParseTombstoneBody(r, &rec->name);
  }
  return r->Corrupt("bad shard record magic");
}

util::StatusOr<ShardLogContents> ParseShardLog(
    const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  ShardLogContents log;
  CLASSMINER_RETURN_IF_ERROR(ParseLogHeader(&r, &log));
  size_t i = 0;
  while (r.remaining() > 0) {
    r.set_section("records[" + std::to_string(i) + "]");
    LogRecord rec;
    CLASSMINER_RETURN_IF_ERROR(ParseOneRecord(&r, &rec));
    log.records.push_back(std::move(rec));
    ++i;
  }
  return log;
}

// True when a complete, checksum-confirmed record frame (entry or
// tombstone) starts at `pos` — the salvage scanner's resynchronisation
// probe, same 2^-32 false-positive bound as the monolithic entry scan.
bool ConfirmedFrameAt(const uint8_t* data, size_t size, size_t pos) {
  if (pos + 12 > size) return false;
  const uint32_t magic = ReadU32LE(data + pos);
  if (magic != internal::kEntryFrameMagic && magic != kTombstoneMagic) {
    return false;
  }
  const uint32_t body_size = ReadU32LE(data + pos + 4);
  if (body_size > size - pos - 12) return false;
  return util::Crc32(data + pos + 12, body_size) == ReadU32LE(data + pos + 8);
}

struct ShardSalvage {
  ShardLogContents log;
  size_t clean_prefix = 0;  // strict-parseable from the start up to here
  bool tail_torn = false;   // bytes beyond the last confirmed frame dropped
  int resyncs = 0;          // mid-log tears scanned past
};

// Best-effort parse: keeps every record in front of a tear, scans past
// damage for the next checksum-confirmed frame, and records a torn tail
// when nothing confirmable follows. Fails only when the header is
// unreadable.
util::StatusOr<ShardSalvage> ParseShardLogSalvage(
    const std::vector<uint8_t>& bytes, util::SalvageReport* report) {
  util::ByteReader r(bytes);
  ShardSalvage res;
  CLASSMINER_RETURN_IF_ERROR(ParseLogHeader(&r, &res.log));
  res.clean_prefix = bytes.size();
  size_t i = 0;
  while (r.remaining() > 0) {
    r.set_section("records[" + std::to_string(i) + "]");
    const size_t start = r.position();
    LogRecord rec;
    const util::Status record = ParseOneRecord(&r, &rec);
    if (record.ok()) {
      res.log.records.push_back(std::move(rec));
      ++i;
      continue;
    }
    report->AddNote("shard log: " + record.message());
    if (res.clean_prefix == bytes.size()) res.clean_prefix = start;
    bool resynced = false;
    for (size_t scan = start + 1; scan + 12 <= bytes.size(); ++scan) {
      if (!ConfirmedFrameAt(bytes.data(), bytes.size(), scan)) continue;
      (void)r.SeekTo(scan);
      LogRecord recovered;
      if (!ParseOneRecord(&r, &recovered).ok()) continue;
      report->bytes_dropped += scan - start;
      report->resync_points += 1;
      res.resyncs += 1;
      report->AddNote(
          "shard log: resynchronised onto checksum-confirmed frame at byte "
          "offset " +
          std::to_string(scan) + " (dropped " + std::to_string(scan - start) +
          " bytes)");
      res.log.records.push_back(std::move(recovered));
      ++i;
      resynced = true;
      break;
    }
    if (!resynced) {
      report->bytes_dropped += bytes.size() - start;
      res.tail_torn = true;
      report->AddNote("shard log: torn tail at byte offset " +
                      std::to_string(start) + " (dropped " +
                      std::to_string(bytes.size() - start) + " bytes)");
      break;
    }
  }
  if (res.clean_prefix != bytes.size()) report->salvaged = true;
  report->items_recovered += static_cast<int>(res.log.records.size());
  return res;
}

// Replays records in log order: the last record per name wins, tombstones
// erase. Insertion order of surviving entries is preserved (deterministic
// snapshots).
struct Replay {
  std::vector<VideoEntry> live;
  std::unordered_map<std::string, size_t> by_name;
  uint64_t tombstones = 0;

  void EraseAt(size_t idx) {
    by_name.erase(live[idx].name);
    live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    for (auto& [name, pos] : by_name) {
      if (pos > idx) --pos;
    }
  }

  void Apply(LogRecord&& rec) {
    if (rec.tombstone) {
      ++tombstones;
      auto it = by_name.find(rec.name);
      if (it != by_name.end()) EraseAt(it->second);
      return;
    }
    auto it = by_name.find(rec.entry.name);
    if (it != by_name.end()) {
      live[it->second] = std::move(rec.entry);
    } else {
      by_name.emplace(rec.entry.name, live.size());
      live.push_back(std::move(rec.entry));
    }
  }
};

// Stages a complete next generation of one shard log: tmp write → fsync →
// rotate current aside → rename into place, one fail-point site per step
// ("index.shard.compact.{write,fsync,rename}"). A crash at any step leaves
// the old generation reachable (directly or at .prev) or the new one
// complete — never a torn log.
util::Status WriteShardGenerationFile(const std::string& root, int shard,
                                      int shard_count, uint64_t generation,
                                      const std::vector<VideoEntry>& entries) {
  CLASSMINER_RETURN_IF_ERROR(
      util::FailPoint::Check("index.shard.compact.write"));
  util::ByteWriter w;
  PutLogHeader(&w, static_cast<uint32_t>(shard),
               static_cast<uint32_t>(shard_count), generation);
  for (const VideoEntry& entry : entries) {
    internal::PutFramedEntry(&w, entry);
  }

  const std::string cur = ShardPath(root, shard);
  const std::string tmp = cur + ".tmp";
  const std::string prev = ShardBackupPath(root, shard);

  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::Unavailable("cannot stage shard generation at " +
                                     tmp + ": " + Errno());
  }
  util::Status st = WriteSpan(f, w.bytes().data(), w.size());
  if (st.ok()) st = util::FailPoint::Check("index.shard.compact.fsync");
  if (st.ok()) st = FlushAndSync(f);
  fclose(f);
  if (st.ok()) st = util::FailPoint::Check("index.shard.compact.rename");
  if (!st.ok()) {
    (void)std::remove(tmp.c_str());
    return st;
  }
  // Rotate the old generation aside before the new one lands: a crash
  // between the two renames leaves no current file, and the open path falls
  // back to .prev — the pre-compaction state.
  if (FileExists(cur) && std::rename(cur.c_str(), prev.c_str()) != 0) {
    const util::Status rotate = util::Status::Unavailable(
        "cannot rotate " + cur + " to " + prev + ": " + Errno());
    (void)std::remove(tmp.c_str());
    return rotate;
  }
  if (std::rename(tmp.c_str(), cur.c_str()) != 0) {
    const util::Status finish = util::Status::Unavailable(
        "cannot rename " + tmp + " into place: " + Errno());
    (void)std::remove(tmp.c_str());
    return finish;
  }
  return util::Status::Ok();
}

// Runs fn(0..count-1) across up to hardware_concurrency threads (shard
// opens and strict loads parse logs in parallel).
void ForEachShard(int count, const std::function<void(int)>& fn) {
  int workers = static_cast<int>(std::thread::hardware_concurrency());
  workers = std::max(1, std::min(workers, count));
  if (workers <= 1 || count <= 1) {
    for (int k = 0; k < count; ++k) fn(k);
    return;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&next, count, &fn] {
      for (int k = next.fetch_add(1); k < count; k = next.fetch_add(1)) {
        fn(k);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

util::StatusOr<ShardLogContents> ReadLogHeaderOf(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::NotFound("cannot open " + path + ": " + Errno());
  }
  uint8_t buf[kLogHeaderSize];
  const size_t n = fread(buf, 1, sizeof(buf), f);
  fclose(f);
  util::ByteReader r(buf, n);
  ShardLogContents log;
  CLASSMINER_RETURN_IF_ERROR(ParseLogHeader(&r, &log));
  return log;
}

}  // namespace

std::string ShardPath(const std::string& path, int shard) {
  return path + ".shard" + std::to_string(shard);
}

std::string ShardBackupPath(const std::string& path, int shard) {
  return ShardPath(path, shard) + ".prev";
}

int ShardOfName(const std::string& name, int shard_count) {
  if (shard_count <= 1) return 0;
  const uint32_t h = util::Crc32(
      reinterpret_cast<const uint8_t*>(name.data()), name.size());
  return static_cast<int>(h % static_cast<uint32_t>(shard_count));
}

std::vector<uint8_t> SerializeShardManifest(const ShardManifest& manifest) {
  util::ByteWriter w;
  w.PutU32(kShardManifestMagic);
  w.PutU32(kManifestVersion);
  w.PutU32(manifest.shard_count);
  w.PutU64(manifest.epoch);
  for (const ShardManifest::Shard& s : manifest.shards) {
    w.PutU64(s.generation);
    w.PutU64(s.live);
    w.PutU64(s.tombstones);
  }
  w.PutU32(util::Crc32(w.bytes()));
  return w.Release();
}

util::StatusOr<ShardManifest> ParseShardManifest(
    const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  r.set_section("shard manifest");
  if (bytes.size() < 4) return r.Corrupt("shard manifest too short");
  // The trailing CRC-32 covers everything before it; a bit-flip anywhere in
  // the manifest fails here and the open path reconstructs from shard
  // headers instead of trusting damaged counts.
  const uint32_t stored = ReadU32LE(bytes.data() + bytes.size() - 4);
  if (util::Crc32(bytes.data(), bytes.size() - 4) != stored) {
    return r.Corrupt("shard manifest checksum mismatch");
  }
  util::StatusOr<uint32_t> magic = r.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kShardManifestMagic) return r.Corrupt("bad CMSM magic");
  util::StatusOr<uint32_t> version = r.GetU32();
  if (!version.ok()) return version.status();
  if (*version != kManifestVersion) {
    return r.Corrupt("unsupported CMSM version " + std::to_string(*version));
  }
  ShardManifest m;
  util::StatusOr<uint32_t> count = r.GetU32();
  if (!count.ok()) return count.status();
  if (*count < 1 || *count > static_cast<uint32_t>(kMaxShards)) {
    return r.Corrupt("implausible shard count " + std::to_string(*count));
  }
  m.shard_count = *count;
  util::StatusOr<uint64_t> epoch = r.GetU64();
  if (!epoch.ok()) return epoch.status();
  m.epoch = *epoch;
  m.shards.resize(m.shard_count);
  for (ShardManifest::Shard& s : m.shards) {
    util::StatusOr<uint64_t> generation = r.GetU64();
    if (!generation.ok()) return generation.status();
    s.generation = *generation;
    util::StatusOr<uint64_t> live = r.GetU64();
    if (!live.ok()) return live.status();
    s.live = *live;
    util::StatusOr<uint64_t> tombstones = r.GetU64();
    if (!tombstones.ok()) return tombstones.status();
    s.tombstones = *tombstones;
  }
  if (r.remaining() != 4) {
    return r.Corrupt("trailing bytes after shard manifest");
  }
  return m;
}

bool IsShardedDatabasePath(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f != nullptr) {
    uint8_t buf[4];
    const size_t n = fread(buf, 1, sizeof(buf), f);
    fclose(f);
    if (n == sizeof(buf)) {
      const uint32_t magic = ReadU32LE(buf);
      if (magic == kShardManifestMagic) return true;
      if (magic == kCmdbMagic) return false;
    }
  }
  // Damaged or missing root: a shard-0 log next to it still identifies the
  // layout, so a corrupt manifest degrades into reconstruction instead of
  // being misread as a broken monolithic file.
  return FileExists(ShardPath(path, 0)) ||
         FileExists(ShardBackupPath(path, 0));
}

util::StatusOr<int> ShardedDatabaseShardCount(const std::string& path) {
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (bytes.ok()) {
    util::StatusOr<ShardManifest> m = ParseShardManifest(*bytes);
    if (m.ok()) return static_cast<int>(m->shard_count);
  }
  for (const std::string& candidate :
       {ShardPath(path, 0), ShardBackupPath(path, 0)}) {
    util::StatusOr<ShardLogContents> header = ReadLogHeaderOf(candidate);
    if (header.ok()) return static_cast<int>(header->shard_count);
  }
  return util::Status::DataLoss("cannot determine shard count of " + path +
                                " (no loadable manifest or shard log header)");
}

// -------------------------------------------------------------------------
// ShardedDatabase.

struct ShardedDatabase::ShardState {
  mutable std::mutex mu;
  Replay view;
  uint64_t generation = 0;
  uint64_t records = 0;  // records in the current log (live + dead)
  // Set when the log on disk is not a clean image of `view` (loaded from
  // backup, mid-log salvage, or lost): the shard is folded into a pristine
  // next generation before its next append.
  bool needs_rewrite = false;
};

bool ShardedDatabase::OpenReport::any_backup() const {
  return std::any_of(shards.begin(), shards.end(),
                     [](const ShardStatus& s) { return s.used_backup; });
}

bool ShardedDatabase::OpenReport::any_salvaged() const {
  return std::any_of(shards.begin(), shards.end(),
                     [](const ShardStatus& s) { return s.salvaged; });
}

bool ShardedDatabase::OpenReport::any_lost() const {
  return std::any_of(shards.begin(), shards.end(),
                     [](const ShardStatus& s) { return s.lost; });
}

std::string ShardedDatabase::CompactionReport::ToString() const {
  std::string s = "shard " + std::to_string(shard) + ": ";
  if (skipped) {
    s += "skipped (no dead records), generation " +
         std::to_string(generation) + ", " + std::to_string(live) + " live";
    return s;
  }
  s += "folded to generation " + std::to_string(generation) + ", " +
       std::to_string(live) + " live, " + std::to_string(dead_dropped) +
       " dead dropped";
  return s;
}

ShardedDatabase::ShardedDatabase(std::string path, int shard_count,
                                 bool sync_appends)
    : path_(std::move(path)),
      shard_count_(shard_count),
      sync_appends_(sync_appends),
      manifest_mu_(std::make_unique<std::mutex>()),
      epoch_(std::make_unique<std::atomic<uint64_t>>(0)) {
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int k = 0; k < shard_count; ++k) {
    shards_.push_back(std::make_unique<ShardState>());
  }
}

ShardedDatabase::~ShardedDatabase() = default;

uint64_t ShardedDatabase::epoch() const { return epoch_->load(); }

int ShardedDatabase::live_count() const {
  int total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += static_cast<int>(s->view.live.size());
  }
  return total;
}

uint64_t ShardedDatabase::dead_records() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->records - s->view.live.size();
  }
  return total;
}

bool ShardedDatabase::Contains(const std::string& name) const {
  const ShardState& s = *shards_[static_cast<size_t>(
      ShardOfName(name, shard_count_))];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.view.by_name.count(name) > 0;
}

VideoDatabase ShardedDatabase::Snapshot() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& s : shards_) locks.emplace_back(s->mu);
  VideoDatabase db;
  for (const auto& s : shards_) {
    for (const VideoEntry& entry : s->view.live) {
      db.AddVideo(entry.name, entry.structure, entry.events, entry.degraded);
    }
  }
  return db;
}

util::Status ShardedDatabase::SelfHealLocked(ShardState& s, int shard) {
  CLASSMINER_RETURN_IF_ERROR(WriteShardGenerationFile(
      path_, shard, shard_count_, s.generation + 1, s.view.live));
  s.generation += 1;
  s.records = s.view.live.size();
  s.view.tombstones = 0;
  s.needs_rewrite = false;
  return util::Status::Ok();
}

util::Status ShardedDatabase::RewriteManifest() {
  std::lock_guard<std::mutex> manifest_lock(*manifest_mu_);
  ShardManifest m;
  m.shard_count = static_cast<uint32_t>(shard_count_);
  m.epoch = epoch_->load() + 1;
  m.shards.resize(static_cast<size_t>(shard_count_));
  for (int k = 0; k < shard_count_; ++k) {
    ShardState& s = *shards_[static_cast<size_t>(k)];
    std::lock_guard<std::mutex> lock(s.mu);
    m.shards[static_cast<size_t>(k)].generation = s.generation;
    m.shards[static_cast<size_t>(k)].live = s.view.live.size();
    m.shards[static_cast<size_t>(k)].tombstones = s.view.tombstones;
  }
  CLASSMINER_RETURN_IF_ERROR(
      util::FailPoint::Check("index.shard.compact.manifest"));
  CLASSMINER_RETURN_IF_ERROR(
      util::AtomicWriteFile(path_, SerializeShardManifest(m)));
  epoch_->store(m.epoch);
  return util::Status::Ok();
}

namespace {

// Appends one pre-built frame to the shard log with write+fsync discipline.
// Fail-point "index.shard.append.write" simulates the torn write it stands
// for — half the frame reaches the log before the failure — and the append
// path then rolls the file back to its pre-append size, so an in-process
// failure leaves the pre-append state. (A crash that outruns the rollback
// leaves the torn tail instead; the next open truncates it away after the
// CRC scan confirms where the intact log ends.)
util::Status AppendFrame(const std::string& log_path, bool sync,
                         const std::vector<uint8_t>& frame) {
  FILE* f = fopen(log_path.c_str(), "ab");
  if (f == nullptr) {
    return util::Status::Unavailable("cannot open shard log " + log_path +
                                     ": " + Errno());
  }
  struct stat st;
  if (fstat(fileno(f), &st) != 0) {
    fclose(f);
    return util::Status::Unavailable("cannot stat shard log " + log_path +
                                     ": " + Errno());
  }
  const uint64_t old_size = static_cast<uint64_t>(st.st_size);

  util::Status status = util::FailPoint::Check("index.shard.append.write");
  if (!status.ok()) {
    (void)WriteSpan(f, frame.data(), frame.size() / 2);
    (void)fflush(f);
  } else {
    status = WriteSpan(f, frame.data(), frame.size());
    if (status.ok()) {
      status = util::FailPoint::Check("index.shard.append.fsync");
    }
    if (status.ok() && sync) status = FlushAndSync(f);
  }
  fclose(f);
  if (!status.ok()) {
    (void)TruncateTo(log_path, old_size);
    return status;
  }
  return util::Status::Ok();
}

}  // namespace

util::Status ShardedDatabase::Upsert(std::string name,
                                     structure::ContentStructure structure,
                                     std::vector<events::EventRecord> events,
                                     bool degraded) {
  VideoEntry entry;
  entry.name = std::move(name);
  entry.structure = std::move(structure);
  entry.events = std::move(events);
  entry.degraded = degraded;
  CLASSMINER_RETURN_IF_ERROR(
      internal::ValidateEntry(entry, "shard upsert \"" + entry.name + "\""));
  const std::vector<uint8_t> frame = BuildEntryFrame(entry);

  const int k = ShardOfName(entry.name, shard_count_);
  ShardState& s = *shards_[static_cast<size_t>(k)];
  bool manifest_dirty = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.needs_rewrite) {
      CLASSMINER_RETURN_IF_ERROR(SelfHealLocked(s, k));
      manifest_dirty = true;
    }
    CLASSMINER_RETURN_IF_ERROR(
        AppendFrame(ShardPath(path_, k), sync_appends_, frame));
    LogRecord rec;
    rec.entry = std::move(entry);
    s.view.Apply(std::move(rec));
    s.records += 1;
  }
  if (manifest_dirty) CLASSMINER_RETURN_IF_ERROR(RewriteManifest());
  return util::Status::Ok();
}

util::Status ShardedDatabase::Remove(const std::string& name) {
  const int k = ShardOfName(name, shard_count_);
  ShardState& s = *shards_[static_cast<size_t>(k)];
  bool manifest_dirty = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.view.by_name.count(name) == 0) {
      return util::Status::NotFound("no entry named \"" + name + "\"");
    }
    if (s.needs_rewrite) {
      CLASSMINER_RETURN_IF_ERROR(SelfHealLocked(s, k));
      manifest_dirty = true;
    }
    CLASSMINER_RETURN_IF_ERROR(AppendFrame(ShardPath(path_, k), sync_appends_,
                                           BuildTombstoneFrame(name)));
    LogRecord rec;
    rec.tombstone = true;
    rec.name = name;
    s.view.Apply(std::move(rec));
    s.records += 1;
  }
  if (manifest_dirty) CLASSMINER_RETURN_IF_ERROR(RewriteManifest());
  return util::Status::Ok();
}

util::StatusOr<ShardedDatabase::CompactionReport> ShardedDatabase::CompactShard(
    int shard, bool force) {
  if (shard < 0 || shard >= shard_count_) {
    return util::Status::InvalidArgument("no shard " + std::to_string(shard) +
                                         " (shard count " +
                                         std::to_string(shard_count_) + ")");
  }
  CompactionReport report;
  report.shard = shard;
  ShardState& s = *shards_[static_cast<size_t>(shard)];
  {
    std::lock_guard<std::mutex> lock(s.mu);
    const uint64_t live = s.view.live.size();
    const uint64_t dead = s.records - live;
    if (!force && dead == 0 && !s.needs_rewrite) {
      report.skipped = true;
      report.generation = s.generation;
      report.live = live;
      return report;
    }
    CLASSMINER_RETURN_IF_ERROR(SelfHealLocked(s, shard));
    report.generation = s.generation;
    report.live = live;
    report.dead_dropped = dead;
  }
  CLASSMINER_RETURN_IF_ERROR(RewriteManifest());
  return report;
}

util::StatusOr<std::vector<ShardedDatabase::CompactionReport>>
ShardedDatabase::CompactAll(bool force) {
  std::vector<CompactionReport> reports;
  reports.reserve(static_cast<size_t>(shard_count_));
  bool any_folded = false;
  for (int k = 0; k < shard_count_; ++k) {
    CompactionReport report;
    report.shard = k;
    ShardState& s = *shards_[static_cast<size_t>(k)];
    {
      std::lock_guard<std::mutex> lock(s.mu);
      const uint64_t live = s.view.live.size();
      const uint64_t dead = s.records - live;
      if (!force && dead == 0 && !s.needs_rewrite) {
        report.skipped = true;
        report.generation = s.generation;
        report.live = live;
        reports.push_back(report);
        continue;
      }
      CLASSMINER_RETURN_IF_ERROR(SelfHealLocked(s, k));
      report.generation = s.generation;
      report.live = live;
      report.dead_dropped = dead;
      any_folded = true;
    }
    reports.push_back(report);
  }
  if (any_folded) CLASSMINER_RETURN_IF_ERROR(RewriteManifest());
  return reports;
}

util::StatusOr<std::unique_ptr<ShardedDatabase>> ShardedDatabase::Create(
    const std::string& path, const Options& options) {
  if (options.shard_count < 1 || options.shard_count > kMaxShards) {
    return util::Status::InvalidArgument(
        "shard count must be in [1, " + std::to_string(kMaxShards) +
        "], got " + std::to_string(options.shard_count));
  }
  if (FileExists(path)) {
    return util::Status::InvalidArgument(
        "refusing to overwrite existing file at " + path +
        " (delete it or pick a new path)");
  }
  VideoDatabase empty;
  CLASSMINER_RETURN_IF_ERROR(
      SaveShardedDatabase(empty, path, options.shard_count));
  util::StatusOr<std::unique_ptr<ShardedDatabase>> db = Open(path);
  if (db.ok()) (*db)->sync_appends_ = options.sync_appends;
  return db;
}

util::StatusOr<std::unique_ptr<ShardedDatabase>> ShardedDatabase::Open(
    const std::string& path, util::SalvageReport* report,
    OpenReport* open_report, bool read_only) {
  util::SalvageReport local;
  if (report == nullptr) report = &local;

  ShardManifest manifest;
  bool manifest_ok = false;
  {
    util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
    if (bytes.ok()) {
      util::StatusOr<ShardManifest> m = ParseShardManifest(*bytes);
      if (m.ok()) {
        manifest = *m;
        manifest_ok = true;
      } else {
        report->AddNote("shard manifest: " + m.status().message());
      }
    } else {
      report->AddNote("shard manifest: " + bytes.status().message());
    }
  }
  if (!manifest_ok) {
    // The manifest is advisory: shard count lives redundantly in every log
    // header, so a damaged root reconstructs instead of failing the open.
    util::StatusOr<int> count = ShardedDatabaseShardCount(path);
    if (!count.ok()) {
      return util::Status::DataLoss(
          "no loadable shard manifest or shard logs at " + path);
    }
    manifest.shard_count = static_cast<uint32_t>(*count);
    manifest.shards.resize(manifest.shard_count);
    report->salvaged = true;
    report->AddNote("shard manifest: reconstructed shard count " +
                    std::to_string(*count) + " from shard log headers");
  }
  const int count = static_cast<int>(manifest.shard_count);
  if (manifest.shards.size() < static_cast<size_t>(count)) {
    manifest.shards.resize(static_cast<size_t>(count));
  }

  std::unique_ptr<ShardedDatabase> db(
      new ShardedDatabase(path, count, /*sync_appends=*/true));
  db->epoch_->store(manifest.epoch);

  std::vector<ShardStatus> statuses(static_cast<size_t>(count));
  std::vector<util::SalvageReport> reports(static_cast<size_t>(count));

  ForEachShard(count, [&](int k) {
    ShardState& s = *db->shards_[static_cast<size_t>(k)];
    ShardStatus& st = statuses[static_cast<size_t>(k)];
    util::SalvageReport& rep = reports[static_cast<size_t>(k)];
    const std::string cur = ShardPath(path, k);
    const std::string prev = ShardBackupPath(path, k);
    const std::string label = "shard " + std::to_string(k);

    auto header_ok = [&](const ShardLogContents& log,
                         const std::string& which) {
      if (log.shard_index == static_cast<uint32_t>(k) &&
          log.shard_count == static_cast<uint32_t>(count)) {
        return true;
      }
      rep.AddNote(label + ": " + which + " header names shard " +
                  std::to_string(log.shard_index) + " of " +
                  std::to_string(log.shard_count) + ", expected " +
                  std::to_string(k) + " of " + std::to_string(count));
      return false;
    };
    auto apply = [&](ShardLogContents&& log) {
      s.generation = log.generation;
      st.generation = log.generation;
      for (LogRecord& rec : log.records) {
        s.view.Apply(std::move(rec));
        s.records += 1;
      }
    };

    // "index.shard.open" injects an unreadable current generation,
    // exercising the per-shard fallback without touching the disk.
    util::StatusOr<std::vector<uint8_t>> cur_bytes = [&]()
        -> util::StatusOr<std::vector<uint8_t>> {
      const util::Status fault = util::FailPoint::Check("index.shard.open");
      if (!fault.ok()) return fault;
      return util::ReadFile(cur);
    }();
    if (!cur_bytes.ok()) {
      rep.AddNote(label + ": " + cur_bytes.status().message());
    }

    // 1. Strict current generation.
    if (cur_bytes.ok()) {
      util::StatusOr<ShardLogContents> log = ParseShardLog(*cur_bytes);
      if (log.ok() && header_ok(*log, "current")) {
        apply(std::move(*log));
        return;
      }
      if (!log.ok()) rep.AddNote(label + ": " + log.status().message());
    }

    // 2. Strict previous generation.
    util::StatusOr<std::vector<uint8_t>> prev_bytes = util::ReadFile(prev);
    if (prev_bytes.ok()) {
      util::StatusOr<ShardLogContents> log = ParseShardLog(*prev_bytes);
      if (log.ok() && header_ok(*log, "previous")) {
        apply(std::move(*log));
        st.used_backup = true;
        s.needs_rewrite = true;
        rep.AddNote(label + ": fell back to previous generation " + prev);
        return;
      }
      if (!log.ok()) rep.AddNote(label + ": " + log.status().message());
    }

    // 3. Salvage the current generation.
    if (cur_bytes.ok()) {
      util::SalvageReport srep;
      util::StatusOr<ShardSalvage> sal =
          ParseShardLogSalvage(*cur_bytes, &srep);
      if (sal.ok() && header_ok(sal->log, "current")) {
        rep.Merge(srep);
        rep.salvaged = true;
        st.salvaged = true;
        const bool tail_only = sal->resyncs == 0 && sal->tail_torn;
        const size_t clean_prefix = sal->clean_prefix;
        apply(std::move(sal->log));
        if (tail_only && !read_only) {
          // The only damage is a torn tail: truncating back to the last
          // confirmed frame leaves a strictly clean log that appends can
          // extend directly.
          const util::Status cut = TruncateTo(cur, clean_prefix);
          if (cut.ok()) {
            rep.AddNote(label + ": truncated torn tail to " +
                        std::to_string(clean_prefix) + " bytes");
          } else {
            rep.AddNote(label + ": " + cut.message());
            s.needs_rewrite = true;
          }
        } else if (!tail_only) {
          s.needs_rewrite = true;
        }
        return;
      }
    }

    // 4. Salvage the previous generation.
    if (prev_bytes.ok()) {
      util::SalvageReport srep;
      util::StatusOr<ShardSalvage> sal =
          ParseShardLogSalvage(*prev_bytes, &srep);
      if (sal.ok() && header_ok(sal->log, "previous")) {
        rep.Merge(srep);
        rep.salvaged = true;
        apply(std::move(sal->log));
        st.used_backup = true;
        st.salvaged = true;
        s.needs_rewrite = true;
        rep.AddNote(label + ": salvaged previous generation " + prev);
        return;
      }
    }

    // 5. Both generations dead: the shard's entries are lost, but the rest
    // of the library still opens.
    st.lost = true;
    rep.salvaged = true;
    s.generation = manifest.shards[static_cast<size_t>(k)].generation;
    st.generation = s.generation;
    s.needs_rewrite = true;
    rep.AddNote(label + ": no loadable generation; opened empty");
  });

  for (const util::SalvageReport& rep : reports) report->Merge(rep);
  if (open_report != nullptr) open_report->shards = std::move(statuses);

  // A crash between a compaction's log rotation and its manifest write
  // leaves the manifest recording a superseded generation. Staleness is
  // advisory, but a read-write open is the natural place to heal it: if any
  // shard loaded a generation the manifest does not record (or the manifest
  // itself had to be reconstructed), refresh it best-effort.
  bool manifest_stale = !manifest_ok;
  if (!manifest_stale) {
    for (int k = 0; k < count; ++k) {
      if (db->shards_[static_cast<size_t>(k)]->generation !=
          manifest.shards[static_cast<size_t>(k)].generation) {
        manifest_stale = true;
        break;
      }
    }
  }
  if (manifest_stale && !read_only) {
    const util::Status refreshed = db->RewriteManifest();
    if (!refreshed.ok()) {
      report->AddNote("shard manifest: rewrite failed: " +
                      refreshed.message());
    }
  }
  return db;
}

// -------------------------------------------------------------------------
// File-level helpers.

util::Status SaveShardedDatabase(const VideoDatabase& db,
                                 const std::string& path, int shard_count) {
  if (shard_count < 1 || shard_count > kMaxShards) {
    return util::Status::InvalidArgument(
        "shard count must be in [1, " + std::to_string(kMaxShards) +
        "], got " + std::to_string(shard_count));
  }
  CLASSMINER_RETURN_IF_ERROR(ValidateForSerialize(db));

  std::vector<std::vector<VideoEntry>> parts(
      static_cast<size_t>(shard_count));
  for (int i = 0; i < db.video_count(); ++i) {
    const VideoEntry& v = db.video(i);
    parts[static_cast<size_t>(ShardOfName(v.name, shard_count))].push_back(v);
  }

  // Advance every shard one generation past whatever the old manifest
  // records (fresh databases start at generation 1, epoch 1).
  ShardManifest manifest;
  manifest.shard_count = static_cast<uint32_t>(shard_count);
  manifest.epoch = 1;
  manifest.shards.resize(static_cast<size_t>(shard_count));
  {
    util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
    if (bytes.ok()) {
      util::StatusOr<ShardManifest> previous = ParseShardManifest(*bytes);
      if (previous.ok()) {
        manifest.epoch = previous->epoch + 1;
        for (size_t k = 0; k < manifest.shards.size(); ++k) {
          if (k < previous->shards.size()) {
            manifest.shards[k].generation = previous->shards[k].generation;
          }
        }
      }
    }
  }
  for (int k = 0; k < shard_count; ++k) {
    ShardManifest::Shard& s = manifest.shards[static_cast<size_t>(k)];
    s.generation += 1;
    s.live = parts[static_cast<size_t>(k)].size();
    s.tombstones = 0;
    CLASSMINER_RETURN_IF_ERROR(WriteShardGenerationFile(
        path, k, shard_count, s.generation, parts[static_cast<size_t>(k)]));
  }
  CLASSMINER_RETURN_IF_ERROR(
      util::FailPoint::Check("index.shard.compact.manifest"));
  return util::AtomicWriteFile(path, SerializeShardManifest(manifest));
}

util::StatusOr<VideoDatabase> LoadShardedDatabase(const std::string& path) {
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  util::StatusOr<ShardManifest> manifest = ParseShardManifest(*bytes);
  if (!manifest.ok()) return manifest.status();
  const int count = static_cast<int>(manifest->shard_count);

  std::vector<util::StatusOr<ShardLogContents>> logs(
      static_cast<size_t>(count), util::Status::Internal("shard not parsed"));
  ForEachShard(count, [&](int k) {
    util::StatusOr<std::vector<uint8_t>> log_bytes =
        util::ReadFile(ShardPath(path, k));
    if (!log_bytes.ok()) {
      logs[static_cast<size_t>(k)] = log_bytes.status();
      return;
    }
    logs[static_cast<size_t>(k)] = ParseShardLog(*log_bytes);
  });

  VideoDatabase db;
  for (int k = 0; k < count; ++k) {
    util::StatusOr<ShardLogContents>& log = logs[static_cast<size_t>(k)];
    if (!log.ok()) {
      return util::Status(log.status().code(),
                          "shard " + std::to_string(k) + ": " +
                              log.status().message());
    }
    if (log->shard_index != static_cast<uint32_t>(k) ||
        log->shard_count != static_cast<uint32_t>(count)) {
      return util::Status::DataLoss(
          "shard " + std::to_string(k) + ": header names shard " +
          std::to_string(log->shard_index) + " of " +
          std::to_string(log->shard_count));
    }
    Replay replay;
    for (LogRecord& rec : log->records) replay.Apply(std::move(rec));
    for (VideoEntry& entry : replay.live) {
      db.AddVideo(std::move(entry.name), std::move(entry.structure),
                  std::move(entry.events), entry.degraded);
    }
  }
  return db;
}

util::StatusOr<VideoDatabase> LoadShardedDatabaseSalvage(
    const std::string& path, util::SalvageReport* report, bool* used_backup,
    bool* salvaged) {
  ShardedDatabase::OpenReport open_report;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> db =
      ShardedDatabase::Open(path, report, &open_report, /*read_only=*/true);
  if (!db.ok()) return db.status();
  if (used_backup != nullptr) *used_backup = open_report.any_backup();
  if (salvaged != nullptr) {
    *salvaged = open_report.any_salvaged() || open_report.any_lost();
  }
  return (*db)->Snapshot();
}

util::StatusOr<std::vector<ShardedDatabase::CompactionReport>>
CompactDatabaseFile(const std::string& path, int shard, bool force) {
  if (!IsShardedDatabasePath(path)) {
    return util::Status::InvalidArgument(
        path + " is not a sharded database (nothing to compact)");
  }
  util::SalvageReport report;
  util::StatusOr<std::unique_ptr<ShardedDatabase>> db =
      ShardedDatabase::Open(path, &report);
  if (!db.ok()) return db.status();
  if (shard >= 0) {
    util::StatusOr<ShardedDatabase::CompactionReport> one =
        (*db)->CompactShard(shard, force);
    if (!one.ok()) return one.status();
    return std::vector<ShardedDatabase::CompactionReport>{*one};
  }
  return (*db)->CompactAll(force);
}

void VerifyShardedDatabaseFile(const std::string& path, VerifyReport* report) {
  report->sharded = true;
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) {
    report->error = bytes.status().message();
    return;
  }
  util::StatusOr<ShardManifest> manifest = ParseShardManifest(*bytes);
  if (!manifest.ok()) {
    report->error = manifest.status().message();
    return;
  }
  report->manifest_present = true;
  report->manifest_matches = true;
  report->generation = manifest->epoch;
  report->shards = static_cast<int>(manifest->shard_count);
  const int count = report->shards;

  struct ShardCheck {
    util::Status status = util::Status::Ok();
    uint64_t generation = 0;
    int live = 0;
    int degraded = 0;
  };
  std::vector<ShardCheck> checks(static_cast<size_t>(count));
  ForEachShard(count, [&](int k) {
    ShardCheck& check = checks[static_cast<size_t>(k)];
    util::StatusOr<std::vector<uint8_t>> log_bytes =
        util::ReadFile(ShardPath(path, k));
    if (!log_bytes.ok()) {
      check.status = log_bytes.status();
      return;
    }
    util::StatusOr<ShardLogContents> log = ParseShardLog(*log_bytes);
    if (!log.ok()) {
      check.status = log.status();
      return;
    }
    if (log->shard_index != static_cast<uint32_t>(k) ||
        log->shard_count != static_cast<uint32_t>(count)) {
      check.status = util::Status::DataLoss(
          "header names shard " + std::to_string(log->shard_index) + " of " +
          std::to_string(log->shard_count));
      return;
    }
    check.generation = log->generation;
    Replay replay;
    for (LogRecord& rec : log->records) replay.Apply(std::move(rec));
    check.live = static_cast<int>(replay.live.size());
    for (const VideoEntry& entry : replay.live) {
      if (entry.degraded) ++check.degraded;
    }
  });

  report->loadable = true;
  for (int k = 0; k < count; ++k) {
    const ShardCheck& check = checks[static_cast<size_t>(k)];
    if (!check.status.ok()) {
      report->loadable = false;
      if (report->error.empty()) {
        report->error =
            "shard " + std::to_string(k) + ": " + check.status.message();
      }
      continue;
    }
    report->videos += check.live;
    report->degraded_videos += check.degraded;
    const uint64_t expected =
        manifest->shards[static_cast<size_t>(k)].generation;
    if (check.generation != expected) {
      report->manifest_matches = false;
      if (!report->stale_detail.empty()) report->stale_detail += "; ";
      report->stale_detail += "shard " + std::to_string(k) +
                              " log generation " +
                              std::to_string(check.generation) +
                              ", manifest records " + std::to_string(expected);
    }
  }
}

}  // namespace classminer::index

#ifndef CLASSMINER_INDEX_QUERY_H_
#define CLASSMINER_INDEX_QUERY_H_

#include <vector>

#include "features/similarity.h"
#include "index/database.h"

namespace classminer::index {

// One ranked k-NN match.
struct QueryMatch {
  ShotRef ref;
  double similarity = 0.0;
};

// Cost decomposition matching Sec. 6.2: how many similarity computations
// each level of the search performed, plus wall time.
struct QueryStats {
  size_t cluster_comparisons = 0;     // Mc (Eq. 25)
  size_t subcluster_comparisons = 0;  // Msc
  size_t scene_comparisons = 0;       // Ms
  size_t shot_comparisons = 0;        // Mo
  size_t ranked = 0;
  double elapsed_us = 0.0;

  size_t TotalComparisons() const {
    return cluster_comparisons + subcluster_comparisons + scene_comparisons +
           shot_comparisons;
  }
};

// Common interface of the linear-scan baseline (Eq. 24) and the
// cluster-based hierarchical index (Eq. 25).
class ShotIndex {
 public:
  virtual ~ShotIndex() = default;

  // Returns the k most similar shots to `query`, most similar first.
  virtual std::vector<QueryMatch> Search(const features::ShotFeatures& query,
                                         int k,
                                         QueryStats* stats = nullptr) const = 0;
};

}  // namespace classminer::index

#endif  // CLASSMINER_INDEX_QUERY_H_

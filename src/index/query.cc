#include "index/query.h"

// Query types are header-only; this translation unit anchors the interface
// in the cm_index library.

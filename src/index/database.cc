#include "index/database.h"

namespace classminer::index {

int VideoEntry::SceneOfShot(int shot_index) const {
  for (const structure::Scene& scene : structure.scenes) {
    const structure::Group& first =
        structure.groups[static_cast<size_t>(scene.start_group)];
    const structure::Group& last =
        structure.groups[static_cast<size_t>(scene.end_group)];
    if (shot_index >= first.start_shot && shot_index <= last.end_shot) {
      return scene.index;
    }
  }
  return -1;
}

events::EventType VideoEntry::EventOfShot(int shot_index) const {
  const int scene = SceneOfShot(shot_index);
  if (scene < 0) return events::EventType::kUndetermined;
  for (const events::EventRecord& rec : events) {
    if (rec.scene_index == scene) return rec.type;
  }
  return events::EventType::kUndetermined;
}

int VideoDatabase::AddVideo(std::string name,
                            structure::ContentStructure structure,
                            std::vector<events::EventRecord> events,
                            bool degraded) {
  VideoEntry entry;
  entry.id = static_cast<int>(videos_.size());
  entry.name = std::move(name);
  entry.structure = std::move(structure);
  entry.events = std::move(events);
  entry.degraded = degraded;
  videos_.push_back(std::move(entry));
  return videos_.back().id;
}

util::Status VideoDatabase::ReplaceVideo(int id, std::string name,
                                         structure::ContentStructure structure,
                                         std::vector<events::EventRecord> events,
                                         bool degraded) {
  if (id < 0 || id >= video_count()) {
    return util::Status::InvalidArgument("no video with id " +
                                         std::to_string(id));
  }
  VideoEntry& entry = videos_[static_cast<size_t>(id)];
  entry.name = std::move(name);
  entry.structure = std::move(structure);
  entry.events = std::move(events);
  entry.degraded = degraded;
  return util::Status::Ok();
}

int VideoDatabase::DegradedCount() const {
  int degraded = 0;
  for (const VideoEntry& v : videos_) {
    if (v.degraded) ++degraded;
  }
  return degraded;
}

size_t VideoDatabase::TotalShotCount() const {
  size_t n = 0;
  for (const VideoEntry& v : videos_) n += v.structure.shots.size();
  return n;
}

std::vector<ShotRef> VideoDatabase::AllShots() const {
  std::vector<ShotRef> out;
  out.reserve(TotalShotCount());
  for (const VideoEntry& v : videos_) {
    for (size_t s = 0; s < v.structure.shots.size(); ++s) {
      out.push_back(ShotRef{v.id, static_cast<int>(s)});
    }
  }
  return out;
}

const features::ShotFeatures& VideoDatabase::Features(
    const ShotRef& ref) const {
  return videos_[static_cast<size_t>(ref.video_id)]
      .structure.shots[static_cast<size_t>(ref.shot_index)]
      .features;
}

const shot::Shot& VideoDatabase::GetShot(const ShotRef& ref) const {
  return videos_[static_cast<size_t>(ref.video_id)]
      .structure.shots[static_cast<size_t>(ref.shot_index)];
}

}  // namespace classminer::index

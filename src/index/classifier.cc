#include "index/classifier.h"

namespace classminer::index {

SemanticClassifier::SemanticClassifier(const ConceptHierarchy* concepts)
    : concepts_(concepts) {
  education_node_ = concepts->FindByName("medical_education");
  health_care_node_ = concepts->FindByName("health_care");
  report_node_ = concepts->FindByName("medical_report");
}

VideoAssignment SemanticClassifier::ClassifyVideo(
    const VideoEntry& video) const {
  VideoAssignment out;
  out.video_id = video.id;
  for (const events::EventRecord& rec : video.events) {
    SceneAssignment scene;
    scene.scene_index = rec.scene_index;
    scene.event = rec.type;
    scene.concept_node = concepts_->SceneNodeForEvent(rec.type);
    out.scenes.push_back(scene);
    switch (rec.type) {
      case events::EventType::kPresentation:
        ++out.presentation_scenes;
        break;
      case events::EventType::kDialog:
        ++out.dialog_scenes;
        break;
      case events::EventType::kClinicalOperation:
        ++out.clinical_scenes;
        break;
      case events::EventType::kUndetermined:
        ++out.undetermined_scenes;
        break;
    }
  }

  // Dominant-mix rule; ties resolve in priority order clinical >
  // presentation > dialog (procedure footage is the most specific signal).
  out.cluster_node = concepts_->root();
  const int c = out.clinical_scenes;
  const int p = out.presentation_scenes;
  const int d = out.dialog_scenes;
  if (c == 0 && p == 0 && d == 0) return out;
  if (c >= p && c >= d && health_care_node_ >= 0) {
    out.cluster_node = health_care_node_;
  } else if (p >= d && education_node_ >= 0) {
    out.cluster_node = education_node_;
  } else if (report_node_ >= 0) {
    out.cluster_node = report_node_;
  }
  return out;
}

std::vector<VideoAssignment> SemanticClassifier::ClassifyDatabase(
    const VideoDatabase& db) const {
  std::vector<VideoAssignment> out;
  out.reserve(static_cast<size_t>(db.video_count()));
  for (int v = 0; v < db.video_count(); ++v) {
    out.push_back(ClassifyVideo(db.video(v)));
  }
  return out;
}

}  // namespace classminer::index

#ifndef CLASSMINER_INDEX_HIER_INDEX_H_
#define CLASSMINER_INDEX_HIER_INDEX_H_

#include <unordered_map>
#include <vector>

#include "index/concept.h"
#include "index/query.h"
#include "util/exec_context.h"

namespace classminer::index {

// Cluster-based multi-level index (paper Sec. 2 and Sec. 6.2, Eq. 25).
//
// The tree mirrors the semantic hierarchy: root -> semantic clusters (the
// mined event categories) -> subclusters (per-video topic units) -> scene
// nodes -> shots. Non-leaf nodes carry *multiple centres* (medoid shot
// features) because their content is multi-modal and a single Gaussian
// cannot model it; leaf (scene) nodes index member shots with a hash table
// keyed on the dominant colour bin.
class HierarchicalIndex : public ShotIndex {
 public:
  struct Options {
    int centers_per_node = 4;
    // How many best-matching branches to descend at each level; 1 is the
    // paper's most-relevant-unit search, larger trades speed for recall.
    int beam_width = 1;
  };

  // The context's pool parallelises the O(n^2) per-centre similarity loops
  // of Build (per-member slots, serial argmax/argmin scans in index order,
  // so the chosen centres are bit-identical to a serial build), and its
  // metrics registry receives one "index_build" row covering the build.
  HierarchicalIndex(const VideoDatabase* db, const ConceptHierarchy* concepts,
                    const Options& options,
                    const util::ExecutionContext& ctx = {});
  HierarchicalIndex(const VideoDatabase* db, const ConceptHierarchy* concepts);

  std::vector<QueryMatch> Search(const features::ShotFeatures& query, int k,
                                 QueryStats* stats = nullptr) const override;

  // Introspection for tests / diagnostics.
  size_t cluster_count() const { return clusters_.size(); }
  size_t TotalSceneNodes() const;
  size_t TotalIndexedShots() const;

 private:
  struct SceneNode {
    std::vector<ShotRef> shots;
    // Hash table: dominant-histogram-bin -> member shots in that bucket.
    std::unordered_map<int, std::vector<ShotRef>> buckets;
    std::vector<const features::ShotFeatures*> centers;
  };
  struct SubclusterNode {
    int video_id = -1;
    std::vector<SceneNode> scenes;
    std::vector<const features::ShotFeatures*> centers;
  };
  struct ClusterNode {
    events::EventType event = events::EventType::kUndetermined;
    int concept_node = -1;  // scene-level concept id in the hierarchy
    std::vector<SubclusterNode> subclusters;
    std::vector<const features::ShotFeatures*> centers;
  };

  void Build(const util::ExecutionContext& ctx);
  std::vector<const features::ShotFeatures*> PickCenters(
      const std::vector<ShotRef>& members,
      const util::ExecutionContext& ctx) const;
  double CenterSimilarity(
      const features::ShotFeatures& query,
      const std::vector<const features::ShotFeatures*>& centers,
      size_t* comparisons) const;

  static int BucketKey(const features::ShotFeatures& f);

  const VideoDatabase* db_;
  const ConceptHierarchy* concepts_;
  Options options_;
  std::vector<ClusterNode> clusters_;

  friend class HierarchicalIndexPeer;  // test access
};

}  // namespace classminer::index

#endif  // CLASSMINER_INDEX_HIER_INDEX_H_

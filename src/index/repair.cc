#include "index/repair.h"

#include <utility>

namespace classminer::index {

std::string RepairReport::ToString() const {
  std::string s = "examined=" + std::to_string(examined) +
                  " degraded=" + std::to_string(degraded) +
                  " repaired=" + std::to_string(repaired) +
                  " failed=" + std::to_string(failed);
  if (rewritten) s += " rewritten";
  return s;
}

RepairReport RepairDatabase(VideoDatabase* db, const RemineFn& remine) {
  RepairReport report;
  for (int id = 0; id < db->video_count(); ++id) {
    ++report.examined;
    const VideoEntry& entry = db->video(id);
    if (!entry.degraded) continue;
    ++report.degraded;
    const std::string name = entry.name;
    if (!remine) {
      ++report.failed;
      report.notes.push_back(name + ": no re-mine source available");
      continue;
    }
    util::StatusOr<ReminedEntry> fresh = remine(name);
    if (!fresh.ok()) {
      ++report.failed;
      report.notes.push_back(name + ": " + fresh.status().message());
      continue;
    }
    (void)db->ReplaceVideo(id, name, std::move(fresh->structure),
                           std::move(fresh->events), /*degraded=*/false);
    ++report.repaired;
    report.notes.push_back(name + ": repaired");
  }
  return report;
}

util::StatusOr<RepairReport> RepairDatabaseFile(const std::string& path,
                                                const RemineFn& remine,
                                                util::SalvageReport* salvage) {
  util::SalvageReport local;
  if (salvage == nullptr) salvage = &local;
  util::StatusOr<OpenResult> opened = OpenDatabaseAnyGeneration(path, salvage);
  if (!opened.ok()) return opened.status();

  RepairReport report = RepairDatabase(&opened->db, remine);
  // Rewrite when an entry was healed, and also when the open itself had to
  // recover (backup generation or salvage): saving then promotes the
  // recovered state to a pristine current generation + manifest.
  if (report.repaired > 0 || opened->used_backup || opened->salvaged) {
    CLASSMINER_RETURN_IF_ERROR(SaveDatabase(opened->db, path));
    report.rewritten = true;
  }
  return report;
}

}  // namespace classminer::index

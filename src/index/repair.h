#ifndef CLASSMINER_INDEX_REPAIR_H_
#define CLASSMINER_INDEX_REPAIR_H_

#include <functional>
#include <string>
#include <vector>

#include "index/database.h"
#include "index/persist.h"
#include "util/salvage.h"
#include "util/status.h"

namespace classminer::index {

// A pristine replacement for one database entry, produced by re-mining the
// entry's source container.
struct ReminedEntry {
  structure::ContentStructure structure;
  std::vector<events::EventRecord> events;
};

// Re-mines one entry (addressed by name) from its pristine source.
// Implementations live above this layer — core owns the mining pipeline
// and depends on index, not the other way round; see core::MakeCmvRemineFn.
// Must fail rather than degrade when the source is damaged: repair never
// swaps one degraded entry for another.
using RemineFn =
    std::function<util::StatusOr<ReminedEntry>(const std::string& name)>;

struct RepairReport {
  int examined = 0;        // entries inspected
  int degraded = 0;        // entries that needed repair
  int repaired = 0;        // degraded entries replaced by pristine re-mines
  int failed = 0;          // re-mine failed; entry left degraded in place
  bool rewritten = false;  // a fresh generation was saved (file-level pass)
  std::vector<std::string> notes;  // one line per entry touched

  std::string ToString() const;
};

// In-memory repair pass: every entry still flagged degraded is re-mined
// through `remine` and replaced in place (id preserved, flag cleared).
// Entries whose re-mine fails stay degraded and are itemised in the
// report's notes; healthy entries are untouched.
RepairReport RepairDatabase(VideoDatabase* db, const RemineFn& remine);

// File-level repair: opens whichever generation of `path` loads (see
// OpenDatabaseAnyGeneration), runs the in-memory pass, and saves a fresh
// generation when anything changed — an entry repaired, or the open needed
// the backup / a salvage parse (rewriting then restores a pristine,
// fully-checksummed current generation). Fallback and salvage details land
// in *salvage (nullptr to discard).
util::StatusOr<RepairReport> RepairDatabaseFile(const std::string& path,
                                                const RemineFn& remine,
                                                util::SalvageReport* salvage);

}  // namespace classminer::index

#endif  // CLASSMINER_INDEX_REPAIR_H_

#include "index/browser.h"

#include <map>
#include <sstream>

namespace classminer::index {

std::vector<BrowseCluster> BuildBrowseTree(
    const VideoDatabase& db, const ConceptHierarchy& concepts,
    const AccessController& access, const UserCredential& user,
    const util::ExecutionContext& ctx) {
  util::StageTimer timer(ctx.metrics(), "browse", ctx.thread_count());
  timer.set_items(db.video_count());
  const SemanticClassifier classifier(&concepts);
  std::map<int, BrowseCluster> by_cluster;

  for (int v = 0; v < db.video_count(); ++v) {
    const VideoEntry& entry = db.video(v);
    const VideoAssignment assignment = classifier.ClassifyVideo(entry);

    BrowseVideo video;
    video.video_id = v;
    video.name = entry.name;
    for (const SceneAssignment& sa : assignment.scenes) {
      // Scene visibility follows its scene-level concept node.
      const int node = sa.concept_node;
      if (node >= 0 && !access.CanAccessNode(user, node)) continue;
      if (node < 0 && user.clearance < 1) continue;

      BrowseScene scene;
      scene.scene_index = sa.scene_index;
      scene.event = sa.event;
      const structure::Scene& s =
          entry.structure.scenes[static_cast<size_t>(sa.scene_index)];
      for (int shot_index : entry.structure.ShotIndicesOfScene(s)) {
        const shot::Shot& shot =
            entry.structure.shots[static_cast<size_t>(shot_index)];
        scene.shots.push_back(
            BrowseShot{shot_index, shot.start_frame, shot.end_frame});
      }
      video.scenes.push_back(std::move(scene));
    }
    if (video.scenes.empty()) continue;  // nothing visible to this user

    BrowseCluster& cluster = by_cluster[assignment.cluster_node];
    if (cluster.videos.empty()) {
      cluster.concept_node = assignment.cluster_node;
      cluster.concept_path = assignment.cluster_node > 0
                                 ? concepts.PathOf(assignment.cluster_node)
                                 : "(unclassified)";
    }
    cluster.videos.push_back(std::move(video));
  }

  std::vector<BrowseCluster> tree;
  tree.reserve(by_cluster.size());
  for (auto& [node, cluster] : by_cluster) tree.push_back(std::move(cluster));
  return tree;
}

std::string RenderBrowseTree(const std::vector<BrowseCluster>& tree) {
  std::ostringstream out;
  for (const BrowseCluster& cluster : tree) {
    out << cluster.concept_path << "\n";
    for (const BrowseVideo& video : cluster.videos) {
      out << "  " << video.name << " (" << video.scenes.size()
          << " scenes)\n";
      for (const BrowseScene& scene : video.scenes) {
        out << "    scene " << scene.scene_index << " ["
            << events::EventTypeName(scene.event) << "] "
            << scene.shots.size() << " shots";
        if (!scene.shots.empty()) {
          out << " (frames " << scene.shots.front().start_frame << ".."
              << scene.shots.back().end_frame << ")";
        }
        out << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace classminer::index

#ifndef CLASSMINER_INDEX_CONCEPT_H_
#define CLASSMINER_INDEX_CONCEPT_H_

#include <string>
#include <vector>

#include "events/event_miner.h"
#include "util/status.h"

namespace classminer::index {

// Levels of the database model (paper Figs. 1-2).
enum class ConceptLevel {
  kRoot = 0,
  kCluster,     // e.g. "medical_education"
  kSubcluster,  // e.g. "medicine"
  kScene,       // e.g. "presentation"
};

struct ConceptNode {
  int id = 0;
  std::string name;
  ConceptLevel level = ConceptLevel::kRoot;
  int parent = -1;
  std::vector<int> children;
  // Multilevel security: a user needs clearance >= this to access content
  // indexed under the node (Sec. 2, access control feature).
  int security_level = 0;
};

// The concept hierarchy of video content: a tree of semantic nodes provided
// by domain experts (or WordNet in the paper; here a built-in medical tree
// plus a text loader).
class ConceptHierarchy {
 public:
  ConceptHierarchy();  // root only

  // The medical-domain hierarchy of Fig. 2, with the three event scenes
  // under medicine.
  static ConceptHierarchy MedicalDefault();

  // Loads from lines of the form "path/to/node[:security]", e.g.
  //   "medical_education/medicine/presentation:2". Parents are created on
  // demand with security 0.
  static util::StatusOr<ConceptHierarchy> FromSpec(
      const std::vector<std::string>& lines);

  int root() const { return 0; }
  const ConceptNode& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  int node_count() const { return static_cast<int>(nodes_.size()); }

  // Adds a child under `parent`; level is parent's level + 1 (capped at
  // kScene). Returns the new node id.
  int AddChild(int parent, const std::string& name, int security_level = 0);

  // Finds a node by slash-separated path from the root; -1 when absent.
  int FindByPath(const std::string& path) const;
  // First node with the given name anywhere in the tree; -1 when absent.
  int FindByName(const std::string& name) const;

  bool IsAncestor(int ancestor, int descendant) const;
  std::string PathOf(int id) const;
  void SetSecurityLevel(int id, int level);

  // Scene-level concept node for a mined event type (medical default tree);
  // -1 for undetermined events.
  int SceneNodeForEvent(events::EventType type) const;

 private:
  std::vector<ConceptNode> nodes_;
};

}  // namespace classminer::index

#endif  // CLASSMINER_INDEX_CONCEPT_H_

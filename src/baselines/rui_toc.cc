#include "baselines/rui_toc.h"

#include <algorithm>
#include <cmath>

namespace classminer::baselines {
namespace {

struct TocGroup {
  std::vector<int> shots;
  int last_shot = -1;
};

}  // namespace

std::vector<std::vector<int>> RuiTocScenes(const std::vector<shot::Shot>& shots,
                                           const RuiTocOptions& options) {
  std::vector<std::vector<int>> scenes;
  const int n = static_cast<int>(shots.size());
  if (n == 0) return scenes;

  // Phase 1: time-adaptive grouping.
  std::vector<TocGroup> groups;
  std::vector<int> group_of_shot(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    int best_group = -1;
    double best_sim = options.group_threshold;
    for (size_t g = 0; g < groups.size(); ++g) {
      const TocGroup& grp = groups[g];
      const double gap = static_cast<double>(i - grp.last_shot);
      const double atten = std::exp(-gap / options.attenuation_shots);
      const double sim =
          atten * features::StSim(
                      shots[static_cast<size_t>(i)].features,
                      shots[static_cast<size_t>(grp.last_shot)].features,
                      options.weights);
      if (sim > best_sim) {
        best_sim = sim;
        best_group = static_cast<int>(g);
      }
    }
    if (best_group < 0) {
      TocGroup grp;
      grp.shots.push_back(i);
      grp.last_shot = i;
      groups.push_back(std::move(grp));
      best_group = static_cast<int>(groups.size()) - 1;
    } else {
      groups[static_cast<size_t>(best_group)].shots.push_back(i);
      groups[static_cast<size_t>(best_group)].last_shot = i;
    }
    group_of_shot[static_cast<size_t>(i)] = best_group;
  }

  // Phase 2: scene construction from the groups' temporal spans (the ToC
  // paper merges temporally interleaved groups into one scene). A scene
  // boundary falls between shots i-1 and i when no group has members on
  // both sides within the look-around window, and the direct similarity
  // across the boundary is low.
  const int window = std::max(1, static_cast<int>(options.attenuation_shots));
  std::vector<int> current{0};
  for (int i = 1; i < n; ++i) {
    bool spanned = false;
    for (int j = std::max(0, i - window); j < i && !spanned; ++j) {
      for (int k = i; k < std::min(n, i + window) && !spanned; ++k) {
        if (group_of_shot[static_cast<size_t>(j)] ==
            group_of_shot[static_cast<size_t>(k)]) {
          spanned = true;
        }
      }
    }
    double cross_sim = 0.0;
    for (int j = std::max(0, i - 2); j < i; ++j) {
      cross_sim = std::max(
          cross_sim,
          features::StSim(shots[static_cast<size_t>(i)].features,
                          shots[static_cast<size_t>(j)].features,
                          options.weights));
    }
    if (!spanned && cross_sim < options.scene_threshold) {
      scenes.push_back(current);
      current.clear();
    }
    current.push_back(i);
  }
  if (!current.empty()) scenes.push_back(current);
  return scenes;
}

std::vector<std::vector<int>> RuiTocScenes(
    const std::vector<shot::Shot>& shots) {
  return RuiTocScenes(shots, RuiTocOptions());
}

}  // namespace classminer::baselines

#include "baselines/yeung_stg.h"

#include <algorithm>

namespace classminer::baselines {

std::vector<std::vector<int>> YeungStgScenes(
    const std::vector<shot::Shot>& shots, const YeungStgOptions& options) {
  std::vector<std::vector<int>> scenes;
  const int n = static_cast<int>(shots.size());
  if (n == 0) return scenes;

  // Time-constrained greedy clustering: each shot joins the cluster of the
  // most similar prior shot within the window, if above threshold.
  std::vector<int> cluster_of(static_cast<size_t>(n), -1);
  int next_cluster = 0;
  for (int i = 0; i < n; ++i) {
    int best = -1;
    double best_sim = options.cluster_threshold;
    for (int j = std::max(0, i - options.time_window_shots); j < i; ++j) {
      const double sim =
          features::StSim(shots[static_cast<size_t>(i)].features,
                          shots[static_cast<size_t>(j)].features,
                          options.weights);
      if (sim > best_sim) {
        best_sim = sim;
        best = cluster_of[static_cast<size_t>(j)];
      }
    }
    cluster_of[static_cast<size_t>(i)] = best >= 0 ? best : next_cluster++;
  }

  // Story-unit boundaries: after shot i when no cluster spans the boundary
  // within the time window.
  std::vector<int> current{0};
  for (int i = 1; i < n; ++i) {
    bool spans = false;
    for (int j = std::max(0, i - options.time_window_shots); j < i && !spans;
         ++j) {
      for (int k = i;
           k < std::min(n, i + options.time_window_shots) && !spans; ++k) {
        if (cluster_of[static_cast<size_t>(j)] ==
            cluster_of[static_cast<size_t>(k)]) {
          spans = true;
        }
      }
    }
    if (!spans) {
      scenes.push_back(current);
      current.clear();
    }
    current.push_back(i);
  }
  if (!current.empty()) scenes.push_back(current);
  return scenes;
}

std::vector<std::vector<int>> YeungStgScenes(
    const std::vector<shot::Shot>& shots) {
  return YeungStgScenes(shots, YeungStgOptions());
}

}  // namespace classminer::baselines

#ifndef CLASSMINER_BASELINES_YEUNG_STG_H_
#define CLASSMINER_BASELINES_YEUNG_STG_H_

#include <vector>

#include "features/similarity.h"
#include "shot/shot.h"

namespace classminer::baselines {

// Extension baseline: Yeung & Yeo's time-constrained clustering with a
// Scene Transition Graph [15]. Shots cluster when visually similar *and*
// temporally close; a story-unit boundary falls after shot i when no
// cluster has members on both sides of the boundary within the time window
// (i.e. every STG edge crossing the boundary is a forward "cut edge").
struct YeungStgOptions {
  double cluster_threshold = 0.75;  // StSim gate
  int time_window_shots = 10;       // max temporal distance inside a cluster
  features::StSimWeights weights{};
};

std::vector<std::vector<int>> YeungStgScenes(
    const std::vector<shot::Shot>& shots, const YeungStgOptions& options);
std::vector<std::vector<int>> YeungStgScenes(
    const std::vector<shot::Shot>& shots);

}  // namespace classminer::baselines

#endif  // CLASSMINER_BASELINES_YEUNG_STG_H_

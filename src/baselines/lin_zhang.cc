#include "baselines/lin_zhang.h"

#include <algorithm>

namespace classminer::baselines {

std::vector<std::vector<int>> LinZhangScenes(
    const std::vector<shot::Shot>& shots, const LinZhangOptions& options) {
  std::vector<std::vector<int>> scenes;
  const int n = static_cast<int>(shots.size());
  if (n == 0) return scenes;

  std::vector<int> current{0};
  for (int b = 1; b < n; ++b) {
    // Cross-correlation between the shots before and after boundary b.
    double best = 0.0;
    const int lo = std::max(0, b - options.window);
    const int hi = std::min(n - 1, b + options.window - 1);
    for (int i = lo; i < b; ++i) {
      for (int j = b; j <= hi; ++j) {
        best = std::max(best, features::StSim(
                                  shots[static_cast<size_t>(i)].features,
                                  shots[static_cast<size_t>(j)].features,
                                  options.weights));
      }
    }
    if (best < options.split_threshold) {
      scenes.push_back(current);
      current.clear();
    }
    current.push_back(b);
  }
  if (!current.empty()) scenes.push_back(current);
  return scenes;
}

std::vector<std::vector<int>> LinZhangScenes(
    const std::vector<shot::Shot>& shots) {
  return LinZhangScenes(shots, LinZhangOptions());
}

}  // namespace classminer::baselines

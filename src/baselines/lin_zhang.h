#ifndef CLASSMINER_BASELINES_LIN_ZHANG_H_
#define CLASSMINER_BASELINES_LIN_ZHANG_H_

#include <vector>

#include "features/similarity.h"
#include "shot/shot.h"

namespace classminer::baselines {

// Method C of the paper's comparison (Figs. 12-13): Lin & Zhang, "Automatic
// video scene extraction by shot grouping" (ICPR 2000). A sliding window of
// shots straddles each candidate boundary; the boundary is declared when
// the best cross-window correlation falls below a threshold. Aggressive
// merging gives the highest compression at the cost of precision.
struct LinZhangOptions {
  int window = 5;               // shots on each side of the boundary
  // Fixed global threshold, as in the original method. Tuned for average
  // content, it under-splits heterogeneous medical video — the behaviour
  // behind Method C's high compression / low precision in Figs. 12-13.
  double split_threshold = 0.35;
  features::StSimWeights weights{};
};

std::vector<std::vector<int>> LinZhangScenes(
    const std::vector<shot::Shot>& shots, const LinZhangOptions& options);
std::vector<std::vector<int>> LinZhangScenes(
    const std::vector<shot::Shot>& shots);

}  // namespace classminer::baselines

#endif  // CLASSMINER_BASELINES_LIN_ZHANG_H_

#ifndef CLASSMINER_BASELINES_RUI_TOC_H_
#define CLASSMINER_BASELINES_RUI_TOC_H_

#include <vector>

#include "features/similarity.h"
#include "shot/shot.h"

namespace classminer::baselines {

// Method B of the paper's comparison (Figs. 12-13): Rui, Huang & Mehrotra,
// "Constructing table-of-content for videos" (1999). Shots join existing
// groups by time-attenuated visual similarity; groups then merge into
// scenes by inter-group similarity.
struct RuiTocOptions {
  // Similarity gate for joining an existing group.
  double group_threshold = 0.55;
  // Direct-similarity gate across a candidate scene boundary.
  double scene_threshold = 0.36;
  // Temporal attenuation half-life in shots (also the look-around window
  // for group-span scene construction).
  double attenuation_shots = 6.0;
  features::StSimWeights weights{};
};

// Returns scenes as sets of shot indices (each shot appears exactly once).
std::vector<std::vector<int>> RuiTocScenes(
    const std::vector<shot::Shot>& shots, const RuiTocOptions& options);
std::vector<std::vector<int>> RuiTocScenes(
    const std::vector<shot::Shot>& shots);

}  // namespace classminer::baselines

#endif  // CLASSMINER_BASELINES_RUI_TOC_H_

#ifndef CLASSMINER_UTIL_PIPELINE_METRICS_H_
#define CLASSMINER_UTIL_PIPELINE_METRICS_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace classminer::util {

// ---------------------------------------------------------------------------
// Per-stage pipeline observability. Each pipeline stage (shot -> audio ->
// group -> scene -> cluster -> cues -> events, plus the database-side
// index_build / browse / skim stages) records wall time, items processed and
// the thread count it ran with; the registry rides on MiningResult (and on
// database operations via ExecutionContext) so callers — CLI, benches,
// ingest services — can see where a video's cost went without instrumenting
// anything themselves. Lives in util so every layer below core can append
// rows through the shared ExecutionContext.

struct StageMetrics {
  std::string name;
  double wall_ms = 0.0;
  int64_t items = 0;   // stage-specific unit: frames, shots, groups, scenes
  int threads = 1;     // threads available to the stage (1 = serial)
  // Optional stage-specific counters rendered after the fixed columns
  // (e.g. the selective-decode stage reports gops= and cache_hits=).
  std::vector<std::pair<std::string, int64_t>> counters;
  // Per-stage outcome under a degraded-mode run: OK for stages that
  // completed, the recorded failure for optional stages that did not
  // (strict runs abort instead of annotating). Rendered in ToString.
  Status status;

  // First counter with this name, or -1.
  int64_t Counter(std::string_view counter_name) const;
};

struct PipelineMetrics {
  std::vector<StageMetrics> stages;  // in pipeline declaration order

  // Tasks that escaped a pool worker with an exception while this registry's
  // pipeline ran (surfaced from ThreadPool::exception_count() through the
  // ExecutionContext). Non-zero turns the owning run's status non-OK.
  int pool_exceptions = 0;

  // Distinct errors the run's StatusSink dropped after the first error won
  // (first-error-wins keeps one status; this records how many more there
  // were). Diagnostic only — does not affect the run's status.
  int suppressed_errors = 0;

  double TotalMs() const;
  // First stage with this name, or nullptr.
  const StageMetrics* Find(std::string_view name) const;
  // Aligned human-readable table, one line per stage plus a total row (and
  // an exception row when pool_exceptions is non-zero).
  std::string ToString() const;
};

// RAII stage timer: measures from construction to destruction on the
// steady clock and appends one row to the registry. A null registry makes
// the timer a no-op so instrumented code paths need no branching.
class StageTimer {
 public:
  StageTimer(PipelineMetrics* metrics, std::string name, int threads = 1);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  void set_items(int64_t items) { row_.items = items; }

 private:
  PipelineMetrics* metrics_;
  StageMetrics row_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_PIPELINE_METRICS_H_

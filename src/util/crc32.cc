#include "util/crc32.h"

#include <array>
#include <atomic>

#include "util/cpu.h"

namespace classminer::util {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

// Slice-by-8: eight tables such that processing 8 input bytes costs 8
// independent lookups + xors instead of an 8-long dependency chain of
// byte steps. Table k maps "this byte, k more zero bytes to come".
struct Slice8Tables {
  uint32_t t[8][256];
  constexpr Slice8Tables() : t{} {
    for (uint32_t i = 0; i < 256; ++i) t[0][i] = kTable[i];
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        const uint32_t c = t[k - 1][i];
        t[k][i] = t[0][c & 0xFFu] ^ (c >> 8);
      }
    }
  }
};

constexpr Slice8Tables kSlice8 = Slice8Tables();

using Crc32Fn = uint32_t (*)(const uint8_t*, size_t, uint32_t);

Crc32Fn SelectCrc32(DispatchLevel level) {
  if (level != DispatchLevel::kScalar && internal::Crc32AccelAvailable()) {
    return &internal::Crc32Accel;
  }
  return &internal::Crc32Slice8;
}

// Dispatch is chosen once (single atomic pointer) and only re-resolved when
// the dispatch generation moves — which happens solely under test pinning.
std::atomic<Crc32Fn> g_crc32{nullptr};
std::atomic<uint64_t> g_crc32_gen{~uint64_t{0}};

Crc32Fn ActiveCrc32() {
  const uint64_t gen = DispatchGeneration();
  if (g_crc32_gen.load(std::memory_order_acquire) != gen ||
      g_crc32.load(std::memory_order_relaxed) == nullptr) {
    g_crc32.store(SelectCrc32(ActiveDispatchLevel()),
                  std::memory_order_relaxed);
    g_crc32_gen.store(gen, std::memory_order_release);
  }
  return g_crc32.load(std::memory_order_relaxed);
}

}  // namespace

namespace internal {

uint32_t Crc32Reference(const uint8_t* data, size_t size, uint32_t crc) {
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32Slice8State(uint32_t state, const uint8_t* data, size_t size) {
  uint32_t c = state;
  // Head: byte steps until 8-byte alignment (aligned 64-bit loads below).
  while (size > 0 && (reinterpret_cast<uintptr_t>(data) & 7u) != 0) {
    c = kSlice8.t[0][(c ^ *data++) & 0xFFu] ^ (c >> 8);
    --size;
  }
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (size >= 8) {
    // One 64-bit word per iteration; the CRC register folds into the low
    // half, the high half is fresh input (little-endian layout).
    uint64_t word;
    __builtin_memcpy(&word, data, 8);
    word ^= c;
    c = kSlice8.t[7][word & 0xFFu] ^ kSlice8.t[6][(word >> 8) & 0xFFu] ^
        kSlice8.t[5][(word >> 16) & 0xFFu] ^
        kSlice8.t[4][(word >> 24) & 0xFFu] ^
        kSlice8.t[3][(word >> 32) & 0xFFu] ^
        kSlice8.t[2][(word >> 40) & 0xFFu] ^
        kSlice8.t[1][(word >> 48) & 0xFFu] ^ kSlice8.t[0][(word >> 56) & 0xFFu];
    data += 8;
    size -= 8;
  }
#endif  // little-endian
  while (size > 0) {
    c = kSlice8.t[0][(c ^ *data++) & 0xFFu] ^ (c >> 8);
    --size;
  }
  return c;
}

uint32_t Crc32Slice8(const uint8_t* data, size_t size, uint32_t crc) {
  return Crc32Slice8State(crc ^ 0xFFFFFFFFu, data, size) ^ 0xFFFFFFFFu;
}

}  // namespace internal

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t crc) {
  return ActiveCrc32()(data, size, crc);
}

uint32_t Crc32(const std::vector<uint8_t>& bytes, uint32_t crc) {
  // Forwards through the same cached pointer — dispatch is chosen once for
  // both overloads.
  return ActiveCrc32()(bytes.data(), bytes.size(), crc);
}

}  // namespace classminer::util

#include "util/crc32.h"

#include <array>

namespace classminer::util {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t crc) {
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::vector<uint8_t>& bytes, uint32_t crc) {
  return Crc32(bytes.data(), bytes.size(), crc);
}

}  // namespace classminer::util

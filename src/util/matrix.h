#ifndef CLASSMINER_UTIL_MATRIX_H_
#define CLASSMINER_UTIL_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/status.h"

namespace classminer::util {

// Small dense row-major matrix of doubles. Sized for feature-space work
// (tens of dimensions), not BLAS-scale linear algebra.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  std::span<const double> row(size_t r) const {
    return std::span<const double>(data_.data() + r * cols_, cols_);
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  static Matrix Identity(size_t n);

  Matrix Transpose() const;
  Matrix Multiply(const Matrix& other) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// Sample covariance matrix (maximum-likelihood, divides by n) of row vectors
// in `samples` (n x d). Returns a d x d matrix; zero matrix when n == 0.
Matrix Covariance(const Matrix& samples);

// log |A| of a symmetric positive semi-definite matrix via Cholesky with a
// small diagonal regulariser (added when needed). Used by the BIC test where
// near-singular covariances arise from short audio clips.
double LogDetPsd(const Matrix& a, double regularizer = 1e-9);

// In-place Cholesky factorisation (lower triangular) of a symmetric
// positive definite matrix. Returns kFailedPrecondition when a pivot is
// non-positive.
StatusOr<Matrix> Cholesky(const Matrix& a);

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_MATRIX_H_

#ifndef CLASSMINER_UTIL_SERIAL_H_
#define CLASSMINER_UTIL_SERIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace classminer::util {

// Little-endian binary writer into an owned byte buffer. Used by the codec
// container and database persistence.
class ByteWriter {
 public:
  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v);
  void PutF64(double v);
  void PutBytes(const uint8_t* data, size_t size);
  void PutString(const std::string& s);  // u32 length prefix + bytes

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Release() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

// Little-endian binary reader over a borrowed byte buffer. Reads past the
// end return DATA_LOSS rather than aborting, so corrupt files surface as
// Status errors.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint16_t> GetU16();
  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  StatusOr<int32_t> GetI32();
  StatusOr<double> GetF64();
  Status GetBytes(uint8_t* out, size_t size);
  StatusOr<std::string> GetString();

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  Status Skip(size_t n);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Whole-file helpers.
Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes);
StatusOr<std::vector<uint8_t>> ReadFile(const std::string& path);

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_SERIAL_H_

#ifndef CLASSMINER_UTIL_SERIAL_H_
#define CLASSMINER_UTIL_SERIAL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace classminer::util {

// Little-endian binary writer into an owned byte buffer. Used by the codec
// container and database persistence.
class ByteWriter {
 public:
  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v);
  void PutF64(double v);
  void PutBytes(const uint8_t* data, size_t size);
  void PutString(const std::string& s);  // u32 length prefix + bytes

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Release() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

// Little-endian binary reader over a borrowed byte buffer. Reads past the
// end return DATA_LOSS rather than aborting, so corrupt files surface as
// Status errors. Error messages carry the byte offset and — when the parser
// labels the region it is walking via set_section() — the section name, so
// a salvage report can say exactly where a container went bad.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  // Labels the region subsequent reads belong to ("header", "frames[3]",
  // "gop_index", ...); included in every short-read error until relabelled.
  void set_section(std::string section) { section_ = std::move(section); }
  const std::string& section() const { return section_; }

  StatusOr<uint8_t> GetU8();
  StatusOr<uint16_t> GetU16();
  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  StatusOr<int32_t> GetI32();
  StatusOr<double> GetF64();
  Status GetBytes(uint8_t* out, size_t size);
  StatusOr<std::string> GetString();

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  // Raw access to the underlying buffer (checksummed formats hash a span
  // before parsing it; salvage scanners probe candidate sync points).
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  Status Skip(size_t n);
  // Repositions the cursor absolutely (salvage parsers use it to jump onto
  // a resynchronisation point found by scanning the raw buffer).
  Status SeekTo(size_t pos);

  // DATA_LOSS status carrying `what`, the current offset and the section
  // label (if any). Parsers use it for their own structural errors so those
  // are as locatable as short reads.
  Status Corrupt(const std::string& what) const;

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  std::string section_;
};

// Guards the u32 length prefixes used throughout the on-disk and wire
// formats: a size_t count that does not fit in 32 bits would be silently
// truncated by `static_cast<uint32_t>` at write time and produce a
// corrupt-but-checksum-valid file. Returns kInvalidArgument naming `what`
// when `count` exceeds UINT32_MAX; serializers call it before narrowing.
Status CheckU32Count(size_t count, const std::string& what);

// Whole-file helpers. Both run through util::Retry (bounded attempts,
// exponential backoff) so transient failures — injected through the
// "serial.read_file" / "serial.write_file" fail points, or genuine
// kUnavailable conditions — are absorbed instead of failing the caller.
// Short reads/writes interrupted by a signal (EINTR) are resumed in place,
// so a signal mid-transfer never surfaces as a spurious I/O error that the
// retry layer would re-run from scratch.
// WriteFile writes through the atomic path below, so a failed (or retried)
// attempt never exposes a partially written destination to a concurrent
// reader and never destroys the previous contents of `path`.
Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes);
StatusOr<std::vector<uint8_t>> ReadFile(const std::string& path);

struct AtomicWriteOptions {
  // When non-empty and `path` already exists, the old file is renamed to
  // this path after the new bytes are durably staged and immediately before
  // the final rename — the previous generation survives a crash at any
  // step of the sequence (index persistence uses this for its
  // `.cmdb.prev` generation).
  std::string backup_path;
};

// Crash-consistent whole-file write: the bytes are staged in
// `path + ".tmp"`, flushed and fsync'ed, then renamed over `path` in one
// atomic step. A crash (or injected failure) at any point leaves either
// the complete old file or the complete new one at `path` — never a torn
// mixture; a failed attempt unlinks the temp file. Honours fail-point
// sites "serial.atomic_write.{tmp_write,fsync,rename}" (one per step) and
// retries transient failures like WriteFile.
Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& bytes,
                       const AtomicWriteOptions& options = {});

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_SERIAL_H_

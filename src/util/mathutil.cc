#include "util/mathutil.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace classminer::util {

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return acc / static_cast<double>(values.size());
}

double StdDev(std::span<const double> values) {
  return std::sqrt(Variance(values));
}

double Entropy(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double w : weights) {
    if (w <= 0.0) continue;
    const double p = w / total;
    h -= p * std::log(p);
  }
  return h;
}

void NormalizeL1(std::vector<double>* values) {
  double sum = 0.0;
  for (double v : *values) sum += v;
  if (sum == 0.0) return;
  for (double& v : *values) v /= sum;
}

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

double FastEntropyThreshold(std::span<const double> values, int bins) {
  if (values.empty()) return 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) return lo;
  if (bins < 2) bins = 2;

  std::vector<double> hist(static_cast<size_t>(bins), 0.0);
  const double width = (hi - lo) / bins;
  for (double v : values) {
    int b = static_cast<int>((v - lo) / width);
    b = std::min(b, bins - 1);
    hist[static_cast<size_t>(b)] += 1.0;
  }

  // For each split point s (class A = buckets [0,s], class B = (s, bins)),
  // compute H(A) + H(B) over the within-class normalised distributions and
  // keep the maximising split.
  const double total = static_cast<double>(values.size());
  double best_score = -1.0;
  int best_split = bins / 2;
  // Prefix sums of mass and of p*log(p)-style accumulators.
  for (int s = 0; s < bins - 1; ++s) {
    double mass_a = 0.0, mass_b = 0.0;
    for (int i = 0; i <= s; ++i) mass_a += hist[static_cast<size_t>(i)];
    mass_b = total - mass_a;
    if (mass_a <= 0.0 || mass_b <= 0.0) continue;
    double ha = 0.0, hb = 0.0;
    for (int i = 0; i <= s; ++i) {
      const double c = hist[static_cast<size_t>(i)];
      if (c > 0.0) {
        const double p = c / mass_a;
        ha -= p * std::log(p);
      }
    }
    for (int i = s + 1; i < bins; ++i) {
      const double c = hist[static_cast<size_t>(i)];
      if (c > 0.0) {
        const double p = c / mass_b;
        hb -= p * std::log(p);
      }
    }
    const double score = ha + hb;
    if (score > best_score) {
      best_score = score;
      best_split = s;
    }
  }
  return lo + width * (best_split + 1);
}

double OtsuThreshold(std::span<const double> values, int bins) {
  if (values.empty()) return 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) return lo;
  if (bins < 2) bins = 2;

  std::vector<double> hist(static_cast<size_t>(bins), 0.0);
  std::vector<double> sums(static_cast<size_t>(bins), 0.0);
  const double width = (hi - lo) / bins;
  for (double v : values) {
    int b = static_cast<int>((v - lo) / width);
    b = std::min(b, bins - 1);
    hist[static_cast<size_t>(b)] += 1.0;
    sums[static_cast<size_t>(b)] += v;
  }
  const double total = static_cast<double>(values.size());
  double total_sum = 0.0;
  for (double s : sums) total_sum += s;

  double best_score = -1.0;
  int best_split = bins / 2;
  double w0 = 0.0, sum0 = 0.0;
  for (int s = 0; s < bins - 1; ++s) {
    w0 += hist[static_cast<size_t>(s)];
    sum0 += sums[static_cast<size_t>(s)];
    const double w1 = total - w0;
    if (w0 <= 0.0 || w1 <= 0.0) continue;
    const double mu0 = sum0 / w0;
    const double mu1 = (total_sum - sum0) / w1;
    const double score = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
    if (score > best_score) {
      best_score = score;
      best_split = s;
    }
  }
  return lo + width * (best_split + 1);
}

double Median(std::span<const double> values) {
  return Percentile(values, 50.0);
}

double Percentile(std::span<const double> values, double pct) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = Clamp(pct, 0.0, 100.0) / 100.0 *
                      (static_cast<double>(sorted.size()) - 1.0);
  const size_t idx = static_cast<size_t>(rank + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace classminer::util

#include "util/salvage.h"

#include <utility>

namespace classminer::util {

void SalvageReport::Merge(const SalvageReport& other) {
  salvaged = salvaged || other.salvaged;
  bytes_dropped += other.bytes_dropped;
  items_recovered += other.items_recovered;
  items_dropped += other.items_dropped;
  gops_recovered += other.gops_recovered;
  gops_skipped += other.gops_skipped;
  resync_points += other.resync_points;
  audio_dropped = audio_dropped || other.audio_dropped;
  index_rebuilt = index_rebuilt || other.index_rebuilt;
  notes.insert(notes.end(), other.notes.begin(), other.notes.end());
}

void SalvageReport::AddNote(std::string note) {
  salvaged = true;
  notes.push_back(std::move(note));
}

std::string SalvageReport::ToString() const {
  if (!salvaged) return "";
  std::string out = "salvaged:";
  if (bytes_dropped > 0) {
    out += " bytes_dropped=" + std::to_string(bytes_dropped);
  }
  if (items_dropped > 0) {
    out += " items_dropped=" + std::to_string(items_dropped);
  }
  if (items_recovered > 0) {
    out += " items_recovered=" + std::to_string(items_recovered);
  }
  if (gops_recovered > 0) {
    out += " gops_recovered=" + std::to_string(gops_recovered);
  }
  if (gops_skipped > 0) {
    out += " gops_skipped=" + std::to_string(gops_skipped);
  }
  if (resync_points > 0) {
    out += " resync_points=" + std::to_string(resync_points);
  }
  if (audio_dropped) out += " audio_dropped";
  if (index_rebuilt) out += " index_rebuilt";
  return out;
}

}  // namespace classminer::util

#include "util/failpoint.h"

#include <iterator>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "util/rng.h"

namespace classminer::util {
namespace {

struct SiteState {
  FailPoint::Spec spec;
  Rng rng{1};
  int64_t checks = 0;
  int64_t failures = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, SiteState> sites;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// Fast-path gate: number of armed sites. Check() bails on zero with one
// relaxed load, so unarmed builds never touch the registry mutex.
std::atomic<int> g_armed_count{0};

// Every site name passed to FailPoint::Check anywhere in the library,
// sorted. The registry only tracks armed sites, so this static catalogue is
// what lets chaos rigs discover what they can arm.
constexpr const char* kKnownSites[] = {
    "codec.container.parse",
    "codec.decode_video",
    "codec.gop_reader.decode_gop",
    "core.stage.audio",
    "core.stage.cues",
    "core.stage.events",
    "index.persist.load",
    "index.persist.save",
    "index.shard.append.fsync",
    "index.shard.append.write",
    "index.shard.compact.fsync",
    "index.shard.compact.manifest",
    "index.shard.compact.rename",
    "index.shard.compact.write",
    "index.shard.open",
    "serial.atomic_write.fsync",
    "serial.atomic_write.rename",
    "serial.atomic_write.tmp_write",
    "serial.read_file",
    "serial.write_file",
    "server.accept.reset",
    "server.wake.drop",
    "server.wire.frame.dup",
    "server.wire.recv.reset",
    "server.wire.send.delay",
    "server.wire.send.short",
    "server.wire.send.torn",
};

}  // namespace

void FailPoint::Arm(std::string_view site, Spec spec) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  SiteState state;
  state.rng = Rng(spec.seed);
  state.spec = std::move(spec);
  auto [it, inserted] =
      registry.sites.insert_or_assign(std::string(site), std::move(state));
  (void)it;
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void FailPoint::Disarm(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.sites.erase(std::string(site)) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoint::DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  g_armed_count.fetch_sub(static_cast<int>(registry.sites.size()),
                          std::memory_order_relaxed);
  registry.sites.clear();
}

bool FailPoint::AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

std::vector<std::string> FailPoint::KnownSites() {
  return std::vector<std::string>(std::begin(kKnownSites),
                                  std::end(kKnownSites));
}

Status FailPoint::Check(std::string_view site) {
  if (!AnyArmed()) return Status();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.sites.find(std::string(site));
  if (it == registry.sites.end()) return Status();
  SiteState& state = it->second;
  const Spec& spec = state.spec;
  ++state.checks;
  if (spec.max_failures >= 0 && state.failures >= spec.max_failures) {
    return Status();
  }
  if (spec.every_n > 1 && state.checks % spec.every_n != 0) return Status();
  if (spec.probability < 1.0 && !state.rng.Bernoulli(spec.probability)) {
    return Status();
  }
  ++state.failures;
  std::string message = "failpoint '" + std::string(site) + "' fired";
  if (!spec.message.empty()) {
    message += ": ";
    message += spec.message;
  }
  return Status(spec.code, std::move(message));
}

int64_t FailPoint::CheckCount(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.sites.find(std::string(site));
  return it == registry.sites.end() ? 0 : it->second.checks;
}

int64_t FailPoint::FailureCount(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.sites.find(std::string(site));
  return it == registry.sites.end() ? 0 : it->second.failures;
}

}  // namespace classminer::util

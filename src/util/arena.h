#ifndef CLASSMINER_UTIL_ARENA_H_
#define CLASSMINER_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory_resource>
#include <mutex>
#include <vector>

namespace classminer::util {

// Chunked bump allocator for per-run scratch: frame planes, residual
// buffers and feature vectors that live exactly as long as one mining run
// (or one decoded GOP). Allocation is a pointer bump inside the current
// chunk; deallocation is a no-op; Reset() recycles the chunks for the next
// run without returning them to the OS. This kills the per-frame
// malloc/free churn the pipeline metrics attribute to decode and feature
// stages.
//
// The arena is a std::pmr::memory_resource, so standard containers opt in
// via std::pmr::vector<T> (see codec::Plane): an arena-backed container
// *moves* within the run keeping arena storage, while *copies* fall back to
// the default heap resource — which is what makes escaping a value out of a
// run safe by default.
//
// Thread safety: concurrent Allocate calls are serialised by an internal
// mutex (stages of one run share the arena across pool workers). Reset()
// and destruction must be externally quiesced: no other thread may hold or
// use memory from the arena once Reset begins — the run barrier at the end
// of MineVideo / a GOP decode provides exactly that.
//
// Under AddressSanitizer the recycled chunks are poisoned on Reset and
// unpoisoned allocation-by-allocation, so use-after-reset is caught as a
// use-after-poison instead of silently reading the next run's bytes.
class Arena final : public std::pmr::memory_resource {
 public:
  static constexpr size_t kDefaultChunkBytes = size_t{64} << 10;  // 64 KiB
  static constexpr size_t kMaxChunkBytes = size_t{8} << 20;       // 8 MiB

  explicit Arena(size_t initial_chunk_bytes = kDefaultChunkBytes);
  ~Arena() override;

  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `bytes` aligned to `align` (a power of two). Never
  // returns null; grows a new (geometrically larger) chunk when the current
  // one is exhausted. Zero-byte requests return a unique non-null pointer.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  // Recycles every chunk for reuse: chunks are kept, cursors rewind, and
  // the reclaimed spans are poisoned under ASan. Callers must guarantee no
  // live references into the arena survive the call.
  void Reset();

  // Bytes handed out since construction/Reset (sum of aligned requests).
  size_t bytes_allocated() const;
  // Bytes of chunk capacity currently owned (survives Reset).
  size_t bytes_reserved() const;
  // Allocation calls since construction/Reset.
  size_t allocation_count() const;

 private:
  struct Chunk {
    uint8_t* base = nullptr;
    size_t capacity = 0;
    size_t used = 0;
  };

  void* AllocateLocked(size_t bytes, size_t align);
  void PoisonFreeSpans();

  void* do_allocate(size_t bytes, size_t align) override {
    return Allocate(bytes, align);
  }
  void do_deallocate(void*, size_t, size_t) override {}  // bulk-freed
  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  mutable std::mutex mutex_;
  std::vector<Chunk> chunks_;
  size_t current_ = 0;  // index of the chunk being bumped
  size_t next_chunk_bytes_;
  size_t allocated_ = 0;
  size_t allocations_ = 0;
};

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_ARENA_H_

#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace classminer::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file),
               line, message.c_str());
}

namespace internal {

FatalLogLine::FatalLogLine(const char* file, int line, const char* condition)
    : file_(file), line_(line) {
  stream_ << "Check failed: " << condition << " ";
}

FatalLogLine::~FatalLogLine() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "[F %s:%d] %s\n", Basename(file_), line_,
                 stream_.str().c_str());
  }
  std::abort();
}

}  // namespace internal
}  // namespace classminer::util

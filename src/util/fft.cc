#include "util/fft.h"

#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace classminer::util {

void Fft(std::vector<std::complex<double>>* data, bool inverse) {
  const size_t n = data->size();
  CM_CHECK(n > 0 && (n & (n - 1)) == 0) << "FFT size must be a power of two";
  auto& a = *data;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) *
        (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<double> MagnitudeSpectrum(std::span<const double> signal) {
  const size_t n = NextPowerOfTwo(std::max<size_t>(signal.size(), 2));
  std::vector<std::complex<double>> buf(n, {0.0, 0.0});
  for (size_t i = 0; i < signal.size(); ++i) buf[i] = {signal[i], 0.0};
  Fft(&buf);
  std::vector<double> mags(n / 2 + 1);
  for (size_t i = 0; i <= n / 2; ++i) mags[i] = std::abs(buf[i]);
  return mags;
}

}  // namespace classminer::util

#ifndef CLASSMINER_UTIL_CPU_H_
#define CLASSMINER_UTIL_CPU_H_

#include <cstdint>
#include <vector>

namespace classminer::util {

// Instruction-set tiers the hot kernels dispatch over. Levels are ordered:
// a kernel compiled for level L may assume every feature of the levels
// below it on the same architecture. kScalar is portable C++ and is the
// reference implementation every vector path must match exactly.
enum class DispatchLevel : int {
  kScalar = 0,
  kSse42 = 1,  // x86-64: SSE4.2 + PCLMULQDQ (CRC-32 folding)
  kAvx2 = 2,   // x86-64: AVX2 (DCT / histogram / SAD lanes), implies kSse42
  kNeon = 3,   // ARMv8: NEON + CRC32 extension
};

// Raw hardware capabilities, detected once (CPUID on x86-64, ELF hwcaps on
// Linux/aarch64). Never affected by the env knob or test pins.
struct CpuFeatures {
  bool sse42 = false;
  bool pclmul = false;
  bool avx2 = false;
  bool neon = false;
  bool arm_crc32 = false;
};

// Cached hardware detection result.
const CpuFeatures& CpuInfo();

// The dispatch level kernels actually run at: hardware capability, capped
// by CLASSMINER_DISABLE_SIMD (any non-empty value other than "0" pins
// kScalar) and by SetDispatchLevelForTest. Cheap (one relaxed atomic load
// after first resolution).
DispatchLevel ActiveDispatchLevel();

// Human-readable level name ("scalar", "sse4.2", "avx2", "neon") for bench
// environment blocks and logs.
const char* DispatchLevelName(DispatchLevel level);

// Levels this host can actually execute, in ascending order. Always
// contains kScalar. Tests iterate this to exercise every reachable kernel.
std::vector<DispatchLevel> SupportedDispatchLevels();

// Pins the active level for tests. Returns false (and pins nothing) if the
// host cannot execute `level`. Passing kScalar always succeeds. Callers
// must restore with ClearDispatchLevelForTest(); kernels with cached
// function pointers notice via DispatchGeneration().
bool SetDispatchLevelForTest(DispatchLevel level);
void ClearDispatchLevelForTest();

// Monotonic counter bumped by every test pin/unpin. Kernels that cache a
// resolved function pointer revalidate it against this generation, so
// dispatch is chosen once per process in production (where the generation
// never moves) yet stays correct under test pinning.
uint64_t DispatchGeneration();

namespace internal {
// Pure resolution policy, exposed for tests: what level would the given
// hardware and env knob produce?
DispatchLevel ResolveDispatchLevel(const CpuFeatures& features,
                                   bool simd_disabled);
// True when CLASSMINER_DISABLE_SIMD is set to a non-empty value != "0".
bool SimdDisabledByEnv();
}  // namespace internal

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_CPU_H_

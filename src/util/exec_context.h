#ifndef CLASSMINER_UTIL_EXEC_CONTEXT_H_
#define CLASSMINER_UTIL_EXEC_CONTEXT_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <utility>

#include "util/pipeline_metrics.h"
#include "util/status.h"
#include "util/threadpool.h"

namespace classminer::util {

class Arena;  // util/arena.h

// Cooperative cancellation flag shared between a pipeline run and its
// caller. Cancellation is checked at stage boundaries (and at the head of
// context-routed parallel loops); a cancelled run stops scheduling new work
// and reports StatusCode::kCancelled, it does not interrupt a stage body
// that is already executing.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// Thread-safe first-error-wins status collector. Pipeline stages and
// parallel-loop bodies run concurrently on pool workers; any of them can
// record a failure here and the pipeline run reports the first one instead
// of silently logging a swallowed exception. Later distinct errors are not
// silently lost: they are counted, and the count is surfaced through
// PipelineMetrics::suppressed_errors so operators can see that one video
// failed in more than one way.
class StatusSink {
 public:
  // Keeps the first non-OK status; later non-OK records bump the
  // suppressed-error count instead of vanishing.
  void Record(Status status);
  Status Get() const;
  bool ok() const;
  // Non-OK records dropped after the first error won.
  int suppressed_count() const;

 private:
  mutable std::mutex mutex_;
  Status status_;
  int suppressed_ = 0;
};

// The execution environment threaded through every pipeline layer: a shared
// thread pool, the per-run metrics registry, a cancellation token and a
// status sink. It is a non-owning view — a bundle of borrowed pointers —
// cheap to copy and valid only while its owners live:
//
//   * the ThreadPool is owned by the pipeline entry point (MineVideo) or by
//     the batch scheduler (MineVideosParallel) and shared by every stage of
//     every video scheduled on it;
//   * the PipelineMetrics registry is owned by the MiningResult (or by the
//     CLI for database-side stages) it describes;
//   * the CancellationToken is owned by the caller requesting cancellation;
//   * the StatusSink is owned by the pipeline run collecting failures.
//
// Any pointer may be null: a default context means "serial, unobserved,
// never cancelled", so layers take `const ExecutionContext&` without
// branching on optional instrumentation.
class ExecutionContext {
 public:
  ExecutionContext() = default;
  // Adoption shim: lets a bare pool (or nullptr) flow into context-taking
  // signatures, so legacy ThreadPool* call sites keep working unchanged.
  ExecutionContext(ThreadPool* pool) : pool_(pool) {}  // NOLINT
  ExecutionContext(ThreadPool* pool, PipelineMetrics* metrics,
                   CancellationToken* cancel = nullptr,
                   StatusSink* sink = nullptr)
      : pool_(pool), metrics_(metrics), cancel_(cancel), sink_(sink) {}

  ThreadPool* pool() const { return pool_; }
  // Per-run bump arena for transient frame planes and feature scratch
  // (null when the run has none). Borrowed like every other member: owned
  // by the pipeline entry point and valid for the duration of the run.
  // Arena allocations are thread-safe, but anything placed in it must not
  // outlive the run (results must escape by copy to the heap).
  Arena* arena() const { return arena_; }
  int thread_count() const {
    return pool_ != nullptr ? pool_->thread_count() : 1;
  }
  PipelineMetrics* metrics() const { return metrics_; }
  CancellationToken* cancellation() const { return cancel_; }
  StatusSink* status_sink() const { return sink_; }

  bool cancelled() const { return cancel_ != nullptr && cancel_->cancelled(); }

  // Records a failure into the sink (first one wins); no-op without a sink.
  void RecordStatus(Status status) const {
    if (sink_ != nullptr && !status.ok()) sink_->Record(std::move(status));
  }
  Status status() const { return sink_ != nullptr ? sink_->Get() : Status(); }

  // Tasks that escaped the shared pool with an exception so far (0 without
  // a pool). Pipeline entry points snapshot this around a run and turn a
  // positive delta into a non-OK status.
  int pool_exception_count() const {
    return pool_ != nullptr ? pool_->exception_count() : 0;
  }

  // Derived contexts: same pool/cancellation, different observers.
  ExecutionContext WithMetrics(PipelineMetrics* metrics) const {
    ExecutionContext ctx(pool_, metrics, cancel_, sink_);
    ctx.arena_ = arena_;
    return ctx;
  }
  ExecutionContext WithSink(StatusSink* sink) const {
    ExecutionContext ctx(pool_, metrics_, cancel_, sink);
    ctx.arena_ = arena_;
    return ctx;
  }
  ExecutionContext WithArena(Arena* arena) const {
    ExecutionContext ctx(pool_, metrics_, cancel_, sink_);
    ctx.arena_ = arena;
    return ctx;
  }

 private:
  ThreadPool* pool_ = nullptr;
  PipelineMetrics* metrics_ = nullptr;
  CancellationToken* cancel_ = nullptr;
  StatusSink* sink_ = nullptr;
  Arena* arena_ = nullptr;
};

// Context-routed ParallelFor: same fixed partitioning as the ThreadPool
// overload (bit-identical results), plus pipeline semantics — the whole
// loop is skipped when the context is already cancelled or failed, and an
// exception escaping `fn` is captured into the context's status sink
// (attributed to this run) instead of escaping to the worker boundary.
void ParallelFor(const ExecutionContext& ctx, int count,
                 const std::function<void(int)>& fn, int grain = 1);

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_EXEC_CONTEXT_H_

// Hardware-accelerated CRC-32 (IEEE, reflected 0xEDB88320) kernels.
//
// x86-64: PCLMULQDQ carry-less-multiply folding, the classic scheme from
// Intel's "Fast CRC Computation for Generic Polynomials Using PCLMULQDQ"
// white paper (the same constant set zlib and Chromium use): four 128-bit
// lanes fold 64 input bytes per iteration, then reduce 512→128→64→32 bits
// with Barrett reduction. ~bytes-per-cycle throughput instead of the table
// walk's cycles-per-byte.
//
// ARMv8: the CRC32 extension evaluates the same polynomial directly
// (crc32b/crc32d), eight bytes per instruction.
//
// Both paths are exercised only when util::cpu detection says the
// instructions exist; every other build sees the scalar fallbacks.

#include "util/crc32.h"

#include "util/cpu.h"

#if defined(__x86_64__)
#include <immintrin.h>

namespace classminer::util::internal {
namespace {

// Folding distances as bit-reflected polynomial constants (Intel paper
// table for P = 0x104C11DB7, reflected):
//   k1 = x^(4*128+64) mod P, k2 = x^(4*128)   (64-byte fold)
//   k3 = x^(128+64)   mod P, k4 = x^128       (16-byte fold)
//   k5 = x^64         mod P                    (128→64 reduction)
//   poly = P' (reflected P), mu = Barrett constant
alignas(16) constexpr uint64_t kK1K2[2] = {0x0154442bd4, 0x01c6e41596};
alignas(16) constexpr uint64_t kK3K4[2] = {0x01751997d0, 0x00ccaa009e};
alignas(16) constexpr uint64_t kK5K0[2] = {0x0163cd6124, 0x0000000000};
alignas(16) constexpr uint64_t kPoly[2] = {0x01db710641, 0x01f7011641};

// Folds a >=64-byte, multiple-of-16 span into the running inverted
// register. Caller handles head/tail bytes with the table kernel.
__attribute__((target("pclmul,sse4.1"))) uint32_t Crc32PclmulBlocks(
    uint32_t state, const uint8_t* buf, size_t len) {
  __m128i x0, x1, x2, x3, x4, x5, x6, x7, x8, y5, y6, y7, y8;

  x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(state)));
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(kK1K2));
  buf += 64;
  len -= 64;

  while (len >= 64) {
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x6 = _mm_clmulepi64_si128(x2, x0, 0x00);
    x7 = _mm_clmulepi64_si128(x3, x0, 0x00);
    x8 = _mm_clmulepi64_si128(x4, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
    x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
    x4 = _mm_clmulepi64_si128(x4, x0, 0x11);
    y5 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
    y6 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
    y7 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
    y8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), y5);
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), y6);
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), y7);
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), y8);
    buf += 64;
    len -= 64;
  }

  // Fold the four lanes into one.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(kK3K4));
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

  // Remaining whole 16-byte blocks.
  while (len >= 16) {
    y5 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, y5), x5);
    buf += 16;
    len -= 16;
  }

  // Reduce 128 → 64 bits.
  x2 = _mm_clmulepi64_si128(x1, x0, 0x10);
  x3 = _mm_setr_epi32(~0, 0, ~0, 0);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x2);

  x0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(kK5K0));
  x2 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, x3);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  // Barrett reduce 64 → 32 bits.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(kPoly));
  x2 = _mm_and_si128(x1, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x10);
  x2 = _mm_and_si128(x2, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);
  return static_cast<uint32_t>(_mm_extract_epi32(x1, 1));
}

}  // namespace

bool Crc32AccelAvailable() {
  const CpuFeatures& f = CpuInfo();
  return f.pclmul && f.sse42;
}

uint32_t Crc32Accel(const uint8_t* data, size_t size, uint32_t crc) {
  uint32_t state = crc ^ 0xFFFFFFFFu;
  // Folding needs at least 64 bytes in multiples of 16; short inputs and
  // ragged tails take the slice-by-8 path on the same running state.
  if (size >= 64) {
    const size_t folded = size & ~size_t{15};
    state = Crc32PclmulBlocks(state, data, folded);
    data += folded;
    size -= folded;
  }
  state = Crc32Slice8State(state, data, size);
  return state ^ 0xFFFFFFFFu;
}

}  // namespace classminer::util::internal

#elif defined(__aarch64__)

namespace classminer::util::internal {
namespace {

__attribute__((target("+crc"))) uint32_t Crc32ArmState(uint32_t state,
                                                       const uint8_t* data,
                                                       size_t size) {
  while (size > 0 && (reinterpret_cast<uintptr_t>(data) & 7u) != 0) {
    state = __builtin_aarch64_crc32b(state, *data++);
    --size;
  }
  while (size >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, data, 8);
    state = __builtin_aarch64_crc32x(state, word);
    data += 8;
    size -= 8;
  }
  while (size > 0) {
    state = __builtin_aarch64_crc32b(state, *data++);
    --size;
  }
  return state;
}

}  // namespace

bool Crc32AccelAvailable() { return CpuInfo().arm_crc32; }

uint32_t Crc32Accel(const uint8_t* data, size_t size, uint32_t crc) {
  return Crc32ArmState(crc ^ 0xFFFFFFFFu, data, size) ^ 0xFFFFFFFFu;
}

}  // namespace classminer::util::internal

#else

namespace classminer::util::internal {

bool Crc32AccelAvailable() { return false; }

uint32_t Crc32Accel(const uint8_t* data, size_t size, uint32_t crc) {
  return Crc32Slice8(data, size, crc);
}

}  // namespace classminer::util::internal

#endif

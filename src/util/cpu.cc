#include "util/cpu.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace classminer::util {
namespace {

CpuFeatures DetectCpuFeatures() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.sse42 = __builtin_cpu_supports("sse4.2") != 0;
  f.pclmul = __builtin_cpu_supports("pclmul") != 0;
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
#elif defined(__aarch64__) && defined(__linux__)
  const unsigned long hwcap = getauxval(AT_HWCAP);
  f.neon = (hwcap & HWCAP_ASIMD) != 0;
  f.arm_crc32 = (hwcap & HWCAP_CRC32) != 0;
#elif defined(__aarch64__) && defined(__APPLE__)
  // Apple silicon baseline: NEON and the CRC32 extension are mandatory.
  f.neon = true;
  f.arm_crc32 = true;
#endif
  return f;
}

// -1 = unpinned (resolve from hardware + env); otherwise a DispatchLevel.
std::atomic<int> g_pinned_level{-1};
std::atomic<uint64_t> g_generation{0};

bool LevelSupported(const CpuFeatures& f, DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return true;
    case DispatchLevel::kSse42:
      return f.sse42 && f.pclmul;
    case DispatchLevel::kAvx2:
      return f.avx2 && f.sse42;
    case DispatchLevel::kNeon:
      return f.neon && f.arm_crc32;
  }
  return false;
}

}  // namespace

namespace internal {

bool SimdDisabledByEnv() {
  const char* v = std::getenv("CLASSMINER_DISABLE_SIMD");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

DispatchLevel ResolveDispatchLevel(const CpuFeatures& features,
                                   bool simd_disabled) {
  if (simd_disabled) return DispatchLevel::kScalar;
  if (LevelSupported(features, DispatchLevel::kAvx2)) {
    return DispatchLevel::kAvx2;
  }
  if (LevelSupported(features, DispatchLevel::kSse42)) {
    return DispatchLevel::kSse42;
  }
  if (LevelSupported(features, DispatchLevel::kNeon)) {
    return DispatchLevel::kNeon;
  }
  return DispatchLevel::kScalar;
}

}  // namespace internal

const CpuFeatures& CpuInfo() {
  static const CpuFeatures features = DetectCpuFeatures();
  return features;
}

DispatchLevel ActiveDispatchLevel() {
  const int pinned = g_pinned_level.load(std::memory_order_acquire);
  if (pinned >= 0) return static_cast<DispatchLevel>(pinned);
  // Env is read once: the resolved level is cached for the process.
  static const DispatchLevel resolved =
      internal::ResolveDispatchLevel(CpuInfo(), internal::SimdDisabledByEnv());
  return resolved;
}

const char* DispatchLevelName(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kSse42:
      return "sse4.2";
    case DispatchLevel::kAvx2:
      return "avx2";
    case DispatchLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

std::vector<DispatchLevel> SupportedDispatchLevels() {
  std::vector<DispatchLevel> levels{DispatchLevel::kScalar};
  const CpuFeatures& f = CpuInfo();
  for (DispatchLevel l :
       {DispatchLevel::kSse42, DispatchLevel::kAvx2, DispatchLevel::kNeon}) {
    if (LevelSupported(f, l)) levels.push_back(l);
  }
  return levels;
}

bool SetDispatchLevelForTest(DispatchLevel level) {
  if (!LevelSupported(CpuInfo(), level)) return false;
  g_pinned_level.store(static_cast<int>(level), std::memory_order_release);
  g_generation.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

void ClearDispatchLevelForTest() {
  g_pinned_level.store(-1, std::memory_order_release);
  g_generation.fetch_add(1, std::memory_order_acq_rel);
}

uint64_t DispatchGeneration() {
  return g_generation.load(std::memory_order_acquire);
}

}  // namespace classminer::util

#ifndef CLASSMINER_UTIL_SALVAGE_H_
#define CLASSMINER_UTIL_SALVAGE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace classminer::util {

// What a best-effort parse or decode managed to rescue from damaged input.
// Filled by CmvFile::ParseBestEffort, the salvage DC decode, the salvaging
// FrameSource and ParseDatabaseSalvage; merged onto MiningResult so callers
// (CLI, batch ingest) can report exactly what was lost. Lives in util so
// codec, index and core can all speak it without layering knots.
struct SalvageReport {
  // True when the producer had to drop, rebuild or substitute anything —
  // the input was not pristine. The owning result should be flagged
  // degraded whenever this is set.
  bool salvaged = false;

  uint64_t bytes_dropped = 0;  // trailing/corrupt bytes discarded
  int items_recovered = 0;     // container frames / database videos kept
  int items_dropped = 0;       // structurally unrecoverable items
  int gops_recovered = 0;      // complete GOPs usable after salvage
  int gops_skipped = 0;        // GOPs dropped or substituted as corrupt
  // Tears the parser scanned past to a checksum-confirmed sync point (an
  // I-frame record or a video-entry frame), recovering the suffix behind
  // the damage instead of only the prefix in front of it.
  int resync_points = 0;
  bool audio_dropped = false;  // audio track lost to corruption
  bool index_rebuilt = false;  // stored seek index unusable, re-derived

  // Human-readable breadcrumbs ("frames: truncated record at offset 123"),
  // one per salvage decision, for logs and the CLI report.
  std::vector<std::string> notes;

  // Folds another report (e.g. a later pipeline layer's) into this one.
  void Merge(const SalvageReport& other);

  void AddNote(std::string note);

  // One-line summary, "" when nothing was salvaged.
  std::string ToString() const;
};

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_SALVAGE_H_

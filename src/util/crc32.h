#ifndef CLASSMINER_UTIL_CRC32_H_
#define CLASSMINER_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace classminer::util {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-record
// integrity checksum of the CMV container and the CMDB database. Chainable:
// pass the previous return value as `crc` to extend a checksum over several
// spans (Crc32(b, nb, Crc32(a, na)) == Crc32(a+b)).
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t crc = 0);
uint32_t Crc32(const std::vector<uint8_t>& bytes, uint32_t crc = 0);

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_CRC32_H_

#ifndef CLASSMINER_UTIL_CRC32_H_
#define CLASSMINER_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace classminer::util {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-record
// integrity checksum of the CMV container, the CMDB database and the
// CMRQ/CMRS wire frames. Chainable: pass the previous return value as `crc`
// to extend a checksum over several spans
// (Crc32(b, nb, Crc32(a, na)) == Crc32(a+b)).
//
// The implementation dispatches once per process (cached function pointer,
// revalidated only when a test pins the level via util::cpu): slice-by-8
// tables at kScalar, PCLMULQDQ 4-way folding at kSse42/kAvx2 on x86-64, and
// the ARMv8 CRC32 extension at kNeon. Every path returns bit-identical
// checksums; CLASSMINER_DISABLE_SIMD=1 pins the table path.
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t crc = 0);
uint32_t Crc32(const std::vector<uint8_t>& bytes, uint32_t crc = 0);

namespace internal {

// Kernels over the raw (pre/post-conditioned) CRC state, exposed so tests
// can pin each one against the others regardless of the host's dispatch
// level. All take/return the *public* chained-crc value, not the inverted
// register.
uint32_t Crc32Reference(const uint8_t* data, size_t size, uint32_t crc);
uint32_t Crc32Slice8(const uint8_t* data, size_t size, uint32_t crc);
// Slice-by-8 over the raw inverted register (no pre/post conditioning);
// the accelerated paths use it for unaligned heads and short tails.
uint32_t Crc32Slice8State(uint32_t state, const uint8_t* data, size_t size);
// Hardware-accelerated path for this architecture (PCLMUL folding on
// x86-64, CRC32 instructions on ARMv8). Only callable when
// Crc32AccelAvailable() is true.
bool Crc32AccelAvailable();
uint32_t Crc32Accel(const uint8_t* data, size_t size, uint32_t crc);

}  // namespace internal

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_CRC32_H_

#include "util/threadpool.h"

#include <algorithm>
#include <exception>

#include "util/logging.h"

namespace classminer::util {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

// Shared execution guard for workers and helping callers. The in_flight_
// decrement must run even when the task throws, otherwise Wait() deadlocks
// forever on a poisoned counter.
void ThreadPool::RunTask(std::function<void()>* task) {
  try {
    (*task)();
  } catch (const std::exception& e) {
    exception_count_.fetch_add(1, std::memory_order_relaxed);
    CM_LOG(Error) << "ThreadPool task threw: " << e.what();
  } catch (...) {
    exception_count_.fetch_add(1, std::memory_order_relaxed);
    CM_LOG(Error) << "ThreadPool task threw a non-std exception";
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
  }
  RunTask(&task);
  return true;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    RunTask(&task);
  }
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn, int grain) {
  if (count <= 0) return;
  const int step = std::max(1, grain);
  if (pool == nullptr || pool->thread_count() <= 1 || count <= step) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }

  // Per-call completion latch: the caller waits for its own chunks only,
  // not pool-wide idleness, so concurrent calls (several pipeline stages,
  // several videos) share the pool without serialising on each other.
  struct Latch {
    std::mutex mutex;
    std::condition_variable cv;
    int remaining = 0;
  } latch;
  latch.remaining = (count + step - 1) / step;

  for (int begin = 0; begin < count; begin += step) {
    const int end = std::min(count, begin + step);
    pool->Schedule([&fn, &latch, begin, end] {
      // Decrement via RAII so a throwing body still releases the caller
      // (the exception then escapes to the pool's guard, which counts it).
      struct Done {
        Latch* latch;
        ~Done() {
          std::lock_guard<std::mutex> lock(latch->mutex);
          if (--latch->remaining == 0) latch->cv.notify_all();
        }
      } done{&latch};
      for (int i = begin; i < end; ++i) fn(i);
    });
  }

  // Help while waiting: run queued tasks (this call's chunks or anyone
  // else's work) inline. This is what makes nested ParallelFor from inside
  // a pool task deadlock-free — a blocked-and-helping caller always leaves
  // a runnable task runnable. When the queue is momentarily empty, every
  // outstanding chunk of this call is in flight on some thread and its
  // completion will signal the latch.
  std::unique_lock<std::mutex> lock(latch.mutex);
  while (latch.remaining > 0) {
    lock.unlock();
    const bool ran = pool->TryRunOneTask();
    lock.lock();
    if (!ran && latch.remaining > 0) {
      latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
    }
  }
}

}  // namespace classminer::util

#include "util/exec_context.h"

#include <exception>
#include <string>

namespace classminer::util {

void StatusSink::Record(Status status) {
  if (status.ok()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (status_.ok()) {
    status_ = std::move(status);
  } else {
    ++suppressed_;
  }
}

int StatusSink::suppressed_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return suppressed_;
}

Status StatusSink::Get() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

bool StatusSink::ok() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_.ok();
}

void ParallelFor(const ExecutionContext& ctx, int count,
                 const std::function<void(int)>& fn, int grain) {
  if (count <= 0) return;
  if (ctx.cancelled()) return;
  if (ctx.status_sink() != nullptr && !ctx.status_sink()->ok()) return;
  if (ctx.status_sink() == nullptr) {
    ParallelFor(ctx.pool(), count, fn, grain);
    return;
  }
  ParallelFor(
      ctx.pool(), count,
      [&ctx, &fn](int i) {
        try {
          fn(i);
        } catch (const std::exception& e) {
          ctx.RecordStatus(Status::Internal(
              std::string("parallel loop body threw: ") + e.what()));
        } catch (...) {
          ctx.RecordStatus(
              Status::Internal("parallel loop body threw a non-std value"));
        }
      },
      grain);
}

}  // namespace classminer::util

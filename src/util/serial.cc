#include "util/serial.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/failpoint.h"
#include "util/retry.h"

namespace classminer::util {

void ByteWriter::PutU8(uint8_t v) { bytes_.push_back(v); }

void ByteWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v & 0xff));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void ByteWriter::PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }

void ByteWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutBytes(const uint8_t* data, size_t size) {
  bytes_.insert(bytes_.end(), data, data + size);
}

void ByteWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

Status ByteReader::Corrupt(const std::string& what) const {
  std::string message = what + " (";
  if (!section_.empty()) message += "section '" + section_ + "', ";
  message += "byte offset " + std::to_string(pos_) + " of " +
             std::to_string(size_) + ")";
  return Status::DataLoss(std::move(message));
}

StatusOr<uint8_t> ByteReader::GetU8() {
  if (pos_ >= size_) return Corrupt("read past end of buffer");
  return data_[pos_++];
}

StatusOr<uint16_t> ByteReader::GetU16() {
  if (pos_ + 2 > size_) return Corrupt("read past end of buffer");
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

StatusOr<uint32_t> ByteReader::GetU32() {
  if (pos_ + 4 > size_) return Corrupt("read past end of buffer");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> ByteReader::GetU64() {
  if (pos_ + 8 > size_) return Corrupt("read past end of buffer");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

StatusOr<int32_t> ByteReader::GetI32() {
  StatusOr<uint32_t> v = GetU32();
  if (!v.ok()) return v.status();
  return static_cast<int32_t>(*v);
}

StatusOr<double> ByteReader::GetF64() {
  StatusOr<uint64_t> bits = GetU64();
  if (!bits.ok()) return bits.status();
  double v;
  uint64_t b = *bits;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

Status ByteReader::GetBytes(uint8_t* out, size_t size) {
  if (pos_ + size > size_) return Corrupt("read past end of buffer");
  if (size > 0) std::memcpy(out, data_ + pos_, size);  // out may be null when empty
  pos_ += size;
  return Status::Ok();
}

StatusOr<std::string> ByteReader::GetString() {
  StatusOr<uint32_t> len = GetU32();
  if (!len.ok()) return len.status();
  if (pos_ + *len > size_) return Corrupt("string exceeds buffer");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), *len);
  pos_ += *len;
  return s;
}

Status ByteReader::Skip(size_t n) {
  if (pos_ + n > size_) return Corrupt("skip past end of buffer");
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::SeekTo(size_t pos) {
  if (pos > size_) return Corrupt("seek past end of buffer");
  pos_ = pos;
  return Status::Ok();
}

Status CheckU32Count(size_t count, const std::string& what) {
  if (count > 0xffffffffull) {
    return Status::InvalidArgument(what + " count " + std::to_string(count) +
                                   " does not fit a u32 length prefix");
  }
  return Status::Ok();
}

namespace {

// Resume loop around fwrite: a transfer interrupted by a signal (EINTR)
// continues where it stopped instead of failing the whole operation. Any
// other short write is a genuine error.
bool WriteFully(std::FILE* f, const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const size_t n = std::fwrite(data + done, 1, size - done, f);
    done += n;
    if (done == size) break;
    if (std::ferror(f) != 0 && errno == EINTR) {
      std::clearerr(f);
      continue;
    }
    if (n == 0) return false;
  }
  return true;
}

// Resume loop around fread, same EINTR semantics; end-of-file before `size`
// bytes is a genuine short read.
bool ReadFully(std::FILE* f, uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const size_t n = std::fread(data + done, 1, size - done, f);
    done += n;
    if (done == size) break;
    if (std::ferror(f) != 0 && errno == EINTR) {
      std::clearerr(f);
      continue;
    }
    if (n == 0) return false;
  }
  return true;
}

// fsync restarted across signal interruptions.
int FsyncRetry(int fd) {
  int rc;
  do {
    rc = fsync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

// True when a file exists at `path` (stat-free, fopen-based: good enough
// for deciding whether a previous generation needs rotating aside).
bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

// One staged attempt of the atomic write sequence:
//   stage bytes in `path + ".tmp"` → flush + fsync → [rotate the old file
//   to options.backup_path] → rename the temp over `path`.
// Each step is preceded by its fail-point site so crash tests can tear the
// sequence at any point; any failure unlinks the temp file, leaving the
// destination (and the rotated backup) exactly as the crash would.
Status AtomicWriteFileOnce(const std::string& path,
                           const std::vector<uint8_t>& bytes,
                           const AtomicWriteOptions& options) {
  const std::string tmp = path + ".tmp";
  Status status = [&]() -> Status {
    CLASSMINER_RETURN_IF_ERROR(
        FailPoint::Check("serial.atomic_write.tmp_write"));
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return Status::NotFound("cannot open for write: " + tmp);
    if (!bytes.empty() && !WriteFully(f, bytes.data(), bytes.size())) {
      std::fclose(f);
      return Status::DataLoss("short write: " + tmp);
    }
    Status synced = FailPoint::Check("serial.atomic_write.fsync");
    if (synced.ok() && (std::fflush(f) != 0 || FsyncRetry(fileno(f)) != 0)) {
      synced = Status::Unavailable("fsync failed: " + tmp);
    }
    std::fclose(f);
    CLASSMINER_RETURN_IF_ERROR(synced);
    CLASSMINER_RETURN_IF_ERROR(FailPoint::Check("serial.atomic_write.rename"));
    if (!options.backup_path.empty() && FileExists(path) &&
        std::rename(path.c_str(), options.backup_path.c_str()) != 0) {
      return Status::Unavailable("cannot rotate " + path + " to " +
                                 options.backup_path);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      return Status::Unavailable("cannot rename " + tmp + " to " + path);
    }
    return Status::Ok();
  }();
  if (!status.ok()) std::remove(tmp.c_str());
  return status;
}

Status WriteFileOnce(const std::string& path,
                     const std::vector<uint8_t>& bytes) {
  CLASSMINER_RETURN_IF_ERROR(FailPoint::Check("serial.write_file"));
  return AtomicWriteFileOnce(path, bytes, AtomicWriteOptions());
}

StatusOr<std::vector<uint8_t>> ReadFileOnce(const std::string& path) {
  CLASSMINER_RETURN_IF_ERROR(FailPoint::Check("serial.read_file"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const bool read_ok =
      bytes.empty() || ReadFully(f, bytes.data(), bytes.size());
  std::fclose(f);
  if (!read_ok) return Status::DataLoss("short read: " + path);
  return bytes;
}

// Cheap defaults for local file I/O: three quick attempts absorb injected /
// momentary kUnavailable conditions without noticeable latency on the
// deterministic failure paths (which return after the first attempt).
RetryOptions FileRetryOptions() {
  RetryOptions options;
  options.max_attempts = 3;
  options.initial_backoff_ms = 0.5;
  options.max_backoff_ms = 8.0;
  return options;
}

}  // namespace

Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  return Retry(FileRetryOptions(),
               [&path, &bytes] { return WriteFileOnce(path, bytes); });
}

Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& bytes,
                       const AtomicWriteOptions& options) {
  return Retry(FileRetryOptions(), [&path, &bytes, &options] {
    return AtomicWriteFileOnce(path, bytes, options);
  });
}

StatusOr<std::vector<uint8_t>> ReadFile(const std::string& path) {
  return RetryOr<std::vector<uint8_t>>(
      FileRetryOptions(), [&path] { return ReadFileOnce(path); });
}

}  // namespace classminer::util

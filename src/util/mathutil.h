#ifndef CLASSMINER_UTIL_MATHUTIL_H_
#define CLASSMINER_UTIL_MATHUTIL_H_

#include <cstddef>
#include <span>
#include <vector>

namespace classminer::util {

// Arithmetic mean of `values`; 0 when empty.
double Mean(std::span<const double> values);

// Population variance of `values`; 0 when fewer than 2 elements.
double Variance(std::span<const double> values);

double StdDev(std::span<const double> values);

// Shannon entropy (nats) of a discrete distribution given as nonnegative
// weights; weights are normalised internally. Zero weights contribute 0.
double Entropy(std::span<const double> weights);

// Normalises `values` in place so they sum to 1. No-op when the sum is 0.
void NormalizeL1(std::vector<double>* values);

// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi);

// Fast entropy-based automatic threshold selection (Fan et al. [10]).
//
// Given a set of scalar observations (e.g. frame differences or group
// similarities), selects the threshold t that maximises the sum of the
// entropies of the two classes {x <= t} and {x > t} computed over a
// `bins`-bucket histogram of the observations. Maximising the bipartition
// entropy (Kapur-style maximum entropy thresholding) places t at the most
// informative split between the "low" population (e.g. intra-shot
// differences) and the "high" population (cut differences).
//
// Returns the midpoint value of the chosen histogram bucket boundary.
// When `values` is empty returns 0; when all values are equal returns that
// value.
double FastEntropyThreshold(std::span<const double> values, int bins = 64);

// Otsu automatic threshold: maximises the between-class variance of the
// bipartition over a `bins`-bucket histogram. Better suited than the
// max-entropy split when the populations are sparse but well separated
// (e.g. neighbouring-group similarities); returns the boundary value.
double OtsuThreshold(std::span<const double> values, int bins = 64);

// Median of `values` (by copy); 0 when empty.
double Median(std::span<const double> values);

// Percentile in [0,100] using nearest-rank on a sorted copy; 0 when empty.
double Percentile(std::span<const double> values, double pct);

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_MATHUTIL_H_

#include "util/arena.h"

#include <algorithm>
#include <cstdlib>
#include <new>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CLASSMINER_ARENA_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define CLASSMINER_ARENA_ASAN 1
#endif

#if defined(CLASSMINER_ARENA_ASAN)
#include <sanitizer/asan_interface.h>
#define CLASSMINER_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define CLASSMINER_UNPOISON(addr, size) ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#define CLASSMINER_POISON(addr, size) ((void)0)
#define CLASSMINER_UNPOISON(addr, size) ((void)0)
#endif

namespace classminer::util {
namespace {

// Chunks come from aligned operator new at this alignment; requested
// alignments above it are honoured by aligning the absolute address.
constexpr size_t kChunkAlign = 64;
// Minimum allocation alignment: keeps ASan poison boundaries on shadow
// granules and every bump at least pointer-aligned.
constexpr size_t kMinAlign = 8;

size_t AlignUp(size_t n, size_t align) { return (n + align - 1) & ~(align - 1); }

}  // namespace

Arena::Arena(size_t initial_chunk_bytes)
    : next_chunk_bytes_(std::max<size_t>(initial_chunk_bytes, 256)) {}

Arena::~Arena() {
  for (Chunk& c : chunks_) {
    CLASSMINER_UNPOISON(c.base, c.capacity);
    ::operator delete(c.base, std::align_val_t{kChunkAlign});
  }
}

Arena::Arena(Arena&& other) noexcept {
  const std::lock_guard<std::mutex> lock(other.mutex_);
  chunks_ = std::move(other.chunks_);
  current_ = other.current_;
  next_chunk_bytes_ = other.next_chunk_bytes_;
  allocated_ = other.allocated_;
  allocations_ = other.allocations_;
  other.chunks_.clear();
  other.current_ = 0;
  other.allocated_ = 0;
  other.allocations_ = 0;
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  for (Chunk& c : chunks_) {
    CLASSMINER_UNPOISON(c.base, c.capacity);
    ::operator delete(c.base, std::align_val_t{kChunkAlign});
  }
  chunks_ = std::move(other.chunks_);
  current_ = other.current_;
  next_chunk_bytes_ = other.next_chunk_bytes_;
  allocated_ = other.allocated_;
  allocations_ = other.allocations_;
  other.chunks_.clear();
  other.current_ = 0;
  other.allocated_ = 0;
  other.allocations_ = 0;
  return *this;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return AllocateLocked(bytes, align);
}

void* Arena::AllocateLocked(size_t bytes, size_t align) {
  if (align == 0 || (align & (align - 1)) != 0) align = alignof(std::max_align_t);
  align = std::max(align, kMinAlign);
  if (bytes == 0) bytes = 1;  // distinct non-null pointers, vector-friendly
  // Try the current chunk, then any later recycled chunk large enough.
  for (size_t i = current_; i < chunks_.size(); ++i) {
    Chunk& c = chunks_[i];
    // Align the absolute address, not the offset: chunk bases are only
    // kChunkAlign-aligned.
    const size_t offset =
        AlignUp(reinterpret_cast<uintptr_t>(c.base) + c.used, align) -
        reinterpret_cast<uintptr_t>(c.base);
    if (offset + bytes <= c.capacity) {
      c.used = offset + bytes;
      current_ = i;
      allocated_ += bytes;
      ++allocations_;
      uint8_t* p = c.base + offset;
      CLASSMINER_UNPOISON(p, bytes);
      return p;
    }
    current_ = i;  // exhausted; move on
  }
  // Grow: geometric schedule, but oversized requests get an exact chunk.
  size_t chunk_bytes = next_chunk_bytes_;
  if (bytes + align > chunk_bytes) {
    chunk_bytes = bytes + align;
  } else {
    next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, kMaxChunkBytes);
  }
  Chunk c;
  c.base = static_cast<uint8_t*>(
      ::operator new(chunk_bytes, std::align_val_t{kChunkAlign}));
  c.capacity = chunk_bytes;
  CLASSMINER_POISON(c.base, c.capacity);
  const size_t offset =
      AlignUp(reinterpret_cast<uintptr_t>(c.base), align) -
      reinterpret_cast<uintptr_t>(c.base);
  c.used = offset + bytes;
  chunks_.push_back(c);
  current_ = chunks_.size() - 1;
  allocated_ += bytes;
  ++allocations_;
  uint8_t* p = chunks_.back().base + offset;
  CLASSMINER_UNPOISON(p, bytes);
  return p;
}

void Arena::Reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Chunk& c : chunks_) {
    c.used = 0;
    CLASSMINER_POISON(c.base, c.capacity);
  }
  current_ = 0;
  allocated_ = 0;
  allocations_ = 0;
}

size_t Arena::bytes_allocated() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return allocated_;
}

size_t Arena::bytes_reserved() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const Chunk& c : chunks_) total += c.capacity;
  return total;
}

size_t Arena::allocation_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return allocations_;
}

}  // namespace classminer::util

#include "util/matrix.h"

#include <cmath>

#include "util/logging.h"

namespace classminer::util {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  CM_CHECK(cols_ == other.rows_) << "shape mismatch " << cols_ << " vs "
                                 << other.rows_;
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double v = at(r, k);
      if (v == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += v * other.at(k, c);
      }
    }
  }
  return out;
}

Matrix Covariance(const Matrix& samples) {
  const size_t n = samples.rows();
  const size_t d = samples.cols();
  Matrix cov(d, d);
  if (n == 0) return cov;

  std::vector<double> mean(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) mean[c] += samples.at(r, c);
  }
  for (size_t c = 0; c < d; ++c) mean[c] /= static_cast<double>(n);

  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < d; ++i) {
      const double di = samples.at(r, i) - mean[i];
      for (size_t j = i; j < d; ++j) {
        cov.at(i, j) += di * (samples.at(r, j) - mean[j]);
      }
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) {
      cov.at(i, j) /= static_cast<double>(n);
      cov.at(j, i) = cov.at(i, j);
    }
  }
  return cov;
}

StatusOr<Matrix> Cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.at(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return Status::FailedPrecondition(
              "matrix is not positive definite");
        }
        l.at(i, i) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }
  return l;
}

double LogDetPsd(const Matrix& a, double regularizer) {
  CM_CHECK(a.rows() == a.cols()) << "LogDetPsd requires a square matrix";
  Matrix work = a;
  // Retry with a geometrically growing ridge until Cholesky succeeds; short
  // feature sequences routinely produce rank-deficient covariances.
  double ridge = 0.0;
  for (int attempt = 0; attempt < 40; ++attempt) {
    StatusOr<Matrix> chol = Cholesky(work);
    if (chol.ok()) {
      double logdet = 0.0;
      for (size_t i = 0; i < work.rows(); ++i) {
        logdet += 2.0 * std::log(chol->at(i, i));
      }
      return logdet;
    }
    ridge = (ridge == 0.0) ? regularizer : ridge * 10.0;
    work = a;
    for (size_t i = 0; i < work.rows(); ++i) work.at(i, i) += ridge;
  }
  CM_CHECK(false) << "LogDetPsd failed to regularise matrix";
  return 0.0;
}

}  // namespace classminer::util

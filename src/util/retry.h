#ifndef CLASSMINER_UTIL_RETRY_H_
#define CLASSMINER_UTIL_RETRY_H_

#include <cstdint>
#include <functional>

#include "util/status.h"

namespace classminer::util {

// True for status codes worth retrying: the operation may succeed if simply
// attempted again (kUnavailable — a resource that exists but cannot be
// reached right now). Deterministic failures (kDataLoss, kInvalidArgument,
// kNotFound, ...) and caller intent (kCancelled) are never transient.
bool IsTransientCode(StatusCode code);

// Bounded-attempt retry with exponential backoff and deterministic jitter.
struct RetryOptions {
  int max_attempts = 3;             // total attempts, including the first
  double initial_backoff_ms = 1.0;  // delay before the second attempt
  double backoff_multiplier = 2.0;  // growth factor per retry
  // Hard cap on every actual delay. Applied after jittering: no draw can
  // push a sleep past this bound.
  double max_backoff_ms = 64.0;
  // Each delay is scaled by a factor drawn uniformly from
  // [1 - jitter_fraction, 1 + jitter_fraction] using a deterministic
  // generator seeded with jitter_seed, so retry storms decorrelate without
  // making tests flaky.
  double jitter_fraction = 0.25;
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
  // Test seam: invoked instead of std::this_thread::sleep_for when set.
  std::function<void(double ms)> sleeper;
  // Invoked after the backoff sleep, immediately before each re-attempt
  // (never before the first attempt), with the 1-based number of the
  // attempt about to run and the transient status that caused it. Lets a
  // caller repair state between attempts — e.g. a network client dropping
  // a dead connection and dialing a fresh one before the retry fires.
  std::function<void(int attempt, const Status& last)> on_retry;
};

// Attempt/backoff accounting for metrics and tests.
struct RetryStats {
  int attempts = 0;
  double total_backoff_ms = 0.0;
};

// Invokes `fn` until it returns OK, a non-transient error, or the attempt
// budget runs out; sleeps the (jittered) backoff between attempts. Returns
// the last status. `stats` (optional) receives attempt/backoff totals.
Status Retry(const RetryOptions& options, const std::function<Status()>& fn,
             RetryStats* stats = nullptr);

// StatusOr-returning variant.
template <typename T>
StatusOr<T> RetryOr(const RetryOptions& options,
                    const std::function<StatusOr<T>()>& fn,
                    RetryStats* stats = nullptr) {
  StatusOr<T> result = Status::Internal("retry never ran");
  const Status status = Retry(
      options, [&result, &fn]() -> Status {
        result = fn();
        return result.status();
      },
      stats);
  if (!status.ok()) return status;
  return result;
}

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_RETRY_H_

#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace classminer::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void DieOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr value accessed on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace classminer::util

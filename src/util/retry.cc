#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.h"

namespace classminer::util {

bool IsTransientCode(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

Status Retry(const RetryOptions& options, const std::function<Status()>& fn,
             RetryStats* stats) {
  const int max_attempts = std::max(1, options.max_attempts);
  Rng jitter(options.jitter_seed);
  double backoff_ms = options.initial_backoff_ms;
  Status status;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (stats != nullptr) stats->attempts = attempt;
    status = fn();
    if (status.ok() || !IsTransientCode(status.code())) return status;
    if (attempt == max_attempts) break;
    double delay_ms = backoff_ms;
    if (options.jitter_fraction > 0.0) {
      const double f = std::clamp(options.jitter_fraction, 0.0, 1.0);
      delay_ms *= jitter.Uniform(1.0 - f, 1.0 + f);
    }
    // The cap applies to the actual sleep, so it clamps AFTER jittering —
    // an upward jitter draw must never push the delay past the configured
    // maximum. The stats account exactly what is slept.
    delay_ms = std::clamp(delay_ms, 0.0, std::max(0.0, options.max_backoff_ms));
    if (stats != nullptr) stats->total_backoff_ms += delay_ms;
    if (options.sleeper) {
      options.sleeper(delay_ms);
    } else if (delay_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
    }
    backoff_ms *= options.backoff_multiplier;
    if (options.on_retry) options.on_retry(attempt + 1, status);
  }
  return status;
}

}  // namespace classminer::util

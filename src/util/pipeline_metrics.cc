#include "util/pipeline_metrics.h"

#include <algorithm>
#include <cstdio>

namespace classminer::util {

int64_t StageMetrics::Counter(std::string_view counter_name) const {
  for (const auto& [name_, value] : counters) {
    if (name_ == counter_name) return value;
  }
  return -1;
}

double PipelineMetrics::TotalMs() const {
  double total = 0.0;
  for (const StageMetrics& s : stages) total += s.wall_ms;
  return total;
}

const StageMetrics* PipelineMetrics::Find(std::string_view name) const {
  for (const StageMetrics& s : stages) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string PipelineMetrics::ToString() const {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "%-12s %10s %8s %8s\n", "stage",
                "wall_ms", "items", "threads");
  out += line;
  for (const StageMetrics& s : stages) {
    std::snprintf(line, sizeof(line), "%-12s %10.2f %8lld %8d",
                  s.name.c_str(), s.wall_ms, static_cast<long long>(s.items),
                  s.threads);
    out += line;
    for (const auto& [counter, value] : s.counters) {
      std::snprintf(line, sizeof(line), "  %s=%lld", counter.c_str(),
                    static_cast<long long>(value));
      out += line;
    }
    if (!s.status.ok()) {
      std::snprintf(line, sizeof(line), "  FAILED(%s)",
                    StatusCodeName(s.status.code()));
      out += line;
    }
    out += '\n';
  }
  std::snprintf(line, sizeof(line), "%-12s %10.2f\n", "total", TotalMs());
  out += line;
  if (pool_exceptions > 0) {
    std::snprintf(line, sizeof(line), "%-12s %10d\n", "exceptions",
                  pool_exceptions);
    out += line;
  }
  if (suppressed_errors > 0) {
    std::snprintf(line, sizeof(line), "%-12s %10d\n", "suppressed",
                  suppressed_errors);
    out += line;
  }
  return out;
}

StageTimer::StageTimer(PipelineMetrics* metrics, std::string name,
                       int threads)
    : metrics_(metrics), start_(std::chrono::steady_clock::now()) {
  row_.name = std::move(name);
  row_.threads = std::max(1, threads);
}

StageTimer::~StageTimer() {
  if (metrics_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  row_.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          elapsed)
          .count();
  metrics_->stages.push_back(std::move(row_));
}

}  // namespace classminer::util

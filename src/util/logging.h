#ifndef CLASSMINER_UTIL_LOGGING_H_
#define CLASSMINER_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace classminer::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Writes one formatted log line to stderr (thread-safe).
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace internal {

// Stream-style log statement collector; emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Aborts the process after logging; used by CM_CHECK.
class FatalLogLine {
 public:
  FatalLogLine(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogLine();

  template <typename T>
  FatalLogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace classminer::util

#define CM_LOG(severity)                                                 \
  ::classminer::util::internal::LogLine(                                 \
      ::classminer::util::LogLevel::k##severity, __FILE__, __LINE__)

// Invariant check: logs and aborts when `cond` is false. Used for
// programming errors, never for data-dependent failures (those return
// Status).
#define CM_CHECK(cond)                                                  \
  if (cond) {                                                           \
  } else /* NOLINT */                                                   \
    ::classminer::util::internal::FatalLogLine(__FILE__, __LINE__, #cond)

#endif  // CLASSMINER_UTIL_LOGGING_H_

#ifndef CLASSMINER_UTIL_RNG_H_
#define CLASSMINER_UTIL_RNG_H_

#include <cstdint>

namespace classminer::util {

// Deterministic splitmix64/xoshiro-style PRNG. Every stochastic component
// in the library (synthesis, EM initialisation, workload generation) takes
// an explicit Rng so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int UniformInt(int lo, int hi);

  // Standard normal via Box-Muller.
  double Gaussian();

  // Normal with the given mean / stddev.
  double Gaussian(double mean, double stddev);

  // Returns true with probability p.
  bool Bernoulli(double p);

  // Derives an independent child generator (stable across platforms).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_RNG_H_

#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace classminer::util {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
  have_spare_ = false;
}

uint64_t Rng::Next() {
  // xoshiro256**.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

int Rng::UniformInt(int lo, int hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(Next() % span);
}

double Rng::Gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = Uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  have_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Fork() { return Rng(Next() ^ 0xa5a5a5a55a5a5a5aULL); }

}  // namespace classminer::util

#ifndef CLASSMINER_UTIL_FFT_H_
#define CLASSMINER_UTIL_FFT_H_

#include <complex>
#include <span>
#include <vector>

namespace classminer::util {

// In-place iterative radix-2 Cooley-Tukey FFT. `data.size()` must be a
// power of two (checked). `inverse` applies the conjugate transform and
// 1/N scaling.
void Fft(std::vector<std::complex<double>>* data, bool inverse = false);

// Returns the smallest power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

// Magnitude spectrum of a real signal, zero-padded to a power of two.
// Returns N/2+1 magnitudes (DC .. Nyquist) where N is the padded length.
std::vector<double> MagnitudeSpectrum(std::span<const double> signal);

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_FFT_H_

#ifndef CLASSMINER_UTIL_THREADPOOL_H_
#define CLASSMINER_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace classminer::util {

// Minimal fixed-size thread pool. Used to mine independent videos in
// parallel (each MineVideo call is self-contained and deterministic, so
// parallel ingest preserves per-video results exactly).
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; runs as soon as a worker is free.
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has finished.
  void Wait();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // A sensible default: hardware concurrency, at least 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(i) for i in [0, count) across the pool and waits.
void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn);

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_THREADPOOL_H_

#ifndef CLASSMINER_UTIL_THREADPOOL_H_
#define CLASSMINER_UTIL_THREADPOOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace classminer::util {

// Minimal fixed-size thread pool. Used to mine independent videos in
// parallel and, within one video, to run the per-stage hot loops (feature
// extraction, scene-similarity matrices, per-shot audio analysis) and the
// stage-DAG scheduler. Every parallel loop in the pipeline writes to
// pre-sized per-index slots and reduces serially, so results are
// bit-identical to a serial run.
//
// Nesting: callers that must wait for their own sub-tasks (ParallelFor, the
// stage-DAG runner) do NOT block on Wait(); they help — repeatedly popping
// queued tasks via TryRunOneTask() until their own completion latch drops.
// A pool task may therefore itself fan out onto the same pool: its wait
// loop executes other queued work (possibly a whole other pipeline stage)
// inline, so one pool serves videos × stages × inner loops without
// self-deadlock and without idle workers.
//
// Exception policy: a task that throws does NOT kill the worker or deadlock
// Wait(). The exception is caught at the execution boundary, logged at
// Error severity, and counted (see exception_count()). Pipeline code routes
// loops through ExecutionContext, which captures exceptions into the run's
// status sink before they ever reach the pool; an exception escaping a raw
// Schedule() task is a survivable but loud programming error, and pipeline
// entry points turn a non-zero count into a failed util::Status.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; runs as soon as a worker is free.
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has finished. Must not be called
  // from inside a pool task (the waiting worker would count itself as
  // in-flight and never wake up) — in-task code waits by helping via
  // TryRunOneTask() instead.
  void Wait();

  // Pops one queued task, if any, and runs it on the calling thread (with
  // the same exception guard as a worker). Returns false when the queue
  // was empty. This is the helping primitive behind nested ParallelFor and
  // the stage-DAG runner's wait loops.
  bool TryRunOneTask();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Number of tasks that escaped with an exception since construction.
  int exception_count() const {
    return exception_count_.load(std::memory_order_relaxed);
  }

  // A sensible default: hardware concurrency, at least 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();
  void RunTask(std::function<void()>* task);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutdown_ = false;
  std::atomic<int> exception_count_{0};
  std::vector<std::thread> workers_;
};

// Runs fn(i) for i in [0, count) and waits. A null `pool` (or a
// single-thread pool) runs the loop inline, so callers can thread an
// optional pool through without branching. `grain` batches consecutive
// indices into one task to amortise scheduling overhead on cheap bodies;
// partitioning is fixed by (count, grain) alone, never by thread timing.
// The wait is a per-call completion latch, not pool-wide idleness, and the
// caller helps drain the queue while waiting — so concurrent ParallelFor
// calls share the pool without over-waiting on each other, and calling
// from inside a task of the same pool is safe.
void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn, int grain = 1);

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_THREADPOOL_H_

#ifndef CLASSMINER_UTIL_THREADPOOL_H_
#define CLASSMINER_UTIL_THREADPOOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace classminer::util {

// Minimal fixed-size thread pool. Used to mine independent videos in
// parallel and, within one video, to run the per-stage hot loops (feature
// extraction, scene-similarity matrices, per-shot audio analysis). Every
// parallel loop in the pipeline writes to pre-sized per-index slots and
// reduces serially, so results are bit-identical to a serial run.
//
// Exception policy: a task that throws does NOT kill the worker or deadlock
// Wait(). The exception is caught at the worker boundary, logged at Error
// severity, and counted (see exception_count()). Tasks that must propagate
// failures should capture them into their own result slots; the pool treats
// an escaped exception as a programming error that is survivable but loud.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; runs as soon as a worker is free.
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has finished. Must not be called
  // from inside a pool task (the waiting worker would count itself as
  // in-flight and never wake up).
  void Wait();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Number of tasks that escaped with an exception since construction.
  int exception_count() const {
    return exception_count_.load(std::memory_order_relaxed);
  }

  // A sensible default: hardware concurrency, at least 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutdown_ = false;
  std::atomic<int> exception_count_{0};
  std::vector<std::thread> workers_;
};

// Runs fn(i) for i in [0, count) and waits. A null `pool` (or a
// single-thread pool) runs the loop inline, so callers can thread an
// optional pool through without branching. `grain` batches consecutive
// indices into one task to amortise scheduling overhead on cheap bodies;
// partitioning is fixed by (count, grain) alone, never by thread timing.
// Must not be invoked from inside a task of the same pool (see Wait()).
void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn, int grain = 1);

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_THREADPOOL_H_

#ifndef CLASSMINER_UTIL_STATUS_H_
#define CLASSMINER_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace classminer::util {

// Error codes for fallible library operations. The library does not throw
// exceptions across module boundaries; functions that can fail return a
// Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kDataLoss,
  kInternal,
  kPermissionDenied,
  kUnimplemented,
  kCancelled,
  // A resource that exists but cannot be reached right now (I/O contention,
  // injected transient fault). The only code util::Retry treats as
  // retryable.
  kUnavailable,
  // The caller-supplied deadline elapsed before the operation completed
  // (or before it ever started). Not retryable: the deadline was the
  // caller's intent, a fresh attempt needs a fresh deadline.
  kDeadlineExceeded,
};

// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

// A lightweight success-or-error result, modelled on absl::Status.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or an error Status. Accessing the value of
// a non-OK StatusOr aborts the process (programming error).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so callers can `return value;` / `return status;`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadStatusAccess(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::CheckOk() const {
  if (!status_.ok()) internal::DieOnBadStatusAccess(status_);
}

}  // namespace classminer::util

// Evaluates `expr` (a Status expression) and returns it from the enclosing
// function if it is not OK.
#define CLASSMINER_RETURN_IF_ERROR(expr)                      \
  do {                                                        \
    ::classminer::util::Status cm_status_ = (expr);           \
    if (!cm_status_.ok()) return cm_status_;                  \
  } while (0)

#endif  // CLASSMINER_UTIL_STATUS_H_

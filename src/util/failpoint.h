#ifndef CLASSMINER_UTIL_FAILPOINT_H_
#define CLASSMINER_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace classminer::util {

// ---------------------------------------------------------------------------
// Deterministic fault injection for robustness tests.
//
// Production code marks fallible sites with a named check:
//
//   CLASSMINER_RETURN_IF_ERROR(util::FailPoint::Check("serial.read_file"));
//
// Tests arm a site with a trigger spec (fail once, fail every Nth check,
// fail with probability p under a fixed seed, with a chosen error code) and
// the site starts returning the injected Status. Nothing is armed in normal
// runs: Check first reads one relaxed atomic and returns OK without taking
// any lock, so the instrumented hot paths pay (almost) nothing.
//
// Site naming convention: "<layer>.<component>[.<operation>]", e.g.
// "serial.read_file", "codec.container.parse", "codec.gop_reader.decode",
// "index.persist.save", "core.stage.audio". See DESIGN.md ("Failure
// taxonomy & degraded mode") for the catalogue of instrumented sites.
class FailPoint {
 public:
  // How an armed site decides to fire. The checks composing one Spec are
  // evaluated in order: only every `every_n`-th check is a candidate, a
  // candidate fires with `probability` (drawn from a deterministic
  // seeded generator), and at most `max_failures` total triggers fire
  // (-1 = unlimited). Defaults fire on every check, forever.
  struct Spec {
    StatusCode code = StatusCode::kUnavailable;
    std::string message;      // appended to the site name in the Status
    int every_n = 1;          // fire only on check #N, #2N, ... (1 = all)
    double probability = 1.0; // chance a candidate check fires
    uint64_t seed = 1;        // seeds the per-site deterministic RNG
    int max_failures = -1;    // total triggers before the site goes quiet

    static Spec Once(StatusCode code = StatusCode::kUnavailable) {
      Spec spec;
      spec.code = code;
      spec.max_failures = 1;
      return spec;
    }
    static Spec Always(StatusCode code = StatusCode::kUnavailable) {
      Spec spec;
      spec.code = code;
      return spec;
    }
    static Spec EveryN(int n, StatusCode code = StatusCode::kUnavailable) {
      Spec spec;
      spec.code = code;
      spec.every_n = n;
      return spec;
    }
    static Spec WithProbability(double p, uint64_t seed,
                                StatusCode code = StatusCode::kUnavailable) {
      Spec spec;
      spec.code = code;
      spec.probability = p;
      spec.seed = seed;
      return spec;
    }
  };

  // Arms (or re-arms, resetting counters) a site. Thread-safe.
  static void Arm(std::string_view site, Spec spec);
  static void Disarm(std::string_view site);
  static void DisarmAll();

  // OK when the site is unarmed or the spec decides not to fire; the
  // injected Status otherwise. This is the only call production code makes.
  static Status Check(std::string_view site);

  // Observability for tests: checks observed / failures injected at an
  // armed site (0 for unknown sites).
  static int64_t CheckCount(std::string_view site);
  static int64_t FailureCount(std::string_view site);

  // True when at least one site is armed (the fast-path gate, exposed for
  // tests).
  static bool AnyArmed();

  // The compiled-in catalogue of every fail-point site name in the binary
  // (armed or not), sorted and duplicate-free. Chaos rigs enumerate this
  // (`classminerd --failpoints list`, `classminer failpoints`) instead of
  // hardcoding site names that drift out of date. Adding a Check() call to
  // production code means adding its site here.
  static std::vector<std::string> KnownSites();

  // RAII arming for tests: disarms the site (only this one) on scope exit.
  class Scoped {
   public:
    Scoped(std::string_view site, Spec spec) : site_(site) {
      Arm(site_, std::move(spec));
    }
    ~Scoped() { Disarm(site_); }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

   private:
    std::string site_;
  };
};

}  // namespace classminer::util

#endif  // CLASSMINER_UTIL_FAILPOINT_H_

#include "skim/summary.h"

#include <sstream>

#include "util/serial.h"

namespace classminer::skim {

const char* EventColor(events::EventType type) {
  switch (type) {
    case events::EventType::kPresentation:
      return "#3b6fd4";  // blue
    case events::EventType::kDialog:
      return "#3da75a";  // green
    case events::EventType::kClinicalOperation:
      return "#c84b42";  // red
    case events::EventType::kUndetermined:
      return "#9a9a9a";  // grey
  }
  return "#9a9a9a";
}

std::vector<ColorBarSegment> BuildColorBar(
    const structure::ContentStructure& structure,
    const std::vector<events::EventRecord>& events) {
  std::vector<ColorBarSegment> bar;
  long total_frames = 0;
  for (const shot::Shot& s : structure.shots) total_frames += s.frame_count();
  if (total_frames <= 0) return bar;

  auto event_of_scene = [&events](int scene_index) {
    for (const events::EventRecord& rec : events) {
      if (rec.scene_index == scene_index) return rec.type;
    }
    return events::EventType::kUndetermined;
  };

  for (const structure::Scene& scene : structure.scenes) {
    const structure::Group& first =
        structure.groups[static_cast<size_t>(scene.start_group)];
    const structure::Group& last =
        structure.groups[static_cast<size_t>(scene.end_group)];
    const shot::Shot& s0 =
        structure.shots[static_cast<size_t>(first.start_shot)];
    const shot::Shot& s1 = structure.shots[static_cast<size_t>(last.end_shot)];
    ColorBarSegment seg;
    seg.scene_index = scene.index;
    seg.event = scene.eliminated ? events::EventType::kUndetermined
                                 : event_of_scene(scene.index);
    seg.begin = static_cast<double>(s0.start_frame) / total_frames;
    seg.end = static_cast<double>(s1.end_frame + 1) / total_frames;
    bar.push_back(seg);
  }
  return bar;
}

std::string RenderTextSummary(const structure::ContentStructure& structure,
                              const std::vector<events::EventRecord>& events,
                              const ScalableSkim& skim) {
  std::ostringstream out;
  out << "content structure: " << structure.shots.size() << " shots, "
      << structure.groups.size() << " groups, "
      << structure.ActiveSceneCount() << " scenes ("
      << structure.scenes.size() - structure.ActiveSceneCount()
      << " eliminated), " << structure.clustered_scenes.size()
      << " clustered scenes\n";
  out << "CRF: " << structure.CompressionRateFactor() << "\n";

  auto event_of_scene = [&events](int scene_index) {
    for (const events::EventRecord& rec : events) {
      if (rec.scene_index == scene_index) return rec.type;
    }
    return events::EventType::kUndetermined;
  };

  for (const structure::Scene& scene : structure.scenes) {
    if (scene.eliminated) continue;
    out << "scene " << scene.index << " ["
        << events::EventTypeName(event_of_scene(scene.index)) << "] groups "
        << scene.start_group << ".." << scene.end_group << " rep-group "
        << scene.rep_group << "\n";
    for (int g = scene.start_group; g <= scene.end_group; ++g) {
      const structure::Group& group =
          structure.groups[static_cast<size_t>(g)];
      out << "  group " << g << " shots " << group.start_shot << ".."
          << group.end_shot
          << (group.temporally_related ? " (temporal)" : " (spatial)")
          << "\n";
    }
  }
  out << "skim FCR by level:";
  for (int lvl = 1; lvl <= kSkimLevels; ++lvl) {
    out << " L" << lvl << "=" << skim.Fcr(lvl);
  }
  out << "\n";
  return out.str();
}

util::Status ExportHtmlSummary(const structure::ContentStructure& structure,
                               const std::vector<events::EventRecord>& events,
                               const ScalableSkim& skim,
                               const std::string& video_name,
                               const std::string& path) {
  std::ostringstream html;
  html << "<!DOCTYPE html><html><head><meta charset='utf-8'>"
       << "<title>ClassMiner summary: " << video_name << "</title>"
       << "<style>body{font-family:sans-serif;margin:2em}"
       << ".bar{display:flex;height:26px;border:1px solid #555}"
       << ".bar div{height:100%}"
       << "table{border-collapse:collapse}td,th{border:1px solid #999;"
       << "padding:3px 8px;font-size:13px}</style></head><body>";
  html << "<h1>" << video_name << "</h1>";

  // Event colour bar.
  html << "<h2>Event indicator</h2><div class='bar'>";
  for (const ColorBarSegment& seg : BuildColorBar(structure, events)) {
    html << "<div style='width:" << (seg.end - seg.begin) * 100.0
         << "%;background:" << EventColor(seg.event) << "' title='scene "
         << seg.scene_index << ": " << events::EventTypeName(seg.event)
         << "'></div>";
  }
  html << "</div>";

  // Skim levels.
  html << "<h2>Scalable skim</h2><table><tr><th>level</th><th>shots</th>"
       << "<th>frames</th><th>FCR</th></tr>";
  for (int lvl = kSkimLevels; lvl >= 1; --lvl) {
    const SkimTrack& t = skim.track(lvl);
    html << "<tr><td>" << lvl << "</td><td>" << t.shot_indices.size()
         << "</td><td>" << t.frame_count << "</td><td>" << skim.Fcr(lvl)
         << "</td></tr>";
  }
  html << "</table>";

  html << "<h2>Structure</h2><pre>"
       << RenderTextSummary(structure, events, skim) << "</pre>";
  html << "</body></html>";

  const std::string text = html.str();
  return util::WriteFile(
      path, std::vector<uint8_t>(text.begin(), text.end()));
}

}  // namespace classminer::skim

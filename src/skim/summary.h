#ifndef CLASSMINER_SKIM_SUMMARY_H_
#define CLASSMINER_SKIM_SUMMARY_H_

#include <string>
#include <vector>

#include "events/event_miner.h"
#include "skim/skimmer.h"
#include "structure/types.h"
#include "util/status.h"

namespace classminer::skim {

// One segment of the event colour bar (paper Fig. 11): a scene's span as a
// fraction of the timeline plus its mined event category.
struct ColorBarSegment {
  int scene_index = -1;
  events::EventType event = events::EventType::kUndetermined;
  double begin = 0.0;  // [0, 1] along the video
  double end = 0.0;
};

// Builds the colour bar for a mined video.
std::vector<ColorBarSegment> BuildColorBar(
    const structure::ContentStructure& structure,
    const std::vector<events::EventRecord>& events);

// CSS colour associated with an event category (stable across exports).
const char* EventColor(events::EventType type);

// Plain-text outline of the content hierarchy with events — the textual
// counterpart of the skimming tool.
std::string RenderTextSummary(const structure::ContentStructure& structure,
                              const std::vector<events::EventRecord>& events,
                              const ScalableSkim& skim);

// Writes a self-contained HTML page: per-level skim tables, the event
// colour bar, and structure statistics.
util::Status ExportHtmlSummary(const structure::ContentStructure& structure,
                               const std::vector<events::EventRecord>& events,
                               const ScalableSkim& skim,
                               const std::string& video_name,
                               const std::string& path);

}  // namespace classminer::skim

#endif  // CLASSMINER_SKIM_SUMMARY_H_

#ifndef CLASSMINER_SKIM_STORYBOARD_H_
#define CLASSMINER_SKIM_STORYBOARD_H_

#include <string>
#include <vector>

#include "events/event_miner.h"
#include "media/video.h"
#include "skim/skimmer.h"
#include "util/status.h"

namespace classminer::skim {

// Pictorial summarisation (paper Sec. 5, "the mined video content structure
// and event categories can also facilitate ... pictorial summarization"):
// a contact sheet of representative frames for one skim level, each tile
// bordered in its scene's event colour.
struct StoryboardOptions {
  int columns = 4;
  int tile_width = 96;   // frames are resized to this tile size
  int tile_height = 72;
  int border = 3;        // event-colour border thickness
  int gutter = 4;        // spacing between tiles
};

// Composes the storyboard image for `level` from the decoded video.
// Returns an empty image when the track is empty.
media::Image RenderStoryboard(const ScalableSkim& skim, int level,
                              const media::Video& video,
                              const std::vector<events::EventRecord>& events,
                              const StoryboardOptions& options);
media::Image RenderStoryboard(const ScalableSkim& skim, int level,
                              const media::Video& video,
                              const std::vector<events::EventRecord>& events);

// Renders and writes the storyboard as a PPM file.
util::Status ExportStoryboard(const ScalableSkim& skim, int level,
                              const media::Video& video,
                              const std::vector<events::EventRecord>& events,
                              const std::string& path);

}  // namespace classminer::skim

#endif  // CLASSMINER_SKIM_STORYBOARD_H_

#include "skim/playback.h"

namespace classminer::skim {

std::vector<PlaybackSegment> BuildPlaybackPlan(const ScalableSkim& skim,
                                               int level, double fps) {
  std::vector<PlaybackSegment> plan;
  if (fps <= 0.0) return plan;
  const structure::ContentStructure& cs = *skim.structure();
  const SkimTrack& track = skim.track(level);
  plan.reserve(track.shot_indices.size());
  for (size_t i = 0; i < track.shot_indices.size(); ++i) {
    const shot::Shot& s =
        cs.shots[static_cast<size_t>(track.shot_indices[i])];
    PlaybackSegment seg;
    seg.shot_index = s.index;
    seg.start_sec = s.StartSeconds(fps);
    seg.end_sec = s.EndSeconds(fps);
    seg.scroll_position = skim.ScrollPosition(level, static_cast<int>(i));
    plan.push_back(seg);
  }
  return plan;
}

double PlanDurationSeconds(const std::vector<PlaybackSegment>& plan) {
  double total = 0.0;
  for (const PlaybackSegment& seg : plan) {
    total += seg.end_sec - seg.start_sec;
  }
  return total;
}

size_t ResumeIndexAfterSwitch(const std::vector<PlaybackSegment>& new_plan,
                              double original_sec) {
  for (size_t i = 0; i < new_plan.size(); ++i) {
    if (new_plan[i].end_sec > original_sec) return i;
  }
  return new_plan.empty() ? 0 : new_plan.size() - 1;
}

}  // namespace classminer::skim

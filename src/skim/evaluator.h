#ifndef CLASSMINER_SKIM_EVALUATOR_H_
#define CLASSMINER_SKIM_EVALUATOR_H_

#include "skim/skimmer.h"
#include "structure/types.h"
#include "synth/ground_truth.h"

namespace classminer::skim {

// Programmatic stand-in for the paper's five-student study (Fig. 14). The
// three questionnaire items are operationalised against scripted ground
// truth, each mapped to the paper's 0-5 scale:
//   Q1 "addresses the main topic"  -> fraction of distinct ground-truth
//      topics represented by at least one skim shot, times 5.
//   Q2 "covers the scenarios"      -> fraction of ground-truth scenes
//      represented by at least one skim shot, times 5.
//   Q3 "is the summary concise"    -> anti-redundancy: sqrt(distinct scenes
//      represented / skim shot count), times 5 (a skim that replays many
//      shots of the same scene scores low).
struct SkimScores {
  double q1 = 0.0;
  double q2 = 0.0;
  double q3 = 0.0;
};

SkimScores EvaluateSkimLevel(const ScalableSkim& skim, int level,
                             const synth::GroundTruth& truth);

// Average scores over several videos' skims at the same level.
SkimScores AverageScores(const std::vector<SkimScores>& scores);

}  // namespace classminer::skim

#endif  // CLASSMINER_SKIM_EVALUATOR_H_

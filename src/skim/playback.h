#ifndef CLASSMINER_SKIM_PLAYBACK_H_
#define CLASSMINER_SKIM_PLAYBACK_H_

#include <vector>

#include "skim/skimmer.h"

namespace classminer::skim {

// One played segment of a skim: the shot's span in the original timeline.
struct PlaybackSegment {
  int shot_index = -1;
  double start_sec = 0.0;  // position in the original video
  double end_sec = 0.0;
  double scroll_position = 0.0;  // fast-access bar position in [0, 1]
};

// The playback model of the Fig. 11 tool: while a skim level plays, only
// its selected shots are shown and all others are skipped.
std::vector<PlaybackSegment> BuildPlaybackPlan(const ScalableSkim& skim,
                                               int level, double fps);

// Total played seconds of a plan.
double PlanDurationSeconds(const std::vector<PlaybackSegment>& plan);

// The "skimming level switcher": when the user changes levels while at
// `original_sec` of the source timeline, playback resumes at the first
// segment of the new plan that starts at or after that position (or the
// last segment when none does). Returns the segment index.
size_t ResumeIndexAfterSwitch(const std::vector<PlaybackSegment>& new_plan,
                              double original_sec);

}  // namespace classminer::skim

#endif  // CLASSMINER_SKIM_PLAYBACK_H_

#include "skim/storyboard.h"

#include <algorithm>

#include "media/draw.h"
#include "media/ppm.h"

namespace classminer::skim {
namespace {

// Tile border colours, matching the HTML colour bar (summary.cc).
media::Rgb EventRgb(events::EventType type) {
  switch (type) {
    case events::EventType::kPresentation:
      return {0x3b, 0x6f, 0xd4};
    case events::EventType::kDialog:
      return {0x3d, 0xa7, 0x5a};
    case events::EventType::kClinicalOperation:
      return {0xc8, 0x4b, 0x42};
    case events::EventType::kUndetermined:
      return {0x9a, 0x9a, 0x9a};
  }
  return {0x9a, 0x9a, 0x9a};
}

events::EventType EventOfShot(const structure::ContentStructure& cs,
                              const std::vector<events::EventRecord>& events,
                              int shot_index) {
  for (const structure::Scene& scene : cs.scenes) {
    const structure::Group& first =
        cs.groups[static_cast<size_t>(scene.start_group)];
    const structure::Group& last =
        cs.groups[static_cast<size_t>(scene.end_group)];
    if (shot_index < first.start_shot || shot_index > last.end_shot) continue;
    if (scene.eliminated) return events::EventType::kUndetermined;
    for (const events::EventRecord& rec : events) {
      if (rec.scene_index == scene.index) return rec.type;
    }
  }
  return events::EventType::kUndetermined;
}

}  // namespace

media::Image RenderStoryboard(const ScalableSkim& skim, int level,
                              const media::Video& video,
                              const std::vector<events::EventRecord>& events,
                              const StoryboardOptions& options) {
  const SkimTrack& track = skim.track(level);
  if (track.shot_indices.empty()) return media::Image();
  const structure::ContentStructure& cs = *skim.structure();

  const int cols =
      std::min<int>(std::max(1, options.columns),
                    static_cast<int>(track.shot_indices.size()));
  const int rows =
      (static_cast<int>(track.shot_indices.size()) + cols - 1) / cols;
  const int cell_w = options.tile_width + 2 * options.border;
  const int cell_h = options.tile_height + 2 * options.border;
  const int sheet_w = cols * cell_w + (cols + 1) * options.gutter;
  const int sheet_h = rows * cell_h + (rows + 1) * options.gutter;

  media::Image sheet(sheet_w, sheet_h, media::Rgb{24, 24, 28});
  for (size_t i = 0; i < track.shot_indices.size(); ++i) {
    const int shot_index = track.shot_indices[i];
    const shot::Shot& s = cs.shots[static_cast<size_t>(shot_index)];
    if (s.rep_frame < 0 || s.rep_frame >= video.frame_count()) continue;

    const int col = static_cast<int>(i) % cols;
    const int row = static_cast<int>(i) / cols;
    const int x0 = options.gutter + col * (cell_w + options.gutter);
    const int y0 = options.gutter + row * (cell_h + options.gutter);

    // Event-coloured border, then the resized representative frame.
    media::FillRect(&sheet, x0, y0, cell_w, cell_h,
                    EventRgb(EventOfShot(cs, events, shot_index)));
    const media::Image tile = video.frame(s.rep_frame)
                                  .Resized(options.tile_width,
                                           options.tile_height);
    for (int y = 0; y < tile.height(); ++y) {
      for (int x = 0; x < tile.width(); ++x) {
        sheet.set(x0 + options.border + x, y0 + options.border + y,
                  tile.at(x, y));
      }
    }
  }
  return sheet;
}

media::Image RenderStoryboard(const ScalableSkim& skim, int level,
                              const media::Video& video,
                              const std::vector<events::EventRecord>& events) {
  return RenderStoryboard(skim, level, video, events, StoryboardOptions());
}

util::Status ExportStoryboard(const ScalableSkim& skim, int level,
                              const media::Video& video,
                              const std::vector<events::EventRecord>& events,
                              const std::string& path) {
  const media::Image sheet =
      RenderStoryboard(skim, level, video, events, StoryboardOptions());
  if (sheet.empty()) {
    return util::Status::FailedPrecondition("empty skim track");
  }
  return media::WritePpm(sheet, path);
}

}  // namespace classminer::skim

#ifndef CLASSMINER_SKIM_SKIMMER_H_
#define CLASSMINER_SKIM_SKIMMER_H_

#include <vector>

#include "structure/types.h"
#include "util/exec_context.h"

namespace classminer::skim {

// The four skim layers (paper Sec. 5): level 1 = all shots (finest) up to
// level 4 = representative shots of clustered scenes (coarsest).
inline constexpr int kSkimLevels = 4;

struct SkimTrack {
  int level = 1;
  std::vector<int> shot_indices;  // ascending; the shots that get played
  long frame_count = 0;           // total frames across the track's shots
};

// A scalable skim over one video's content structure.
class ScalableSkim {
 public:
  // Builds all four levels from a mined structure. The context overload
  // records one "skim" row (items = shots considered) into the context's
  // metrics registry, extending the pipeline's per-stage cost table through
  // the skim layer.
  explicit ScalableSkim(const structure::ContentStructure* structure);
  ScalableSkim(const structure::ContentStructure* structure,
               const util::ExecutionContext& ctx);

  const SkimTrack& track(int level) const {
    return tracks_[static_cast<size_t>(level - 1)];
  }

  // Frame compression ratio (Fig. 15): frames at `level` / all frames.
  double Fcr(int level) const;

  long total_frames() const { return total_frames_; }

  const structure::ContentStructure* structure() const { return structure_; }

  // Position of the scroll-bar tag (fraction of the full video) for the
  // i-th skimming shot at `level` — the fast-access toolbar model.
  double ScrollPosition(int level, int track_position) const;

 private:
  const structure::ContentStructure* structure_;
  SkimTrack tracks_[kSkimLevels];
  long total_frames_ = 0;
};

}  // namespace classminer::skim

#endif  // CLASSMINER_SKIM_SKIMMER_H_

#include "skim/evaluator.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace classminer::skim {
namespace {

// Ground-truth shot index containing the given frame; -1 when outside.
int TruthShotOfFrame(const synth::GroundTruth& truth, int frame) {
  for (const synth::ShotTruth& s : truth.shots) {
    if (frame >= s.start_frame && frame <= s.end_frame) return s.index;
  }
  return -1;
}

}  // namespace

SkimScores EvaluateSkimLevel(const ScalableSkim& skim, int level,
                             const synth::GroundTruth& truth) {
  SkimScores scores;
  const SkimTrack& track = skim.track(level);
  if (track.shot_indices.empty() || truth.scenes.empty()) return scores;
  const structure::ContentStructure& cs = *skim.structure();

  // Skim shots are *detected* shots; bridge to the scripted truth through
  // frame positions (a skim shot covers a truth scene when its
  // representative frame lies inside that scene).
  std::set<int> all_topics;
  for (const synth::SceneTruth& s : truth.scenes) all_topics.insert(s.topic_id);

  std::set<int> covered_scenes;
  std::set<int> covered_topics;
  for (int shot_index : track.shot_indices) {
    const shot::Shot& s = cs.shots[static_cast<size_t>(shot_index)];
    const int truth_shot = TruthShotOfFrame(truth, s.rep_frame);
    if (truth_shot < 0) continue;
    const int scene = truth.SceneOfShot(truth_shot);
    if (scene < 0) continue;
    covered_scenes.insert(scene);
    covered_topics.insert(truth.scenes[static_cast<size_t>(scene)].topic_id);
  }

  const double topic_cov = static_cast<double>(covered_topics.size()) /
                           static_cast<double>(all_topics.size());
  const double scene_cov = static_cast<double>(covered_scenes.size()) /
                           static_cast<double>(truth.scenes.size());
  // Conciseness: replaying many shots per represented scene reads as
  // redundant; sqrt softens the penalty to the paper's 0-5 spread.
  const double redundancy_base =
      static_cast<double>(covered_scenes.size()) /
      static_cast<double>(track.shot_indices.size());

  scores.q1 = 5.0 * topic_cov;
  scores.q2 = 5.0 * scene_cov;
  scores.q3 = 5.0 * std::sqrt(std::min(1.0, redundancy_base));
  return scores;
}

SkimScores AverageScores(const std::vector<SkimScores>& scores) {
  SkimScores avg;
  if (scores.empty()) return avg;
  for (const SkimScores& s : scores) {
    avg.q1 += s.q1;
    avg.q2 += s.q2;
    avg.q3 += s.q3;
  }
  const double n = static_cast<double>(scores.size());
  avg.q1 /= n;
  avg.q2 /= n;
  avg.q3 /= n;
  return avg;
}

}  // namespace classminer::skim

#include "skim/skimmer.h"

#include <algorithm>
#include <set>

namespace classminer::skim {
namespace {

// Representative shots of a group: one per internal cluster.
void AddGroupReps(const structure::Group& group, std::set<int>* shots) {
  for (int rep : group.rep_shots) {
    if (rep >= 0) shots->insert(rep);
  }
}

}  // namespace

ScalableSkim::ScalableSkim(const structure::ContentStructure* structure)
    : ScalableSkim(structure, util::ExecutionContext()) {}

ScalableSkim::ScalableSkim(const structure::ContentStructure* structure,
                           const util::ExecutionContext& ctx)
    : structure_(structure) {
  util::StageTimer timer(ctx.metrics(), "skim", ctx.thread_count());
  timer.set_items(static_cast<int64_t>(structure->shots.size()));
  for (const shot::Shot& s : structure->shots) total_frames_ += s.frame_count();

  // Level 1: every shot.
  std::set<int> level1;
  for (const shot::Shot& s : structure->shots) level1.insert(s.index);

  // Level 2: representative shots of all groups.
  std::set<int> level2;
  for (const structure::Group& g : structure->groups) {
    AddGroupReps(g, &level2);
  }

  // Level 3: representative shots of each active scene's representative
  // group.
  std::set<int> level3;
  for (const structure::Scene& scene : structure->scenes) {
    if (scene.eliminated || scene.rep_group < 0) continue;
    AddGroupReps(structure->groups[static_cast<size_t>(scene.rep_group)],
                 &level3);
  }

  // Level 4: representative shots of each clustered scene's centroid group.
  std::set<int> level4;
  for (const structure::SceneCluster& cluster : structure->clustered_scenes) {
    if (cluster.rep_group < 0) continue;
    AddGroupReps(structure->groups[static_cast<size_t>(cluster.rep_group)],
                 &level4);
  }

  const std::set<int>* sets[kSkimLevels] = {&level1, &level2, &level3,
                                            &level4};
  for (int lvl = 0; lvl < kSkimLevels; ++lvl) {
    SkimTrack& t = tracks_[static_cast<size_t>(lvl)];
    t.level = lvl + 1;
    t.shot_indices.assign(sets[lvl]->begin(), sets[lvl]->end());
    t.frame_count = 0;
    for (int s : t.shot_indices) {
      t.frame_count += structure->shots[static_cast<size_t>(s)].frame_count();
    }
  }
}

double ScalableSkim::Fcr(int level) const {
  if (total_frames_ <= 0) return 0.0;
  return static_cast<double>(track(level).frame_count) /
         static_cast<double>(total_frames_);
}

double ScalableSkim::ScrollPosition(int level, int track_position) const {
  const SkimTrack& t = track(level);
  if (t.shot_indices.empty() || total_frames_ <= 0) return 0.0;
  const int pos = std::clamp(track_position, 0,
                             static_cast<int>(t.shot_indices.size()) - 1);
  const shot::Shot& s =
      structure_->shots[static_cast<size_t>(t.shot_indices[static_cast<size_t>(pos)])];
  return static_cast<double>(s.start_frame) /
         static_cast<double>(total_frames_);
}

}  // namespace classminer::skim

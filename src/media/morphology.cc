#include "media/morphology.h"

namespace classminer::media {
namespace {

enum class Op { kErode, kDilate };

GrayImage Apply(const GrayImage& mask, int radius, Op op) {
  const int w = mask.width();
  const int h = mask.height();
  GrayImage out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      bool hit = (op == Op::kErode);
      for (int dy = -radius; dy <= radius && (op == Op::kErode ? hit : !hit);
           ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          const int nx = x + dx;
          const int ny = y + dy;
          const bool fg =
              mask.Contains(nx, ny) ? mask.at(nx, ny) > 0 : false;
          if (op == Op::kErode) {
            if (!fg) {
              hit = false;
              break;
            }
          } else {
            if (fg) {
              hit = true;
              break;
            }
          }
        }
      }
      out.set(x, y, hit ? 255 : 0);
    }
  }
  return out;
}

}  // namespace

GrayImage Erode(const GrayImage& mask, int radius) {
  return Apply(mask, radius, Op::kErode);
}

GrayImage Dilate(const GrayImage& mask, int radius) {
  return Apply(mask, radius, Op::kDilate);
}

GrayImage Open(const GrayImage& mask, int radius) {
  return Dilate(Erode(mask, radius), radius);
}

GrayImage Close(const GrayImage& mask, int radius) {
  return Erode(Dilate(mask, radius), radius);
}

}  // namespace classminer::media

#ifndef CLASSMINER_MEDIA_PPM_H_
#define CLASSMINER_MEDIA_PPM_H_

#include <string>

#include "media/image.h"
#include "util/status.h"

namespace classminer::media {

// Binary PPM (P6) image I/O — the portable way to inspect frames,
// representative shots and cue masks with any image viewer.

util::Status WritePpm(const Image& image, const std::string& path);
util::StatusOr<Image> ReadPpm(const std::string& path);

// Writes a GrayImage as a P6 file (replicated channels).
util::Status WritePpm(const GrayImage& image, const std::string& path);

}  // namespace classminer::media

#endif  // CLASSMINER_MEDIA_PPM_H_

#include "media/color.h"

#include <algorithm>
#include <cmath>

namespace classminer::media {

Hsv RgbToHsv(Rgb c) {
  const double r = c.r / 255.0;
  const double g = c.g / 255.0;
  const double b = c.b / 255.0;
  const double mx = std::max({r, g, b});
  const double mn = std::min({r, g, b});
  const double delta = mx - mn;

  Hsv out;
  out.v = mx;
  out.s = (mx > 0.0) ? delta / mx : 0.0;
  if (delta <= 1e-12) {
    out.h = 0.0;
  } else if (mx == r) {
    out.h = 60.0 * std::fmod((g - b) / delta, 6.0);
  } else if (mx == g) {
    out.h = 60.0 * ((b - r) / delta + 2.0);
  } else {
    out.h = 60.0 * ((r - g) / delta + 4.0);
  }
  if (out.h < 0.0) out.h += 360.0;
  return out;
}

Rgb HsvToRgb(const Hsv& c) {
  const double h = std::fmod(std::fmod(c.h, 360.0) + 360.0, 360.0);
  const double s = std::clamp(c.s, 0.0, 1.0);
  const double v = std::clamp(c.v, 0.0, 1.0);
  const double cc = v * s;
  const double x = cc * (1.0 - std::fabs(std::fmod(h / 60.0, 2.0) - 1.0));
  const double m = v - cc;
  double r = 0.0, g = 0.0, b = 0.0;
  if (h < 60.0) {
    r = cc, g = x;
  } else if (h < 120.0) {
    r = x, g = cc;
  } else if (h < 180.0) {
    g = cc, b = x;
  } else if (h < 240.0) {
    g = x, b = cc;
  } else if (h < 300.0) {
    r = x, b = cc;
  } else {
    r = cc, b = x;
  }
  auto to8 = [m](double u) {
    return static_cast<uint8_t>(std::lround(std::clamp(u + m, 0.0, 1.0) * 255.0));
  };
  return Rgb{to8(r), to8(g), to8(b)};
}

uint8_t Luma(Rgb c) {
  const double y = 0.299 * c.r + 0.587 * c.g + 0.114 * c.b;
  return static_cast<uint8_t>(std::lround(std::clamp(y, 0.0, 255.0)));
}

GrayImage ToGray(const Image& image) {
  GrayImage out(image.width(), image.height());
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      out.set(x, y, Luma(image.at(x, y)));
    }
  }
  return out;
}

bool IsGrayish(Rgb c, int tolerance) {
  const int mx = std::max({c.r, c.g, c.b});
  const int mn = std::min({c.r, c.g, c.b});
  return mx - mn <= tolerance;
}

}  // namespace classminer::media

#include "media/image.h"

namespace classminer::media {

Image::Image(int width, int height, Rgb fill)
    : width_(width > 0 ? width : 0),
      height_(height > 0 ? height : 0),
      pixels_(static_cast<size_t>(width_) * static_cast<size_t>(height_),
              fill) {}

Image Image::Resized(int new_width, int new_height) const {
  if (new_width <= 0 || new_height <= 0 || empty()) return Image();
  Image out(new_width, new_height);
  for (int y = 0; y < new_height; ++y) {
    const int sy = y * height_ / new_height;
    for (int x = 0; x < new_width; ++x) {
      const int sx = x * width_ / new_width;
      out.set(x, y, at(sx, sy));
    }
  }
  return out;
}

GrayImage::GrayImage(int width, int height, uint8_t fill)
    : width_(width > 0 ? width : 0),
      height_(height > 0 ? height : 0),
      pixels_(static_cast<size_t>(width_) * static_cast<size_t>(height_),
              fill) {}

double GrayImage::CoverageFraction() const {
  if (empty()) return 0.0;
  size_t on = 0;
  for (uint8_t v : pixels_) {
    if (v > 0) ++on;
  }
  return static_cast<double>(on) / static_cast<double>(pixels_.size());
}

}  // namespace classminer::media

#ifndef CLASSMINER_MEDIA_VIDEO_H_
#define CLASSMINER_MEDIA_VIDEO_H_

#include <string>
#include <vector>

#include "media/image.h"

namespace classminer::media {

// An in-memory decoded video: a sequence of equally-sized frames at a fixed
// frame rate. Large corpora are held compressed (codec::CmvFile) and decoded
// per-window; Video is the working representation inside the pipeline.
class Video {
 public:
  Video() = default;
  Video(std::string name, double fps) : name_(std::move(name)), fps_(fps) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  double fps() const { return fps_; }
  void set_fps(double fps) { fps_ = fps; }

  int frame_count() const { return static_cast<int>(frames_.size()); }
  bool empty() const { return frames_.empty(); }

  int width() const { return frames_.empty() ? 0 : frames_.front().width(); }
  int height() const {
    return frames_.empty() ? 0 : frames_.front().height();
  }

  double DurationSeconds() const {
    return fps_ > 0.0 ? frame_count() / fps_ : 0.0;
  }

  const Image& frame(int index) const { return frames_[index]; }
  Image& frame(int index) { return frames_[index]; }

  void AppendFrame(Image frame) { frames_.push_back(std::move(frame)); }
  void Reserve(size_t n) { frames_.reserve(n); }

  const std::vector<Image>& frames() const { return frames_; }

 private:
  std::string name_;
  double fps_ = 25.0;
  std::vector<Image> frames_;
};

}  // namespace classminer::media

#endif  // CLASSMINER_MEDIA_VIDEO_H_

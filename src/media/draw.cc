#include "media/draw.h"

#include <algorithm>
#include <cmath>

namespace classminer::media {

void FillRect(Image* image, int x0, int y0, int w, int h, Rgb color) {
  const int x1 = std::min(image->width(), x0 + w);
  const int y1 = std::min(image->height(), y0 + h);
  for (int y = std::max(0, y0); y < y1; ++y) {
    for (int x = std::max(0, x0); x < x1; ++x) image->set(x, y, color);
  }
}

void FillEllipse(Image* image, int cx, int cy, int rx, int ry, Rgb color) {
  if (rx <= 0 || ry <= 0) return;
  const int y0 = std::max(0, cy - ry);
  const int y1 = std::min(image->height() - 1, cy + ry);
  for (int y = y0; y <= y1; ++y) {
    const double dy = static_cast<double>(y - cy) / ry;
    const double span = 1.0 - dy * dy;
    if (span < 0.0) continue;
    const int half = static_cast<int>(std::floor(rx * std::sqrt(span)));
    const int x0 = std::max(0, cx - half);
    const int x1 = std::min(image->width() - 1, cx + half);
    for (int x = x0; x <= x1; ++x) image->set(x, y, color);
  }
}

void FillGradient(Image* image, Rgb top, Rgb bottom) {
  const int h = image->height();
  for (int y = 0; y < h; ++y) {
    const double t = (h > 1) ? static_cast<double>(y) / (h - 1) : 0.0;
    const Rgb c{
        static_cast<uint8_t>(top.r + t * (bottom.r - top.r)),
        static_cast<uint8_t>(top.g + t * (bottom.g - top.g)),
        static_cast<uint8_t>(top.b + t * (bottom.b - top.b))};
    for (int x = 0; x < image->width(); ++x) image->set(x, y, c);
  }
}

void DrawHLine(Image* image, int x0, int x1, int y, Rgb color) {
  if (y < 0 || y >= image->height()) return;
  for (int x = std::max(0, x0); x <= std::min(image->width() - 1, x1); ++x) {
    image->set(x, y, color);
  }
}

void DrawVLine(Image* image, int x, int y0, int y1, Rgb color) {
  if (x < 0 || x >= image->width()) return;
  for (int y = std::max(0, y0); y <= std::min(image->height() - 1, y1); ++y) {
    image->set(x, y, color);
  }
}

void DrawTextLine(Image* image, int x, int y, int width, int glyph_h,
                  Rgb color, util::Rng* rng) {
  int cx = x;
  const int x_end = std::min(image->width() - 1, x + width);
  while (cx < x_end) {
    const int word = rng->UniformInt(4, 14);
    FillRect(image, cx, y, std::min(word, x_end - cx), glyph_h, color);
    cx += word + rng->UniformInt(2, 5);
  }
}

void AddNoise(Image* image, int amplitude, util::Rng* rng) {
  if (amplitude <= 0) return;
  for (Rgb& p : image->pixels()) {
    auto jitter = [&](uint8_t v) {
      const int n = rng->UniformInt(-amplitude, amplitude);
      return static_cast<uint8_t>(std::clamp(static_cast<int>(v) + n, 0, 255));
    };
    p = Rgb{jitter(p.r), jitter(p.g), jitter(p.b)};
  }
}

Image Translated(const Image& image, int dx, int dy) {
  Image out(image.width(), image.height());
  for (int y = 0; y < image.height(); ++y) {
    const int sy = std::clamp(y - dy, 0, image.height() - 1);
    for (int x = 0; x < image.width(); ++x) {
      const int sx = std::clamp(x - dx, 0, image.width() - 1);
      out.set(x, y, image.at(sx, sy));
    }
  }
  return out;
}

Image Blend(const Image& a, const Image& b, double alpha) {
  const int w = std::min(a.width(), b.width());
  const int h = std::min(a.height(), b.height());
  Image out(w, h);
  alpha = std::clamp(alpha, 0.0, 1.0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const Rgb pa = a.at(x, y);
      const Rgb pb = b.at(x, y);
      auto mix = [alpha](uint8_t ca, uint8_t cb) {
        return static_cast<uint8_t>(
            std::lround(alpha * ca + (1.0 - alpha) * cb));
      };
      out.set(x, y, Rgb{mix(pa.r, pb.r), mix(pa.g, pb.g), mix(pa.b, pb.b)});
    }
  }
  return out;
}

void ScaleBrightness(Image* image, double factor) {
  for (Rgb& p : image->pixels()) {
    auto scale = [factor](uint8_t v) {
      return static_cast<uint8_t>(
          std::clamp(std::lround(v * factor), 0L, 255L));
    };
    p = Rgb{scale(p.r), scale(p.g), scale(p.b)};
  }
}

}  // namespace classminer::media

#include "media/ppm.h"

#include <cctype>
#include <cstdio>

#include "util/serial.h"

namespace classminer::media {
namespace {

// Reads one whitespace/comment-delimited ASCII integer from the header.
util::StatusOr<int> ReadHeaderInt(const std::vector<uint8_t>& bytes,
                                  size_t* pos) {
  // Skip whitespace and comments.
  while (*pos < bytes.size()) {
    const char c = static_cast<char>(bytes[*pos]);
    if (c == '#') {
      while (*pos < bytes.size() && bytes[*pos] != '\n') ++*pos;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++*pos;
    } else {
      break;
    }
  }
  int value = 0;
  bool any = false;
  while (*pos < bytes.size() &&
         std::isdigit(static_cast<unsigned char>(bytes[*pos]))) {
    value = value * 10 + (bytes[*pos] - '0');
    any = true;
    ++*pos;
  }
  if (!any) return util::Status::DataLoss("malformed PPM header");
  return value;
}

}  // namespace

util::Status WritePpm(const Image& image, const std::string& path) {
  char header[64];
  const int n = std::snprintf(header, sizeof(header), "P6\n%d %d\n255\n",
                              image.width(), image.height());
  std::vector<uint8_t> bytes(header, header + n);
  bytes.reserve(bytes.size() + image.pixel_count() * 3);
  for (const Rgb& p : image.pixels()) {
    bytes.push_back(p.r);
    bytes.push_back(p.g);
    bytes.push_back(p.b);
  }
  return util::WriteFile(path, bytes);
}

util::Status WritePpm(const GrayImage& image, const std::string& path) {
  Image rgb(image.width(), image.height());
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const uint8_t v = image.at(x, y);
      rgb.set(x, y, Rgb{v, v, v});
    }
  }
  return WritePpm(rgb, path);
}

util::StatusOr<Image> ReadPpm(const std::string& path) {
  util::StatusOr<std::vector<uint8_t>> bytes = util::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  if (bytes->size() < 2 || (*bytes)[0] != 'P' || (*bytes)[1] != '6') {
    return util::Status::DataLoss("not a binary PPM (P6) file");
  }
  size_t pos = 2;
  util::StatusOr<int> width = ReadHeaderInt(*bytes, &pos);
  if (!width.ok()) return width.status();
  util::StatusOr<int> height = ReadHeaderInt(*bytes, &pos);
  if (!height.ok()) return height.status();
  util::StatusOr<int> maxval = ReadHeaderInt(*bytes, &pos);
  if (!maxval.ok()) return maxval.status();
  if (*maxval != 255) {
    return util::Status::Unimplemented("only maxval 255 PPM is supported");
  }
  ++pos;  // single whitespace after maxval
  const size_t need = static_cast<size_t>(*width) * static_cast<size_t>(*height) * 3;
  if (bytes->size() < pos + need) {
    return util::Status::DataLoss("PPM pixel data truncated");
  }
  Image image(*width, *height);
  size_t i = pos;
  for (Rgb& p : image.pixels()) {
    p = Rgb{(*bytes)[i], (*bytes)[i + 1], (*bytes)[i + 2]};
    i += 3;
  }
  return image;
}

}  // namespace classminer::media

#ifndef CLASSMINER_MEDIA_IMAGE_H_
#define CLASSMINER_MEDIA_IMAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace classminer::media {

// 8-bit RGB pixel.
struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  friend bool operator==(const Rgb&, const Rgb&) = default;
};

// Interleaved 8-bit RGB raster image. Copyable; frames are small
// (database-scale videos are stored compressed by the codec module).
class Image {
 public:
  Image() : width_(0), height_(0) {}
  Image(int width, int height, Rgb fill = Rgb{0, 0, 0});

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }
  size_t pixel_count() const {
    return static_cast<size_t>(width_) * static_cast<size_t>(height_);
  }

  Rgb at(int x, int y) const { return pixels_[Index(x, y)]; }
  void set(int x, int y, Rgb c) { pixels_[Index(x, y)] = c; }

  bool Contains(int x, int y) const {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }

  const std::vector<Rgb>& pixels() const { return pixels_; }
  std::vector<Rgb>& pixels() { return pixels_; }

  // Nearest-neighbour resize; returns an empty image for non-positive dims.
  Image Resized(int new_width, int new_height) const;

  friend bool operator==(const Image& a, const Image& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.pixels_ == b.pixels_;
  }

 private:
  size_t Index(int x, int y) const {
    return static_cast<size_t>(y) * static_cast<size_t>(width_) +
           static_cast<size_t>(x);
  }

  int width_;
  int height_;
  std::vector<Rgb> pixels_;
};

// Single-channel 8-bit raster, used for grey images, masks and label maps.
class GrayImage {
 public:
  GrayImage() : width_(0), height_(0) {}
  GrayImage(int width, int height, uint8_t fill = 0);

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }
  size_t pixel_count() const {
    return static_cast<size_t>(width_) * static_cast<size_t>(height_);
  }

  uint8_t at(int x, int y) const { return pixels_[Index(x, y)]; }
  void set(int x, int y, uint8_t v) { pixels_[Index(x, y)] = v; }

  bool Contains(int x, int y) const {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }

  const std::vector<uint8_t>& pixels() const { return pixels_; }
  std::vector<uint8_t>& pixels() { return pixels_; }

  // Fraction of pixels with value > 0.
  double CoverageFraction() const;

  friend bool operator==(const GrayImage& a, const GrayImage& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.pixels_ == b.pixels_;
  }

 private:
  size_t Index(int x, int y) const {
    return static_cast<size_t>(y) * static_cast<size_t>(width_) +
           static_cast<size_t>(x);
  }

  int width_;
  int height_;
  std::vector<uint8_t> pixels_;
};

}  // namespace classminer::media

#endif  // CLASSMINER_MEDIA_IMAGE_H_

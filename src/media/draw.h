#ifndef CLASSMINER_MEDIA_DRAW_H_
#define CLASSMINER_MEDIA_DRAW_H_

#include "media/image.h"
#include "util/rng.h"

namespace classminer::media {

// Drawing primitives used by the synthetic video generator. All clip to the
// image bounds.

void FillRect(Image* image, int x0, int y0, int w, int h, Rgb color);

void FillEllipse(Image* image, int cx, int cy, int rx, int ry, Rgb color);

// Vertical linear gradient from `top` to `bottom` over the whole image.
void FillGradient(Image* image, Rgb top, Rgb bottom);

// Axis-aligned 1px-thick line segments (used for sketch/clip-art frames).
void DrawHLine(Image* image, int x0, int x1, int y, Rgb color);
void DrawVLine(Image* image, int x, int y0, int y1, Rgb color);

// Blocky pseudo-text: rows of short dark dashes, as slide "text lines".
void DrawTextLine(Image* image, int x, int y, int width, int glyph_h,
                  Rgb color, util::Rng* rng);

// Adds per-pixel uniform noise in [-amplitude, amplitude] to each channel.
void AddNoise(Image* image, int amplitude, util::Rng* rng);

// Translates image content by (dx, dy), filling exposed border with edge
// pixels; simulates small camera motion within a shot.
Image Translated(const Image& image, int dx, int dy);

// Per-channel scale toward darker/brighter; factor 1.0 = identity.
void ScaleBrightness(Image* image, double factor);

// Per-pixel blend: alpha * a + (1 - alpha) * b, sizes must match
// (mismatches blend the overlapping region of the two). Used for dissolve
// transitions in the synthetic generator.
Image Blend(const Image& a, const Image& b, double alpha);

}  // namespace classminer::media

#endif  // CLASSMINER_MEDIA_DRAW_H_

#ifndef CLASSMINER_MEDIA_REGION_H_
#define CLASSMINER_MEDIA_REGION_H_

#include <vector>

#include "media/image.h"

namespace classminer::media {

// A connected region extracted from a binary mask, with the shape
// statistics used by the cue detectors (Sec. 4.1 "general shape analysis").
struct Region {
  int min_x = 0;
  int min_y = 0;
  int max_x = 0;
  int max_y = 0;
  int area = 0;        // pixel count
  double centroid_x = 0.0;
  double centroid_y = 0.0;

  int width() const { return max_x - min_x + 1; }
  int height() const { return max_y - min_y + 1; }
  // Bounding-box fill ratio in (0, 1]; ~pi/4 for an ellipse.
  double Solidity() const {
    const double box = static_cast<double>(width()) * height();
    return box > 0.0 ? area / box : 0.0;
  }
  double AspectRatio() const {
    return height() > 0 ? static_cast<double>(width()) / height() : 0.0;
  }
  // Area relative to a frame of the given size.
  double AreaFraction(int frame_w, int frame_h) const {
    const double total = static_cast<double>(frame_w) * frame_h;
    return total > 0.0 ? area / total : 0.0;
  }
};

// 4-connected component labelling of mask pixels > 0. Regions smaller than
// `min_area` pixels are dropped. Returned regions are ordered by decreasing
// area.
std::vector<Region> ConnectedComponents(const GrayImage& mask,
                                        int min_area = 1);

// Keeps only regions with "considerable width and height" (paper Sec. 4.1):
// both bounding-box sides at least `min_side_frac` of the corresponding
// frame side.
std::vector<Region> FilterBySize(const std::vector<Region>& regions,
                                 int frame_w, int frame_h,
                                 double min_side_frac);

}  // namespace classminer::media

#endif  // CLASSMINER_MEDIA_REGION_H_

#include "media/region.h"

#include <algorithm>
#include <queue>

namespace classminer::media {

std::vector<Region> ConnectedComponents(const GrayImage& mask, int min_area) {
  std::vector<Region> regions;
  if (mask.empty()) return regions;
  const int w = mask.width();
  const int h = mask.height();
  std::vector<uint8_t> visited(static_cast<size_t>(w) * h, 0);

  auto idx = [w](int x, int y) {
    return static_cast<size_t>(y) * static_cast<size_t>(w) +
           static_cast<size_t>(x);
  };

  for (int sy = 0; sy < h; ++sy) {
    for (int sx = 0; sx < w; ++sx) {
      if (mask.at(sx, sy) == 0 || visited[idx(sx, sy)]) continue;
      Region region;
      region.min_x = region.max_x = sx;
      region.min_y = region.max_y = sy;
      double sum_x = 0.0, sum_y = 0.0;

      std::queue<std::pair<int, int>> frontier;
      frontier.push({sx, sy});
      visited[idx(sx, sy)] = 1;
      while (!frontier.empty()) {
        const auto [x, y] = frontier.front();
        frontier.pop();
        ++region.area;
        sum_x += x;
        sum_y += y;
        region.min_x = std::min(region.min_x, x);
        region.max_x = std::max(region.max_x, x);
        region.min_y = std::min(region.min_y, y);
        region.max_y = std::max(region.max_y, y);

        constexpr int kDx[] = {1, -1, 0, 0};
        constexpr int kDy[] = {0, 0, 1, -1};
        for (int d = 0; d < 4; ++d) {
          const int nx = x + kDx[d];
          const int ny = y + kDy[d];
          if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
          if (mask.at(nx, ny) == 0 || visited[idx(nx, ny)]) continue;
          visited[idx(nx, ny)] = 1;
          frontier.push({nx, ny});
        }
      }
      if (region.area >= min_area) {
        region.centroid_x = sum_x / region.area;
        region.centroid_y = sum_y / region.area;
        regions.push_back(region);
      }
    }
  }
  std::sort(regions.begin(), regions.end(),
            [](const Region& a, const Region& b) { return a.area > b.area; });
  return regions;
}

std::vector<Region> FilterBySize(const std::vector<Region>& regions,
                                 int frame_w, int frame_h,
                                 double min_side_frac) {
  std::vector<Region> out;
  for (const Region& r : regions) {
    if (r.width() >= min_side_frac * frame_w &&
        r.height() >= min_side_frac * frame_h) {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace classminer::media

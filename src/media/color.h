#ifndef CLASSMINER_MEDIA_COLOR_H_
#define CLASSMINER_MEDIA_COLOR_H_

#include "media/image.h"

namespace classminer::media {

// HSV triple with h in [0, 360), s and v in [0, 1].
struct Hsv {
  double h = 0.0;
  double s = 0.0;
  double v = 0.0;
};

// Converts an RGB pixel to HSV.
Hsv RgbToHsv(Rgb c);

// Converts an HSV triple (h in [0,360), s,v in [0,1]) to RGB.
Rgb HsvToRgb(const Hsv& c);

// Rec.601 luma in [0, 255].
uint8_t Luma(Rgb c);

// Whole-image grey conversion.
GrayImage ToGray(const Image& image);

// True when the pixel is near-greyscale (max channel spread <= tolerance).
bool IsGrayish(Rgb c, int tolerance = 24);

}  // namespace classminer::media

#endif  // CLASSMINER_MEDIA_COLOR_H_

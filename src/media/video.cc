#include "media/video.h"

// Video is header-only today; this translation unit anchors the library and
// keeps room for out-of-line growth (e.g. frame iterators over compressed
// sources).

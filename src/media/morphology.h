#ifndef CLASSMINER_MEDIA_MORPHOLOGY_H_
#define CLASSMINER_MEDIA_MORPHOLOGY_H_

#include "media/image.h"

namespace classminer::media {

// Binary morphology on masks (nonzero = foreground) with a square
// structuring element of side `2*radius + 1`. Used to clean skin/blood
// segmentation masks (paper Sec. 4.1).

GrayImage Erode(const GrayImage& mask, int radius = 1);
GrayImage Dilate(const GrayImage& mask, int radius = 1);
GrayImage Open(const GrayImage& mask, int radius = 1);   // erode then dilate
GrayImage Close(const GrayImage& mask, int radius = 1);  // dilate then erode

}  // namespace classminer::media

#endif  // CLASSMINER_MEDIA_MORPHOLOGY_H_

#include "synth/video_generator.h"

#include <algorithm>
#include <cmath>

#include "media/color.h"
#include "media/draw.h"
#include "synth/audio_generator.h"
#include "util/rng.h"

namespace classminer::synth {
namespace {

using media::Image;
using media::Rgb;

struct Palette {
  Rgb bg_top;
  Rgb bg_bottom;
  Rgb accent;
};

// Deterministic palette family per topic: a hue wheel position plus fixed
// lightness ramps. Topics far apart on the wheel look clearly different.
Palette TopicPalette(int topic_id) {
  double hue = std::fmod(47.0 + 67.0 * topic_id, 360.0);
  // Keep set dressing out of the flesh-chroma band (roughly 330..40
  // degrees) so backgrounds never read as skin to the region detectors.
  if (hue >= 330.0 || hue < 40.0) hue = std::fmod(hue + 70.0, 360.0);
  Palette p;
  p.bg_top = media::HsvToRgb({hue, 0.35, 0.55});
  p.bg_bottom = media::HsvToRgb({hue, 0.45, 0.30});
  p.accent = media::HsvToRgb({std::fmod(hue + 140.0, 360.0), 0.65, 0.75});
  return p;
}

// Skin tone within the detector's chroma model, varied slightly per person.
Rgb SkinTone(int person_id) {
  util::Rng rng(0xface + static_cast<uint64_t>(person_id) * 131ULL);
  const int base_r = rng.UniformInt(190, 215);
  const int base_g = rng.UniformInt(140, 158);
  const int base_b = rng.UniformInt(110, 128);
  return Rgb{static_cast<uint8_t>(base_r), static_cast<uint8_t>(base_g),
             static_cast<uint8_t>(base_b)};
}

constexpr Rgb kBlood{140, 45, 40};
constexpr Rgb kInk{40, 40, 48};
constexpr Rgb kSlideBg{235, 232, 224};

void DrawFace(Image* img, int cx, int cy, int rx, int ry, Rgb skin) {
  media::FillEllipse(img, cx, cy, rx, ry, skin);
  // Eyes: dark ellipses in the upper face band.
  const Rgb eye{30, 26, 24};
  const int eye_dy = -static_cast<int>(0.15 * ry);
  const int eye_dx = static_cast<int>(0.42 * rx);
  media::FillEllipse(img, cx - eye_dx, cy + eye_dy,
                     std::max(1, static_cast<int>(0.18 * rx)),
                     std::max(1, static_cast<int>(0.11 * ry)), eye);
  media::FillEllipse(img, cx + eye_dx, cy + eye_dy,
                     std::max(1, static_cast<int>(0.18 * rx)),
                     std::max(1, static_cast<int>(0.11 * ry)), eye);
  // Mouth: dark band in the lower face.
  const Rgb mouth{95, 42, 42};
  media::FillRect(img, cx - static_cast<int>(0.42 * rx),
                  cy + static_cast<int>(0.55 * ry),
                  static_cast<int>(0.84 * rx),
                  std::max(1, static_cast<int>(0.14 * ry)), mouth);
}

Image RenderSlide(int w, int h, int topic, util::Rng* rng) {
  Image img(w, h, kSlideBg);
  const Palette pal = TopicPalette(topic);
  media::FillRect(&img, 0, 0, w, h / 8, pal.accent);  // title bar
  // Title text on the bar, body text below.
  util::Rng text_rng = rng->Fork();
  media::DrawTextLine(&img, w / 12, h / 20, w / 2, 2, Rgb{250, 250, 250},
                      &text_rng);
  const int lines = 4 + text_rng.UniformInt(0, 2);
  for (int i = 0; i < lines; ++i) {
    media::DrawTextLine(&img, w / 10, h / 4 + i * h / 9, (w * 7) / 10, 2,
                        kInk, &text_rng);
  }
  return img;
}

Image RenderClipArt(int w, int h, int topic, util::Rng* rng) {
  Image img(w, h, Rgb{240, 240, 236});
  const Palette pal = TopicPalette(topic);
  // Diagram: coloured boxes joined by lines (an anatomy/flow figure).
  const int boxes = 3 + rng->UniformInt(0, 1);
  int prev_cx = -1, prev_cy = -1;
  for (int b = 0; b < boxes; ++b) {
    const int bw = w / 5;
    const int bh = h / 5;
    const int x = w / 10 + (b % 2) * (w / 2) + rng->UniformInt(0, w / 12);
    const int y = h / 10 + (b * h) / (boxes + 1);
    media::FillRect(&img, x, y, bw, bh, b % 2 == 0 ? pal.accent : pal.bg_top);
    const int cx = x + bw / 2;
    const int cy = y + bh / 2;
    if (prev_cx >= 0) {
      media::DrawHLine(&img, std::min(prev_cx, cx), std::max(prev_cx, cx),
                       prev_cy, kInk);
      media::DrawVLine(&img, cx, std::min(prev_cy, cy), std::max(prev_cy, cy),
                       kInk);
    }
    prev_cx = cx;
    prev_cy = cy;
  }
  return img;
}

Image RenderSketch(int w, int h, util::Rng* rng) {
  Image img(w, h, Rgb{248, 248, 246});
  const Rgb line{50, 50, 54};
  // Line drawing: concentric outlines plus annotation strokes.
  for (int ring = 0; ring < 3; ++ring) {
    const int rx = w / 3 - ring * w / 10;
    const int ry = h / 3 - ring * h / 10;
    // Outline ellipse: draw filled then punch the interior back out.
    media::FillEllipse(&img, w / 2, h / 2, rx, ry, line);
    media::FillEllipse(&img, w / 2, h / 2, rx - 1, ry - 1,
                       Rgb{248, 248, 246});
  }
  for (int i = 0; i < 4; ++i) {
    const int y = h / 8 + i * h / 6 + rng->UniformInt(-2, 2);
    media::DrawHLine(&img, (w * 3) / 4, w - w / 16, y, line);
  }
  return img;
}

Image RenderFaceShot(int w, int h, int topic, int person, double face_scale,
                     double x_frac, util::Rng* rng) {
  Image img(w, h);
  const Palette pal = TopicPalette(topic);
  media::FillGradient(&img, pal.bg_top, pal.bg_bottom);
  const Rgb skin = SkinTone(person);
  const int cx = static_cast<int>(x_frac * w) + rng->UniformInt(-2, 2);
  const int cy = static_cast<int>(0.42 * h);
  const int rx = static_cast<int>(0.24 * w * face_scale);
  const int ry = static_cast<int>(0.32 * h * face_scale);
  // Shoulders in clothing colour below the face.
  media::FillEllipse(&img, cx, cy + ry + h / 4, static_cast<int>(1.9 * rx),
                     h / 3, pal.accent);
  DrawFace(&img, cx, cy, rx, ry, skin);
  return img;
}

// Shared surgical-drape backdrop: every clinical shot of a scene sits on
// the same green drape, giving the scene the within-scene visual coherence
// real surgical footage has (and keeping it far from the dialog palette).
Image ClinicalBackdrop(int w, int h, int topic) {
  Image img(w, h);
  const int shade = 10 * (topic % 3);
  media::FillGradient(&img,
                      Rgb{46, static_cast<uint8_t>(110 + shade), 86},
                      Rgb{28, static_cast<uint8_t>(74 + shade), 58});
  return img;
}

Image RenderSkinCloseup(int w, int h, int topic, util::Rng* rng) {
  Image img = ClinicalBackdrop(w, h, topic);
  const Rgb skin = SkinTone(100 + topic);
  // Large examined skin area (arm / torso patch).
  media::FillEllipse(&img, w / 2 + rng->UniformInt(-3, 3), h / 2,
                     static_cast<int>(0.43 * w), static_cast<int>(0.40 * h),
                     skin);
  // Skin creases: slightly darker strokes.
  const Rgb crease{static_cast<uint8_t>(skin.r - 30),
                   static_cast<uint8_t>(skin.g - 25),
                   static_cast<uint8_t>(skin.b - 20)};
  for (int i = 0; i < 3; ++i) {
    const int y = h / 3 + i * h / 8 + rng->UniformInt(-1, 1);
    media::DrawHLine(&img, w / 3, (w * 2) / 3, y, crease);
  }
  return img;
}

Image RenderBloodShot(int w, int h, int topic, util::Rng* rng) {
  // Surgical field: tissue opening on the drape with an open blood-red
  // area and an instrument.
  Image img = ClinicalBackdrop(w, h, topic);
  const Rgb tissue = SkinTone(200 + topic);
  media::FillEllipse(&img, w / 2, h / 2, static_cast<int>(0.36 * w),
                     static_cast<int>(0.34 * h), tissue);
  media::FillEllipse(&img, w / 2 + rng->UniformInt(-4, 4),
                     h / 2 + rng->UniformInt(-2, 2),
                     static_cast<int>(0.19 * w), static_cast<int>(0.17 * h),
                     kBlood);
  // Instrument: grey bar entering the field.
  const Rgb steel{170, 175, 182};
  for (int i = 0; i < 3; ++i) {
    media::DrawHLine(&img, (w * 2) / 3, w - 2, h / 4 + i, steel);
  }
  return img;
}

Image RenderOrganShot(int w, int h, int topic, util::Rng* rng) {
  // Endoscopic window on the drape: dark cavity with a pink organ mass
  // (organ tissue reads as skin chroma, as in real footage).
  Image img = ClinicalBackdrop(w, h, topic);
  media::FillRect(&img, w / 8, h / 8, (w * 3) / 4, (h * 3) / 4,
                  Rgb{62, 38, 36});
  const Rgb organ{186, 122, 108};
  media::FillEllipse(&img, w / 2 + rng->UniformInt(-3, 3),
                     h / 2 + rng->UniformInt(-2, 2),
                     static_cast<int>(0.33 * w), static_cast<int>(0.31 * h),
                     organ);
  media::FillEllipse(&img, (w * 2) / 3, h / 3, w / 12, h / 12,
                     Rgb{160, 95, 85});
  return img;
}

Image RenderEquipment(int w, int h, int topic, util::Rng* rng) {
  Image img(w, h);
  const Palette pal = TopicPalette(topic + 40);
  media::FillGradient(&img, pal.bg_top, pal.bg_bottom);
  // Monitors with waveform traces.
  for (int m = 0; m < 2; ++m) {
    const int x = w / 10 + m * (w / 2);
    const int y = h / 6 + rng->UniformInt(0, h / 10);
    media::FillRect(&img, x, y, w / 3, h / 3, Rgb{15, 18, 20});
    const int trace_y = y + h / 6;
    for (int tx = x + 2; tx < x + w / 3 - 2; ++tx) {
      const int dy = static_cast<int>(4.0 * std::sin(tx * 0.7 + m));
      if (img.Contains(tx, trace_y + dy)) {
        img.set(tx, trace_y + dy, pal.accent);
      }
    }
  }
  // Equipment pole.
  media::DrawVLine(&img, (w * 4) / 5, h / 8, h - 2, Rgb{150, 150, 155});
  return img;
}

// Base image for one shot given its scripted role.
Image RenderShotBase(const VideoScript& script, const SceneScript& scene,
                     int shot_in_scene, util::Rng* rng, ShotTruth* truth) {
  const int w = script.width;
  const int h = script.height;
  switch (scene.kind) {
    case SceneKind::kPresentation: {
      if (shot_in_scene % 2 == 0) {
        truth->is_slide = true;
        // Each presentation uses one slide family (text deck or diagram
        // deck) so the alternating slide shots correlate with each other.
        if (scene.topic_id % 3 == 2) {
          return RenderClipArt(w, h, scene.topic_id, rng);
        }
        return RenderSlide(w, h, scene.topic_id, rng);
      }
      truth->has_face = true;
      truth->speaker_id = scene.speaker_a;
      return RenderFaceShot(w, h, scene.topic_id, scene.speaker_a,
                            /*face_scale=*/1.0, 0.5, rng);
    }
    case SceneKind::kDialog: {
      // Reverse-angle coverage: each party is framed against a different
      // side of the room, as real shot/counter-shot editing does.
      const bool first = shot_in_scene % 2 == 0;
      truth->has_face = true;
      truth->speaker_id = first ? scene.speaker_a : scene.speaker_b;
      return RenderFaceShot(w, h, first ? scene.topic_id : scene.topic_id + 3,
                            first ? scene.speaker_a : scene.speaker_b,
                            /*face_scale=*/first ? 1.0 : 0.85,
                            first ? 0.40 : 0.60, rng);
    }
    case SceneKind::kClinicalOperation: {
      const int role = shot_in_scene % 3;
      if (role == 0) {
        truth->has_skin_closeup = true;
        return RenderSkinCloseup(w, h, scene.topic_id, rng);
      }
      if (role == 1) {
        truth->has_blood = true;
        return RenderBloodShot(w, h, scene.topic_id, rng);
      }
      truth->has_skin_closeup = true;
      return RenderOrganShot(w, h, scene.topic_id, rng);
    }
    case SceneKind::kOther:
    default: {
      // Establishing material: mostly equipment shots, with an occasional
      // anatomical line drawing shown full-screen.
      if (scene.topic_id % 4 == 1 && shot_in_scene % 3 == 1) {
        truth->is_diagram = true;
        return RenderSketch(w, h, rng);
      }
      // Same set-up family across the scene, but exposure and layout shift
      // between shots so the cut detector still sees each boundary.
      Image img = RenderEquipment(w, h, scene.topic_id, rng);
      media::ScaleBrightness(&img, 0.78 + 0.18 * (shot_in_scene % 3));
      return img;
    }
  }
}

}  // namespace

GeneratedVideo GenerateVideo(const VideoScript& script) {
  GeneratedVideo out;
  out.video = media::Video(script.name, script.fps);
  out.audio = audio::AudioBuffer(script.audio_sample_rate);
  util::Rng rng(script.seed);

  const int min_shot_frames =
      static_cast<int>(std::ceil(2.2 * script.fps));  // keep audio analyzable

  int frame_cursor = 0;
  int shot_index = 0;
  for (size_t scene_i = 0; scene_i < script.scenes.size(); ++scene_i) {
    const SceneScript& scene = script.scenes[scene_i];
    SceneTruth scene_truth;
    scene_truth.index = static_cast<int>(scene_i);
    scene_truth.kind = scene.kind;
    scene_truth.topic_id = scene.topic_id;
    scene_truth.start_shot = shot_index;

    for (int s = 0; s < scene.shots; ++s) {
      ShotTruth shot_truth;
      shot_truth.index = shot_index;
      shot_truth.scene_index = static_cast<int>(scene_i);
      shot_truth.start_frame = frame_cursor;

      const double jitter = rng.Uniform(0.85, 1.30);
      int frames = std::max(
          min_shot_frames,
          static_cast<int>(scene.shot_seconds * script.fps * jitter));
      // Slides hold a little longer, like real lecture footage.
      if (scene.kind == SceneKind::kPresentation && s % 2 == 0) {
        frames += static_cast<int>(script.fps);
      }

      const Image base = RenderShotBase(script, scene, s, &rng, &shot_truth);
      const bool man_made = shot_truth.is_slide || shot_truth.is_diagram;
      // Camera drift within the shot (none for rendered slides).
      double dx = 0.0, dy = 0.0;
      const double drift_x = man_made ? 0.0 : rng.Uniform(-0.08, 0.08);
      const double drift_y = man_made ? 0.0 : rng.Uniform(-0.05, 0.05);
      // Occasionally enter the shot through a dissolve from the previous
      // one instead of a hard cut.
      const bool dissolve = shot_index > 0 && !out.video.empty() &&
                            rng.Bernoulli(script.dissolve_prob);
      const Image prev_last =
          dissolve ? out.video.frame(out.video.frame_count() - 1) : Image();
      for (int f = 0; f < frames; ++f) {
        Image frame = man_made
                          ? base
                          : media::Translated(base, static_cast<int>(dx),
                                              static_cast<int>(dy));
        if (!man_made) {
          if (script.flicker > 0.0) {
            media::ScaleBrightness(
                &frame, 1.0 + script.flicker *
                                  std::sin(0.9 * f + 1.7 * shot_index));
          }
          media::AddNoise(&frame, script.camera_noise, &rng);
          dx += drift_x;
          dy += drift_y;
        }
        if (dissolve && f < script.dissolve_frames) {
          const double alpha =
              (f + 1.0) / (script.dissolve_frames + 1.0);  // new content in
          frame = media::Blend(frame, prev_last, alpha);
        }
        if (script.exposure != 1.0) {
          media::ScaleBrightness(&frame, script.exposure);
        }
        out.video.AppendFrame(std::move(frame));
      }
      shot_truth.end_frame = frame_cursor + frames - 1;
      frame_cursor += frames;

      // Audio for the shot, time-aligned with its frames.
      const double seconds = frames / script.fps;
      switch (scene.kind) {
        case SceneKind::kPresentation: {
          const SpeakerVoice voice = MakeSpeakerVoice(scene.speaker_a);
          AppendSpeech(&out.audio, voice, seconds, &rng);
          // Voice-over runs across slides too; every shot carries speech.
          shot_truth.speaker_id = scene.speaker_a;
          break;
        }
        case SceneKind::kDialog: {
          const int speaker = (s % 2 == 0) ? scene.speaker_a : scene.speaker_b;
          AppendSpeech(&out.audio, MakeSpeakerVoice(speaker), seconds, &rng);
          shot_truth.speaker_id = speaker;
          break;
        }
        case SceneKind::kClinicalOperation:
          AppendProcedureNoise(&out.audio, seconds, &rng);
          break;
        case SceneKind::kOther:
        default:
          AppendSilence(&out.audio, seconds, &rng);
          break;
      }

      out.truth.shots.push_back(shot_truth);
      ++shot_index;
    }
    scene_truth.end_shot = shot_index - 1;
    out.truth.scenes.push_back(scene_truth);
  }
  return out;
}

}  // namespace classminer::synth

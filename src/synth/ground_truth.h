#ifndef CLASSMINER_SYNTH_GROUND_TRUTH_H_
#define CLASSMINER_SYNTH_GROUND_TRUTH_H_

#include <string>
#include <vector>

namespace classminer::synth {

// Semantic scene categories scripted by the generator. These are the
// benchmark labels for Figs. 12-13 (scene detection) and Table 1 (event
// mining).
enum class SceneKind {
  kPresentation = 0,
  kDialog,
  kClinicalOperation,
  kOther,  // establishing / equipment shots; no target event
};

const char* SceneKindName(SceneKind kind);

// One scripted shot.
struct ShotTruth {
  int index = 0;
  int start_frame = 0;
  int end_frame = 0;   // inclusive
  int scene_index = 0;
  int speaker_id = -1;  // -1: no speech in this shot
  bool is_slide = false;    // rendered slide or clip-art deck frame
  bool is_diagram = false;  // rendered sketch/line-drawing frame
  bool has_face = false;
  bool has_skin_closeup = false;
  bool has_blood = false;
};

// One scripted semantic scene.
struct SceneTruth {
  int index = 0;
  SceneKind kind = SceneKind::kOther;
  int start_shot = 0;
  int end_shot = 0;  // inclusive
  int topic_id = 0;  // scenes with equal topic ids are visual repeats

  int shot_count() const { return end_shot - start_shot + 1; }
};

// Full ground truth of one generated video.
struct GroundTruth {
  std::vector<ShotTruth> shots;
  std::vector<SceneTruth> scenes;

  // Frame positions k such that a cut lies between frames k and k+1.
  std::vector<int> CutPositions() const;

  // Scene index owning a given shot index (-1 when out of range).
  int SceneOfShot(int shot_index) const;

  int CountScenesOfKind(SceneKind kind) const;
};

}  // namespace classminer::synth

#endif  // CLASSMINER_SYNTH_GROUND_TRUTH_H_

#include "synth/corpus.h"

#include <algorithm>
#include <cmath>

namespace classminer::synth {
namespace {

// Appends `count` scenes cycling through a title-specific scene-kind
// pattern. Topics repeat every few scenes of the same kind so the PCS
// clustering has genuine repeats to merge.
void AppendScenes(VideoScript* script, int count, int title_id,
                  const std::vector<SceneKind>& pattern) {
  int presentation_topics = 0;
  int dialog_topics = 0;
  int clinical_topics = 0;
  int other_topics = 0;
  const int speaker_base = title_id * 10;

  for (int i = 0; i < count; ++i) {
    const SceneKind kind = pattern[static_cast<size_t>(i) % pattern.size()];
    SceneScript scene;
    scene.kind = kind;
    switch (kind) {
      case SceneKind::kPresentation:
        // Two alternating lecture set-ups per title -> repeated scenes.
        scene.topic_id = title_id * 100 + (presentation_topics++ % 2);
        scene.speaker_a = speaker_base + scene.topic_id % 2;
        scene.shots = 5;
        scene.shot_seconds = 2.6;
        break;
      case SceneKind::kDialog:
        scene.topic_id = title_id * 100 + 10 + (dialog_topics++ % 2);
        scene.speaker_a = speaker_base + 4;
        scene.speaker_b = speaker_base + 5 + scene.topic_id % 2;
        scene.shots = 6;
        scene.shot_seconds = 2.4;
        break;
      case SceneKind::kClinicalOperation:
        scene.topic_id = title_id * 100 + 20 + (clinical_topics++ % 2);
        scene.shots = 6;
        scene.shot_seconds = 2.6;
        break;
      case SceneKind::kOther:
        scene.topic_id = title_id * 100 + 30 + (other_topics++ % 2);
        scene.shots = 3;
        scene.shot_seconds = 2.3;
        break;
    }
    script->scenes.push_back(scene);
  }
}

}  // namespace

std::vector<VideoScript> MedicalCorpusScripts(const CorpusOptions& options) {
  struct Title {
    const char* name;
    std::vector<SceneKind> pattern;
    int base_scenes;
  };
  // Scene-type mixes echo the paper's descriptions: education titles lean
  // on presentations and dialogs; surgical titles on clinical operations.
  const std::vector<Title> titles = {
      {"face_repair",
       {SceneKind::kPresentation, SceneKind::kClinicalOperation,
        SceneKind::kDialog, SceneKind::kClinicalOperation,
        SceneKind::kPresentation, SceneKind::kOther},
       8},
      {"nuclear_medicine",
       {SceneKind::kPresentation, SceneKind::kPresentation,
        SceneKind::kDialog, SceneKind::kOther, SceneKind::kPresentation},
       8},
      {"laparoscopy",
       {SceneKind::kClinicalOperation, SceneKind::kClinicalOperation,
        SceneKind::kPresentation, SceneKind::kOther,
        SceneKind::kClinicalOperation},
       8},
      {"skin_examination",
       {SceneKind::kDialog, SceneKind::kClinicalOperation,
        SceneKind::kDialog, SceneKind::kPresentation, SceneKind::kOther},
       8},
      {"laser_eye_surgery",
       {SceneKind::kPresentation, SceneKind::kClinicalOperation,
        SceneKind::kOther, SceneKind::kClinicalOperation,
        SceneKind::kDialog},
       8},
  };

  std::vector<VideoScript> scripts;
  int title_id = 1;
  for (const Title& t : titles) {
    VideoScript s;
    s.name = t.name;
    s.seed = options.seed * 1000 + static_cast<uint64_t>(title_id);
    s.width = options.width;
    s.height = options.height;
    s.fps = options.fps;
    s.audio_sample_rate = options.audio_sample_rate;
    if (options.degraded) {
      s.dissolve_prob = 0.35;
      s.flicker = 0.03;
      s.exposure = 0.6 + 0.1 * (title_id % 4);
    }
    const int scenes =
        std::max(3, static_cast<int>(std::lround(t.base_scenes * options.scale)));
    AppendScenes(&s, scenes, title_id, t.pattern);
    scripts.push_back(std::move(s));
    ++title_id;
  }
  return scripts;
}

std::vector<VideoScript> MedicalCorpusScripts() {
  return MedicalCorpusScripts(CorpusOptions());
}

std::vector<GeneratedVideo> GenerateMedicalCorpus(
    const CorpusOptions& options) {
  std::vector<GeneratedVideo> out;
  for (const VideoScript& script : MedicalCorpusScripts(options)) {
    out.push_back(GenerateVideo(script));
  }
  return out;
}

std::vector<GeneratedVideo> GenerateMedicalCorpus() {
  return GenerateMedicalCorpus(CorpusOptions());
}

VideoScript QuickScript(uint64_t seed) {
  VideoScript s;
  s.name = "quickstart_clinic";
  s.seed = seed;
  s.scenes = {
      {SceneKind::kPresentation, 5, /*topic=*/1, /*a=*/1, /*b=*/-1, 2.5},
      {SceneKind::kDialog, 6, /*topic=*/11, /*a=*/2, /*b=*/3, 2.4},
      {SceneKind::kClinicalOperation, 6, /*topic=*/21, -1, -1, 2.5},
      {SceneKind::kOther, 3, /*topic=*/31, -1, -1, 2.3},
  };
  return s;
}

}  // namespace classminer::synth

#include "synth/ground_truth.h"

namespace classminer::synth {

const char* SceneKindName(SceneKind kind) {
  switch (kind) {
    case SceneKind::kPresentation:
      return "presentation";
    case SceneKind::kDialog:
      return "dialog";
    case SceneKind::kClinicalOperation:
      return "clinical_operation";
    case SceneKind::kOther:
      return "other";
  }
  return "unknown";
}

std::vector<int> GroundTruth::CutPositions() const {
  std::vector<int> cuts;
  for (size_t i = 0; i + 1 < shots.size(); ++i) {
    cuts.push_back(shots[i].end_frame);
  }
  return cuts;
}

int GroundTruth::SceneOfShot(int shot_index) const {
  if (shot_index < 0 || shot_index >= static_cast<int>(shots.size())) {
    return -1;
  }
  return shots[static_cast<size_t>(shot_index)].scene_index;
}

int GroundTruth::CountScenesOfKind(SceneKind kind) const {
  int n = 0;
  for (const SceneTruth& s : scenes) {
    if (s.kind == kind) ++n;
  }
  return n;
}

}  // namespace classminer::synth

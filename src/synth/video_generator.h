#ifndef CLASSMINER_SYNTH_VIDEO_GENERATOR_H_
#define CLASSMINER_SYNTH_VIDEO_GENERATOR_H_

#include <string>
#include <vector>

#include "audio/audio_buffer.h"
#include "media/video.h"
#include "synth/ground_truth.h"

namespace classminer::synth {

// Script for one semantic scene.
struct SceneScript {
  SceneKind kind = SceneKind::kOther;
  int shots = 6;
  // Scenes sharing a topic id render with the same palette/layout family —
  // these are the "scenes shown several times in the video" that the PCS
  // clustering should merge (Sec. 3.5).
  int topic_id = 0;
  int speaker_a = -1;  // presenter / first dialog party
  int speaker_b = -1;  // second dialog party
  double shot_seconds = 2.5;  // nominal shot duration
};

// Script for one generated video.
struct VideoScript {
  std::string name;
  uint64_t seed = 1;
  int width = 96;
  int height = 72;
  double fps = 12.0;
  int audio_sample_rate = 16000;
  // Per-frame uniform sensor-noise amplitude for natural (camera) frames.
  int camera_noise = 5;
  // Degradations for harder material: probability that a shot boundary is
  // a gradual dissolve instead of a hard cut, the dissolve length, and a
  // luminance-flicker amplitude applied to natural shots.
  double dissolve_prob = 0.0;
  int dissolve_frames = 6;
  double flicker = 0.0;
  // Global exposure multiplier (dim under-lit footage compresses frame
  // differences, stressing fixed thresholds).
  double exposure = 1.0;
  std::vector<SceneScript> scenes;
};

// A generated video: decoded frames, aligned audio track, and the scripted
// ground truth used for evaluation.
struct GeneratedVideo {
  media::Video video;
  audio::AudioBuffer audio;
  GroundTruth truth;
};

// Deterministically renders the scripted video (same script + seed ->
// identical frames, audio and truth).
GeneratedVideo GenerateVideo(const VideoScript& script);

}  // namespace classminer::synth

#endif  // CLASSMINER_SYNTH_VIDEO_GENERATOR_H_

#ifndef CLASSMINER_SYNTH_AUDIO_GENERATOR_H_
#define CLASSMINER_SYNTH_AUDIO_GENERATOR_H_

#include "audio/audio_buffer.h"
#include "util/rng.h"

namespace classminer::synth {

// A synthetic speaker: glottal pulse train at f0 shaped by three formant
// resonators. Distinct speakers get distinct f0/formant layouts, which
// yields separable MFCC statistics (the property the BIC test needs).
struct SpeakerVoice {
  int speaker_id = 0;
  double f0 = 120.0;          // fundamental, Hz
  double formants[3] = {700.0, 1200.0, 2500.0};
  double bandwidths[3] = {90.0, 110.0, 160.0};
  double gain = 0.35;
};

// Deterministic voice for a speaker id (stable across runs/platforms).
SpeakerVoice MakeSpeakerVoice(int speaker_id);

// Appends `seconds` of voiced speech by `voice`, with syllable-rate
// amplitude modulation, slight f0 jitter, and brief inter-word pauses.
void AppendSpeech(audio::AudioBuffer* out, const SpeakerVoice& voice,
                  double seconds, util::Rng* rng);

// Appends near-silence (faint broadband noise).
void AppendSilence(audio::AudioBuffer* out, double seconds, util::Rng* rng);

// Appends unvoiced procedure/room noise (broadband, no pitch) — classified
// as non-speech by the clip classifier.
void AppendProcedureNoise(audio::AudioBuffer* out, double seconds,
                          util::Rng* rng);

}  // namespace classminer::synth

#endif  // CLASSMINER_SYNTH_AUDIO_GENERATOR_H_

#ifndef CLASSMINER_SYNTH_CORPUS_H_
#define CLASSMINER_SYNTH_CORPUS_H_

#include <vector>

#include "synth/video_generator.h"

namespace classminer::synth {

// Parameters for the evaluation corpus. The paper used ~6 h of MPEG-I
// medical video over five titles; we script the same five titles with the
// same scene-type mix. `scale` stretches the scene count per video (1.0 is
// laptop-friendly; larger values approach the paper's corpus duration).
struct CorpusOptions {
  uint64_t seed = 7;
  double scale = 1.0;
  int width = 96;
  int height = 72;
  double fps = 12.0;
  int audio_sample_rate = 16000;
  // Degraded mode: dissolves, flicker and uneven exposure across titles —
  // closer to the paper's real MPEG-I footage, and measurably harder.
  bool degraded = false;
};

// The five scripted titles of the evaluation dataset (Sec. 6.1).
std::vector<VideoScript> MedicalCorpusScripts(const CorpusOptions& options);
std::vector<VideoScript> MedicalCorpusScripts();

// Renders every script.
std::vector<GeneratedVideo> GenerateMedicalCorpus(const CorpusOptions& options);
std::vector<GeneratedVideo> GenerateMedicalCorpus();

// A single compact video (one of each scene kind) for tests and examples.
VideoScript QuickScript(uint64_t seed = 11);

}  // namespace classminer::synth

#endif  // CLASSMINER_SYNTH_CORPUS_H_

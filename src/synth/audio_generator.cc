#include "synth/audio_generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace classminer::synth {
namespace {

// Two-pole resonator (digital formant filter).
class Resonator {
 public:
  Resonator(double center_hz, double bandwidth_hz, int sample_rate) {
    const double r = std::exp(-std::numbers::pi * bandwidth_hz / sample_rate);
    const double theta =
        2.0 * std::numbers::pi * center_hz / sample_rate;
    a1_ = 2.0 * r * std::cos(theta);
    a2_ = -r * r;
    gain_ = (1.0 - r) * std::sqrt(1.0 - 2.0 * r * std::cos(2.0 * theta) +
                                  r * r);
  }

  double Process(double x) {
    const double y = gain_ * x + a1_ * y1_ + a2_ * y2_;
    y2_ = y1_;
    y1_ = y;
    return y;
  }

 private:
  double a1_ = 0.0, a2_ = 0.0, gain_ = 1.0;
  double y1_ = 0.0, y2_ = 0.0;
};

}  // namespace

SpeakerVoice MakeSpeakerVoice(int speaker_id) {
  // Derive stable per-speaker parameters from the id.
  util::Rng rng(0x5eedf00dULL + static_cast<uint64_t>(speaker_id) * 7919ULL);
  SpeakerVoice v;
  v.speaker_id = speaker_id;
  v.f0 = rng.Uniform(90.0, 230.0);
  v.formants[0] = rng.Uniform(450.0, 850.0);
  v.formants[1] = rng.Uniform(1000.0, 1900.0);
  v.formants[2] = rng.Uniform(2200.0, 3200.0);
  v.bandwidths[0] = rng.Uniform(60.0, 110.0);
  v.bandwidths[1] = rng.Uniform(80.0, 140.0);
  v.bandwidths[2] = rng.Uniform(120.0, 200.0);
  v.gain = 0.35;
  return v;
}

void AppendSpeech(audio::AudioBuffer* out, const SpeakerVoice& voice,
                  double seconds, util::Rng* rng) {
  const int sr = out->sample_rate();
  const size_t n = static_cast<size_t>(seconds * sr);
  Resonator f1(voice.formants[0], voice.bandwidths[0], sr);
  Resonator f2(voice.formants[1], voice.bandwidths[1], sr);
  Resonator f3(voice.formants[2], voice.bandwidths[2], sr);

  double phase = 0.0;
  double f0 = voice.f0;
  // Syllable envelope state: alternating voiced bursts and short pauses.
  size_t seg_left = 0;
  bool voiced = true;
  double env = 0.0;

  std::vector<float> chunk;
  chunk.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (seg_left == 0) {
      voiced = !voiced;
      const double dur = voiced ? rng->Uniform(0.12, 0.30)   // syllable
                                : rng->Uniform(0.02, 0.08);  // micro-pause
      seg_left = static_cast<size_t>(dur * sr);
      if (voiced) f0 = voice.f0 * rng->Uniform(0.92, 1.08);
    }
    --seg_left;
    const double target = voiced ? 1.0 : 0.05;
    env += (target - env) * 0.002;  // smooth envelope

    // Glottal pulse train: narrow pulses at f0 with mild jitter.
    phase += f0 / sr;
    if (phase >= 1.0) phase -= 1.0;
    const double pulse = (phase < 0.12) ? (1.0 - phase / 0.12) : 0.0;
    const double excitation =
        pulse + 0.02 * rng->Gaussian();  // slight aspiration

    const double s =
        (f1.Process(excitation) + 0.7 * f2.Process(excitation) +
         0.4 * f3.Process(excitation)) *
        voice.gain * env;
    chunk.push_back(static_cast<float>(std::clamp(s, -1.0, 1.0)));
  }
  out->Append(chunk);
}

void AppendSilence(audio::AudioBuffer* out, double seconds, util::Rng* rng) {
  const size_t n = static_cast<size_t>(seconds * out->sample_rate());
  std::vector<float> chunk(n);
  for (float& s : chunk) {
    s = static_cast<float>(0.001 * rng->Gaussian());
  }
  out->Append(chunk);
}

void AppendProcedureNoise(audio::AudioBuffer* out, double seconds,
                          util::Rng* rng) {
  const int sr = out->sample_rate();
  const size_t n = static_cast<size_t>(seconds * sr);
  std::vector<float> chunk(n);
  // Broadband noise with slow amplitude wander and an occasional metallic
  // ping (high resonance), unpitched in the speech band.
  Resonator ping(rng->Uniform(3500.0, 5000.0), 80.0, sr);
  double wander = 0.04;
  size_t ping_left = 0;
  for (size_t i = 0; i < n; ++i) {
    wander += 0.00001 * rng->Gaussian();
    wander = std::clamp(wander, 0.02, 0.08);
    double s = wander * rng->Gaussian();
    if (ping_left == 0 && rng->Bernoulli(1e-5)) {
      ping_left = static_cast<size_t>(0.05 * sr);
    }
    if (ping_left > 0) {
      --ping_left;
      s += 0.2 * ping.Process(rng->Gaussian());
    }
    chunk[i] = static_cast<float>(std::clamp(s, -1.0, 1.0));
  }
  out->Append(chunk);
}

}  // namespace classminer::synth

#include "features/tamura.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "media/color.h"

namespace classminer::features {
namespace {

// Summed-area table with 1-pixel zero border: sums[y+1][x+1].
std::vector<double> IntegralImage(const media::GrayImage& gray) {
  const int w = gray.width();
  const int h = gray.height();
  std::vector<double> integral(static_cast<size_t>(w + 1) * (h + 1), 0.0);
  auto at = [&](int x, int y) -> double& {
    return integral[static_cast<size_t>(y) * (w + 1) + x];
  };
  for (int y = 1; y <= h; ++y) {
    double row = 0.0;
    for (int x = 1; x <= w; ++x) {
      row += gray.at(x - 1, y - 1);
      at(x, y) = at(x, y - 1) + row;
    }
  }
  return integral;
}

// Mean over the window [x0, x1) x [y0, y1), clamped to the image.
double WindowMean(const std::vector<double>& integral, int w, int h, int x0,
                  int y0, int x1, int y1) {
  x0 = std::clamp(x0, 0, w);
  y0 = std::clamp(y0, 0, h);
  x1 = std::clamp(x1, 0, w);
  y1 = std::clamp(y1, 0, h);
  const int area = (x1 - x0) * (y1 - y0);
  if (area <= 0) return 0.0;
  auto at = [&](int x, int y) {
    return integral[static_cast<size_t>(y) * (w + 1) + x];
  };
  const double sum = at(x1, y1) - at(x0, y1) - at(x1, y0) + at(x0, y0);
  return sum / area;
}

}  // namespace

TamuraVector ComputeTamuraCoarseness(const media::Image& image) {
  return ComputeTamuraCoarseness(media::ToGray(image));
}

TamuraVector ComputeTamuraCoarseness(const media::GrayImage& input) {
  TamuraVector out{};
  if (input.empty()) return out;

  // Keep cost bounded: evaluate on a grid of at most ~64x64 sample points.
  const media::GrayImage& gray = input;
  const int w = gray.width();
  const int h = gray.height();
  const int step_x = std::max(1, w / 64);
  const int step_y = std::max(1, h / 64);

  const std::vector<double> integral = IntegralImage(gray);

  std::array<double, kCoarsenessScales> scale_hist{};
  double sum_best = 0.0;
  double sum_best_sq = 0.0;
  int samples = 0;

  for (int y = 0; y < h; y += step_y) {
    for (int x = 0; x < w; x += step_x) {
      int best_k = 0;
      double best_e = -1.0;
      for (int k = 0; k < kCoarsenessScales; ++k) {
        const int half = 1 << k;  // window side 2^(k+1), half-extent 2^k
        // Horizontal difference of neighbouring windows centred at (x, y).
        const double left = WindowMean(integral, w, h, x - 2 * half, y - half,
                                       x, y + half);
        const double right = WindowMean(integral, w, h, x, y - half,
                                        x + 2 * half, y + half);
        const double up = WindowMean(integral, w, h, x - half, y - 2 * half,
                                     x + half, y);
        const double down = WindowMean(integral, w, h, x - half, y,
                                       x + half, y + 2 * half);
        const double e =
            std::max(std::fabs(left - right), std::fabs(up - down));
        if (e > best_e) {
          best_e = e;
          best_k = k;
        }
      }
      scale_hist[static_cast<size_t>(best_k)] += 1.0;
      sum_best += best_k;
      sum_best_sq += static_cast<double>(best_k) * best_k;
      ++samples;
    }
  }
  if (samples == 0) return out;

  for (int k = 0; k < kCoarsenessScales; ++k) {
    out[static_cast<size_t>(k)] = scale_hist[static_cast<size_t>(k)] / samples;
  }
  const double mean = sum_best / samples;
  const double var = sum_best_sq / samples - mean * mean;
  out[6] = mean / (kCoarsenessScales - 1);  // normalised mean scale
  out[7] = std::clamp(var / (kCoarsenessScales * kCoarsenessScales), 0.0, 1.0);

  // Fractions of the two dominant scales (texture uniformity cues).
  std::array<double, kCoarsenessScales> sorted = scale_hist;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  out[8] = sorted[0] / samples;
  out[9] = (sorted[0] + sorted[1]) / samples;
  return out;
}

}  // namespace classminer::features

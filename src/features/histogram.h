#ifndef CLASSMINER_FEATURES_HISTOGRAM_H_
#define CLASSMINER_FEATURES_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "media/image.h"

namespace classminer::features {

// 256-dimensional HSV colour histogram (paper Sec. 3.1): hue quantised to
// 16 levels, saturation to 4, value to 4 (16 * 4 * 4 = 256), L1-normalised.
inline constexpr int kHueBins = 16;
inline constexpr int kSatBins = 4;
inline constexpr int kValBins = 4;
inline constexpr int kHistogramDims = kHueBins * kSatBins * kValBins;

using ColorHistogram = std::array<double, kHistogramDims>;

// Computes the normalised HSV histogram of `image`. An empty image yields
// an all-zero histogram. The pixel-binning loop dispatches to an AVX2
// kernel (4 pixels per iteration) when util::ActiveDispatchLevel() allows;
// bin indices are integer and bit-identical across paths.
ColorHistogram ComputeColorHistogram(const media::Image& image);

// Bin index for a single pixel (exposed for tests).
int HistogramBin(media::Rgb pixel);

// Histogram intersection similarity: sum_k min(a_k, b_k), in [0, 1] for
// L1-normalised inputs (Eq. 1, colour term). Both dispatch paths accumulate
// with the same four-lane contract (see internal below), so scalar and
// vector results are bit-identical.
double HistogramIntersection(std::span<const double> a,
                             std::span<const double> b);

// L1 distance between histograms. Same dispatch/identity contract.
double HistogramL1Distance(std::span<const double> a,
                           std::span<const double> b);

namespace internal {

// Per-pixel quantisation scale shared by the scalar and vector binning
// kernels so both fold the exact same constant.
inline constexpr double kHueScale = kHueBins / 360.0;

// Reduction contract shared by every HistogramIntersection /
// HistogramL1Distance path: term(i) accumulates into lane i % 4, and the
// total is (lane0 + lane2) + (lane1 + lane3). The AVX2 kernels are this
// contract evaluated four lanes at a time, hence bit-identical sums.
double HistogramIntersectionScalar(std::span<const double> a,
                                   std::span<const double> b);
double HistogramL1DistanceScalar(std::span<const double> a,
                                 std::span<const double> b);

// Writes HistogramBin(px[i]) into bins[i] for i in [0, n).
void HistogramBinRangeScalar(const media::Rgb* px, size_t n, int32_t* bins);

// AVX2 kernels (x86-64 only). Callable only when HistogramAccelAvailable().
bool HistogramAccelAvailable();
void HistogramBinRangeAccel(const media::Rgb* px, size_t n, int32_t* bins);
double HistogramIntersectionAccel(std::span<const double> a,
                                  std::span<const double> b);
double HistogramL1DistanceAccel(std::span<const double> a,
                                std::span<const double> b);

}  // namespace internal

}  // namespace classminer::features

#endif  // CLASSMINER_FEATURES_HISTOGRAM_H_

#ifndef CLASSMINER_FEATURES_HISTOGRAM_H_
#define CLASSMINER_FEATURES_HISTOGRAM_H_

#include <array>
#include <span>

#include "media/image.h"

namespace classminer::features {

// 256-dimensional HSV colour histogram (paper Sec. 3.1): hue quantised to
// 16 levels, saturation to 4, value to 4 (16 * 4 * 4 = 256), L1-normalised.
inline constexpr int kHueBins = 16;
inline constexpr int kSatBins = 4;
inline constexpr int kValBins = 4;
inline constexpr int kHistogramDims = kHueBins * kSatBins * kValBins;

using ColorHistogram = std::array<double, kHistogramDims>;

// Computes the normalised HSV histogram of `image`. An empty image yields
// an all-zero histogram.
ColorHistogram ComputeColorHistogram(const media::Image& image);

// Bin index for a single pixel (exposed for tests).
int HistogramBin(media::Rgb pixel);

// Histogram intersection similarity: sum_k min(a_k, b_k), in [0, 1] for
// L1-normalised inputs (Eq. 1, colour term).
double HistogramIntersection(std::span<const double> a,
                             std::span<const double> b);

// L1 distance between histograms.
double HistogramL1Distance(std::span<const double> a,
                           std::span<const double> b);

}  // namespace classminer::features

#endif  // CLASSMINER_FEATURES_HISTOGRAM_H_

#ifndef CLASSMINER_FEATURES_FRAME_DIFF_H_
#define CLASSMINER_FEATURES_FRAME_DIFF_H_

#include <vector>

#include "media/image.h"
#include "media/video.h"
#include "util/exec_context.h"
#include "util/threadpool.h"

namespace classminer::features {

// Frame-to-frame dissimilarity used by the shot detector (paper Fig. 5):
// one minus the HSV-histogram intersection of consecutive frames, in [0, 1].
// Histogram-based differences are robust to small object motion while
// spiking at cuts.
double FrameDifference(const media::Image& a, const media::Image& b);

// Difference series d[i] = FrameDifference(frame[i], frame[i+1]) for a whole
// video; size is frame_count - 1 (empty for videos with < 2 frames). With a
// pool, per-frame histograms are computed in parallel (fixed per-index
// partitioning) and differenced serially, so the series is bit-identical to
// the serial one.
std::vector<double> FrameDifferenceSeries(const media::Video& video,
                                          util::ThreadPool* pool = nullptr);

// Context-routed variant: parallelism comes from ctx.pool() as above, and
// the transient per-frame histogram table (the dominant scratch allocation,
// ~2 KiB per frame) is placed in ctx.arena() when the run carries one. The
// returned series is always heap-backed and bit-identical to the serial
// path.
std::vector<double> FrameDifferenceSeries(const media::Video& video,
                                          const util::ExecutionContext& ctx);

// Block-luma difference: mean absolute difference of 8x8 block means,
// normalised to [0, 1]. This is the compressed-domain variant driven by
// DC images (codec module) — same metric the MPEG-domain detector uses.
double BlockLumaDifference(const media::GrayImage& a,
                           const media::GrayImage& b);

}  // namespace classminer::features

#endif  // CLASSMINER_FEATURES_FRAME_DIFF_H_

#ifndef CLASSMINER_FEATURES_SIMILARITY_H_
#define CLASSMINER_FEATURES_SIMILARITY_H_

#include "features/histogram.h"
#include "features/tamura.h"
#include "media/image.h"

namespace classminer::features {

// The visual feature vector attached to a shot's representative frame
// (paper Sec. 3.1): 256-d HSV histogram + 10-d Tamura coarseness.
struct ShotFeatures {
  ColorHistogram histogram{};
  TamuraVector tamura{};
};

// Extracts both feature families from a representative frame.
ShotFeatures ExtractShotFeatures(const media::Image& frame);

// Weights of Eq. (1); the paper uses Wc = 0.7, Wt = 0.3.
struct StSimWeights {
  double color = 0.7;
  double texture = 0.3;
};

// Shot similarity StSim (Eq. 1):
//   Wc * sum_k min(Hi_k, Hj_k) + Wt * (1 - sqrt(sum_k (Ti_k - Tj_k)^2)).
// Result lies in [0, Wc + Wt] = [0, 1] for normalised inputs (the texture
// term is clamped at 0 for pathological descriptors).
double StSim(const ShotFeatures& a, const ShotFeatures& b,
             const StSimWeights& weights = {});

// Individual terms, exposed for tests and diagnostics.
double ColorSimilarity(const ColorHistogram& a, const ColorHistogram& b);
double TextureSimilarity(const TamuraVector& a, const TamuraVector& b);

}  // namespace classminer::features

#endif  // CLASSMINER_FEATURES_SIMILARITY_H_

#ifndef CLASSMINER_FEATURES_TAMURA_H_
#define CLASSMINER_FEATURES_TAMURA_H_

#include <array>

#include "media/image.h"

namespace classminer::features {

// 10-dimensional Tamura coarseness texture descriptor (paper Sec. 3.1).
//
// Classic Tamura coarseness computes, per pixel, the window size 2^k that
// maximises the difference between averages of non-overlapping neighbouring
// windows (k in [0, kCoarsenessScales)). We summarise the per-pixel best
// scales S_best as a descriptor: the normalised histogram over the scales
// (kCoarsenessScales values) padded with the distribution's mean, variance,
// and the two dominant-scale fractions, giving 10 dimensions total that sum
// to a bounded range compatible with Eq. (1)'s L2 term.
inline constexpr int kCoarsenessScales = 6;
inline constexpr int kTamuraDims = 10;

using TamuraVector = std::array<double, kTamuraDims>;

// Computes the descriptor on the grey version of `image`. Downsamples very
// large frames internally for speed. Empty image -> all zeros.
TamuraVector ComputeTamuraCoarseness(const media::Image& image);
TamuraVector ComputeTamuraCoarseness(const media::GrayImage& gray);

}  // namespace classminer::features

#endif  // CLASSMINER_FEATURES_TAMURA_H_

#include "features/frame_diff.h"

#include <algorithm>
#include <cmath>
#include <memory_resource>

#include "features/histogram.h"
#include "util/arena.h"

namespace classminer::features {

double FrameDifference(const media::Image& a, const media::Image& b) {
  const ColorHistogram ha = ComputeColorHistogram(a);
  const ColorHistogram hb = ComputeColorHistogram(b);
  return 1.0 - HistogramIntersection(ha, hb);
}

namespace {

std::vector<double> FrameDifferenceSeriesImpl(const media::Video& video,
                                              util::ThreadPool* pool,
                                              std::pmr::memory_resource* mr) {
  std::vector<double> diffs;
  const int n = video.frame_count();
  if (n < 2) return diffs;
  if (pool == nullptr || pool->thread_count() <= 1) {
    diffs.reserve(static_cast<size_t>(n) - 1);
    ColorHistogram prev = ComputeColorHistogram(video.frame(0));
    for (int i = 1; i < n; ++i) {
      const ColorHistogram cur = ComputeColorHistogram(video.frame(i));
      diffs.push_back(1.0 - HistogramIntersection(prev, cur));
      prev = cur;
    }
    return diffs;
  }
  // Parallel path: histogram every frame into its own slot, then take the
  // (cheap) intersections serially. Same inputs per histogram as the serial
  // path, so the resulting series is bit-identical. The slot table is the
  // run's dominant scratch allocation (2 KiB per frame), so it goes into
  // the run arena when one is supplied.
  std::pmr::vector<ColorHistogram> hists(
      static_cast<size_t>(n),
      mr != nullptr ? mr : std::pmr::get_default_resource());
  util::ParallelFor(
      pool, n,
      [&](int i) {
        hists[static_cast<size_t>(i)] = ComputeColorHistogram(video.frame(i));
      },
      /*grain=*/8);
  diffs.resize(static_cast<size_t>(n) - 1);
  for (int i = 1; i < n; ++i) {
    diffs[static_cast<size_t>(i) - 1] =
        1.0 - HistogramIntersection(hists[static_cast<size_t>(i) - 1],
                                    hists[static_cast<size_t>(i)]);
  }
  return diffs;
}

}  // namespace

std::vector<double> FrameDifferenceSeries(const media::Video& video,
                                          util::ThreadPool* pool) {
  return FrameDifferenceSeriesImpl(video, pool, nullptr);
}

std::vector<double> FrameDifferenceSeries(const media::Video& video,
                                          const util::ExecutionContext& ctx) {
  return FrameDifferenceSeriesImpl(video, ctx.pool(), ctx.arena());
}

double BlockLumaDifference(const media::GrayImage& a,
                           const media::GrayImage& b) {
  const int w = std::min(a.width(), b.width());
  const int h = std::min(a.height(), b.height());
  if (w == 0 || h == 0) return 0.0;
  double acc = 0.0;
  int count = 0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      acc += std::fabs(static_cast<double>(a.at(x, y)) - b.at(x, y));
      ++count;
    }
  }
  return acc / (255.0 * count);
}

}  // namespace classminer::features

#include "features/frame_diff.h"

#include <algorithm>
#include <cmath>

#include "features/histogram.h"

namespace classminer::features {

double FrameDifference(const media::Image& a, const media::Image& b) {
  const ColorHistogram ha = ComputeColorHistogram(a);
  const ColorHistogram hb = ComputeColorHistogram(b);
  return 1.0 - HistogramIntersection(ha, hb);
}

std::vector<double> FrameDifferenceSeries(const media::Video& video,
                                          util::ThreadPool* pool) {
  std::vector<double> diffs;
  const int n = video.frame_count();
  if (n < 2) return diffs;
  if (pool == nullptr || pool->thread_count() <= 1) {
    diffs.reserve(static_cast<size_t>(n) - 1);
    ColorHistogram prev = ComputeColorHistogram(video.frame(0));
    for (int i = 1; i < n; ++i) {
      const ColorHistogram cur = ComputeColorHistogram(video.frame(i));
      diffs.push_back(1.0 - HistogramIntersection(prev, cur));
      prev = cur;
    }
    return diffs;
  }
  // Parallel path: histogram every frame into its own slot, then take the
  // (cheap) intersections serially. Same inputs per histogram as the serial
  // path, so the resulting series is bit-identical.
  std::vector<ColorHistogram> hists(static_cast<size_t>(n));
  util::ParallelFor(
      pool, n,
      [&](int i) {
        hists[static_cast<size_t>(i)] = ComputeColorHistogram(video.frame(i));
      },
      /*grain=*/8);
  diffs.resize(static_cast<size_t>(n) - 1);
  for (int i = 1; i < n; ++i) {
    diffs[static_cast<size_t>(i) - 1] =
        1.0 - HistogramIntersection(hists[static_cast<size_t>(i) - 1],
                                    hists[static_cast<size_t>(i)]);
  }
  return diffs;
}

double BlockLumaDifference(const media::GrayImage& a,
                           const media::GrayImage& b) {
  const int w = std::min(a.width(), b.width());
  const int h = std::min(a.height(), b.height());
  if (w == 0 || h == 0) return 0.0;
  double acc = 0.0;
  int count = 0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      acc += std::fabs(static_cast<double>(a.at(x, y)) - b.at(x, y));
      ++count;
    }
  }
  return acc / (255.0 * count);
}

}  // namespace classminer::features

#include "features/similarity.h"

#include <algorithm>
#include <cmath>

namespace classminer::features {

ShotFeatures ExtractShotFeatures(const media::Image& frame) {
  ShotFeatures f;
  f.histogram = ComputeColorHistogram(frame);
  f.tamura = ComputeTamuraCoarseness(frame);
  return f;
}

double ColorSimilarity(const ColorHistogram& a, const ColorHistogram& b) {
  return HistogramIntersection(a, b);
}

double TextureSimilarity(const TamuraVector& a, const TamuraVector& b) {
  double sq = 0.0;
  for (size_t k = 0; k < a.size(); ++k) {
    const double d = a[k] - b[k];
    sq += d * d;
  }
  return std::max(0.0, 1.0 - std::sqrt(sq));
}

double StSim(const ShotFeatures& a, const ShotFeatures& b,
             const StSimWeights& weights) {
  return weights.color * ColorSimilarity(a.histogram, b.histogram) +
         weights.texture * TextureSimilarity(a.tamura, b.tamura);
}

}  // namespace classminer::features

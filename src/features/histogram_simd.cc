// AVX2 histogram kernels, bit-identical to the scalar reference.
//
// Binning mirrors media::RgbToHsv lane-by-lane: the same IEEE divides,
// compares and constants, with branch priority reproduced by blend order
// (grey test last so it wins, then mx==r over mx==g). The one deviation is
// algebraic, not numeric: fmod(x, 6.0) is exact and |({g-b})/delta| <= 1,
// so the scalar path's fmod is the identity and the vector path can skip
// it. Dead-lane NaN/inf from 0/0 divides is blended away before use.
//
// The reductions implement the shared four-accumulator contract from
// histogram.h with one ymm register, so sums round identically.

#include "features/histogram.h"

#if defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace classminer::features::internal {
namespace {

__attribute__((target("avx2"))) inline __m256d Channel(int a, int b, int c,
                                                       int d) {
  return _mm256_cvtepi32_pd(_mm_setr_epi32(a, b, c, d));
}

}  // namespace

bool HistogramAccelAvailable() { return true; }

__attribute__((target("avx2"))) void HistogramBinRangeAccel(
    const media::Rgb* px, size_t n, int32_t* bins) {
  const __m256d k255 = _mm256_set1_pd(255.0);
  const __m256d kZero = _mm256_setzero_pd();
  const __m256d kEps = _mm256_set1_pd(1e-12);
  const __m256d k60 = _mm256_set1_pd(60.0);
  const __m256d k2 = _mm256_set1_pd(2.0);
  const __m256d k4 = _mm256_set1_pd(4.0);
  const __m256d k360 = _mm256_set1_pd(360.0);
  const __m256d kHue = _mm256_set1_pd(kHueScale);
  const __m256d kSat = _mm256_set1_pd(static_cast<double>(kSatBins));
  const __m256d kVal = _mm256_set1_pd(static_cast<double>(kValBins));

  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const media::Rgb p0 = px[i + 0], p1 = px[i + 1], p2 = px[i + 2],
                     p3 = px[i + 3];
    const __m256d r = _mm256_div_pd(Channel(p0.r, p1.r, p2.r, p3.r), k255);
    const __m256d g = _mm256_div_pd(Channel(p0.g, p1.g, p2.g, p3.g), k255);
    const __m256d b = _mm256_div_pd(Channel(p0.b, p1.b, p2.b, p3.b), k255);

    const __m256d mx = _mm256_max_pd(_mm256_max_pd(r, g), b);
    const __m256d mn = _mm256_min_pd(_mm256_min_pd(r, g), b);
    const __m256d delta = _mm256_sub_pd(mx, mn);

    const __m256d v = mx;
    const __m256d s = _mm256_blendv_pd(
        kZero, _mm256_div_pd(delta, mx), _mm256_cmp_pd(mx, kZero, _CMP_GT_OQ));

    // Hue candidates (fmod elided; see header comment).
    const __m256d hr = _mm256_mul_pd(k60, _mm256_div_pd(_mm256_sub_pd(g, b),
                                                        delta));
    const __m256d hg = _mm256_mul_pd(
        k60, _mm256_add_pd(_mm256_div_pd(_mm256_sub_pd(b, r), delta), k2));
    const __m256d hb = _mm256_mul_pd(
        k60, _mm256_add_pd(_mm256_div_pd(_mm256_sub_pd(r, g), delta), k4));
    __m256d h = hb;
    h = _mm256_blendv_pd(h, hg, _mm256_cmp_pd(mx, g, _CMP_EQ_OQ));
    h = _mm256_blendv_pd(h, hr, _mm256_cmp_pd(mx, r, _CMP_EQ_OQ));
    h = _mm256_blendv_pd(h, kZero, _mm256_cmp_pd(delta, kEps, _CMP_LE_OQ));
    h = _mm256_blendv_pd(h, _mm256_add_pd(h, k360),
                         _mm256_cmp_pd(h, kZero, _CMP_LT_OQ));

    // Quantise (truncation, like static_cast<int>) and clamp per axis.
    __m128i hq = _mm256_cvttpd_epi32(_mm256_mul_pd(h, kHue));
    __m128i sq = _mm256_cvttpd_epi32(_mm256_mul_pd(s, kSat));
    __m128i vq = _mm256_cvttpd_epi32(_mm256_mul_pd(v, kVal));
    hq = _mm_min_epi32(hq, _mm_set1_epi32(kHueBins - 1));
    sq = _mm_min_epi32(sq, _mm_set1_epi32(kSatBins - 1));
    vq = _mm_min_epi32(vq, _mm_set1_epi32(kValBins - 1));

    __m128i bin = _mm_add_epi32(
        _mm_mullo_epi32(_mm_add_epi32(_mm_mullo_epi32(hq, _mm_set1_epi32(
                                                              kSatBins)),
                                      sq),
                        _mm_set1_epi32(kValBins)),
        vq);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(bins + i), bin);
  }
  if (i < n) HistogramBinRangeScalar(px + i, n - i, bins + i);
}

__attribute__((target("avx2"))) double HistogramIntersectionAccel(
    std::span<const double> a, std::span<const double> b) {
  const size_t n = std::min(a.size(), b.size());
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a.data() + i);
    const __m256d vb = _mm256_loadu_pd(b.data() + i);
    acc = _mm256_add_pd(acc, _mm256_min_pd(va, vb));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (; i < n; ++i) lane[i % 4] += std::min(a[i], b[i]);
  return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

__attribute__((target("avx2"))) double HistogramL1DistanceAccel(
    std::span<const double> a, std::span<const double> b) {
  const size_t n = std::min(a.size(), b.size());
  const __m256d kAbsMask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a.data() + i);
    const __m256d vb = _mm256_loadu_pd(b.data() + i);
    acc = _mm256_add_pd(acc, _mm256_and_pd(_mm256_sub_pd(va, vb), kAbsMask));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (; i < n; ++i) lane[i % 4] += std::fabs(a[i] - b[i]);
  return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

}  // namespace classminer::features::internal

#else  // !defined(__x86_64__)

namespace classminer::features::internal {

bool HistogramAccelAvailable() { return false; }

void HistogramBinRangeAccel(const media::Rgb* px, size_t n, int32_t* bins) {
  HistogramBinRangeScalar(px, n, bins);
}

double HistogramIntersectionAccel(std::span<const double> a,
                                  std::span<const double> b) {
  return HistogramIntersectionScalar(a, b);
}

double HistogramL1DistanceAccel(std::span<const double> a,
                                std::span<const double> b) {
  return HistogramL1DistanceScalar(a, b);
}

}  // namespace classminer::features::internal

#endif

#include "features/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "media/color.h"

namespace classminer::features {

// Per-pixel quantisation scales, hoisted out of the hot loop so binning is
// multiply-only (no per-pixel division).
constexpr double kHueScale = kHueBins / 360.0;

int HistogramBin(media::Rgb pixel) {
  const media::Hsv hsv = media::RgbToHsv(pixel);
  int h = static_cast<int>(hsv.h * kHueScale);
  int s = static_cast<int>(hsv.s * kSatBins);
  int v = static_cast<int>(hsv.v * kValBins);
  h = std::min(h, kHueBins - 1);
  s = std::min(s, kSatBins - 1);
  v = std::min(v, kValBins - 1);
  return (h * kSatBins + s) * kValBins + v;
}

ColorHistogram ComputeColorHistogram(const media::Image& image) {
  ColorHistogram hist{};
  if (image.empty()) return hist;
  // Integer bin counts in the pixel loop; one float normalisation pass at
  // the end (a multiply by the reciprocal, not a per-bin division).
  std::array<uint32_t, kHistogramDims> counts{};
  for (const media::Rgb& p : image.pixels()) {
    counts[static_cast<size_t>(HistogramBin(p))] += 1;
  }
  const double inv_total = 1.0 / static_cast<double>(image.pixel_count());
  for (size_t i = 0; i < hist.size(); ++i) {
    hist[i] = static_cast<double>(counts[i]) * inv_total;
  }
  return hist;
}

double HistogramIntersection(std::span<const double> a,
                             std::span<const double> b) {
  const size_t n = std::min(a.size(), b.size());
  double sim = 0.0;
  for (size_t i = 0; i < n; ++i) sim += std::min(a[i], b[i]);
  return sim;
}

double HistogramL1Distance(std::span<const double> a,
                           std::span<const double> b) {
  const size_t n = std::min(a.size(), b.size());
  double d = 0.0;
  for (size_t i = 0; i < n; ++i) d += std::fabs(a[i] - b[i]);
  return d;
}

}  // namespace classminer::features

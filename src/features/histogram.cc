#include "features/histogram.h"

#include <algorithm>
#include <cmath>

#include "media/color.h"

namespace classminer::features {

int HistogramBin(media::Rgb pixel) {
  const media::Hsv hsv = media::RgbToHsv(pixel);
  int h = static_cast<int>(hsv.h / 360.0 * kHueBins);
  int s = static_cast<int>(hsv.s * kSatBins);
  int v = static_cast<int>(hsv.v * kValBins);
  h = std::min(h, kHueBins - 1);
  s = std::min(s, kSatBins - 1);
  v = std::min(v, kValBins - 1);
  return (h * kSatBins + s) * kValBins + v;
}

ColorHistogram ComputeColorHistogram(const media::Image& image) {
  ColorHistogram hist{};
  if (image.empty()) return hist;
  for (const media::Rgb& p : image.pixels()) {
    hist[static_cast<size_t>(HistogramBin(p))] += 1.0;
  }
  const double total = static_cast<double>(image.pixel_count());
  for (double& v : hist) v /= total;
  return hist;
}

double HistogramIntersection(std::span<const double> a,
                             std::span<const double> b) {
  const size_t n = std::min(a.size(), b.size());
  double sim = 0.0;
  for (size_t i = 0; i < n; ++i) sim += std::min(a[i], b[i]);
  return sim;
}

double HistogramL1Distance(std::span<const double> a,
                           std::span<const double> b) {
  const size_t n = std::min(a.size(), b.size());
  double d = 0.0;
  for (size_t i = 0; i < n; ++i) d += std::fabs(a[i] - b[i]);
  return d;
}

}  // namespace classminer::features

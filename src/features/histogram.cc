#include "features/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "media/color.h"
#include "util/cpu.h"

namespace classminer::features {

namespace internal {

void HistogramBinRangeScalar(const media::Rgb* px, size_t n, int32_t* bins) {
  for (size_t i = 0; i < n; ++i) {
    bins[i] = static_cast<int32_t>(HistogramBin(px[i]));
  }
}

// Four independent accumulators, term(i) into lane i % 4, combined as
// (lane0 + lane2) + (lane1 + lane3) — the exact arithmetic the AVX2 kernel
// performs, so both paths round identically.
double HistogramIntersectionScalar(std::span<const double> a,
                                   std::span<const double> b) {
  const size_t n = std::min(a.size(), b.size());
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[0] += std::min(a[i + 0], b[i + 0]);
    acc[1] += std::min(a[i + 1], b[i + 1]);
    acc[2] += std::min(a[i + 2], b[i + 2]);
    acc[3] += std::min(a[i + 3], b[i + 3]);
  }
  for (; i < n; ++i) acc[i % 4] += std::min(a[i], b[i]);
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

double HistogramL1DistanceScalar(std::span<const double> a,
                                 std::span<const double> b) {
  const size_t n = std::min(a.size(), b.size());
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[0] += std::fabs(a[i + 0] - b[i + 0]);
    acc[1] += std::fabs(a[i + 1] - b[i + 1]);
    acc[2] += std::fabs(a[i + 2] - b[i + 2]);
    acc[3] += std::fabs(a[i + 3] - b[i + 3]);
  }
  for (; i < n; ++i) acc[i % 4] += std::fabs(a[i] - b[i]);
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

}  // namespace internal

namespace {

inline bool UseHistogramAccel() {
  return util::ActiveDispatchLevel() >= util::DispatchLevel::kAvx2 &&
         internal::HistogramAccelAvailable();
}

}  // namespace

int HistogramBin(media::Rgb pixel) {
  const media::Hsv hsv = media::RgbToHsv(pixel);
  int h = static_cast<int>(hsv.h * internal::kHueScale);
  int s = static_cast<int>(hsv.s * kSatBins);
  int v = static_cast<int>(hsv.v * kValBins);
  h = std::min(h, kHueBins - 1);
  s = std::min(s, kSatBins - 1);
  v = std::min(v, kValBins - 1);
  return (h * kSatBins + s) * kValBins + v;
}

ColorHistogram ComputeColorHistogram(const media::Image& image) {
  ColorHistogram hist{};
  if (image.empty()) return hist;
  // Integer bin counts in the pixel loop; one float normalisation pass at
  // the end (a multiply by the reciprocal, not a per-bin division). Binning
  // runs in chunks through the dispatched range kernel.
  std::array<uint32_t, kHistogramDims> counts{};
  constexpr size_t kChunk = 512;
  int32_t bins[kChunk];
  const bool accel = UseHistogramAccel();
  const media::Rgb* px = image.pixels().data();
  size_t remaining = image.pixel_count();
  while (remaining > 0) {
    const size_t n = std::min(remaining, kChunk);
    if (accel) {
      internal::HistogramBinRangeAccel(px, n, bins);
    } else {
      internal::HistogramBinRangeScalar(px, n, bins);
    }
    for (size_t i = 0; i < n; ++i) {
      counts[static_cast<size_t>(bins[i])] += 1;
    }
    px += n;
    remaining -= n;
  }
  const double inv_total = 1.0 / static_cast<double>(image.pixel_count());
  for (size_t i = 0; i < hist.size(); ++i) {
    hist[i] = static_cast<double>(counts[i]) * inv_total;
  }
  return hist;
}

double HistogramIntersection(std::span<const double> a,
                             std::span<const double> b) {
  if (UseHistogramAccel()) return internal::HistogramIntersectionAccel(a, b);
  return internal::HistogramIntersectionScalar(a, b);
}

double HistogramL1Distance(std::span<const double> a,
                           std::span<const double> b) {
  if (UseHistogramAccel()) return internal::HistogramL1DistanceAccel(a, b);
  return internal::HistogramL1DistanceScalar(a, b);
}

}  // namespace classminer::features

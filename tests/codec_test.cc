#include <gtest/gtest.h>

#include <cmath>

#include "codec/bitstream.h"
#include "codec/container.h"
#include "codec/decoder.h"
#include "codec/dct.h"
#include "codec/encoder.h"
#include "codec/motion.h"
#include "codec/quant.h"
#include "media/color.h"
#include "media/draw.h"
#include "util/rng.h"

namespace classminer::codec {
namespace {

TEST(BitstreamTest, BitsRoundTrip) {
  BitWriter w;
  w.PutBits(0b1011, 4);
  w.PutBits(0x3f, 6);
  const std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(*r.GetBits(4), 0b1011u);
  EXPECT_EQ(*r.GetBits(6), 0x3fu);
}

TEST(BitstreamTest, ExpGolombRoundTrip) {
  BitWriter w;
  for (uint32_t v = 0; v < 300; ++v) w.PutUE(v);
  for (int32_t v = -150; v <= 150; ++v) w.PutSE(v);
  const std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  for (uint32_t v = 0; v < 300; ++v) EXPECT_EQ(*r.GetUE(), v);
  for (int32_t v = -150; v <= 150; ++v) EXPECT_EQ(*r.GetSE(), v);
}

TEST(BitstreamTest, ExhaustionIsError) {
  BitReader r(nullptr, 0);
  EXPECT_FALSE(r.GetBit().ok());
}

TEST(DctTest, RoundTripRandomBlock) {
  util::Rng rng(11);
  Block b{};
  for (double& v : b) v = rng.Uniform(-128.0, 128.0);
  const Block rec = InverseDct(ForwardDct(b));
  for (size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(rec[i], b[i], 1e-9);
}

TEST(DctTest, ConstantBlockHasOnlyDc) {
  Block b{};
  b.fill(100.0);
  const Block f = ForwardDct(b);
  EXPECT_NEAR(f[0], 800.0, 1e-9);  // 8 * 100 with orthonormal scaling
  for (size_t i = 1; i < f.size(); ++i) EXPECT_NEAR(f[i], 0.0, 1e-9);
}

TEST(DctTest, Parseval) {
  util::Rng rng(12);
  Block b{};
  for (double& v : b) v = rng.Uniform(-1.0, 1.0);
  const Block f = ForwardDct(b);
  double es = 0.0, ef = 0.0;
  for (size_t i = 0; i < b.size(); ++i) {
    es += b[i] * b[i];
    ef += f[i] * f[i];
  }
  EXPECT_NEAR(es, ef, 1e-9);
}

TEST(QuantTest, ZigzagIsPermutation) {
  const auto& zz = ZigzagOrder();
  std::array<int, kBlockPixels> seen{};
  for (int idx : zz) {
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, kBlockPixels);
    ++seen[static_cast<size_t>(idx)];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  EXPECT_EQ(zz[0], 0);
  EXPECT_EQ(zz[1], 1);      // (0,1)
  EXPECT_EQ(zz[2], 8);      // (1,0)
}

TEST(QuantTest, QuantizeDequantizeBoundsError) {
  util::Rng rng(13);
  Block f{};
  for (double& v : f) v = rng.Uniform(-200.0, 200.0);
  const int quality = 4;
  const QuantizedBlock q = Quantize(f, quality, false);
  const Block deq = Dequantize(q, quality, false);
  // Error per coefficient bounded by half a step (step = matrix * scale).
  for (size_t i = 0; i < f.size(); ++i) {
    EXPECT_LE(std::fabs(deq[i] - f[i]), 130.0 * quality / 8.0 * 0.5 + 1e-9);
  }
}

TEST(QuantTest, BlockCodingRoundTrip) {
  util::Rng rng(14);
  QuantizedBlock q{};
  q[0] = 37;
  for (int i = 0; i < 12; ++i) {
    q[static_cast<size_t>(rng.UniformInt(1, kBlockPixels - 1))] =
        rng.UniformInt(-40, 40);
  }
  BitWriter w;
  const int32_t dc = EncodeBlock(&w, q, /*dc_predictor=*/10);
  EXPECT_EQ(dc, 37);
  const std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  QuantizedBlock back{};
  util::StatusOr<int32_t> dc2 = DecodeBlock(&r, &back, 10);
  ASSERT_TRUE(dc2.ok());
  EXPECT_EQ(*dc2, 37);
  EXPECT_EQ(back, q);
}

TEST(MotionTest, FindsKnownShift) {
  Plane ref = Plane::Make(48, 48);
  util::Rng rng(15);
  for (int16_t& s : ref.samples) s = static_cast<int16_t>(rng.UniformInt(0, 255));
  // cur = ref shifted by (3, -2).
  Plane cur = Plane::Make(48, 48);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 48; ++x) {
      const int sx = std::clamp(x - 3, 0, 47);
      const int sy = std::clamp(y + 2, 0, 47);
      cur.set(x, y, ref.at(sx, sy));
    }
  }
  const MotionVector mv = EstimateMotion(cur, ref, 16, 16, 7);
  EXPECT_EQ(mv.dx, -3);
  EXPECT_EQ(mv.dy, 2);
}

TEST(MotionTest, ZeroMotionForIdentical) {
  Plane p = Plane::Make(32, 32, 100);
  EXPECT_EQ(EstimateMotion(p, p, 0, 0, 7), (MotionVector{0, 0}));
}

TEST(ColorSpaceTest, RgbYcbcrRoundTrip) {
  util::Rng rng(16);
  media::Image img(17, 13);  // odd sizes exercise chroma padding
  media::AddNoise(&img, 255, &rng);
  const Picture pic = FromImage(img);
  const media::Image back = ToImage(pic, 17, 13);
  // 4:2:0 chroma subsampling loses colour detail; luma must stay close.
  double luma_err = 0.0;
  for (int y = 0; y < 13; ++y) {
    for (int x = 0; x < 17; ++x) {
      luma_err += std::fabs(static_cast<double>(media::Luma(img.at(x, y))) -
                            media::Luma(back.at(x, y)));
    }
  }
  EXPECT_LT(luma_err / (17 * 13), 3.0);
}

media::Video MakeTestVideo(int frames, int w, int h, uint64_t seed) {
  util::Rng rng(seed);
  media::Video video("codec_test", 12.0);
  media::Image base(w, h);
  media::FillGradient(&base, media::Rgb{40, 80, 160}, media::Rgb{10, 20, 60});
  media::FillEllipse(&base, w / 2, h / 2, w / 5, h / 5, media::Rgb{210, 160, 120});
  for (int i = 0; i < frames; ++i) {
    media::Image frame = media::Translated(base, i / 2, 0);
    media::AddNoise(&frame, 2, &rng);
    video.AppendFrame(std::move(frame));
  }
  return video;
}

TEST(CodecTest, EncodeDecodeQuality) {
  const media::Video video = MakeTestVideo(10, 48, 32, 21);
  EncoderOptions opts;
  opts.quality = 4;
  opts.gop_size = 5;
  const CmvFile file = EncodeVideo(video, opts);
  ASSERT_EQ(file.frame_count(), 10);
  EXPECT_EQ(file.frames[0].type, FrameType::kIntra);
  EXPECT_EQ(file.frames[5].type, FrameType::kIntra);
  EXPECT_EQ(file.frames[1].type, FrameType::kPredicted);

  util::StatusOr<media::Video> decoded = DecodeVideo(file);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->frame_count(), 10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_GT(Psnr(video.frame(i), decoded->frame(i)), 26.0)
        << "frame " << i;
  }
}

TEST(CodecTest, CoarserQualityIsSmaller) {
  const media::Video video = MakeTestVideo(6, 48, 32, 22);
  EncoderOptions fine;
  fine.quality = 2;
  EncoderOptions coarse;
  coarse.quality = 16;
  EXPECT_LT(EncodeVideo(video, coarse).VideoPayloadBytes(),
            EncodeVideo(video, fine).VideoPayloadBytes());
}

TEST(CodecTest, ContainerRoundTrip) {
  const media::Video video = MakeTestVideo(4, 32, 24, 23);
  CmvFile file = EncodeVideo(video, EncoderOptions());
  file.audio_sample_rate = 8000;
  file.audio_pcm = {0.5f, -0.25f, 0.0f};
  const std::vector<uint8_t> bytes = file.Serialize();
  util::StatusOr<CmvFile> parsed = CmvFile::Parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->width, file.width);
  EXPECT_EQ(parsed->frame_count(), file.frame_count());
  EXPECT_EQ(parsed->audio_pcm, file.audio_pcm);
  EXPECT_EQ(parsed->frames[1].payload, file.frames[1].payload);
}

TEST(CodecTest, CorruptMagicRejected) {
  std::vector<uint8_t> bytes{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(CmvFile::Parse(bytes).ok());
}

TEST(CodecTest, TruncatedPayloadIsDataLoss) {
  const media::Video video = MakeTestVideo(3, 32, 24, 24);
  CmvFile file = EncodeVideo(video, EncoderOptions());
  std::vector<uint8_t> bytes = file.Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(CmvFile::Parse(bytes).ok());
}

TEST(CodecTest, DcImagesTrackLuma) {
  const media::Video video = MakeTestVideo(8, 48, 32, 25);
  EncoderOptions opts;
  opts.quality = 4;
  opts.gop_size = 4;
  const CmvFile file = EncodeVideo(video, opts);
  util::StatusOr<std::vector<media::GrayImage>> dc = DecodeDcImages(file);
  ASSERT_TRUE(dc.ok());
  ASSERT_EQ(dc->size(), 8u);
  EXPECT_EQ((*dc)[0].width(), 6);   // 48 / 8
  EXPECT_EQ((*dc)[0].height(), 4);  // 32 / 8

  // The DC image of an I-frame must approximate the true block means.
  const media::GrayImage gray = media::ToGray(video.frame(0));
  for (int by = 0; by < 4; ++by) {
    for (int bx = 0; bx < 6; ++bx) {
      double mean = 0.0;
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) mean += gray.at(bx * 8 + x, by * 8 + y);
      }
      mean /= 64.0;
      EXPECT_NEAR((*dc)[0].at(bx, by), mean, 24.0);
    }
  }
}

TEST(CodecTest, DcSequenceDetectsBigChange) {
  // Two visually distinct halves: DC difference across the boundary must
  // dominate within-shot differences.
  media::Video video("cut", 12.0);
  util::Rng rng(26);
  for (int i = 0; i < 6; ++i) {
    media::Image f(48, 32, media::Rgb{200, 30, 30});
    media::AddNoise(&f, 2, &rng);
    video.AppendFrame(std::move(f));
  }
  for (int i = 0; i < 6; ++i) {
    media::Image f(48, 32, media::Rgb{20, 30, 180});
    media::AddNoise(&f, 2, &rng);
    video.AppendFrame(std::move(f));
  }
  EncoderOptions opts;
  opts.gop_size = 4;
  const CmvFile file = EncodeVideo(video, opts);
  util::StatusOr<std::vector<media::GrayImage>> dc = DecodeDcImages(file);
  ASSERT_TRUE(dc.ok());
  double max_within = 0.0;
  double at_cut = 0.0;
  for (size_t i = 1; i < dc->size(); ++i) {
    double diff = 0.0;
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 6; ++x) {
        diff += std::fabs(static_cast<double>((*dc)[i].at(x, y)) -
                          (*dc)[i - 1].at(x, y));
      }
    }
    if (i == 6) {
      at_cut = diff;
    } else {
      max_within = std::max(max_within, diff);
    }
  }
  EXPECT_GT(at_cut, 3.0 * max_within);
}

}  // namespace
}  // namespace classminer::codec
